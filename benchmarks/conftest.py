"""Shared infrastructure for the paper-reproduction benchmarks.

Every module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Conventions:

* the *proposed method* is timed by pytest-benchmark (one round - these
  are seconds-long end-to-end analyses, not microbenchmarks);
* the Monte-Carlo baselines run once per session with wall-clock
  recorded manually, at sample counts controlled by ``REPRO_BENCH_MC``
  (default 200; the paper's 1000/10000-point runs are reproduced by
  setting ``REPRO_BENCH_MC=1000`` etc. - runtimes scale linearly);
* every benchmark prints its table and also writes it under
  ``benchmarks/results/`` so the artefacts survive pytest's capture.

Speedups are reported two ways: against our *batched* MC (all samples
integrate as one stacked system - far faster than serial SPICE), and
against the serial-equivalent cost ``n x (single-sample transient)``,
which is what the paper's 100-1000x numbers compare against.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.circuit import default_technology

RESULTS_DIR = Path(__file__).parent / "results"


def mc_samples(default: int = 200) -> int:
    return int(os.environ.get("REPRO_BENCH_MC", default))


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str,
            data: dict | None = None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    *data* (when given) is additionally written as machine-readable
    ``BENCH_<name>.json`` so the performance trajectory can be tracked
    across PRs and consumed by CI without parsing the text tables.
    Every payload gets the benchmark name and the ``REPRO_BENCH_MC``
    scaling in effect; benchmarks put wall times (seconds), speedups
    and workload sizes in the remaining keys.
    """
    banner = "=" * 72
    print(f"\n{banner}\n{text}\n{banner}")
    (results_dir / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {"bench": name, "mc_samples_env": mc_samples(), **data}
        (results_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=float)
            + "\n")


class WallClock:
    """Tiny context manager for baseline timings."""

    def __enter__(self):
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self.t0
        return False
