"""The analysis service over loopback HTTP: parity, memo, fan-out.

The network front-end must add *transport*, not numerics: a
``monte_carlo_transient`` request served over ``POST /run`` has to be
bit-identical to the in-process :class:`AnalysisSession` run, and the
shard scatter across two worker daemons has to merge bit-identically to
:func:`monte_carlo_transient` itself.  This benchmark measures the four
temperatures of one RC Monte-Carlo workload (``REPRO_BENCH_MC``
samples):

* **local** - in-process session run (the no-network reference);
* **http_cold** - the same request through a loopback daemon: engine
  cost plus one HTTP round trip;
* **http_warm** - the identical request again: served from the
  daemon-side result memo, so the wall time *is* the transport cost;
* **scatter** - the workload planned as shards and fanned out over two
  worker daemons, span-merged client-side.

Acceptance: all paths produce bit-identical samples/summaries, and the
warm HTTP repeat is at least 5x faster than the cold one (asserted
here, and published as ``speedup_http_memo`` in
``BENCH_service_net.json`` where ``check_regression.py`` gates it
>= 1.0 across PRs).
"""

import numpy as np
from conftest import WallClock, mc_samples, publish

from repro.circuit import Circuit, Sine
from repro.core.measures import DcLevel
from repro.core.montecarlo import monte_carlo_transient
from repro.service import (AnalysisRequest, AnalysisServer,
                           AnalysisSession, RemoteSession,
                           scatter_monte_carlo_transient)

T_STOP, DT, SEED = 2e-6, 2e-8, 7


def _rc() -> Circuit:
    ckt = Circuit("rc_lowpass")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def test_service_net_loopback(results_dir):
    n = mc_samples(24)
    chunk = max(2, n // 2)
    measures = [DcLevel("vout", "out")]
    request = AnalysisRequest.monte_carlo_transient(
        _rc(), measures, n, T_STOP, DT, seed=SEED, chunk_size=chunk)

    # -- in-process references (session summary + raw samples) ---------
    with WallClock() as w_local:
        local = AnalysisSession().run(request)
    local_mc = monte_carlo_transient(_rc(), measures, n, T_STOP, DT,
                                     seed=SEED, chunk_size=chunk)

    # -- the same request over loopback HTTP ---------------------------
    with AnalysisServer() as server:
        client = RemoteSession(server.url)
        with WallClock() as w_cold:
            served = client.run(request)
        with WallClock() as w_warm:
            memo = client.run(request)
        assert not served.from_cache and memo.from_cache

    # -- shard fan-out over two worker daemons -------------------------
    with AnalysisServer() as w1, AnalysisServer() as w2:
        with WallClock() as w_scatter:
            scattered = scatter_monte_carlo_transient(
                [w1.url, w2.url], _rc(), measures, n, T_STOP, DT,
                seed=SEED, chunk_size=chunk)

    # the wire adds transport, never numerics
    assert served.summary == local.summary
    assert memo.summary == local.summary
    assert scattered.summary() == local.summary
    assert np.array_equal(scattered.samples["vout"],
                          local_mc.samples["vout"])
    sigma = served.summary["metrics"]["vout"]["sigma"]
    assert sigma == local_mc.stats["vout"].std

    speedup_memo = w_cold.seconds / w_warm.seconds
    assert speedup_memo >= 5.0, (
        f"warm HTTP repeat only {speedup_memo:.1f}x faster than cold")

    publish(results_dir, "service_net", "\n".join([
        f"analysis service over loopback HTTP "
        f"(RC Monte-Carlo, n = {n}, chunk = {chunk})",
        f"{'path':<12s} {'wall [s]':>10s}  notes",
        f"{'local':<12s} {w_local.seconds:>10.3f}  in-process session "
        "(reference)",
        f"{'http_cold':<12s} {w_cold.seconds:>10.3f}  POST /run, empty "
        "daemon memo",
        f"{'http_warm':<12s} {w_warm.seconds:>10.4f}  POST /run, "
        f"daemon memo hit ({speedup_memo:.0f}x vs cold)",
        f"{'scatter':<12s} {w_scatter.seconds:>10.3f}  2 shards over "
        "2 worker daemons, merged",
        f"sigma(vout) = {sigma * 1e3:.4f} mV on every path "
        "(bit-identical)",
    ]), data={
        "n_samples": n,
        "n_worker_daemons": 2,
        "chunk_size": chunk,
        "sigma_vout": sigma,
        "speedup_http_memo": speedup_memo,
        "wall_seconds": {"local": w_local.seconds,
                         "http_cold": w_cold.seconds,
                         "http_warm": w_warm.seconds,
                         "scatter_2workers": w_scatter.seconds},
    })
