"""Large-netlist parameter-state construction: memory and time.

The paper's method needs one linearized system per mismatch parameter,
so *state construction* memory - not just solve time - bounds netlist
size.  ``CompiledCircuit.make_state`` is sparse-native: the linear G/C
templates are value arrays over the circuit's CSR plan (O(nnz)), and
nothing of shape ``(n+1)^2`` exists unless a dense-path consumer calls
the explicit ``ParamState.to_dense`` escape hatch.

This benchmark constructs parameter states for synthetic RC ladders of
{241, 1001, 5001} nodes and reports, per size:

* state-construction wall time (best of 3),
* the tracemalloc peak of one ``make_state`` (the sparse cost),
* the dense-template baseline - the tracemalloc peak of densifying the
  same state (measured up to 2000 unknowns, the analytic
  ``2 * (n+1)^2 * 8`` bytes beyond that),
* process peak RSS (``ru_maxrss``) as context.

Acceptance: >= 5x peak-memory reduction versus the dense baseline at
the 1k-node ladder, and the sparse peak stays within an O(nnz) budget
at every size.  Results are published as ``BENCH_large_state.json``
and gated by CI through ``check_regression.py``.
"""

import resource
import time
import tracemalloc

from conftest import publish

from repro.analysis import compile_circuit
from repro.circuits import rc_ladder

#: Ladder sections per workload (nodes = sections + 1).
SIZES = (240, 1000, 5000)

#: Largest system that is densified for a *measured* dense baseline;
#: beyond this the dense pair is reported analytically (a 5k-node
#: densification would cost ~400 MB for no extra information).
DENSE_MEASURE_MAX_UNKNOWNS = 2000

#: O(nnz) budget for the sparse construction peak (value arrays plus
#: scatter temporaries and slot maps, with headroom for allocator
#: rounding).
SPARSE_BUDGET_BYTES_PER_NNZ = 128

HEADER = (
    f"{'nodes':>6s} {'n':>6s} {'nnz':>8s} {'build [ms]':>11s} "
    f"{'sparse peak':>12s} {'dense pair':>11s} {'reduction':>10s}"
)


def _kb(n_bytes):
    return f"{n_bytes / 1024:.0f} KB"


def measure_size(n_sections):
    """Build one ladder and measure its state-construction costs."""
    compiled = compile_circuit(rc_ladder(n_sections), backend="sparse")
    compiled.csr_plan  # structural, built once per circuit
    compiled.make_state()  # warm the one-time slot-position maps

    wall = min(_timed(compiled.make_state) for _ in range(3))
    tracemalloc.start()
    state = compiled.make_state()
    _, sparse_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    dense_pair_bytes = 2 * (compiled.n + 1) ** 2 * 8
    if compiled.n <= DENSE_MEASURE_MAX_UNKNOWNS:
        tracemalloc.start()
        state.to_dense()
        _, dense_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        state.clear_caches()
        dense_measured = True
    else:
        dense_peak = dense_pair_bytes
        dense_measured = False

    return {
        "n_nodes": n_sections + 1,
        "n_unknowns": compiled.n,
        "nnz": state.plan.nnz,
        "make_state_seconds": wall,
        "sparse_peak_bytes": sparse_peak,
        "dense_pair_bytes": dense_pair_bytes,
        "dense_peak_bytes": dense_peak,
        "dense_peak_measured": dense_measured,
        "mem_reduction_vs_dense": dense_peak / sparse_peak,
    }


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_large_state_construction(results_dir):
    sizes = {}
    lines = [
        "sparse-native parameter states: ladder state construction",
        HEADER,
    ]
    for n_sections in SIZES:
        row = measure_size(n_sections)
        sizes[str(row["n_nodes"])] = row
        star = "" if row["dense_peak_measured"] else "*"
        lines.append(
            f"{row['n_nodes']:>6d} {row['n_unknowns']:>6d} "
            f"{row['nnz']:>8d} {row['make_state_seconds'] * 1e3:>11.2f} "
            f"{_kb(row['sparse_peak_bytes']):>12s} "
            f"{_kb(row['dense_peak_bytes']) + star:>11s} "
            f"{row['mem_reduction_vs_dense']:>9.1f}x"
        )
    lines.append("(* analytic dense baseline - not materialised)")
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    lines.append(f"process peak RSS: {peak_rss_kb / 1024:.0f} MB")

    reduction_1k = sizes["1001"]["mem_reduction_vs_dense"]
    publish(
        results_dir,
        "large_state",
        "\n".join(lines),
        data={
            "workload": "ladder_state_construction",
            "n_sizes": len(SIZES),
            "sizes": sizes,
            "peak_rss_kb": peak_rss_kb,
            "mem_reduction_vs_dense_1k": reduction_1k,
        },
    )

    # acceptance: >= 5x peak-memory reduction at the 1k-node ladder
    # and an O(nnz) construction peak at every size
    assert reduction_1k >= 5.0
    for row in sizes.values():
        budget = SPARSE_BUDGET_BYTES_PER_NNZ * row["nnz"]
        assert row["sparse_peak_bytes"] < budget, row
