"""Adaptive vs fixed time stepping on the paper's transient workloads.

The transient solves dominate both the Monte-Carlo baseline and the
sensitivity method's orbit construction (paper Tables I-II), and a
fixed ``dt`` forces the whole run to the smallest step any event needs.
This shoot-out runs the two stiff clocked/autonomous workloads:

* the Table II StrongARM comparator-offset testbench (one mismatch
  sample): clocked regeneration with long precharge stretches - the
  classic case for LTE control.  The fixed ``period/400`` grid from the
  backend benchmarks is the baseline; a ``period/1600`` (``/800`` on
  smoke runs) grid provides the accuracy reference;
* the ring oscillator (Figs. 11-12): always switching, the *hardest*
  case for adaptive stepping - the win is small by design and the
  check is that accuracy holds without a step-count regression.

Acceptance: adaptive takes *fewer accepted steps* than the fixed
baseline at matched (here: strictly better) accuracy on the comparator,
and stays at least at parity on the oscillator.  Results go to
``results/BENCH_adaptive_dt.json``.
"""

import time

import numpy as np

from repro.analysis import compile_circuit, transient
from repro.analysis.transient import TransientOptions
from repro.circuits import ring_oscillator, strongarm_offset_testbench
from repro.core.montecarlo import measurement_window_mask, sample_mismatch

from conftest import mc_samples, publish

HEADER = (f"{'workload':<26s} {'stepper':>14s} {'steps':>7s} "
          f"{'rej':>5s} {'wall [s]':>9s} {'metric':>13s} {'err':>9s}")


def _row(workload, stepper, steps, rej, wall, metric, err):
    return (f"{workload:<26s} {stepper:>14s} {steps:>7d} {rej:>5d} "
            f"{wall:>9.2f} {metric:>13.6g} {err:>9.2e}")


def _timed(compiled, state, t_stop, dt, opts):
    t0 = time.perf_counter()
    res = transient(compiled, t_stop=t_stop, dt=dt, state=state,
                    options=opts)
    return time.perf_counter() - t0, res


def test_adaptive_vs_fixed(tech, results_dir):
    smoke = mc_samples() < 100      # CI smoke: cheaper reference grid
    lines = [f"adaptive vs fixed dt (smoke={smoke})", HEADER]
    data = {}

    # ----- comparator offset (one mismatch sample, full settling) -----
    tb = strongarm_offset_testbench(tech)
    compiled = compile_circuit(tb.circuit)
    rng = np.random.default_rng(11)
    deltas = sample_mismatch(compiled, 1, rng)
    state = compiled.make_state(
        deltas={k: float(v[0]) for k, v in deltas.items()})
    n_cyc = tb.settle_cycles
    t_stop = n_cyc * tb.period
    win = ((n_cyc - 1) * tb.period, n_cyc * tb.period)

    def vos_of(res):
        mask = measurement_window_mask(res.t, win)
        return float(np.mean(res.signal(tb.vos_node)[mask]))

    ref_div = 800 if smoke else 1600
    _, ref = _timed(compiled, state, t_stop, tb.period / ref_div,
                    TransientOptions(record=[tb.vos_node]))
    v_ref = vos_of(ref)
    w_f, fixed = _timed(compiled, state, t_stop, tb.period / 400,
                        TransientOptions(record=[tb.vos_node]))
    w_a, adapt = _timed(
        compiled, state, t_stop, tb.period / 400,
        TransientOptions(record=[tb.vos_node], adaptive=True,
                         rtol=1e-3, atol=1e-6, t_out=list(win)))
    v_f, v_a = vos_of(fixed), vos_of(adapt)
    lines += [
        _row("comparator vos", f"fixed T/{ref_div}", ref.n_accepted, 0,
             0.0, v_ref, 0.0),
        _row("comparator vos", "fixed T/400", fixed.n_accepted, 0, w_f,
             v_f, abs(v_f - v_ref)),
        _row("comparator vos", "adaptive 1e-3", adapt.n_accepted,
             adapt.n_rejected, w_a, v_a, abs(v_a - v_ref))]
    data["comparator"] = {
        "steps_fixed": fixed.n_accepted, "steps_adaptive": adapt.n_accepted,
        "steps_rejected": adapt.n_rejected,
        "step_ratio": fixed.n_accepted / adapt.n_accepted,
        "wall_seconds": {"fixed": w_f, "adaptive": w_a},
        "vos": {"reference": v_ref, "fixed": v_f, "adaptive": v_a},
        "vos_err": {"fixed": abs(v_f - v_ref),
                    "adaptive": abs(v_a - v_ref)}}

    # acceptance: fewer accepted steps at matched-or-better accuracy
    assert adapt.n_accepted < fixed.n_accepted
    assert abs(v_a - v_ref) <= abs(v_f - v_ref) + 1e-4

    # ----- ring oscillator (nominal, frequency) -----
    osc = compile_circuit(ring_oscillator(tech))
    t_stop = 10e-9

    def freq_of(res):
        return res.waveset()["osc1"].frequency(skip=3)

    _, ref = _timed(osc, None, t_stop, 0.5e-12,
                    TransientOptions(record=["osc1"]))
    f_ref = freq_of(ref)
    w_f, fixed = _timed(osc, None, t_stop, 2e-12,
                        TransientOptions(record=["osc1"]))
    w_a, adapt = _timed(osc, None, t_stop, 2e-12,
                        TransientOptions(record=["osc1"], adaptive=True,
                                         rtol=3e-3, atol=1e-6))
    f_f, f_a = freq_of(fixed), freq_of(adapt)
    lines += [
        _row("oscillator freq", "fixed 0.5ps", ref.n_accepted, 0, 0.0,
             f_ref, 0.0),
        _row("oscillator freq", "fixed 2ps", fixed.n_accepted, 0, w_f,
             f_f, abs(f_f - f_ref) / f_ref),
        _row("oscillator freq", "adaptive 3e-3", adapt.n_accepted,
             adapt.n_rejected, w_a, f_a, abs(f_a - f_ref) / f_ref)]
    data["oscillator"] = {
        "steps_fixed": fixed.n_accepted, "steps_adaptive": adapt.n_accepted,
        "steps_rejected": adapt.n_rejected,
        "step_ratio": fixed.n_accepted / adapt.n_accepted,
        "wall_seconds": {"fixed": w_f, "adaptive": w_a},
        "freq": {"reference": f_ref, "fixed": f_f, "adaptive": f_a},
        "freq_relerr": {"fixed": abs(f_f - f_ref) / f_ref,
                        "adaptive": abs(f_a - f_ref) / f_ref}}

    # the always-switching oscillator is the worst case: require
    # parity on steps and matched accuracy (both within 0.1% of ref)
    assert adapt.n_accepted < fixed.n_accepted
    assert abs(f_a - f_ref) / f_ref < 1e-3
    assert abs(f_f - f_ref) / f_ref < 1e-3

    publish(results_dir, "adaptive_dt", "\n".join(lines), data=data)
