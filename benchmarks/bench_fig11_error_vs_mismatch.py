"""Paper Fig. 11: linear-model error and distribution skewness vs the
amount of mismatch (ring-oscillator frequency).

The matching constants are scaled so that the 3-sigma drain-current
variation sweeps from its nominal value up to several times that; at
each point the pseudo-noise sigma (which scales exactly linearly) is
compared to Monte-Carlo, and the MC normalised skewness
``mu_3^{1/3}/mu`` is recorded.  The paper finds the sigma error crossing
~10 % once 3-sigma(dI_DS) exceeds ~39 %, with skewness growing in
step - the same shape is asserted here: error and |skewness| must grow
with the mismatch scale, small at nominal and significant at the top of
the sweep.

Sweep levels x MC samples make this the most expensive benchmark;
``REPRO_BENCH_MC`` trades accuracy for time (default 200/level).
"""

import numpy as np

from repro.analysis import compile_circuit
from repro.analysis.pss import PssOptions
from repro.circuits import ring_oscillator
from repro.core import (Frequency, monte_carlo_transient,
                        transient_mismatch_analysis)
from repro.stats import normalized_skewness

from conftest import WallClock, mc_samples, publish

#: Mismatch scale factors applied to (AVT, Abeta) jointly.
SCALES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


def test_fig11_error_and_skewness_vs_mismatch(benchmark, tech,
                                              results_dir):
    osc = ring_oscillator(tech)
    compiled = compile_circuit(osc)
    f = Frequency("f_osc", "osc1")

    # one linear analysis at nominal mismatch; sigma scales exactly
    # linearly with the matching constants (that is the linear model)
    res = benchmark.pedantic(lambda: transient_mismatch_analysis(
        compiled, [f], oscillator_anchor="osc1", t_settle=8e-9,
        dt_settle=2e-12, pss_options=PssOptions(n_steps=300)),
        rounds=1, iterations=1)
    sigma_lin_1 = res.sigma("f_osc")
    f0 = res.mean("f_osc")

    # calibration: 3-sigma(dIds/Ids) at nominal scale for the paper's
    # reference device, to label the x-axis the way the paper does
    id3_nominal = 3.0 * tech.sigma_id_rel(8.32e-6, 0.13e-6, 1.0)

    n = mc_samples()
    rows = []
    errors, skews = [], []
    with WallClock() as wc:
        for scale in SCALES:
            mc = monte_carlo_transient(
                compiled, [f], n=n, t_stop=10e-9, dt=2e-12,
                window=(2e-9, 10e-9), seed=400 + int(10 * scale),
                sigma_scale=scale)
            samples = mc.samples["f_osc"]
            samples = samples[np.isfinite(samples)]
            sigma_mc = samples.std(ddof=1)
            sigma_lin = scale * sigma_lin_1
            err = (sigma_lin - sigma_mc) / sigma_mc
            skew = normalized_skewness(samples)
            errors.append(err)
            skews.append(skew)
            rows.append(
                f"  x{scale:3.1f} | 3sig(dId/Id) {100 * scale * id3_nominal:5.1f}% | "
                f"sig_lin {sigma_lin / 1e6:7.2f} MHz | "
                f"sig_MC{n} {sigma_mc / 1e6:7.2f} MHz | "
                f"err {100 * err:+6.1f}% | skew {skew:+.4f}")

    text = "\n".join([
        "FIG. 11: sigma(f) estimation error and skewness vs mismatch "
        "scale (5-stage ring oscillator)",
        f"  nominal f0 = {f0 / 1e9:.3f} GHz; linear sigma at x1.0 = "
        f"{sigma_lin_1 / 1e6:.2f} MHz ({sigma_lin_1 / f0:.2%})",
        *rows,
        f"  MC wall clock (all levels): {wc.seconds:.1f} s; "
        f"proposed: {res.runtime_seconds:.1f} s total",
        "  paper shape: |error| reaches ~10 % once 3sig(dI) > ~39 %, "
        "skewness grows with mismatch",
    ])
    publish(results_dir, "fig11_error_vs_mismatch", text, data={
        "workload": "fig11_error_vs_mismatch",
        "n_mc_samples_per_level": n, "scales": list(SCALES),
        "sigma_errors": errors, "skewness": skews,
        "wall_seconds": {"mc_all_levels": wc.seconds,
                         "proposed": res.runtime_seconds}})

    # shape assertions (MC noise-tolerant): small error at nominal,
    # larger |error| and |skew| at the top of the sweep
    assert abs(errors[1]) < 0.12
    assert abs(errors[-1]) > abs(errors[1])
    assert abs(skews[-1]) > abs(skews[1]) - 0.01
