"""Paper Table I: estimated correlations between two delay variations.

The Fig. 7 logic path is analysed for both input orders.  When the late
input is X the critical paths to outputs A and B share gates ga/gb and
the delays are strongly correlated (paper: rho = 0.885); when Y is late
the paths are disjoint and the correlation collapses (paper: 0.01).

The correlations come from Eq. 12 - inner products of the contribution
lists - at zero extra simulation cost; Monte-Carlo sample correlations
validate them.
"""

import pytest

from repro.analysis.pss import PssOptions
from repro.circuits import logic_path_testbench
from repro.core import (EdgeDelay, monte_carlo_transient,
                        transient_mismatch_analysis)

from conftest import WallClock, mc_samples, publish


def _analyse(tech, late_input):
    tb = logic_path_testbench(tech, late_input=late_input)
    measures = [EdgeDelay("delay_A", late_input, "A", tb.vth),
                EdgeDelay("delay_B", late_input, "B", tb.vth)]
    res = transient_mismatch_analysis(
        tb.circuit, measures, period=tb.period,
        pss_options=PssOptions(n_steps=800, settle_periods=2))
    return tb, measures, res


@pytest.mark.parametrize("late_input,paper_rho", [("X", 0.885),
                                                  ("Y", 0.01)])
def test_table1_delay_correlation(benchmark, tech, results_dir,
                                  late_input, paper_rho):
    result = benchmark.pedantic(
        lambda: _analyse(tech, late_input), rounds=1, iterations=1)
    tb, measures, res = result

    n = mc_samples()
    with WallClock() as wc:
        mc = monte_carlo_transient(
            tb.circuit, measures, n=n, t_stop=2 * tb.period,
            dt=tb.period / 800, window=(tb.period, 2 * tb.period),
            seed=101)

    rho = res.correlation("delay_A", "delay_B")
    rho_mc = mc.correlation("delay_A", "delay_B")
    lines = [
        f"TABLE I ({late_input} arrives last)",
        f"  delay_A: nominal {res.mean('delay_A') * 1e12:7.1f} ps   "
        f"sigma {res.sigma('delay_A') * 1e12:6.3f} ps   "
        f"(MC-{n}: {mc.sigma('delay_A') * 1e12:6.3f} ps)",
        f"  delay_B: nominal {res.mean('delay_B') * 1e12:7.1f} ps   "
        f"sigma {res.sigma('delay_B') * 1e12:6.3f} ps   "
        f"(MC-{n}: {mc.sigma('delay_B') * 1e12:6.3f} ps)",
        f"  correlation rho:  proposed {rho:+.3f}   MC {rho_mc:+.3f}   "
        f"paper {paper_rho:+.3f}",
        f"  runtime: proposed {res.runtime_seconds:.1f} s, "
        f"batched MC-{n} {wc.seconds:.1f} s",
    ]
    publish(results_dir, f"table1_{late_input}_late", "\n".join(lines),
            data={
                "workload": "table1_delay_correlation",
                "late_input": late_input, "n_mc_samples": n,
                "rho_proposed": rho, "rho_mc": rho_mc,
                "rho_paper": paper_rho,
                "sigma_delay_a": res.sigma("delay_A"),
                "sigma_delay_b": res.sigma("delay_B"),
                "wall_seconds": {"proposed": res.runtime_seconds,
                                 "mc_batched": wc.seconds}})

    # shape assertions: high correlation with shared gates, low without
    if late_input == "X":
        assert rho > 0.7
    else:
        assert abs(rho) < 0.35
    assert abs(rho - rho_mc) < 0.15
