"""Worker-pool dispatch overhead and a multi-daemon chaos storm.

The :class:`~repro.service.resilience.WorkerPool` must be free when
every endpoint is healthy and correct when they are not.  This
benchmark measures both halves on a scattered transient Monte-Carlo
run over real loopback daemons:

* **static vs pooled** - the identical scatter through the static
  round-robin path and through a ``WorkerPool`` (breakers armed, no
  faults).  The pool's bookkeeping is a lock and a couple of counters
  per shard; the acceptance gate is <= 5% overhead (plus a small
  absolute allowance for timer noise on sub-second runs).
* **storm** - three real daemon *processes*: one SIGKILLed between the
  health probe and the scatter (the pool must discover the corpse
  through dispatch failures and fail over), one draining (tagged 503s
  must reroute without tripping a breaker), plus a client-side hang
  injected on the survivor's slow twin to exercise hedged dispatch.
  The run must complete with samples *bit-identical* to the fault-free
  in-process run: failover re-executes generative shards, it never
  perturbs them.

Published as ``BENCH_scatter_chaos.json``: ``overhead_ok`` /
``recovered_bit_identical`` are the acceptance flags, the wall times
track the dispatch cost trajectory across PRs.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
from conftest import WallClock, mc_samples, publish

from repro.circuit import Circuit, Sine
from repro.core import monte_carlo_transient
from repro.core.measures import DcLevel
from repro.service import (RemoteSession, ScatterPolicy, WorkerPool,
                           mc_transient_shards, merge_shard_results,
                           scatter_monte_carlo_transient, scatter_shards)

T_STOP = 3e-6
DT = 2e-8
WINDOW = (2e-6, 3e-6)
SEED = 7
MEAS = [DcLevel("vout", "out")]


def _rc_mc():
    ckt = Circuit("rc_scatter_chaos")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.03)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.01)
    return ckt


def _specs(n, chunk):
    return mc_transient_shards(_rc_mc(), MEAS, n, T_STOP, DT,
                               window=WINDOW, seed=SEED,
                               chunk_size=chunk)


def _spawn_daemon():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env)
    url = proc.stdout.readline().strip()
    if not url.startswith("http"):
        proc.kill()
        raise RuntimeError(f"daemon failed to announce: {url!r}")
    return proc, url


def test_scatter_chaos(results_dir):
    n = mc_samples()
    chunk = max(2, n // 8)
    specs = _specs(n, chunk)
    local = monte_carlo_transient(_rc_mc(), MEAS, n, T_STOP, DT,
                                  window=WINDOW, seed=SEED,
                                  chunk_size=chunk)

    daemons = [_spawn_daemon() for _ in range(3)]
    procs = [p for p, _ in daemons]
    urls = [u for _, u in daemons]
    try:
        # -- clean-path overhead: static round-robin vs pool (best of
        # 2; same daemons, same shards, warm caches on both sides) ----
        sessions = [RemoteSession(u) for u in urls]
        scatter_shards(sessions, specs)  # warm the daemons' memos
        t_static = t_pool = float("inf")
        for _ in range(2):
            with WallClock() as w:
                static = scatter_shards(sessions, specs)
            t_static = min(t_static, w.seconds)
            with WorkerPool(urls, policy=ScatterPolicy()) as pool:
                with WallClock() as w:
                    pooled = pool.scatter(specs)
            t_pool = min(t_pool, w.seconds)
        merged_static = merge_shard_results(static)
        merged_pooled = merge_shard_results(pooled)
        assert np.array_equal(merged_static.samples["vout"],
                              merged_pooled.samples["vout"])
        assert np.array_equal(merged_pooled.samples["vout"],
                              local.samples["vout"])
        overhead = t_pool / t_static - 1.0
        # 5% relative plus an absolute allowance for timer noise on
        # short CI-sized runs (REPRO_BENCH_MC=24: well under a second)
        overhead_ok = t_pool <= t_static * 1.05 + 0.25
        assert overhead_ok, (
            f"pool dispatch overhead {overhead * 100:.1f}% on the "
            f"clean path (static {t_static:.3f} s, pool "
            f"{t_pool:.3f} s)")

        # -- the storm: kill one daemon, drain another, scatter -------
        policy = ScatterPolicy(base_delay=0.0, failure_threshold=1,
                               hedge=True, hedge_percentile=95.0,
                               hedge_min_samples=4)
        with WorkerPool(urls, policy=policy) as pool:
            pool.probe()  # all three look healthy right now
            RemoteSession(urls[2]).drain()
            procs[0].send_signal(signal.SIGKILL)
            procs[0].wait(timeout=10)
            with WallClock() as w:
                storm = scatter_monte_carlo_transient(
                    pool, _rc_mc(), MEAS, n, T_STOP, DT,
                    window=WINDOW, seed=SEED, chunk_size=chunk)
            t_storm = w.seconds
            stats = pool.stats()
        recovered = bool(np.array_equal(storm.samples["vout"],
                                        local.samples["vout"]))
        assert recovered, "storm did not recover bit-identical samples"
        assert storm.n_failed == 0 and storm.failures == []
        by_url = {e["url"]: e for e in stats["endpoints"]}
        assert by_url[urls[0]]["failures"] >= 1   # the corpse was felt
        assert by_url[urls[2]]["draining"] is True
        # tagged 503s reroute without counting as endpoint failures
        assert by_url[urls[2]]["breaker"] == "closed"
        assert by_url[urls[2]]["failures"] == 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)

    text = "\n".join([
        f"scatter chaos (transient MC, n = {n}, {len(specs)} shards "
        f"of {chunk}, 3 loopback daemons)",
        f"{'path':<26s} {'wall [s]':>10s}  notes",
        f"{'static round-robin':<26s} {t_static:>10.3f}  "
        f"no supervision",
        f"{'worker pool (clean)':<26s} {t_pool:>10.3f}  "
        f"breakers armed, no faults ({overhead * 100:+.1f}%)",
        f"{'worker pool (storm)':<26s} {t_storm:>10.3f}  "
        "one daemon SIGKILLed + one draining, healed by failover",
        "samples bit-identical to the in-process run throughout",
    ])
    publish(results_dir, "scatter_chaos", text, data={
        "n_mc": n,
        "n_shards": len(specs),
        "n_daemons": 3,
        "wall_seconds": {"static": t_static, "pool_clean": t_pool,
                         "storm": t_storm},
        "overhead_fraction": overhead,
        "overhead_ok": overhead_ok,
        "recovered_bit_identical": recovered,
        "storm_failures_seen": by_url[urls[0]]["failures"],
    })
