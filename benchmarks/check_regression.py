#!/usr/bin/env python3
"""Diff fresh ``BENCH_*.json`` files against committed baselines.

CI's bench jobs snapshot the committed ``benchmarks/results/``
directory *before* running the benchmarks (which overwrite it), then
call this script with both directories::

    python benchmarks/check_regression.py BASELINE_DIR FRESH_DIR

What is checked
---------------
For every ``BENCH_*.json`` present in both directories:

* **wall-time regression** - a numeric leaf whose key path contains
  ``wall`` may not exceed its baseline value by more than ``--tol``
  (default 0.25, i.e. a >25% regression fails).  Leaves whose baseline
  is below ``--min-seconds`` (default 0.2 s) are ignored: sub-noise
  timings on shared runners would make the gate flake.
* **speedup-factor floor** - a numeric leaf whose key path contains
  ``speedup`` or ``reduction`` fails when it *drops below 1.0*, i.e.
  the fresh value is < 1.0 while the baseline achieved >= 1.0 (or has
  no baseline entry).  A baseline that never achieved the factor -
  e.g. a parallel speedup recorded on a single-core runner - does not
  fail the gate.

Two files are only compared when their workloads match: the
``mc_samples_env`` scaling and every top-level key starting with
``n_`` (sample counts, sizes, worker counts) must be equal, otherwise
the file is skipped with a note - a 24-sample CI run has nothing to
say about a 1000-sample baseline.

Updating baselines
------------------
Baselines are the committed ``benchmarks/results/BENCH_*.json`` files.
After a legitimate performance change (or when adding a benchmark),
regenerate them with the same workload scaling CI uses and commit::

    cd benchmarks
    REPRO_BENCH_MC=24 PYTHONPATH=../src python -m pytest \\
        bench_backends.py bench_adaptive_dt.py bench_large_state.py \\
        bench_pss_lptv.py -q -p no:cacheprovider
    git add results/BENCH_*.json

Preferably, download the ``bench-json`` artifact from the latest green
CI run instead and copy it over ``benchmarks/results/`` - then
runner-produced timings gate runner-produced timings, and the wall
tolerance only has to absorb runner-to-runner noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def iter_leaves(obj, path=()):
    """Yield ``(key_path, value)`` for every numeric leaf of *obj*."""
    if isinstance(obj, dict):
        for key, val in sorted(obj.items()):
            yield from iter_leaves(val, path + (str(key),))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        yield path, float(obj)


def workload_mismatch(base: dict, fresh: dict) -> str | None:
    """Reason the two payloads are not comparable, or ``None``."""
    keys = {"mc_samples_env"}
    keys |= {k for k in set(base) | set(fresh) if k.startswith("n_")}
    for key in sorted(keys):
        if base.get(key) != fresh.get(key):
            return (
                f"{key}: baseline {base.get(key)!r} "
                f"!= fresh {fresh.get(key)!r}"
            )
    return None


def check_file(
    name: str,
    base: dict,
    fresh: dict,
    tol: float,
    min_seconds: float,
) -> tuple[list[str], int]:
    """Compare one payload pair; returns ``(failures, n_checked)``."""
    failures: list[str] = []
    checked = 0
    base_leaves = dict(iter_leaves(base))
    for path, val in iter_leaves(fresh):
        key = "/".join(path)
        ref = base_leaves.get(path)
        lowered = key.lower()
        if "wall" in lowered:
            if ref is None or ref < min_seconds:
                continue
            checked += 1
            if val > ref * (1.0 + tol):
                failures.append(
                    f"{name}:{key}: wall time {val:.3f} s vs baseline "
                    f"{ref:.3f} s (+{(val / ref - 1.0) * 100:.0f}% > "
                    f"{tol * 100:.0f}% tolerance)"
                )
        elif "speedup" in lowered or "reduction" in lowered:
            checked += 1
            if val < 1.0 and (ref is None or ref >= 1.0):
                shown = "none" if ref is None else f"{ref:.2f}"
                failures.append(
                    f"{name}:{key}: factor dropped below 1.0 "
                    f"({val:.3f}, baseline {shown})"
                )
    return failures, checked


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate fresh BENCH_*.json files against baselines"
    )
    parser.add_argument("baseline_dir", type=Path)
    parser.add_argument("fresh_dir", type=Path)
    parser.add_argument(
        "--tol",
        type=float,
        default=0.25,
        help="allowed fractional wall-time regression (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.2,
        help="ignore wall entries with a baseline below this "
        "(default 0.2 s: noise-dominated)",
    )
    args = parser.parse_args(argv)

    fresh_files = sorted(args.fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"error: no BENCH_*.json under {args.fresh_dir}")
        return 2

    failures: list[str] = []
    for fresh_path in fresh_files:
        name = fresh_path.name
        base_path = args.baseline_dir / name
        if not base_path.exists():
            print(
                f"  new   {name}: no baseline - commit this run's "
                "JSON to start gating it"
            )
            continue
        base = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        reason = workload_mismatch(base, fresh)
        if reason is not None:
            print(f"  skip  {name}: workload mismatch ({reason})")
            continue
        file_failures, checked = check_file(
            name, base, fresh, args.tol, args.min_seconds
        )
        status = "FAIL" if file_failures else "ok"
        print(f"  {status:<5s} {name}: {checked} comparisons")
        failures.extend(file_failures)

    if failures:
        print(f"\n{len(failures)} benchmark regression(s):")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
