"""Ablation: the package's two LPTV engines and two PSS engines.

DESIGN.md calls out two implementation choices; this benchmark measures
both sides of each:

* **LPTV**: time-domain shooting (exact on the discretisation, O(N n^3))
  vs frequency-domain conversion matrices (harmonic truncation,
  O((nK)^3)).  Agreement and runtime are reported on the common-source
  stage, where both run comfortably.
* **PSS**: shooting-Newton vs brute-force settling on the RC testbench -
  shooting needs a handful of periods regardless of the circuit's time
  constant, settling pays for every time constant.
"""

import numpy as np

from repro.analysis import (HarmonicLptv, compile_circuit,
                            periodic_sensitivities, pss)
from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine

from conftest import WallClock, publish


def slow_rc(tau_periods: float = 40.0):
    """RC with a time constant many periods long: settling is slow,
    shooting is not."""
    f0 = 1e6
    r = 1e3
    c = tau_periods / (f0 * r)
    ckt = Circuit("slow_rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=f0, offset=0.6))
    ckt.add_resistor("R", "in", "out", r, sigma_rel=0.02)
    ckt.add_capacitor("C", "out", "0", c, sigma_rel=0.02)
    return ckt


def cs_stage(tech):
    ckt = Circuit("cs_stage")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VG", "g", "0",
                    wave=Sine(amplitude=0.25, freq=1e6, offset=0.7))
    ckt.add_resistor("RL", "vdd", "d", 2e3, sigma_rel=0.02)
    ckt.add_mosfet("M1", "d", "g", "0", "0", 2e-6, 0.26e-6, tech)
    ckt.add_capacitor("CL", "d", "0", 20e-15)
    return ckt


def test_ablation_lptv_engines(benchmark, tech, results_dir):
    compiled = compile_circuit(cs_stage(tech))
    p = pss(compiled, 1e-6, options=PssOptions(n_steps=512,
                                               settle_periods=4))
    injections = compiled.mismatch_injections(p.state, p.x)

    sens = benchmark.pedantic(lambda: periodic_sensitivities(p, injections),
                              rounds=1, iterations=1)

    with WallClock() as wc_h:
        engine = HarmonicLptv(p, n_harmonics=24)
        worst = 0.0
        for i, inj in enumerate(injections):
            resp = engine.solve_injection(inj, 1.0)
            w_h = engine.time_domain_waveform(resp, "d")
            w_s = sens.node_waveforms("d")[:, i]
            scale = max(np.max(np.abs(w_s)), 1e-30)
            worst = max(worst, float(np.max(np.abs(w_h - w_s)) / scale))

    text = "\n".join([
        "ABLATION: LPTV engine comparison (common-source stage, "
        f"{len(injections)} mismatch sources)",
        f"  shooting (time-domain)     : exact on discretisation",
        f"  harmonic (conversion, K=24): {wc_h.seconds:.2f} s, "
        f"max waveform deviation {worst:.2e} relative",
        "  -> the engines agree to truncation level; shooting scales to "
        "larger circuits (O(N n^3) vs O((nK)^3))",
    ])
    publish(results_dir, "ablation_lptv_engines", text, data={
        "workload": "lptv_engines_cs_stage",
        "n_injections": len(injections),
        "wall_seconds": {"harmonic_k24": wc_h.seconds},
        "max_relative_deviation": worst})
    assert worst < 1e-3


def test_ablation_pss_engines(benchmark, results_dir):
    compiled = compile_circuit(slow_rc(40.0))
    opts_shoot = PssOptions(n_steps=200, settle_periods=2)
    opts_settle = PssOptions(n_steps=200, settle_periods=2,
                             engine="settle", settle_max_periods=2000)

    p_shoot = benchmark.pedantic(
        lambda: pss(compiled, 1e-6, options=opts_shoot),
        rounds=1, iterations=1)
    with WallClock() as wc_shoot:
        pss(compiled, 1e-6, options=opts_shoot)
    with WallClock() as wc_settle:
        p_settle = pss(compiled, 1e-6, options=opts_settle)

    iout = compiled.node_index["out"]
    dev = float(np.max(np.abs(p_shoot.x[:, iout] - p_settle.x[:, iout])))
    text = "\n".join([
        "ABLATION: PSS engine comparison (RC with tau = 40 periods)",
        f"  shooting: {wc_shoot.seconds:.2f} s "
        f"(residual {p_shoot.residual:.1e})",
        f"  settle  : {wc_settle.seconds:.2f} s "
        f"(residual {p_settle.residual:.1e})",
        f"  orbit deviation between engines: {dev:.2e} V",
        "  -> shooting cost is independent of the circuit's settling "
        "time; brute-force settling pays per time constant (the paper's "
        "argument for PSS-based analysis, Fig. 5)",
    ])
    publish(results_dir, "ablation_pss_engines", text, data={
        "workload": "pss_engines_slow_rc",
        "wall_seconds": {"shooting": wc_shoot.seconds,
                         "settle": wc_settle.seconds},
        "speedup_shooting_vs_settle": wc_settle.seconds / wc_shoot.seconds,
        "orbit_deviation_volts": dev})
    assert dev < 1e-5
    assert wc_shoot.seconds < wc_settle.seconds