"""Matrix-free vs dense periodic engines: PSS + full-injection LPTV.

The paper's headline cost claim - "one orbit linearisation plus two
sweeps" - only scales if the periodic pipeline is sparse.  The dense
engines store the orbit linearisation as an ``(n_steps+1, n, n)``
Jacobian stack and form the monodromy matrix explicitly, so a 1k-node
circuit at a few hundred steps needs gigabytes before a single
sensitivity comes out; the matrix-free engines
(:mod:`repro.analysis.orbit` + :mod:`repro.linalg.krylov`) keep the
linearisation at O(n_steps * nnz) and never form the monodromy.

Workload: mismatch-decorated RC ladders (241 and 1001 nodes, sine
drive), shooting PSS followed by ``periodic_sensitivities`` over every
declared injection.  Per size this benchmark reports:

* matrix-free wall time and tracemalloc peak (PSS + LPTV end to end),
  plus the orbit-linearisation-only peak and its O(n_steps * nnz)
  budget check;
* the dense engine's wall time and peak, *measured* at 241 nodes and
  analytic at 1001 (the dense Jacobian stack alone is
  ``(n_steps+1) * n^2 * 8`` bytes - 2.6 GB at the 1001-node workload,
  past the 2 GB budget this benchmark enforces, so it is not
  materialised);
* the 241-node speedup and the 1001-node memory-reduction factors,
  both gated >= 1.0 by ``check_regression.py``.

Acceptance: matrix-free no slower than dense at 241 nodes; at 1001
nodes the dense requirement exceeds :data:`DENSE_MEMORY_BUDGET` while
matrix-free completes within it and the orbit linearisation stays
within its per-entry budget.  Published as ``BENCH_pss_lptv.json``.
"""

import time
import tracemalloc

import numpy as np
from conftest import publish

from repro.analysis import (OrbitLinearization, compile_circuit,
                            periodic_sensitivities, pss)
from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine, default_technology

#: Ladder sections per workload (nodes = sections + 1) and the
#: mismatch decoration stride (every ``stride``-th section gets R and C
#: sigma declarations -> 40 injections at both sizes).
SIZES = ((240, 12), (1000, 50))

#: Orbit samples per period - sized so the dense Jacobian stack at the
#: 1001-node workload (2.6 GB) exceeds the budget below.
N_STEPS = 320

#: The dense engines must not be attempted past this many bytes.
DENSE_MEMORY_BUDGET = 2 * 1024 ** 3

#: Largest unknown count the dense engine is actually run at.
DENSE_MEASURE_MAX_UNKNOWNS = 300

#: O(n_steps * nnz) budget for the orbit-linearisation peak (value
#: arrays, the derived B_k block, factorizations, sweep temporaries).
LIN_BUDGET_BYTES_PER_ENTRY = 64

PERIOD = 1.0 / 5e6


def mismatch_ladder(n_sections: int, stride: int) -> Circuit:
    """Sine-driven RC ladder with mismatch on every *stride*-th section
    and one MOSFET load at the far end.

    The device makes ``G(t)`` state-dependent, so the orbit
    linearisation must store and factor *every* step - the general
    (nonlinear-circuit) cost this benchmark is about; a purely linear
    ladder would take the time-invariant one-row shortcut and measure
    nothing.
    """
    ckt = Circuit(f"pss_ladder{n_sections}")
    ckt.add_vsource("VIN", "n0", "0",
                    wave=Sine(amplitude=0.5, freq=5e6, offset=0.5))
    for k in range(1, n_sections + 1):
        if k % stride == 0:
            ckt.add_resistor(f"R{k}", f"n{k - 1}", f"n{k}", 100.0,
                             sigma_rel=0.05)
            ckt.add_capacitor(f"C{k}", f"n{k}", "0", 1e-12,
                              sigma_rel=0.02)
        else:
            ckt.add_resistor(f"R{k}", f"n{k - 1}", f"n{k}", 100.0)
            ckt.add_capacitor(f"C{k}", f"n{k}", "0", 1e-12)
    ckt.add_mosfet("MLOAD", f"n{n_sections}", f"n{n_sections - 1}",
                   "0", "0", w=2e-6, l=0.26e-6,
                   tech=default_technology())
    return ckt


def _run_engine(compiled, matrix_free: bool):
    """One PSS + full-injection LPTV pass; returns (wall, peak, sens)."""
    opts = PssOptions(n_steps=N_STEPS, settle_periods=2,
                      matrix_free=matrix_free)
    t0 = time.perf_counter()
    tracemalloc.start()
    p = pss(compiled, PERIOD, options=opts)
    sens = periodic_sensitivities(p, matrix_free=matrix_free)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return time.perf_counter() - t0, peak, sens


def _lin_peak(compiled, sens):
    """Tracemalloc peak of (re)building the orbit linearisation alone
    - the O(n_steps * nnz) object the tentpole is about."""
    p = sens.pss
    p.clear_caches()
    tracemalloc.start()
    lin = OrbitLinearization(compiled, p.state, p.x, p.t, p.period,
                             p.method, matrix_free=True)
    lin.factors()
    lin.apply_monodromy(np.ones(compiled.n))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def measure_size(n_sections: int, stride: int) -> dict:
    compiled = compile_circuit(mismatch_ladder(n_sections, stride),
                               backend="sparse")
    nnz = compiled.csr_plan.nnz
    dense_stack_bytes = (N_STEPS + 1) * compiled.n ** 2 * 8

    mf_wall, mf_peak, sens = _run_engine(compiled, matrix_free=True)
    lin_peak = _lin_peak(compiled, sens)

    row = {
        "n_nodes": n_sections + 1,
        "n_unknowns": compiled.n,
        "nnz": nnz,
        "m_injections": sens.n_params,
        "wall_matrix_free_seconds": mf_wall,
        "peak_matrix_free_bytes": mf_peak,
        "lin_peak_bytes": lin_peak,
        "lin_budget_bytes": LIN_BUDGET_BYTES_PER_ENTRY
        * (N_STEPS + 1) * nnz,
        "dense_stack_bytes": dense_stack_bytes,
    }
    if compiled.n <= DENSE_MEASURE_MAX_UNKNOWNS:
        de_wall, de_peak, de_sens = _run_engine(compiled,
                                                matrix_free=False)
        scale = float(np.max(np.abs(de_sens.waveforms)))
        row.update({
            "wall_dense_seconds": de_wall,
            "peak_dense_bytes": de_peak,
            "dense_measured": True,
            "speedup_mf_vs_dense": de_wall / mf_wall,
            "parity_rel_err": float(np.max(np.abs(
                de_sens.waveforms - sens.waveforms))) / scale,
        })
    else:
        # the dense engine would exceed the memory budget before the
        # first sweep; report the analytic floor instead of thrashing
        row.update({
            "peak_dense_bytes": dense_stack_bytes,
            "dense_measured": False,
            "mem_reduction_vs_dense": dense_stack_bytes / mf_peak,
        })
    return row


def _fmt_mb(n_bytes):
    return f"{n_bytes / 1024 ** 2:.0f} MB"


def test_pss_lptv_matrix_free(results_dir):
    rows = {}
    lines = [
        "matrix-free vs dense periodic engines "
        f"(PSS shooting + LPTV, {N_STEPS} steps/period)",
        f"{'nodes':>6s} {'m':>4s} {'mf wall':>9s} {'mf peak':>9s} "
        f"{'lin peak':>9s} {'dense wall':>11s} {'dense peak':>11s}",
    ]
    for n_sections, stride in SIZES:
        row = measure_size(n_sections, stride)
        rows[str(row["n_nodes"])] = row
        star = "" if row["dense_measured"] else "*"
        de_wall = (f"{row['wall_dense_seconds']:.2f} s"
                   if row["dense_measured"] else "-")
        lines.append(
            f"{row['n_nodes']:>6d} {row['m_injections']:>4d} "
            f"{row['wall_matrix_free_seconds']:>7.2f} s "
            f"{_fmt_mb(row['peak_matrix_free_bytes']):>9s} "
            f"{_fmt_mb(row['lin_peak_bytes']):>9s} "
            f"{de_wall:>11s} "
            f"{_fmt_mb(row['peak_dense_bytes']) + star:>11s}")
    lines.append("(* analytic dense Jacobian-stack floor - "
                 "not materialised)")
    small, large = (rows[str(s + 1)] for s, _ in SIZES)
    lines.append(
        f"speedup at {small['n_nodes']} nodes: "
        f"{small['speedup_mf_vs_dense']:.2f}x  "
        f"(parity {small['parity_rel_err']:.2e}); "
        f"memory reduction at {large['n_nodes']} nodes: "
        f"{large['mem_reduction_vs_dense']:.1f}x")

    publish(results_dir, "pss_lptv", "\n".join(lines), data={
        "workload": "pss_shooting_plus_full_injection_lptv",
        "n_sizes": len(SIZES),
        "n_steps": N_STEPS,
        "sizes": rows,
        "speedup_mf_vs_dense_241": small["speedup_mf_vs_dense"],
        "mem_reduction_vs_dense_1k": large["mem_reduction_vs_dense"],
    })

    # acceptance: dense is past the 2 GB budget at the 1k-node workload
    # while matrix-free completes within it...
    assert large["dense_stack_bytes"] > DENSE_MEMORY_BUDGET
    assert large["peak_matrix_free_bytes"] < DENSE_MEMORY_BUDGET
    # ... no slower than dense where both run, to 1e-8 parity ...
    assert small["speedup_mf_vs_dense"] >= 1.0
    assert small["parity_rel_err"] < 1e-8
    # ... and the orbit linearisation stays O(n_steps * nnz)
    for row in rows.values():
        assert row["lin_peak_bytes"] < row["lin_budget_bytes"], row
