"""Paper Fig. 10: sensitivity of the comparator offset variation to each
transistor width.

One pseudo-noise analysis yields the per-device mismatch contributions;
the Pelgrom chain rule (Eqs. 14-16) converts them to
``d sigma_VOS^2 / dW`` rankings with no additional simulation.  The
paper's qualitative result - the input pair (M2-M3) has the highest
impact and should be widened first - is asserted.
"""

import pytest

from repro.analysis.pss import PssOptions
from repro.circuits import strongarm_offset_testbench
from repro.circuits.comparator import CORE_DEVICES
from repro.core import (DcLevel, transient_mismatch_analysis,
                        width_sensitivities, width_sensitivity_report)
from repro.core.design_sensitivity import sigma_after_resize

from conftest import publish


def test_fig10_width_sensitivities(benchmark, tech, results_dir):
    tb = strongarm_offset_testbench(tech)
    vos = DcLevel("vos", tb.vos_node)
    res = benchmark.pedantic(lambda: transient_mismatch_analysis(
        tb.circuit, [vos], period=tb.period,
        pss_options=PssOptions(n_steps=500,
                               settle_periods=tb.settle_cycles // 2)),
        rounds=1, iterations=1)

    table = res.contributions("vos")
    rows = width_sensitivities(table, tb.circuit)
    report = width_sensitivity_report(table, tb.circuit,
                                      labels=CORE_DEVICES)

    # what-if: doubling the input pair (the paper's design action)
    resized = sigma_after_resize(
        table, tb.circuit,
        {"M2": 2 * tb.circuit["M2"].w, "M3": 2 * tb.circuit["M3"].w})

    text = "\n".join([
        "FIG. 10(b): width impact on comparator offset variance",
        report,
        "",
        f"doubling the input pair W: sigma {table.sigma * 1e3:.2f} mV "
        f"-> {resized * 1e3:.2f} mV (predicted, no re-simulation)",
    ])
    publish(results_dir, "fig10_width_sensitivity", text, data={
        "workload": "fig10_width_sensitivity",
        "wall_seconds": {"proposed": res.runtime_seconds},
        "sigma_vos": table.sigma,
        "sigma_after_doubling_input_pair": resized,
        "normalized_impact": {r.device: r.normalized_impact
                              for r in rows}})

    # the input pair must rank highest (paper's conclusion)
    top_two = {rows[0].device, rows[1].device}
    assert top_two == {"M2", "M3"}
    # matched devices rank pairwise-equal
    by_dev = {r.device: r.normalized_impact for r in rows}
    assert by_dev["M2"] == pytest.approx(by_dev["M3"], rel=0.05)
    assert by_dev["M4"] == pytest.approx(by_dev["M5"], rel=0.05)
    assert resized < table.sigma
