"""Paper Table II: accuracy and speedup summary over the three
benchmarks - comparator offset, logic-path delay, oscillator frequency.

For each circuit the proposed pseudo-noise analysis (one PSS + one LPTV
solve) is compared against Monte-Carlo on sigma and wall clock.  Two
speedups are quoted:

* vs. our *batched* MC (all lanes in one stacked solve - a much
  stronger baseline than serial SPICE), and
* vs. the serial-equivalent ``n x t(single transient)``, the comparison
  behind the paper's 100-1000x claim.

``REPRO_BENCH_MC`` sets the MC sample count (default 200; the paper used
1000 and 10000 - runtimes scale linearly, and the quoted confidence
intervals +/-4.5 % / +/-1.4 % correspond to those counts).
"""

import pytest

from repro.analysis import compile_circuit
from repro.analysis.pss import PssOptions
from repro.circuits import (logic_path_testbench, ring_oscillator,
                            strongarm_offset_testbench)
from repro.core import (DcLevel, EdgeDelay, Frequency,
                        monte_carlo_transient,
                        transient_mismatch_analysis)
from repro.stats import sigma_relative_ci_halfwidth

from conftest import WallClock, mc_samples, publish


def _row(name, unit, scale, res, metric, mc, wc_mc, t_serial_one, n):
    sig_p = res.sigma(metric) * scale
    sig_mc = mc.sigma(metric) * scale
    ci = sigma_relative_ci_halfwidth(n)
    serial = n * t_serial_one
    return (f"{name:<22s} {res.mean(metric) * scale:>9.3f} "
            f"{sig_p:>9.3f} {sig_mc:>9.3f} {100 * ci:>5.1f}% "
            f"{res.runtime_seconds:>8.1f} {wc_mc:>9.1f} "
            f"{wc_mc / res.runtime_seconds:>7.0f}x "
            f"{serial / res.runtime_seconds:>7.0f}x   [{unit}]")


HEADER = (f"{'benchmark':<22s} {'nominal':>9s} {'sig_prop':>9s} "
          f"{'sig_MC':>9s} {'MC_CI':>6s} {'t_prop':>8s} {'t_MC':>9s} "
          f"{'vs_batch':>8s} {'vs_serial':>8s}")


def _payload(res, mc, metric, wc_mc, t_one, n):
    """Machine-readable summary of one Table II row."""
    return {
        "metric": metric, "n_mc_samples": n,
        "nominal": res.mean(metric),
        "sigma_proposed": res.sigma(metric),
        "sigma_mc": mc.sigma(metric),
        "wall_seconds": {"proposed": res.runtime_seconds,
                         "mc_batched": wc_mc,
                         "mc_serial_equivalent": n * t_one},
        "speedup_vs_batched_mc": wc_mc / res.runtime_seconds,
        "speedup_vs_serial_mc": n * t_one / res.runtime_seconds,
    }


def _single_sample_time(circuit, t_stop, dt, record):
    """Wall clock of ONE serial transient (the paper's MC unit cost)."""
    from repro.analysis.transient import TransientOptions, transient
    compiled = compile_circuit(circuit) if not hasattr(
        circuit, "assemble") else circuit
    with WallClock() as wc:
        transient(compiled, t_stop=t_stop, dt=dt,
                  options=TransientOptions(record=record))
    return wc.seconds


def test_table2_comparator_offset(benchmark, tech, results_dir):
    tb = strongarm_offset_testbench(tech)
    vos = DcLevel("vos", tb.vos_node)
    n_cyc = tb.settle_cycles

    res = benchmark.pedantic(lambda: transient_mismatch_analysis(
        tb.circuit, [vos], period=tb.period,
        pss_options=PssOptions(n_steps=500, settle_periods=n_cyc // 2)),
        rounds=1, iterations=1)

    n = mc_samples()
    with WallClock() as wc:
        mc = monte_carlo_transient(
            tb.circuit, [vos], n=n, t_stop=(n_cyc - 24) * tb.period,
            dt=tb.period / 400,
            window=((n_cyc - 25) * tb.period, (n_cyc - 24) * tb.period),
            seed=201)
    t_one = _single_sample_time(tb.circuit, (n_cyc - 24) * tb.period,
                                tb.period / 400, ["vos"])

    text = "\n".join([
        "TABLE II (row 1): clocked-comparator input offset [mV]",
        HEADER,
        _row("comparator VOS", "mV", 1e3, res, "vos", mc, wc.seconds,
             t_one, n),
        f"(paper: sigma 28.7 mV; speedup 100-1000x vs MC-1000)",
    ])
    publish(results_dir, "table2_comparator", text,
            data=_payload(res, mc, "vos", wc.seconds, t_one, n))
    assert res.sigma("vos") == pytest.approx(mc.sigma("vos"), rel=0.25)


def test_table2_logic_path_delay(benchmark, tech, results_dir):
    tb = logic_path_testbench(tech, late_input="X")
    d = EdgeDelay("delay_A", "X", "A", tb.vth)

    res = benchmark.pedantic(lambda: transient_mismatch_analysis(
        tb.circuit, [d], period=tb.period,
        pss_options=PssOptions(n_steps=800, settle_periods=2)),
        rounds=1, iterations=1)

    n = mc_samples()
    with WallClock() as wc:
        mc = monte_carlo_transient(
            tb.circuit, [d], n=n, t_stop=2 * tb.period,
            dt=tb.period / 800, window=(tb.period, 2 * tb.period),
            seed=202)
    t_one = _single_sample_time(tb.circuit, 2 * tb.period,
                                tb.period / 800, ["X", "A"])

    text = "\n".join([
        "TABLE II (row 2): logic-path delay [ps]",
        HEADER,
        _row("logic path delay", "ps", 1e12, res, "delay_A", mc,
             wc.seconds, t_one, n),
    ])
    publish(results_dir, "table2_logic_path", text,
            data=_payload(res, mc, "delay_A", wc.seconds, t_one, n))
    assert res.sigma("delay_A") == pytest.approx(mc.sigma("delay_A"),
                                                 rel=0.20)


def test_table2_oscillator_frequency(benchmark, tech, results_dir):
    osc = ring_oscillator(tech)
    f = Frequency("f_osc", "osc1")

    res = benchmark.pedantic(lambda: transient_mismatch_analysis(
        osc, [f], oscillator_anchor="osc1", t_settle=8e-9,
        dt_settle=2e-12, pss_options=PssOptions(n_steps=300)),
        rounds=1, iterations=1)

    n = mc_samples()
    with WallClock() as wc:
        mc = monte_carlo_transient(
            osc, [f], n=n, t_stop=10e-9, dt=2e-12,
            window=(2e-9, 10e-9), seed=203)
    t_one = _single_sample_time(osc, 10e-9, 2e-12, ["osc1"])

    text = "\n".join([
        "TABLE II (row 3): ring-oscillator frequency [MHz]",
        HEADER,
        _row("oscillator freq", "MHz", 1e-6, res, "f_osc", mc,
             wc.seconds, t_one, n),
        f"(relative sigma: proposed "
        f"{res.sigma('f_osc') / res.mean('f_osc'):.2%}, "
        f"MC {mc.sigma('f_osc') / mc.mean('f_osc'):.2%})",
    ])
    publish(results_dir, "table2_oscillator", text,
            data=_payload(res, mc, "f_osc", wc.seconds, t_one, n))
    assert res.sigma("f_osc") == pytest.approx(mc.sigma("f_osc"),
                                               rel=0.20)
