"""Warm-cache analysis service on the Table II comparator workload.

The layered service core exists so that *repeat* analysis work - design
iteration loops, parameter studies, request fan-out - stops paying the
compile and PSS cost on every call.  This benchmark measures the three
temperatures of the same comparator offset analysis through one
:class:`~repro.service.session.AnalysisSession`:

* **cold** - empty session: compile + PSS settle/shooting + LPTV
  sensitivity solve + measures;
* **warm_pss** - same circuit content, new request object, result memo
  bypassed (object-level API): the compile and the PSS orbit come from
  the session caches, the LPTV solve and measures re-run;
* **warm_memo** - the identical request again: served from the result
  memo without touching the engines.

Acceptance: all three produce bit-identical sigma (the caches key on
content, so caching must never change numbers), ``warm_memo`` is at
least 5x faster than cold, and ``warm_pss`` is no slower than cold.
Published as ``BENCH_service_cache.json``; the speedup factors are
gated >= 1.0 by ``check_regression.py`` and the 5x floor is asserted
here.
"""

import time

import numpy as np
from conftest import publish

from repro.analysis import compile_circuit
from repro.analysis.pss import PssOptions, pss
from repro.circuits import strongarm_offset_testbench
from repro.core.measures import DcLevel
from repro.service import AnalysisRequest, AnalysisSession

N_STEPS = 300


def test_service_cache_comparator(tech, results_dir):
    tb = strongarm_offset_testbench(tech)
    vos = DcLevel("vos", tb.vos_node)
    pss_opts = PssOptions(n_steps=N_STEPS,
                          settle_periods=tb.settle_cycles // 2)
    request = AnalysisRequest.transient_mismatch(
        tb.circuit, [vos], period=tb.period, pss_options=pss_opts)

    session = AnalysisSession()

    t0 = time.perf_counter()
    cold = session.run(request)
    t_cold = time.perf_counter() - t0
    assert not cold.from_cache

    # content-equal circuit, result memo bypassed: compile + PSS hit
    tb2 = strongarm_offset_testbench(tech)
    t0 = time.perf_counter()
    warm_pss = session.transient_mismatch(
        tb2.circuit, [vos], period=tb2.period, pss_options=pss_opts)
    t_warm_pss = time.perf_counter() - t0

    t0 = time.perf_counter()
    memo = session.run(AnalysisRequest.transient_mismatch(
        tb.circuit, [vos], period=tb.period, pss_options=pss_opts))
    t_memo = time.perf_counter() - t0
    assert memo.from_cache

    sigma = cold.sigma("vos")
    # caching must never change numbers
    assert warm_pss.sigma("vos") == sigma
    assert memo.sigma("vos") == sigma

    stats = session.stats()
    assert stats["compiled"]["hits"] >= 1
    assert stats["pss"]["hits"] >= 1
    assert stats["results"]["hits"] == 1

    speedup_memo = t_cold / t_memo
    speedup_pss = t_cold / t_warm_pss
    assert speedup_memo >= 5.0, (
        f"memoized repeat only {speedup_memo:.1f}x faster than cold")

    # the registry's `pss` kind: the orbit itself as a request.  Cold
    # must be bit-identical to calling pss() directly (the engine path
    # adds no numerics), and the memoized repeat clears the same 5x
    # floor as the mismatch request.
    pss_request = AnalysisRequest.pss(
        tb.circuit, [vos], period=tb.period, pss_options=pss_opts)
    pss_session = AnalysisSession()
    t0 = time.perf_counter()
    pss_cold = pss_session.run(pss_request)
    t_pss_cold = time.perf_counter() - t0
    assert not pss_cold.from_cache

    direct = pss(compile_circuit(tb.circuit), tb.period,
                 options=pss_opts)
    assert pss_cold.summary["f0"] == direct.f0
    assert np.array_equal(pss_cold.detail.x, direct.x)

    t0 = time.perf_counter()
    pss_memo = pss_session.run(pss_request)
    t_pss_memo = time.perf_counter() - t0
    assert pss_memo.from_cache
    speedup_pss_memo = t_pss_cold / t_pss_memo
    assert speedup_pss_memo >= 5.0, (
        f"memoized pss repeat only {speedup_pss_memo:.1f}x faster "
        "than cold")

    text = "\n".join([
        "analysis-service cache temperatures "
        "(comparator offset, Table II workload)",
        f"{'path':<12s} {'wall [s]':>10s} {'speedup':>9s}  engines run",
        f"{'cold':<12s} {t_cold:>10.2f} {1.0:>8.1f}x  "
        "compile + PSS + LPTV + measures",
        f"{'warm_pss':<12s} {t_warm_pss:>10.2f} {speedup_pss:>8.1f}x  "
        "LPTV + measures (compile/PSS cached)",
        f"{'warm_memo':<12s} {t_memo:>10.4f} {speedup_memo:>8.1f}x  "
        "none (result memo)",
        f"sigma(vos) = {sigma * 1e3:.3f} mV on all three paths "
        "(bit-identical)",
        f"{'pss_cold':<12s} {t_pss_cold:>10.2f} {1.0:>8.1f}x  "
        "pss request, bit-identical to direct pss()",
        f"{'pss_memo':<12s} {t_pss_memo:>10.4f} "
        f"{speedup_pss_memo:>8.1f}x  none (result memo)",
    ])
    publish(results_dir, "service_cache", text, data={
        "n_steps": N_STEPS,
        "wall_seconds": {"cold": t_cold, "warm_pss": t_warm_pss,
                         "warm_memo": t_memo, "pss_cold": t_pss_cold,
                         "pss_memo": t_pss_memo},
        "speedup_memo": speedup_memo,
        "speedup_pss": speedup_pss,
        "speedup_pss_memo": speedup_pss_memo,
        "sigma_vos": sigma,
        "cache_stats": {store: {"hits": s["hits"], "misses": s["misses"]}
                        for store, s in stats.items()},
    })
