"""Paper Fig. 9: comparator offset histogram (MC) vs the Gaussian PDF
predicted by the pseudo-noise analysis.

The proposed method delivers only (mean, sigma); in the linear regime
the offset distribution is Gaussian with exactly those moments, so the
PDF overlay on the Monte-Carlo histogram is the accuracy picture the
paper shows.  The rendered histogram (ASCII + CSV-ish table) is written
to ``benchmarks/results/fig9_comparator_hist.txt``.
"""

import numpy as np
import pytest

from repro.analysis.pss import PssOptions
from repro.circuits import strongarm_offset_testbench
from repro.core import (DcLevel, monte_carlo_transient,
                        transient_mismatch_analysis)
from repro.stats import ascii_histogram, describe, histogram_against_gaussian

from conftest import WallClock, mc_samples, publish


def test_fig9_offset_histogram(benchmark, tech, results_dir):
    tb = strongarm_offset_testbench(tech)
    vos = DcLevel("vos", tb.vos_node)
    res = benchmark.pedantic(lambda: transient_mismatch_analysis(
        tb.circuit, [vos], period=tb.period,
        pss_options=PssOptions(n_steps=500,
                               settle_periods=tb.settle_cycles // 2)),
        rounds=1, iterations=1)

    n = mc_samples(300)
    with WallClock() as wc:
        mc = monte_carlo_transient(
            tb.circuit, [vos], n=n, t_stop=36 * tb.period,
            dt=tb.period / 400,
            window=(35 * tb.period, 36 * tb.period), seed=301)
    samples = mc.samples["vos"]
    st = describe(samples[np.isfinite(samples)])

    mean_lin, sigma_lin = res.mean("vos"), res.sigma("vos")
    art = ascii_histogram(samples, mean_lin, sigma_lin, bins=21,
                          label="comparator VOS [V]")
    centres, density, pdf = histogram_against_gaussian(
        samples, mean_lin, sigma_lin, bins=21)
    table = "\n".join(
        f"{c * 1e3:8.2f} mV  mc_density={d:10.4f}  linear_pdf={p:10.4f}"
        for c, d, p in zip(centres, density, pdf))

    text = "\n".join([
        f"FIG. 9: comparator offset distribution "
        f"(MC-{n} vs pseudo-noise PDF)",
        f"  proposed: mean {mean_lin * 1e3:+.3f} mV, "
        f"sigma {sigma_lin * 1e3:.2f} mV   (paper: 28.7 mV)",
        f"  MC-{n}  : mean {st.mean * 1e3:+.3f} mV, "
        f"sigma {st.std * 1e3:.2f} mV "
        f"(CI [{st.std_ci_low * 1e3:.2f}, {st.std_ci_high * 1e3:.2f}])",
        f"  MC skewness {st.skewness:+.3f} "
        "(near zero: linear regime, Gaussian shape)",
        f"  runtimes: proposed {res.runtime_seconds:.1f} s, "
        f"batched MC {wc.seconds:.1f} s",
        "",
        art,
        "",
        "bin table (density units 1/V):",
        table,
    ])
    publish(results_dir, "fig9_comparator_hist", text, data={
        "workload": "fig9_comparator_hist", "n_mc_samples": n,
        "mean_proposed": mean_lin, "sigma_proposed": sigma_lin,
        "mean_mc": st.mean, "sigma_mc": st.std,
        "mc_skewness": st.skewness,
        "wall_seconds": {"proposed": res.runtime_seconds,
                         "mc_batched": wc.seconds}})

    assert sigma_lin == pytest.approx(st.std, rel=0.25)
    assert abs(st.skewness) < 0.5
