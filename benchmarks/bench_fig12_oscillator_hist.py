"""Paper Fig. 12: ring-oscillator frequency histogram at very large
mismatch (the paper uses 3-sigma(dI_DS) = 44 %, three times its
technology's variation).

At this mismatch level the circuit response is visibly nonlinear: the
Monte-Carlo histogram is skewed and the linear (pseudo-noise) model,
which is Gaussian by construction, misestimates sigma (the paper
reports a 15.9 % underestimate and a normalised skewness of -0.057).
The benchmark regenerates histogram + PDF overlay and records both
deviation metrics.
"""

import numpy as np

from repro.analysis import compile_circuit
from repro.analysis.pss import PssOptions
from repro.circuits import ring_oscillator
from repro.core import (Frequency, monte_carlo_transient,
                        transient_mismatch_analysis)
from repro.stats import ascii_histogram, normalized_skewness

from conftest import WallClock, mc_samples, publish

#: Scale chosen so 3-sigma(dI_DS) is ~3x the technology's nominal,
#: mirroring the paper's "three times the variation in this technology".
SCALE = 3.0


def test_fig12_large_mismatch_histogram(benchmark, tech, results_dir):
    osc = ring_oscillator(tech)
    compiled = compile_circuit(osc)
    f = Frequency("f_osc", "osc1")

    res = benchmark.pedantic(lambda: transient_mismatch_analysis(
        compiled, [f], oscillator_anchor="osc1", t_settle=8e-9,
        dt_settle=2e-12, pss_options=PssOptions(n_steps=300)),
        rounds=1, iterations=1)
    f0 = res.mean("f_osc")
    sigma_lin = SCALE * res.sigma("f_osc")
    id3 = 3.0 * SCALE * tech.sigma_id_rel(8.32e-6, 0.13e-6, 1.0)

    n = mc_samples(300)
    with WallClock() as wc:
        mc = monte_carlo_transient(
            compiled, [f], n=n, t_stop=10e-9, dt=2e-12,
            window=(2e-9, 10e-9), seed=501, sigma_scale=SCALE)
    samples = mc.samples["f_osc"]
    samples = samples[np.isfinite(samples)]
    sigma_mc = samples.std(ddof=1)
    skew = normalized_skewness(samples)
    underestimate = (sigma_mc - sigma_lin) / sigma_mc

    art = ascii_histogram(samples / 1e9, f0 / 1e9, sigma_lin / 1e9,
                          bins=21, label="oscillator frequency [GHz]")
    text = "\n".join([
        f"FIG. 12: ring-oscillator frequency at 3sig(dI_DS) = "
        f"{100 * id3:.0f}% (mismatch x{SCALE})",
        f"  linear model : mean {f0 / 1e9:.3f} GHz, "
        f"sigma {sigma_lin / 1e6:.1f} MHz (Gaussian by construction)",
        f"  MC-{n}       : mean {samples.mean() / 1e9:.3f} GHz, "
        f"sigma {sigma_mc / 1e6:.1f} MHz",
        f"  linear-model sigma deviation: {100 * underestimate:+.1f}% "
        "(paper: underestimates by 15.9%)",
        f"  MC normalised skewness: {skew:+.4f} (paper: -0.057)",
        f"  runtimes: proposed {res.runtime_seconds:.1f} s, "
        f"batched MC {wc.seconds:.1f} s",
        "",
        art,
    ])
    publish(results_dir, "fig12_oscillator_hist", text, data={
        "workload": "fig12_oscillator_hist", "n_mc_samples": n,
        "mismatch_scale": SCALE, "f0_hz": f0,
        "sigma_linear": sigma_lin, "sigma_mc": sigma_mc,
        "sigma_deviation": underestimate, "mc_skewness": skew,
        "wall_seconds": {"proposed": res.runtime_seconds,
                         "mc_batched": wc.seconds}})

    # shape: the distribution departs from Gaussian at this mismatch
    assert sigma_mc > 0
    assert abs(underestimate) > 0.01   # linear model visibly off
