"""Linear-solver backend shoot-out on the paper's workloads.

Compares the ``dense`` (seed behaviour: factor from scratch every
Newton iteration), ``cached`` (dense LU / batched inverse with
modified-Newton factorization reuse) and ``sparse`` (CSR + splu)
backends of :mod:`repro.linalg` on:

* the Table II clocked-comparator Monte-Carlo transient (the dominant
  cost of the paper's MC baseline) - the cached backend must be at
  least 1.5x faster than the seed dense path;
* a resistor-string DAC settling transient (linear: one factorization
  serves the whole run);
* the ring-oscillator Monte-Carlo transient (strongly nonlinear, the
  hardest case for factorization reuse);
* a 240-section synthetic RC ladder (>= 240 nodes), where dense LU's
  O(n^3) loses to SuperLU on the near-tridiagonal MNA structure.

``REPRO_BENCH_MC`` scales the Monte-Carlo sample counts (default here:
60 lanes - timings scale linearly and one chunk already saturates the
batched solver).
"""

import os

import numpy as np

from repro.analysis import compile_circuit
from repro.analysis.transient import TransientOptions, transient
from repro.circuit import Circuit, SmoothPulse
from repro.circuits import (rc_ladder, ring_oscillator,
                            strongarm_offset_testbench)
from repro.circuits.dac import dac_tap_names, resistor_string_dac
from repro.core import DcLevel, Frequency, monte_carlo_transient

from conftest import WallClock, mc_samples, publish

HEADER = (f"{'workload':<28s} {'backend':>8s} {'wall [s]':>9s} "
          f"{'vs dense':>9s} {'sigma check':>12s}")


def _row(workload, backend, wall, wall_dense, sigma):
    speedup = wall_dense / wall
    return (f"{workload:<28s} {backend:>8s} {wall:>9.2f} "
            f"{speedup:>8.2f}x {sigma:>12.4g}")


def _mc_per_backend(circuit, measures, backends, metric, **kw):
    """Run the same MC per backend; returns {backend: (wall, result)}."""
    out = {}
    for be in backends:
        with WallClock() as wc:
            mc = monte_carlo_transient(circuit, measures, backend=be, **kw)
        out[be] = (wc.seconds, mc)
    ref = out[backends[0]][1].sigma(metric)
    for _, mc in out.values():
        np.testing.assert_allclose(mc.sigma(metric), ref, rtol=1e-6)
    return out


def test_backends_comparator_mc(tech, results_dir):
    """Table II row 1 workload: batched comparator-offset MC."""
    tb = strongarm_offset_testbench(tech)
    vos = DcLevel("vos", tb.vos_node)
    n_cyc = tb.settle_cycles
    n = mc_samples(60)
    out = _mc_per_backend(
        tb.circuit, [vos], ["dense", "cached"], "vos", n=n,
        t_stop=(n_cyc - 24) * tb.period, dt=tb.period / 400,
        window=((n_cyc - 25) * tb.period, (n_cyc - 24) * tb.period),
        seed=201)
    wd = out["dense"][0]
    lines = [f"backend shoot-out: comparator VOS MC (n={n})", HEADER]
    lines += [_row("comparator MC transient", be, w, wd, mc.sigma("vos"))
              for be, (w, mc) in out.items()]
    publish(results_dir, "backends_comparator", "\n".join(lines), data={
        "workload": "comparator_mc_transient", "n_samples": n,
        "wall_seconds": {be: w for be, (w, _) in out.items()},
        "speedup_vs_dense": {be: wd / w for be, (w, _) in out.items()},
        "sigma_vos": out["cached"][1].sigma("vos")})
    # acceptance: factorization reuse >= 1.5x over the seed dense path
    assert wd / out["cached"][0] >= 1.5


def test_backends_comparator_mc_parallel(tech, results_dir):
    """Process-parallel MC sharding on the Table II comparator run.

    ``n_workers=4`` fans the (independent) chunks out over worker
    processes; the merged samples must be bit-for-bit identical to the
    serial run at the same chunk size, and the wall clock must show a
    measurable speedup over the serial cached run.
    """
    tb = strongarm_offset_testbench(tech)
    vos = DcLevel("vos", tb.vos_node)
    n_cyc = tb.settle_cycles
    n = mc_samples(60)
    n_workers = 4
    kw = dict(
        n=n, t_stop=(n_cyc - 24) * tb.period, dt=tb.period / 400,
        window=((n_cyc - 25) * tb.period, (n_cyc - 24) * tb.period),
        seed=201, chunk_size=-(-n // n_workers), backend="cached")
    with WallClock() as wc_serial:
        serial = monte_carlo_transient(tb.circuit, [vos], **kw)
    with WallClock() as wc_par:
        par = monte_carlo_transient(tb.circuit, [vos],
                                    n_workers=n_workers, **kw)
    np.testing.assert_array_equal(serial.samples["vos"],
                                  par.samples["vos"])
    assert serial.n_failed == par.n_failed
    speedup = wc_serial.seconds / wc_par.seconds
    try:
        n_cpus = len(os.sched_getaffinity(0))
    except AttributeError:   # non-Linux
        n_cpus = os.cpu_count() or 1
    lines = [f"parallel MC sharding: comparator VOS MC (n={n}, "
             f"{n_workers} workers, {n_cpus} cpus)", HEADER,
             _row("comparator MC serial", "cached", wc_serial.seconds,
                  wc_serial.seconds, serial.sigma("vos")),
             _row(f"comparator MC x{n_workers}", "cached", wc_par.seconds,
                  wc_serial.seconds, par.sigma("vos"))]
    publish(results_dir, "backends_comparator_parallel",
            "\n".join(lines), data={
                "workload": "comparator_mc_parallel", "n_samples": n,
                "n_workers": n_workers, "n_cpus": n_cpus,
                "wall_seconds": {"serial": wc_serial.seconds,
                                 "parallel": wc_par.seconds},
                "speedup_parallel": speedup,
                "identical_to_serial": True})
    # acceptance: identical samples (checked above, unconditionally)
    # plus measurable speedup - which only physics allows when the
    # machine actually has cores to fan out to
    if n_cpus >= 2:
        assert speedup > 1.2


def dac_settling_testbench(tech, c_load=1e-12):
    """Resistor-string DAC whose reference ramps up at t=0, with a
    capacitive load per tap - the paper's DNL circuit as a transient."""
    dac = resistor_string_dac(tech, n_bits=3)
    # replace the DC reference with a smooth turn-on
    ckt = Circuit("dac_settling")
    for el in dac:
        if el.name == "VREF":
            ckt.add_vsource("VREF", "vdd", "0", wave=SmoothPulse(
                v0=0.0, v1=tech.vdd, t_rise=5e-9, t_high=1e-3,
                t_fall=1e-9, t_period=2e-3))
        else:
            ckt.add(el)
    for tap in dac_tap_names(3):
        ckt.add_capacitor(f"CL_{tap}", tap, "0", c_load)
    return ckt


def test_backends_dac_settling_mc(tech, results_dir):
    """Linear DAC settling: the whole run reuses one factorization."""
    ckt = dac_settling_testbench(tech)
    taps = [DcLevel(f"v_{t}", t) for t in dac_tap_names(3)[:2]]
    n = mc_samples(60)
    out = _mc_per_backend(
        ckt, taps, ["dense", "cached"], taps[0].name, n=n,
        t_stop=200e-9, dt=0.25e-9, window=(150e-9, 200e-9), seed=7)
    wd = out["dense"][0]
    lines = [f"backend shoot-out: DAC settling MC (n={n})", HEADER]
    lines += [_row("DAC settling MC", be, w, wd, mc.sigma(taps[0].name))
              for be, (w, mc) in out.items()]
    publish(results_dir, "backends_dac", "\n".join(lines), data={
        "workload": "dac_settling_mc", "n_samples": n,
        "wall_seconds": {be: w for be, (w, _) in out.items()},
        "speedup_vs_dense": {be: wd / w for be, (w, _) in out.items()}})
    assert wd / out["cached"][0] >= 1.5


def test_backends_oscillator_mc(tech, results_dir):
    """Ring-oscillator frequency MC: the worst case for reuse (every
    device swings through its full operating range every period)."""
    osc = ring_oscillator(tech)
    f = Frequency("f", "osc1")
    n = mc_samples(40)
    out = _mc_per_backend(
        osc, [f], ["dense", "cached"], "f", n=n, t_stop=10e-9,
        dt=2e-12, window=(2e-9, 10e-9), seed=24)
    wd = out["dense"][0]
    lines = [f"backend shoot-out: oscillator frequency MC (n={n})",
             HEADER]
    lines += [_row("oscillator MC transient", be, w, wd, mc.sigma("f"))
              for be, (w, mc) in out.items()]
    publish(results_dir, "backends_oscillator", "\n".join(lines), data={
        "workload": "oscillator_mc_transient", "n_samples": n,
        "wall_seconds": {be: w for be, (w, _) in out.items()},
        "speedup_vs_dense": {be: wd / w for be, (w, _) in out.items()}})
    assert out["cached"][0] < wd


def test_backends_sparse_ladder(results_dir):
    """A 241-node synthetic netlist: the native-CSR sparse path (no
    densify, pattern-reusing splu) must clearly beat both the dense
    and the cached-dense backends."""
    n_sections = 240
    walls = {}
    last = {}
    # best-of-3 per backend: the sparse run is well under 0.1 s, so a
    # single sample is at the mercy of scheduler noise on shared CI
    # runners and the 2x acceptance gate below must not flake
    for be in ("dense", "sparse", "cached"):
        compiled = compile_circuit(rc_ladder(n_sections), backend=be)
        best = np.inf
        for _ in range(3):
            with WallClock() as wc:
                res = transient(compiled, t_stop=1e-6, dt=1e-9,
                                options=TransientOptions(
                                    record=[f"n{n_sections}"]))
            best = min(best, wc.seconds)
        walls[be] = best
        last[be] = res.signal(f"n{n_sections}")[-1]
    lines = [f"backend shoot-out: {n_sections}-section RC ladder "
             f"transient ({n_sections + 1} nodes)", HEADER]
    lines += [_row("RC ladder transient", be, w, walls["dense"], last[be])
              for be, w in walls.items()]
    publish(results_dir, "backends_ladder", "\n".join(lines), data={
        "workload": "rc_ladder_transient", "n_nodes": n_sections + 1,
        "wall_seconds": walls,
        "speedup_vs_dense": {be: walls["dense"] / w
                             for be, w in walls.items()},
        "speedup_sparse_vs_cached": walls["cached"] / walls["sparse"]})
    np.testing.assert_allclose(last["sparse"], last["dense"], atol=1e-9)
    np.testing.assert_allclose(last["cached"], last["dense"], atol=1e-9)
    assert walls["sparse"] < walls["dense"]
    # acceptance: native CSR >= 2x over the cached-dense numbers that
    # the factorization-reuse PR left on this workload
    assert walls["cached"] / walls["sparse"] >= 2.0
