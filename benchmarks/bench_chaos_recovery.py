"""Supervision overhead and chaos recovery on a Monte-Carlo workload.

The job supervision layer (:class:`~repro.service.jobs.RetryPolicy`)
must be free when nothing fails and correct when everything does.  This
benchmark measures both halves on a transient Monte-Carlo run:

* **clean vs supervised** - the identical serial run with and without a
  retry policy (no faults injected).  Supervision on the clean path is
  one extra frame per shard; the acceptance gate is <= 5% overhead
  (plus a small absolute allowance for timer noise on sub-second runs).
* **chaos** - the same workload through a pooled
  :class:`~repro.service.jobs.JobQueue` under an injected fault storm
  (a worker crash, a hang past the deadline, and a transient
  convergence failure - all first-attempt faults that heal on retry).
  The run must complete with samples *bit-identical* to the fault-free
  run: recovery re-executes generative shards, it never perturbs them.

Published as ``BENCH_chaos_recovery.json``:``overhead_ok``/
``recovered_bit_identical`` are the acceptance flags, the wall times
track the supervision cost trajectory across PRs.
"""

import time

import numpy as np
from conftest import WallClock, mc_samples, publish

from repro.circuit import Circuit, Sine
from repro.core import monte_carlo_transient
from repro.core.measures import DcLevel
from repro.service import FaultPlan, FaultRule, RetryPolicy

T_STOP = 3e-6
DT = 2e-8
WINDOW = (2e-6, 3e-6)
SEED = 7


def _rc_mc():
    ckt = Circuit("rc_chaos")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.03)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.01)
    return ckt


def _run(n, chunk, retry=None, n_workers=None):
    return monte_carlo_transient(
        _rc_mc(), [DcLevel("vout", "out")], n=n, t_stop=T_STOP, dt=DT,
        window=WINDOW, seed=SEED, chunk_size=chunk, retry=retry,
        n_workers=n_workers)


def test_chaos_recovery(results_dir):
    n = mc_samples()
    chunk = max(2, n // 8)
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, deadline=30.0)

    # -- clean-path overhead (best of 2, serial: no pool noise) --------
    t_clean = t_sup = float("inf")
    for _ in range(2):
        with WallClock() as w:
            clean = _run(n, chunk)
        t_clean = min(t_clean, w.seconds)
        with WallClock() as w:
            supervised = _run(n, chunk, retry=policy)
        t_sup = min(t_sup, w.seconds)
    assert np.array_equal(clean.samples["vout"],
                          supervised.samples["vout"])
    assert supervised.failures == []
    overhead = t_sup / t_clean - 1.0
    # 5% relative plus an absolute allowance for timer noise on short
    # CI-sized runs (REPRO_BENCH_MC=24 finishes in well under a second)
    overhead_ok = t_sup <= t_clean * 1.05 + 0.25
    assert overhead_ok, (
        f"supervision overhead {overhead * 100:.1f}% on the clean path "
        f"(clean {t_clean:.3f} s, supervised {t_sup:.3f} s)")

    # -- chaos: crash + hang + transient failure, all healing ----------
    # the crash breaks the whole pool, which fails every in-flight
    # shard and consumes *their* first attempt too - so the hang and
    # convergence rules fire for two attempts (they still heal within
    # the budget whether or not the breakage got there first)
    spans = sorted({s * chunk for s in range(-(-n // chunk))})
    storm = FaultPlan(rules=[
        FaultRule(site="run_shard", kind="crash", start=spans[0],
                  fail_attempts=1),
        FaultRule(site="run_shard", kind="hang",
                  start=spans[len(spans) // 2], fail_attempts=2,
                  hang_seconds=1.0),
        FaultRule(site="run_shard", kind="convergence", start=spans[-1],
                  fail_attempts=2),
    ])
    chaos_policy = RetryPolicy(max_attempts=4, base_delay=0.0,
                               deadline=0.5 + t_clean)
    with storm.active():
        with WallClock() as w:
            chaos = _run(n, chunk, retry=chaos_policy, n_workers=2)
    t_chaos = w.seconds
    recovered = bool(np.array_equal(clean.samples["vout"],
                                    chaos.samples["vout"]))
    assert recovered, "chaos run did not recover bit-identical samples"
    assert chaos.n_failed == clean.n_failed
    assert chaos.failures == []

    text = "\n".join([
        f"chaos recovery (transient MC, n = {n}, "
        f"{len(spans)} shards of {chunk})",
        f"{'path':<22s} {'wall [s]':>10s}  notes",
        f"{'clean serial':<22s} {t_clean:>10.3f}  no supervision",
        f"{'supervised serial':<22s} {t_sup:>10.3f}  "
        f"retry policy armed, no faults ({overhead * 100:+.1f}%)",
        f"{'chaos pooled (2 wkr)':<22s} {t_chaos:>10.3f}  "
        "crash + hang + convergence fault, all healed on retry",
        "samples bit-identical across all three runs",
    ])
    publish(results_dir, "chaos_recovery", text, data={
        "n_mc": n,
        "n_shards": len(spans),
        "wall_seconds": {"clean": t_clean, "supervised": t_sup,
                         "chaos": t_chaos},
        "overhead_fraction": overhead,
        "overhead_ok": overhead_ok,
        "recovered_bit_identical": recovered,
    })


def test_supervised_request_overhead_smoke(results_dir):
    """The request path accepts a retry option without re-running the
    engines twice (memo still keyed on content, retry included)."""
    from repro.service import AnalysisRequest, AnalysisSession
    policy = RetryPolicy(max_attempts=2, base_delay=0.0)
    request = AnalysisRequest.monte_carlo_transient(
        _rc_mc(), [DcLevel("vout", "out")], n=8, t_stop=T_STOP, dt=DT,
        window=WINDOW, seed=SEED, chunk_size=4, retry=policy)
    session = AnalysisSession()
    first = session.run(request)
    t0 = time.perf_counter()
    again = session.run(request)
    t_memo = time.perf_counter() - t0
    assert again.from_cache and t_memo < 1.0
    assert first.failures == [] and first.summary["n_failed"] == 0
