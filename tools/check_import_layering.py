#!/usr/bin/env python
"""Enforce the one-way layering of the analysis service architecture.

The dependency direction is: ``repro.service`` (application) ->
``repro.core`` -> ``repro.analysis`` / ``repro.circuit`` (domain).
Each named rule below pins one edge of that graph:

``domain-no-service``
    The domain layers (``repro.circuit``, ``repro.analysis``) and the
    declarative :mod:`repro.variation` module must never import the
    service package - not even lazily inside a function - or the
    layering silently collapses into a cycle.  (``repro.core`` is the
    one sanctioned exception: its free functions are thin wrappers
    that *lazily* import the default session.)

``session-no-internals``
    ``repro/service/session.py`` is pure cache policy: it must not
    import ``repro.core`` or ``repro.analysis`` directly.  All
    numerical imports belong to the engine registry
    (``repro/service/engines.py``), so adding an analysis kind never
    touches the session.

``net-no-internals``
    The network front-end (``repro/service/net.py``,
    ``repro/service/client.py`` and the fault-tolerant dispatch layer
    ``repro/service/resilience.py``) speaks only the service-layer
    surfaces (requests, shards, serialize, session, jobs) - never
    ``repro.core`` / ``repro.analysis`` / ``repro.circuit`` directly.
    Everything that crosses the wire must round-trip through the
    closed serialization registry, and a transport that reaches into
    the numerical layers would bypass it.

``examples-use-facade``
    Examples import :mod:`repro.api` - the closed, versioned public
    surface - and nothing deeper.  The examples double as the
    documentation of the supported API, so an example importing a deep
    module would document an unsupported entry point.

Run from the repository root::

    python tools/check_import_layering.py [--only RULE]

Exits non-zero listing every violation.  The unit test in
``tests/test_service.py`` runs the same check, so tier-1 catches
violations before CI does.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Rule:
    """One forbidden-import edge: *patterns* may not appear in *paths*.

    *paths* are repo-relative and may name directories (scanned
    recursively for ``*.py``) or single files.
    """

    name: str
    paths: tuple[str, ...]
    patterns: tuple[re.Pattern, ...]
    description: str

    def files(self, root: Path):
        for rel in self.paths:
            path = root / rel
            if path.is_file():
                yield path
            else:
                yield from sorted(path.rglob("*.py"))

    def violations(self, root: Path) -> list[str]:
        found = []
        for path in self.files(root):
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if any(p.match(line) for p in self.patterns):
                    found.append(
                        f"{path.relative_to(root)}:{lineno}: "
                        f"[{self.name}] {line.strip()}")
        return found


#: Any spelling of an import of the service package, top-level or
#: inside a function: absolute, or relative (..service / .service).
_SERVICE_PATTERNS = (
    re.compile(r"^\s*(from|import)\s+repro\.service\b"),
    re.compile(r"^\s*from\s+\.\.?service\b"),
    re.compile(r"^\s*from\s+\.\.?\s+import\s+.*\bservice\b"),
)

#: Imports of the numerical layers from within the session module.
_INTERNALS_PATTERNS = (
    re.compile(r"^\s*(from|import)\s+repro\.(core|analysis|circuit)\b"),
    re.compile(r"^\s*from\s+\.\.(core|analysis|circuit)\b"),
    re.compile(r"^\s*from\s+\.\.\s+import\s+.*\b(core|analysis)\b"),
)

#: Any repro import that is not the ``repro.api`` facade (plain
#: ``import repro`` / ``import repro.x`` included; ``import repro.api``
#: and ``from repro.api import ...`` excluded).
_NON_FACADE_PATTERNS = (
    re.compile(r"^\s*from\s+repro(?!\.api\b)(\.|\s)"),
    re.compile(r"^\s*import\s+repro(?!\.api\b)"),
)

RULES = (
    Rule(
        name="domain-no-service",
        paths=("src/repro/circuit", "src/repro/analysis",
               "src/repro/variation.py"),
        patterns=_SERVICE_PATTERNS,
        description="domain layer (and repro.variation) importing "
                    "repro.service",
    ),
    Rule(
        name="session-no-internals",
        paths=("src/repro/service/session.py",),
        patterns=_INTERNALS_PATTERNS,
        description="session.py importing analysis internals (these "
                    "belong to the engine registry)",
    ),
    Rule(
        name="net-no-internals",
        paths=("src/repro/service/net.py",
               "src/repro/service/client.py",
               "src/repro/service/resilience.py"),
        patterns=_INTERNALS_PATTERNS,
        description="network front-end importing numerical internals "
                    "(everything on the wire goes through the "
                    "service-layer surfaces)",
    ),
    Rule(
        name="examples-use-facade",
        paths=("examples",),
        patterns=_NON_FACADE_PATTERNS,
        description="example importing a deep module instead of the "
                    "repro.api facade",
    ),
)


def violations(root: Path, only: str | None = None) -> list[str]:
    found = []
    for rule in RULES:
        if only is not None and rule.name != only:
            continue
        found.extend(rule.violations(root))
    return found


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", choices=[r.name for r in RULES], default=None,
        help="check a single rule instead of all of them")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    found = violations(root, only=args.only)
    if found:
        print("import layering violations:")
        for v in found:
            print("  " + v)
        for rule in RULES:
            if any(f"[{rule.name}]" in v for v in found):
                print(f"rule {rule.name}: {rule.description}")
        return 1
    checked = [r.name for r in RULES if args.only in (None, r.name)]
    print(f"import layering OK ({', '.join(checked)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
