#!/usr/bin/env python
"""Enforce the one-way layering of the analysis service architecture.

The dependency direction is: ``repro.service`` (application) ->
``repro.core`` -> ``repro.analysis`` / ``repro.circuit`` (domain).
The domain layers must never import the service package - not even
lazily inside a function - or the layering silently collapses into a
cycle.  (``repro.core`` is the one sanctioned exception: its free
functions are thin wrappers that *lazily* import the default session.)

Run from the repository root::

    python tools/check_import_layering.py

Exits non-zero listing every violation.  The unit test in
``tests/test_service.py`` runs the same check, so tier-1 catches
violations before CI does.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Packages that must never mention repro.service.
FORBIDDEN_IN = ("src/repro/circuit", "src/repro/analysis")

#: Any spelling of an import of the service package, top-level or
#: inside a function: absolute, or relative (..service / .service).
_PATTERNS = (
    re.compile(r"^\s*(from|import)\s+repro\.service\b"),
    re.compile(r"^\s*from\s+\.\.?service\b"),
    re.compile(r"^\s*from\s+\.\.?\s+import\s+.*\bservice\b"),
)


def violations(root: Path) -> list[str]:
    found = []
    for pkg in FORBIDDEN_IN:
        for path in sorted((root / pkg).rglob("*.py")):
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if any(p.match(line) for p in _PATTERNS):
                    found.append(f"{path.relative_to(root)}:{lineno}: "
                                 f"{line.strip()}")
    return found


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    found = violations(root)
    if found:
        print("import layering violations (domain layer importing "
              "repro.service):")
        for v in found:
            print("  " + v)
        return 1
    print(f"import layering OK ({', '.join(FORBIDDEN_IN)} are "
          "service-free)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
