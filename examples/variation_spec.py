"""Declarative mismatch: VariationSpec instead of covariance matrices.

The paper's method (Eq. 6) propagates a parameter covariance through
periodic sensitivities.  Building that matrix by hand couples every
caller to the ordering of ``circuit.mismatch_decls()``; a
:class:`repro.VariationSpec` names the variations instead -
(component, parameter, distribution) triples plus correlation groups -
and lowers onto the very same matrix, so the declarative form is
bit-identical to the raw-array form everywhere (direct analysis,
Monte-Carlo, shards across a worker pool).

Shown here on the resistor-string DAC divider:

1. a spec covering the declared Pelgrom sigmas, plus a correlated
   pair (same-tub resistors tracking with rho = 0.8);
2. the non-Monte-Carlo sigma with and without correlation;
3. the same spec shipped through JSON into a Monte-Carlo request -
   same samples as the hand-built matrix;
4. a Fig.-11-style mismatch-scale sweep via ``spec.scaled``.
"""

import json

import numpy as np

from repro.api import (AnalysisRequest, Circuit, CorrelationGroup,
                       ParameterVariation, VariationSpec,
                       dc_mismatch_analysis, default_session,
                       from_jsonable, monte_carlo_dc, to_jsonable)


def ladder() -> Circuit:
    ckt = Circuit("ladder")
    ckt.add_vsource("VREF", "ref", "0", dc=1.2)
    ckt.add_resistor("R1", "ref", "mid", 1e3, sigma_rel=0.01)
    ckt.add_resistor("R2", "mid", "tap", 1e3, sigma_rel=0.01)
    ckt.add_resistor("R3", "tap", "0", 2e3, sigma_rel=0.01)
    return ckt


def spec_with_rho(rho: float) -> VariationSpec:
    group = CorrelationGroup("tub", rho=rho)
    return VariationSpec(
        variations=(
            ParameterVariation("R1", "r", group="tub"),
            ParameterVariation("R2", "r", group="tub"),
            ParameterVariation("R3", "r"),
        ),
        groups=(group,),
    )


def main() -> None:
    ckt = ladder()
    outputs = {"vtap": "tap"}

    # 1-2. correlation is one line in the spec, not a matrix edit
    print("sigma(vtap) vs same-tub correlation (non-MC, Eq. 6):")
    for rho in (0.0, 0.4, 0.8):
        res = dc_mismatch_analysis(ckt, outputs,
                                   variations=spec_with_rho(rho))
        print(f"  rho = {rho:.1f}   sigma = "
              f"{res.sigma('vtap') * 1e3:.4f} mV")

    # 3. the spec is JSON all the way down: ship it inside a request
    spec = spec_with_rho(0.8)
    wire = json.dumps(to_jsonable(spec))
    shipped = from_jsonable(json.loads(wire))
    assert shipped == spec and shipped.fingerprint() == spec.fingerprint()
    print(f"spec round-trips through JSON ({len(wire)} bytes, "
          f"fingerprint {spec.fingerprint()[:12]}...)")

    req = AnalysisRequest.monte_carlo_dc(ckt, outputs, n=256, seed=11,
                                         variations=shipped)
    mc = default_session().run(req)
    hand = monte_carlo_dc(ckt, outputs, 256, seed=11,
                          param_covariance=spec.covariance(ckt))
    same = np.isclose(mc.summary["metrics"]["vtap"]["sigma"],
                      hand.stats["vtap"].std)
    print(f"MC through the request path, spec vs hand-built "
          f"covariance: sigma identical = {bool(same)}")

    # 4. Fig.-11-style sweep: scale every declared sigma by one factor
    print("mismatch-scale sweep (spec.scaled, as in the paper's "
          "Fig. 11):")
    for factor in (1.0, 2.0, 4.0):
        res = dc_mismatch_analysis(ckt, outputs,
                                   variations=spec.scaled(factor))
        print(f"  x{factor:.0f}   sigma = "
              f"{res.sigma('vtap') * 1e3:.4f} mV")


if __name__ == "__main__":
    main()
