"""Gaussian-mixture projection for large mismatch (paper Section VIII,
Fig. 13).

When a mismatch parameter is too large for one global linear model, the
paper proposes splitting its distribution into narrow Gaussians and
projecting each through its own *local* linear model (one PSS + LPTV
solve per component).  Here: the ring-oscillator frequency under a
deliberately huge threshold mismatch on one transistor.

The mixture recovers the skewed, non-Gaussian frequency distribution
that the single linear model cannot represent - compare both against
Monte-Carlo over that one parameter.

Run:  python examples/nongaussian_mixture.py
"""

import numpy as np

from repro.api import (PssOptions, compile_circuit, default_technology,
                       normalized_skewness, periodic_sensitivities,
                       project_mixture, pss_oscillator,
                       ring_oscillator, split_gaussian)

KEY = ("MN1", "vt0")
SIGMA_P = 60e-3          # a wildly exaggerated 60 mV threshold sigma


def main() -> None:
    tech = default_technology()
    compiled = compile_circuit(ring_oscillator(tech))
    opts = PssOptions(n_steps=300)

    nominal = pss_oscillator(compiled, anchor="osc1", t_settle=8e-9,
                             dt_settle=2e-12, options=opts)

    def local_model(p_centre: float):
        """Frequency and its local sensitivity at vt0 + p_centre."""
        state = compiled.make_state(deltas={KEY: p_centre})
        p = pss_oscillator(compiled, anchor="osc1", t_settle=8e-9,
                           dt_settle=2e-12, options=opts, state=state,
                           period_guess=nominal.period)
        sens = periodic_sensitivities(
            p, compiled.mismatch_injections(p.state, p.x,
                                            decls=[d for d in
                                                   compiled.circuit
                                                   .mismatch_decls()
                                                   if d.key == KEY]))
        return p.f0, float(sens.df_dp()[0])

    f0, slope0 = local_model(0.0)
    print(f"nominal f0 = {f0 / 1e9:.3f} GHz; single linear model: "
          f"sigma = {abs(slope0) * SIGMA_P / 1e6:.1f} MHz, "
          "skew = 0 by construction")

    components = split_gaussian(SIGMA_P, n_components=7, span_sigmas=2.5)
    mixture = project_mixture(local_model, components)
    print(f"mixture model   : sigma = {mixture.sigma / 1e6:.1f} MHz, "
          f"skewness = {mixture.skewness:+.3f}")

    # Monte-Carlo over this single parameter (each sample: one PSS)
    rng = np.random.default_rng(0)
    draws = rng.normal(0.0, SIGMA_P, 60)
    freqs = []
    for d in draws:
        state = compiled.make_state(deltas={KEY: float(d)})
        p = pss_oscillator(compiled, anchor="osc1", t_settle=8e-9,
                           dt_settle=2e-12, options=opts, state=state,
                           period_guess=nominal.period)
        freqs.append(p.f0)
    freqs = np.asarray(freqs)
    print(f"Monte-Carlo (60): sigma = {freqs.std(ddof=1) / 1e6:.1f} MHz, "
          f"normalised skew = {normalized_skewness(freqs):+.4f}")

    print("\nThe mixture tracks the MC sigma and reproduces the sign of "
          "the skew; the single linear model cannot (paper Fig. 13).")


if __name__ == "__main__":
    main()
