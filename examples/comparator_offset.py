"""Comparator input-offset analysis - the paper's flagship example.

Reproduces the full Section IV-A / V-A / VII flow on the StrongARM
comparator:

* build the Fig. 6 feedback testbench (offset search as a periodic
  steady state),
* run the pseudo-noise mismatch analysis: sigma(VOS) plus the
  per-transistor contribution breakdown at no extra cost,
* rank the transistor-width sensitivities (Fig. 10(b)) - the yield-
  optimisation signal,
* optionally cross-check against a small Monte-Carlo run
  (pass --mc N on the command line).

Run:  python examples/comparator_offset.py [--mc 100]
"""

import argparse

from repro.api import (CORE_DEVICES, DcLevel, PssOptions,
                       default_technology, monte_carlo_transient,
                       strongarm_offset_testbench,
                       transient_mismatch_analysis,
                       width_sensitivity_report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mc", type=int, default=0,
                        help="also run an N-point Monte-Carlo check")
    args = parser.parse_args()

    tech = default_technology()
    tb = strongarm_offset_testbench(tech)
    vos = DcLevel("vos", tb.vos_node)

    result = transient_mismatch_analysis(
        tb.circuit, [vos], period=tb.period,
        pss_options=PssOptions(n_steps=500,
                               settle_periods=tb.settle_cycles // 2))

    sigma = result.sigma("vos")
    print(f"StrongARM comparator input offset: "
          f"sigma = {sigma * 1e3:.2f} mV "
          f"(analysis took {result.runtime_seconds:.1f} s)\n")
    print(result.contributions("vos").summary(top=10))

    print("\n--- width sensitivities (paper Fig. 10(b)) ---")
    print(width_sensitivity_report(result.contributions("vos"),
                                   tb.circuit, labels=CORE_DEVICES))

    if args.mc:
        print(f"\n--- Monte-Carlo check, n = {args.mc} ---")
        mc = monte_carlo_transient(
            tb.circuit, [vos], n=args.mc,
            t_stop=tb.settle_cycles * tb.period, dt=tb.period / 400,
            window=((tb.settle_cycles - 1) * tb.period,
                    tb.settle_cycles * tb.period), seed=1)
        print(mc.report())
        print(f"linear / MC sigma ratio: {sigma / mc.sigma('vos'):.3f}")


if __name__ == "__main__":
    main()
