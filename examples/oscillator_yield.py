"""Yield-driven sizing of a ring oscillator (paper Section VII workflow).

The mismatch sensitivities make yield optimisation tractable: one
analysis reports how much each transistor's width matters for the
frequency variance, the Eqs. 14-16 chain rule predicts sigma after a
resize without re-simulating, and a re-run confirms the prediction.

Scenario: shrink sigma(f)/f below a target by widening only the devices
that matter, at minimum added area.

Run:  python examples/oscillator_yield.py
"""

from repro.api import (Frequency, PssOptions, compile_circuit,
                       default_technology, ring_oscillator,
                       sigma_after_resize,
                       transient_mismatch_analysis,
                       width_sensitivities)

TARGET_REL_SIGMA = 0.018      # spec: sigma(f)/f below 1.8 %


def analyse(wn, wp):
    tech = default_technology()
    osc = ring_oscillator(tech, wn=wn, wp=wp)
    res = transient_mismatch_analysis(
        osc, [Frequency("f", "osc1")], oscillator_anchor="osc1",
        t_settle=8e-9, dt_settle=2e-12,
        pss_options=PssOptions(n_steps=300))
    return osc, res


def main() -> None:
    wn, wp = 1.0e-6, 2.0e-6
    osc, res = analyse(wn, wp)
    f0, sigma = res.mean("f"), res.sigma("f")
    table = res.contributions("f")
    print(f"initial design: f0 = {f0 / 1e9:.3f} GHz, "
          f"sigma/f = {sigma / f0:.2%} (target {TARGET_REL_SIGMA:.1%})")

    rows = width_sensitivities(table, osc)
    print("\nwidth impact ranking (top 4):")
    for r in rows[:4]:
        print(f"  {r.device}: share {r.normalized_impact:5.1%}, "
              f"W = {r.width * 1e6:.2f} um")

    # every device contributes here (symmetric ring), so widen all of
    # them; the chain rule finds the smallest factor meeting the spec
    devices = [r.device for r in rows]
    factor = 1.0
    for factor in (1.25, 1.5, 1.75, 2.0, 2.5, 3.0):
        predicted = sigma_after_resize(
            table, osc, {d: factor * osc[d].w for d in devices})
        if predicted / f0 <= TARGET_REL_SIGMA:
            break
    print(f"\nchain-rule prediction: widening all devices x{factor:.2f} "
          f"-> sigma/f = {predicted / f0:.2%} (no re-simulation)")

    osc2, res2 = analyse(wn * factor, wp * factor)
    f2, s2 = res2.mean("f"), res2.sigma("f")
    print(f"verification re-run : f0 = {f2 / 1e9:.3f} GHz, "
          f"sigma/f = {s2 / f2:.2%}")
    print("\nNote: the prediction covers the explicit Pelgrom 1/W term; "
          "the re-run also moves the bias point (f0 shifts), which is "
          "why the verified sigma differs slightly - the paper makes "
          "the same caveat for its Fig. 10 ranking.")


if __name__ == "__main__":
    main()
