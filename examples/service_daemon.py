"""The analysis service over the wire: daemon, client, shard fan-out.

The paper's pitch is that a mismatch-variation estimate costs one
deterministic solve - cheap enough to *serve*.  This example runs the
whole network stack in one process (three daemons on loopback ports),
but every byte crosses real HTTP, so the same code serves real hosts:

1. a daemon (:class:`AnalysisServer`; ``repro.api.serve`` is the
   blocking entry point) with per-tenant tokens and quotas;
2. a :class:`RemoteSession` running the paper's sensitivity analysis
   remotely - twice, to show the daemon-side result memo;
3. an asynchronous submit/poll job;
4. a Monte-Carlo reference fanned out over two *worker* daemons
   (:func:`scatter_monte_carlo_transient`) and merged bit-identically
   to the in-process run - the cross-host form of the paper's
   validation experiments;
5. the structured error surface: a bogus request comes back as a typed
   exception, not a stack trace in HTML;
6. fault tolerance: three worker daemons as *real OS processes* behind
   a :class:`WorkerPool` - one is drained for a rolling restart, one is
   SIGKILLed outright, and the scattered Monte-Carlo still completes
   with samples bit-identical to the in-process run (shards are
   generative, so failover re-execution changes nothing).
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.api import (AnalysisRequest, AnalysisServer, Circuit,
                       DcLevel, PssOptions, RemoteSession,
                       ScatterPolicy, Sine, TenantConfig, WorkerPool,
                       monte_carlo_transient,
                       scatter_monte_carlo_transient)


def rc_lowpass() -> Circuit:
    ckt = Circuit("rc_lowpass")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.05)
    ckt.add_resistor("R2", "out", "0", 2e3, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def main() -> None:
    measures = [DcLevel("vout", "out")]
    pss_opts = PssOptions(n_steps=128, settle_periods=3)

    tenants = [TenantConfig(name="alice", token="alice-token",
                            max_results=16, max_pending_jobs=4)]
    with AnalysisServer(tenants=tenants) as server:
        client = RemoteSession(server.url, token="alice-token")
        health = client.health()
        print(f"daemon at {server.url}: api {health['api_version']}, "
              f"wire versions {health['versions']}")
        print(f"kinds: {', '.join(health['kinds'])}")

        # -- the paper's analysis, served --------------------------------
        request = AnalysisRequest.transient_mismatch(
            rc_lowpass(), measures, period=1e-6, pss_options=pss_opts)
        first = client.run(request)
        again = client.run(request)
        print(f"sigma(vout) = {first.sigma('vout') * 1e3:.4f} mV "
              f"({first.runtime_seconds * 1e3:.0f} ms cold; repeat "
              f"from_cache={again.from_cache})")

        # -- asynchronous submit/poll ------------------------------------
        job = client.submit(AnalysisRequest.dc_mismatch(
            rc_lowpass(), {"vdc": "out"}))
        print(f"job {job.key[:12]}... -> "
              f"sigma {job.result(timeout=60).sigma('vdc') * 1e3:.4f} mV")

        # -- structured errors -------------------------------------------
        try:
            client.run(AnalysisRequest.from_dict(
                {"version": 1, "kind": "transient_mismatch",
                 "circuit": {}, "measures": [], "outputs": [],
                 "options": {}}))
        except Exception as exc:
            print(f"bad request -> {type(exc).__name__}: {exc}")

    # -- cross-host Monte-Carlo fan-out ----------------------------------
    n, t_stop, dt, seed, chunk = 16, 2e-6, 2e-8, 7, 4
    with AnalysisServer() as w1, AnalysisServer() as w2:
        print(f"scattering {n} samples over 2 worker daemons "
              f"({w1.url}, {w2.url})...")
        remote = scatter_monte_carlo_transient(
            [w1.url, w2.url], rc_lowpass(), measures, n, t_stop, dt,
            seed=seed, chunk_size=chunk)
    local = monte_carlo_transient(rc_lowpass(), measures, n, t_stop,
                                  dt, seed=seed, chunk_size=chunk)
    identical = all(np.array_equal(remote.samples[name],
                                   local.samples[name])
                    for name in local.samples)
    print(f"merged sigma(vout) = {remote.sigma('vout') * 1e3:.4f} mV; "
          f"samples bit-identical to the in-process run: {identical}")
    assert identical

    # -- surviving a worker kill -----------------------------------------
    # three daemons as real OS processes this time, so one can actually
    # die: the pool discovers the corpse through dispatch failures,
    # opens its breaker, and fails the shards over - while the drained
    # daemon refuses new work with a tagged 503 that reroutes without
    # breaker penalty
    print("spawning 3 worker daemon processes; draining one, "
          "SIGKILLing another...")
    daemons = [_spawn_daemon() for _ in range(3)]
    procs = [p for p, _ in daemons]
    urls = [u for _, u in daemons]
    try:
        policy = ScatterPolicy(base_delay=0.0, failure_threshold=1)
        with WorkerPool(urls, policy=policy) as pool:
            pool.probe()                        # everyone looks healthy
            RemoteSession(urls[2]).drain()      # rolling restart begins
            procs[0].send_signal(signal.SIGKILL)  # and one just dies
            procs[0].wait(timeout=10)
            survived = scatter_monte_carlo_transient(
                pool, rc_lowpass(), measures, n, t_stop, dt,
                seed=seed, chunk_size=chunk)
            report = {e["url"]: e for e in pool.stats()["endpoints"]}
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
    identical = np.array_equal(survived.samples["vout"],
                               local.samples["vout"])
    print(f"  killed  {urls[0]}: breaker {report[urls[0]]['breaker']}, "
          f"{report[urls[0]]['failures']} failures felt")
    print(f"  healthy {urls[1]}: "
          f"{report[urls[1]]['dispatched']} shards dispatched")
    print(f"  drained {urls[2]}: draining="
          f"{report[urls[2]]['draining']}, breaker "
          f"{report[urls[2]]['breaker']}")
    print(f"survived the storm: n_failed={survived.n_failed}, samples "
          f"bit-identical to the in-process run: {identical}")
    assert identical and survived.n_failed == 0


def _spawn_daemon():
    """One worker daemon as a killable OS process (``python -m
    repro.service`` announces its URL on stdout)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env)
    url = proc.stdout.readline().strip()
    if not url.startswith("http"):
        proc.kill()
        raise RuntimeError(f"daemon failed to announce: {url!r}")
    return proc, url


if __name__ == "__main__":
    main()
