"""The analysis service over the wire: daemon, client, shard fan-out.

The paper's pitch is that a mismatch-variation estimate costs one
deterministic solve - cheap enough to *serve*.  This example runs the
whole network stack in one process (three daemons on loopback ports),
but every byte crosses real HTTP, so the same code serves real hosts:

1. a daemon (:class:`AnalysisServer`; ``repro.api.serve`` is the
   blocking entry point) with per-tenant tokens and quotas;
2. a :class:`RemoteSession` running the paper's sensitivity analysis
   remotely - twice, to show the daemon-side result memo;
3. an asynchronous submit/poll job;
4. a Monte-Carlo reference fanned out over two *worker* daemons
   (:func:`scatter_monte_carlo_transient`) and merged bit-identically
   to the in-process run - the cross-host form of the paper's
   validation experiments;
5. the structured error surface: a bogus request comes back as a typed
   exception, not a stack trace in HTML.
"""

import numpy as np

from repro.api import (AnalysisRequest, AnalysisServer, Circuit,
                       DcLevel, PssOptions, RemoteSession, Sine,
                       TenantConfig, monte_carlo_transient,
                       scatter_monte_carlo_transient)


def rc_lowpass() -> Circuit:
    ckt = Circuit("rc_lowpass")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.05)
    ckt.add_resistor("R2", "out", "0", 2e3, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def main() -> None:
    measures = [DcLevel("vout", "out")]
    pss_opts = PssOptions(n_steps=128, settle_periods=3)

    tenants = [TenantConfig(name="alice", token="alice-token",
                            max_results=16, max_pending_jobs=4)]
    with AnalysisServer(tenants=tenants) as server:
        client = RemoteSession(server.url, token="alice-token")
        health = client.health()
        print(f"daemon at {server.url}: api {health['api_version']}, "
              f"wire versions {health['versions']}")
        print(f"kinds: {', '.join(health['kinds'])}")

        # -- the paper's analysis, served --------------------------------
        request = AnalysisRequest.transient_mismatch(
            rc_lowpass(), measures, period=1e-6, pss_options=pss_opts)
        first = client.run(request)
        again = client.run(request)
        print(f"sigma(vout) = {first.sigma('vout') * 1e3:.4f} mV "
              f"({first.runtime_seconds * 1e3:.0f} ms cold; repeat "
              f"from_cache={again.from_cache})")

        # -- asynchronous submit/poll ------------------------------------
        job = client.submit(AnalysisRequest.dc_mismatch(
            rc_lowpass(), {"vdc": "out"}))
        print(f"job {job.key[:12]}... -> "
              f"sigma {job.result(timeout=60).sigma('vdc') * 1e3:.4f} mV")

        # -- structured errors -------------------------------------------
        try:
            client.run(AnalysisRequest.from_dict(
                {"version": 1, "kind": "transient_mismatch",
                 "circuit": {}, "measures": [], "outputs": [],
                 "options": {}}))
        except Exception as exc:
            print(f"bad request -> {type(exc).__name__}: {exc}")

    # -- cross-host Monte-Carlo fan-out ----------------------------------
    n, t_stop, dt, seed, chunk = 16, 2e-6, 2e-8, 7, 4
    with AnalysisServer() as w1, AnalysisServer() as w2:
        print(f"scattering {n} samples over 2 worker daemons "
              f"({w1.url}, {w2.url})...")
        remote = scatter_monte_carlo_transient(
            [w1.url, w2.url], rc_lowpass(), measures, n, t_stop, dt,
            seed=seed, chunk_size=chunk)
    local = monte_carlo_transient(rc_lowpass(), measures, n, t_stop,
                                  dt, seed=seed, chunk_size=chunk)
    identical = all(np.array_equal(remote.samples[name],
                                   local.samples[name])
                    for name in local.samples)
    print(f"merged sigma(vout) = {remote.sigma('vout') * 1e3:.4f} mV; "
          f"samples bit-identical to the in-process run: {identical}")
    assert identical


if __name__ == "__main__":
    main()
