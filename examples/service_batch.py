"""Batch analysis through the service layer: sessions, requests, jobs.

A design-iteration loop rarely analyses one circuit once - it sweeps a
parameter, re-analyses after every edit, and compares variants.  The
service layer (see README "Architecture") makes that cheap:

* every variant is an :class:`AnalysisRequest` - a JSON-serializable
  value with a content-hash key;
* one :class:`AnalysisSession` executes them over shared bounded
  caches, so the sweep pays each compile/PSS once and repeat requests
  are served from the result memo;
* a :class:`JobQueue` fans independent requests out (inline here;
  ``n_workers=4`` would use a process pool unchanged);
* every analysis kind lives in the engine registry
  (:func:`repro.api.registered_kinds`), so the same request/session/
  queue machinery covers ``pss``, ``ac`` and ``sweep`` requests too;
* the session is transport-independent: run with ``--url
  http://host:port`` (a daemon started by ``examples/service_daemon.py``
  or :func:`repro.api.serve`) and the *same* sweep runs remotely
  through a :class:`RemoteSession` - same request keys, same memo
  behaviour, same result surface.

Workload: sigma of the output level of a sine-driven RC low-pass as the
load resistor is swept - small enough to run in seconds, shaped exactly
like a real parameter study.
"""

import argparse

from repro.api import (AnalysisRequest, AnalysisSession, Circuit,
                       DcLevel, JobQueue, PssOptions, RemoteSession,
                       Sine, registered_kinds)


def rc_lowpass(r_series: float) -> Circuit:
    ckt = Circuit(f"rc_lowpass_{r_series:.0f}")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R1", "in", "out", r_series, sigma_rel=0.05)
    ckt.add_resistor("R2", "out", "0", 2e3, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def main(url: str | None = None, token: str | None = None) -> None:
    measures = [DcLevel("vout", "out")]
    pss_opts = PssOptions(n_steps=128, settle_periods=3)
    sweep = [500.0, 1e3, 2e3, 4e3]

    requests = [AnalysisRequest.transient_mismatch(
        rc_lowpass(r), measures, period=1e-6, pss_options=pss_opts)
        for r in sweep]

    if url is not None:
        session = RemoteSession(url, token=token)
        print(f"R sweep through the daemon at {url}:")
    else:
        session = AnalysisSession()
        print("R sweep through one AnalysisSession:")
    with JobQueue(session=session) as queue:
        results = queue.map(requests)
        for r, res in zip(sweep, results):
            print(f"  R = {r:7.0f} ohm   sigma(vout) = "
                  f"{res.sigma('vout') * 1e3:7.4f} mV   "
                  f"({res.runtime_seconds * 1e3:.0f} ms)")

        # the design loop comes back to a variant: the request key
        # matches, so the result memo answers without any engine work
        again = queue.submit(requests[1]).result()
        print(f"  repeat R = {sweep[1]:.0f}: from_cache="
              f"{again.from_cache}, sigma identical: "
              f"{again.sigma('vout') == results[1].sigma('vout')}")

    stats = session.stats()
    print("session cache stats (hits/misses):")
    for store, s in stats.items():
        print(f"  {store:<9s} {s['hits']}/{s['misses']}")

    # requests serialize: ship them to another process or host and the
    # content key (and therefore the memo) is preserved
    wire = requests[0].to_json()
    assert AnalysisRequest.from_json(wire).key() == requests[0].key()
    print(f"request round-trips through JSON "
          f"({len(wire)} bytes, key {requests[0].key()[:12]}...)")

    # the whole study is itself a request: a `sweep` bundles labelled
    # sub-requests into one serializable value with one key, and its
    # sub-results land in the same memo (all cached after the run
    # above).  Any registered kind can ride in it - the registry is
    # open (see repro.service.engines.register_engine).
    print(f"registered kinds: {', '.join(registered_kinds())}")
    study = AnalysisRequest.sweep(
        requests, labels=[f"R={r:.0f}" for r in sweep])
    rerun = session.run(study)
    hits = sum(c["from_cache"] for c in rerun.summary["cases"])
    print(f"sweep request replays the study: {hits}/{len(sweep)} "
          f"cases from cache")

    # frequency-domain sanity check on the same circuit, same session
    ac = session.run(AnalysisRequest.ac(
        rc_lowpass(1e3), {"vout": "out"}, source="VS",
        freqs=[1e5, 1e6, 1e7]))
    mags = ac.summary["metrics"]["vout"]["magnitude"]
    print(f"ac request |H| @ 0.1/1/10 MHz: "
          + ", ".join(f"{m:.3f}" for m in mags))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="analysis daemon URL (default: in-process)")
    parser.add_argument("--token", default=None,
                        help="tenant token for the daemon")
    args = parser.parse_args()
    main(url=args.url, token=args.token)
