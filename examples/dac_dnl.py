"""DAC DNL via metric covariances - the paper's Eq. 13 example.

Adjacent taps of a resistor-string DAC share most of their resistors, so
their voltage variations are strongly correlated.  The DNL
``(V_{N+1} - V_N) - LSB`` therefore has a much smaller sigma than the
individual code voltages - but only if the covariance term of Eq. 13 is
kept.  One DC mismatch analysis delivers every tap's variance and every
pairwise covariance simultaneously; Monte-Carlo confirms.

Run:  python examples/dac_dnl.py
"""

import numpy as np

from repro.api import (compile_circuit, covariance, dac_tap_names,
                       dc_mismatch_analysis, default_technology,
                       difference_variance, monte_carlo_dc,
                       resistor_string_dac)


def main() -> None:
    tech = default_technology()
    n_bits = 3
    dac = resistor_string_dac(tech, n_bits=n_bits, sigma_rel=0.01)
    taps = dac_tap_names(n_bits)

    result = dc_mismatch_analysis(
        dac, {tap: tap for tap in taps})

    print("code voltages (one analysis, all taps + covariances):")
    for tap in taps:
        print(f"  {tap}: nominal {result.mean(tap):.4f} V, "
              f"sigma {result.sigma(tap) * 1e3:.3f} mV")

    print("\nDNL sigma per code (Eq. 13) vs naive independent estimate:")
    tables = {tap: result.contributions(tap) for tap in taps}
    mc = monte_carlo_dc(compile_circuit(dac),
                        {tap: tap for tap in taps}, n=4000, seed=8)
    for lo, hi in zip(taps[:-1], taps[1:]):
        s_eq13 = np.sqrt(difference_variance(tables[hi], tables[lo]))
        naive = np.hypot(tables[hi].sigma, tables[lo].sigma)
        rho = (covariance(tables[hi], tables[lo])
               / (tables[hi].sigma * tables[lo].sigma))
        mc_dnl = np.std(mc.samples[hi] - mc.samples[lo], ddof=1)
        print(f"  {hi}-{lo}: Eq.13 {s_eq13 * 1e3:6.3f} mV | naive "
              f"{naive * 1e3:6.3f} mV | MC {mc_dnl * 1e3:6.3f} mV "
              f"(rho = {rho:+.3f})")

    print("\nIgnoring the correlation would overestimate the DNL sigma "
          "several-fold - the paper's point about Eq. 12/13.")


if __name__ == "__main__":
    main()
