"""Logic-path delay correlation - the paper's Table I scenario.

Two NAND outputs A and B share part of their critical path depending on
which input arrives last (Fig. 7).  One pseudo-noise analysis yields
both delay sigmas *and* their correlation (Eq. 12); a short Monte-Carlo
run confirms the numbers.

The punchline (paper Section III-C): ignoring such correlations over- or
under-estimates path-skew statistics - here we also propagate to the
skew ``delay_A - delay_B`` with and without the covariance term.

Run:  python examples/logic_path_skew.py [--mc N]
"""

import argparse
import math

from repro.api import (EdgeDelay, PssOptions, default_technology,
                       difference_variance, logic_path_testbench,
                       monte_carlo_transient,
                       transient_mismatch_analysis)


def analyse(late_input: str, mc_samples: int) -> None:
    tech = default_technology()
    tb = logic_path_testbench(tech, late_input=late_input)
    measures = [EdgeDelay("delay_A", late_input, "A", tb.vth),
                EdgeDelay("delay_B", late_input, "B", tb.vth)]

    result = transient_mismatch_analysis(
        tb.circuit, measures, period=tb.period,
        pss_options=PssOptions(n_steps=800, settle_periods=2))

    rho = result.correlation("delay_A", "delay_B")
    print(f"--- input {late_input} arrives last ---")
    for name in ("delay_A", "delay_B"):
        print(f"  {name}: nominal {result.mean(name) * 1e12:7.1f} ps, "
              f"sigma {result.sigma(name) * 1e12:6.3f} ps")
    print(f"  correlation rho(A, B) = {rho:+.3f}   "
          f"(paper Table I: 0.885 shared / 0.01 disjoint)")

    ta = result.contributions("delay_A")
    tb_ = result.contributions("delay_B")
    skew_with = math.sqrt(difference_variance(ta, tb_))
    skew_without = math.hypot(ta.sigma, tb_.sigma)
    print(f"  skew sigma(A-B): {skew_with * 1e12:.3f} ps with "
          f"covariance, {skew_without * 1e12:.3f} ps if wrongly "
          f"assumed independent")

    if mc_samples:
        mc = monte_carlo_transient(
            tb.circuit, measures, n=mc_samples, t_stop=2 * tb.period,
            dt=tb.period / 800, window=(tb.period, 2 * tb.period),
            seed=2)
        print(f"  MC-{mc_samples}: sigma_A = "
              f"{mc.sigma('delay_A') * 1e12:.3f} ps, rho = "
              f"{mc.correlation('delay_A', 'delay_B'):+.3f} "
              f"({mc.runtime_seconds:.1f} s vs "
              f"{result.runtime_seconds:.1f} s)")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mc", type=int, default=0)
    args = parser.parse_args()
    for late in ("X", "Y"):
        analyse(late, args.mc)


if __name__ == "__main__":
    main()
