"""Quickstart: mismatch analysis in a dozen lines.

Two minimal end-to-end runs of the paper's method:

1. DC mismatch analysis (the ``dcmatch`` prior art) on a resistor
   divider - checked against the closed-form answer.
2. Transient mismatch analysis on the 5-stage ring oscillator: one PSS +
   one LPTV solve gives the frequency sigma and the full contribution
   breakdown that a 1000-point Monte-Carlo would need hours for.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import (Circuit, Frequency, default_technology,
                       dc_mismatch_analysis, ring_oscillator,
                       transient_mismatch_analysis)

# ----------------------------------------------------------------------
# 1. DC mismatch analysis of a divider (prior art the paper extends)
# ----------------------------------------------------------------------
divider = Circuit("divider")
divider.add_vsource("V1", "in", "0", dc=1.2)
divider.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.02)
divider.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)

dc_result = dc_mismatch_analysis(divider, {"vout": "out"})
print(dc_result.report())

analytic = np.hypot(-1.2 * 3e3 / 4e6 * 20.0, 1.2 * 1e3 / 4e6 * 60.0)
print(f"\nanalytic sigma: {analytic * 1e3:.3f} mV  "
      f"(engine: {dc_result.sigma('vout') * 1e3:.3f} mV)\n")

# ----------------------------------------------------------------------
# 2. Transient mismatch analysis of a ring oscillator (the paper's
#    method: PSS + LPTV pseudo-noise analysis)
# ----------------------------------------------------------------------
tech = default_technology()
osc = ring_oscillator(tech)

result = transient_mismatch_analysis(
    osc, [Frequency("f_osc", node="osc1")],
    oscillator_anchor="osc1", t_settle=8e-9, dt_settle=2e-12)

f0 = result.mean("f_osc")
sigma = result.sigma("f_osc")
print(f"ring oscillator: f0 = {f0 / 1e9:.3f} GHz, "
      f"sigma(f) = {sigma / 1e6:.2f} MHz ({sigma / f0:.2%})")
print(result.contributions("f_osc").summary(top=6))
print(f"\ntotal runtime: {result.runtime_seconds:.2f} s "
      f"(PSS {result.runtime_breakdown['pss']:.2f} s, "
      f"LPTV {result.runtime_breakdown['lptv']:.3f} s)")
