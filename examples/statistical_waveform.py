"""Statistical waveform (paper Fig. 8): the PSS orbit with +/- 3 sigma(t).

The time-domain sensitivity waveforms give the mismatch-induced standard
deviation of every node voltage *at every point of the cycle* - the
overlay the paper builds from time-domain noise analysis.  Here: the
common-source stage's output, rendered as ASCII art with the +/-3 sigma
band, plus the same data written to ``statistical_waveform.csv``.

Run:  python examples/statistical_waveform.py
"""

import csv

import numpy as np

from repro.api import (Circuit, PssOptions, Sine, compile_circuit,
                       default_technology, periodic_sensitivities,
                       pss, statistical_waveform)


def build_stage():
    tech = default_technology()
    ckt = Circuit("cs_stage")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VG", "g", "0",
                    wave=Sine(amplitude=0.25, freq=1e6, offset=0.7))
    ckt.add_resistor("RL", "vdd", "d", 2e3, sigma_rel=0.02)
    ckt.add_mosfet("M1", "d", "g", "0", "0", w=2e-6, l=0.26e-6, tech=tech)
    ckt.add_capacitor("CL", "d", "0", 20e-15)
    return ckt


def ascii_band(t, v, sigma, rows=60, width=64, n_sigma=3.0) -> str:
    lo = (v - n_sigma * sigma).min()
    hi = (v + n_sigma * sigma).max()
    span = hi - lo
    lines = [f"v(d) with +/-{n_sigma:.0f} sigma(t) band "
             f"({lo:.3f} V ... {hi:.3f} V)"]
    step = max(1, len(t) // rows)
    for k in range(0, len(t), step):
        col = lambda x: int((x - lo) / span * (width - 1))
        a, m, b = (col(v[k] - n_sigma * sigma[k]), col(v[k]),
                   col(v[k] + n_sigma * sigma[k]))
        row = [" "] * width
        for j in range(a, b + 1):
            row[j] = "-"
        row[a], row[b], row[m] = "<", ">", "#"
        lines.append(f"{t[k] * 1e9:7.2f} ns |{''.join(row)}|")
    return "\n".join(lines)


def main() -> None:
    compiled = compile_circuit(build_stage())
    p = pss(compiled, 1e-6, options=PssOptions(n_steps=256,
                                               settle_periods=4))
    sens = periodic_sensitivities(p)
    t, v, sigma = statistical_waveform(sens, "d")

    print(ascii_band(t - t[0], v, sigma))
    print(f"\nsigma(t): min {sigma.min() * 1e3:.3f} mV, "
          f"max {sigma.max() * 1e3:.3f} mV - the variation is "
          "largest where the stage gain is highest")

    with open("statistical_waveform.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t_s", "v_pss_V", "sigma_V"])
        writer.writerows(zip(t - t[0], v, sigma))
    print("wrote statistical_waveform.csv")


if __name__ == "__main__":
    main()
