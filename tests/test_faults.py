"""Fault-injection suite: supervision under deterministic chaos.

Every scenario drives the supervision layer of
:mod:`repro.service.jobs` through the seeded fault harness
(:mod:`repro.service.faults`) and checks the two invariants the layer
promises:

* shards *unaffected* by a fault merge bit-identical to the fault-free
  run (retries and pool respawns never perturb results - shards are
  generative, so re-execution is exact);
* shards that exhaust their retries degrade deterministically: their
  span is NaN-frozen, counted in ``n_failed``, and reported through a
  structured :class:`~repro.errors.FailureRecord`.

The DC Monte-Carlo workload keeps each shard in the milliseconds so the
timing-sensitive scenarios (deadlines, hangs) stay fast and robust.
"""

import os
import pickle
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.core import monte_carlo_dc
from repro.errors import (RETRYABLE_ERRORS, AnalysisError,
                          ConvergenceError, FailureRecord,
                          JobTimeoutError, SingularMatrixError,
                          WorkerCrashError)
from repro.service import (AnalysisRequest, AnalysisResult, FaultPlan,
                           FaultRule, JobQueue, RetryPolicy, ShardResult,
                           from_jsonable, mc_dc_shards,
                           merge_shard_results, run_supervised_shard,
                           to_jsonable)
from repro.service.faults import FAULTS_ENV, maybe_inject
from repro.service.jobs import run_with_retry


def _divider():
    ckt = Circuit("div")
    ckt.add_vsource("V1", "in", "0", dc=1.2)
    ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
    return ckt


def _specs(n=24, chunk=6, seed=3):
    return mc_dc_shards(_divider(), {"vout": "out"}, n, chunk, seed=seed)


@pytest.fixture(scope="module")
def clean():
    """The fault-free reference run every scenario compares against."""
    return monte_carlo_dc(_divider(), {"vout": "out"}, n=24, seed=3,
                          chunk_size=6)


FAST = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestFaultPlan:
    def test_round_trips_and_env_activation(self):
        plan = FaultPlan(rules=[FaultRule(site="run_shard", kind="hang",
                                          start=6, fail_attempts=2,
                                          probability=0.5,
                                          hang_seconds=0.1)], seed=7)
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert os.environ.get(FAULTS_ENV) is None
        with plan.active():
            assert FaultPlan.from_json(os.environ[FAULTS_ENV]) == plan
            # nesting restores the outer plan, not nothing
            inner = FaultPlan(seed=9)
            with inner.active():
                assert FaultPlan.from_json(
                    os.environ[FAULTS_ENV]) == inner
            assert FaultPlan.from_json(os.environ[FAULTS_ENV]) == plan
        assert os.environ.get(FAULTS_ENV) is None

    def test_rejects_unknown_sites_and_kinds(self):
        with pytest.raises(ValueError, match="site"):
            FaultRule(site="nowhere", kind="crash")
        with pytest.raises(ValueError, match="kind"):
            FaultRule(site="run_shard", kind="gamma_ray")

    def test_probabilistic_rules_are_deterministic(self):
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence",
                                          probability=0.5)], seed=11)
        rule = plan.rules[0]
        decisions = [plan.should_fire(rule, "run_shard", key, 0)
                     for key in range(32)]
        assert decisions == [plan.should_fire(rule, "run_shard", key, 0)
                             for key in range(32)]
        # a half-probability rule over 32 keys fires somewhere, but
        # not everywhere
        assert any(decisions) and not all(decisions)

    def test_probabilistic_rules_draw_independently(self):
        # two rules matching the same (site, key, attempt) must not
        # share one uniform draw: lockstep firing would skew
        # multi-rule chaos plans (the later rule could only ever fire
        # where the earlier one also would)
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="crash",
                                          probability=0.4),
                                FaultRule(site="run_shard", kind="hang",
                                          probability=0.4)], seed=5)
        first, second = plan.rules
        keys = range(64)
        da = [plan.should_fire(first, "run_shard", k, 0) for k in keys]
        db = [plan.should_fire(second, "run_shard", k, 0) for k in keys]
        assert da != db
        # in particular the second rule fires on keys the first spares
        assert any(b and not a for a, b in zip(da, db))

    def test_fail_attempts_heals_on_retry(self):
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence",
                                          fail_attempts=2)])
        with plan.active():
            for attempt in (0, 1):
                with pytest.raises(ConvergenceError):
                    maybe_inject("run_shard", key=0, attempt=attempt)
            maybe_inject("run_shard", key=0, attempt=2)  # healed

    def test_no_plan_is_a_no_op(self):
        maybe_inject("run_shard", key=0, attempt=0)


class TestRetryPolicy:
    def test_round_trip_and_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.05,
                             backoff=2.0, deadline=1.5, degrade=False)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert [policy.delay(k) for k in (1, 2, 3)] == [0.05, 0.1, 0.2]
        assert RetryPolicy(base_delay=0.0).delay(3) == 0.0
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_non_retryable_errors_fail_fast(self):
        calls = []

        def attempt(k):
            calls.append(k)
            raise AnalysisError("malformed on purpose")

        with pytest.raises(AnalysisError):
            run_with_retry(FAST, attempt, None)
        assert calls == [0]  # no retry for a deterministic error

    def test_retryable_exhaustion_raises_without_degrade(self):
        calls = []

        def attempt(k):
            calls.append(k)
            raise ConvergenceError("still diverging")

        with pytest.raises(ConvergenceError):
            run_with_retry(FAST, attempt, None)
        assert calls == [0, 1, 2]


class TestInlineSupervision:
    def test_transient_fault_heals_bit_identical(self, clean):
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence", start=6,
                                          fail_attempts=1)])
        with plan.active():
            sup = monte_carlo_dc(_divider(), {"vout": "out"}, n=24,
                                 seed=3, chunk_size=6, retry=FAST)
        assert np.array_equal(sup.samples["vout"],
                              clean.samples["vout"])
        assert sup.n_failed == 0 and sup.failures == []

    def test_exhaustion_degrades_span_nan_frozen(self, clean):
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence", start=6)])
        with plan.active():
            sup = monte_carlo_dc(
                _divider(), {"vout": "out"}, n=24, seed=3, chunk_size=6,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        vals = sup.samples["vout"]
        assert np.isnan(vals[6:12]).all()
        ok = np.r_[0:6, 12:24]
        assert np.array_equal(vals[ok], clean.samples["vout"][ok])
        assert sup.n_failed == 6
        assert sup.failed_metrics == {"vout": 6}
        (rec,) = sup.failures
        assert rec.error == "ConvergenceError"
        assert (rec.site, rec.attempts) == ("shard", 2)
        assert (rec.start, rec.stop, rec.n_lanes) == (6, 12, 6)
        # statistics come from the surviving finite lanes
        assert np.isfinite(sup.stats["vout"].std)

    def test_run_supervised_shard_degrades(self):
        spec = _specs()[0]
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence")])
        with plan.active():
            result = run_supervised_shard(
                spec, RetryPolicy(max_attempts=2, base_delay=0.0))
        assert np.isnan(result.samples["vout"]).all()
        assert result.n_failed == spec.n_lanes
        assert result.failures[0].attempts == 2

    def test_crash_fault_in_parent_is_supervised_not_fatal(self):
        # in the parent process the injected "crash" must raise, not
        # _exit the interpreter
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="crash")])
        with plan.active():
            with pytest.raises(WorkerCrashError):
                maybe_inject("run_shard", key=0, attempt=0)


class TestPooledSupervision:
    def test_worker_crash_respawns_pool_and_recovers(self, clean):
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="crash", start=12,
                                          fail_attempts=1)])
        with plan.active():
            with JobQueue(n_workers=2, retry=FAST) as queue:
                jobs = [queue.submit_shard(s) for s in _specs()]
                results = [j.result(timeout=60) for j in jobs]
                assert queue.pool_epoch >= 1  # exactly-once respawn ran
        merged = merge_shard_results(results)
        assert np.array_equal(merged.samples["vout"],
                              clean.samples["vout"])
        assert merged.n_failed == 0 and merged.failures == []

    def test_hung_shard_times_out_retries_bit_identical(self, clean):
        plan = FaultPlan(rules=[FaultRule(site="run_shard", kind="hang",
                                          start=6, fail_attempts=1,
                                          hang_seconds=1.5)])
        policy = RetryPolicy(max_attempts=3, base_delay=0.0,
                             deadline=0.75)
        with plan.active():
            with JobQueue(n_workers=2, retry=policy) as queue:
                jobs = [queue.submit_shard(s) for s in _specs()]
                results = [j.result(timeout=60) for j in jobs]
                assert jobs[1].failed_attempts == 1
        merged = merge_shard_results(results)
        assert np.array_equal(merged.samples["vout"],
                              clean.samples["vout"])

    def test_deadline_exhaustion_degrades_with_timeout_record(self,
                                                              clean):
        plan = FaultPlan(rules=[FaultRule(site="run_shard", kind="hang",
                                          start=6, hang_seconds=1.2)])
        policy = RetryPolicy(max_attempts=2, base_delay=0.0,
                             deadline=0.4)
        with plan.active():
            with JobQueue(n_workers=2, retry=policy) as queue:
                jobs = [queue.submit_shard(s) for s in _specs()]
                results = [j.result(timeout=60) for j in jobs]
        merged = merge_shard_results(results)
        assert np.isnan(merged.samples["vout"][6:12]).all()
        ok = np.r_[0:6, 12:24]
        assert np.array_equal(merged.samples["vout"][ok],
                              clean.samples["vout"][ok])
        assert merged.n_failed == 6
        (rec,) = merged.failures
        assert rec.error == "JobTimeoutError"
        assert rec.attempts == 2

    def test_queued_past_deadline_degrades_not_cancelled(self):
        # backlog deeper than the pool (6 shards on 2 workers): the
        # deadline expires on attempts still PENDING in the queue, so
        # inner.cancel() *succeeds*.  That cancellation must count as
        # the timeout (retry, then degrade) - not surface as a
        # terminal CancelledError after a single attempt.
        specs = _specs(n=36, chunk=6)
        plan = FaultPlan(rules=[FaultRule(site="run_shard", kind="hang",
                                          hang_seconds=1.2)])
        policy = RetryPolicy(max_attempts=2, base_delay=0.0,
                             deadline=0.4)
        with plan.active():
            with JobQueue(n_workers=2, retry=policy) as queue:
                jobs = [queue.submit_shard(s) for s in specs]
                results = [j.result(timeout=60) for j in jobs]
        for job, result in zip(jobs, results):
            assert job.failed_attempts == 2  # full budget, every shard
            (rec,) = result.failures
            assert rec.error == "JobTimeoutError"
            assert rec.attempts == 2
        merged = merge_shard_results(results)
        assert merged.n_failed == 36
        assert np.isnan(merged.samples["vout"]).all()

    def test_submit_racing_pool_breakage_is_supervised(self):
        # pool.submit raises BrokenProcessPool synchronously while a
        # crashed pool awaits respawn; a dispatch hitting that window
        # must go through the crash machinery (respawn + retry), not
        # fail the job with the raw exception
        queue = JobQueue(n_workers=2, retry=FAST)
        real = queue._submit_raw
        calls = []

        def racing(fn, payload, attempt):
            calls.append(attempt)
            if len(calls) == 1:
                raise BrokenProcessPool(
                    "pool broke under a racing submit")
            return real(fn, payload, attempt)

        queue._submit_raw = racing
        try:
            job = queue.submit_shard(_specs()[0])
            result = job.result(timeout=60)
        finally:
            queue.shutdown()
        assert calls == [0, 1]  # first attempt broken, retry ran
        assert job.failed_attempts == 1
        assert queue.pool_epoch == 1  # the breakage forced a respawn
        assert result.n_failed == 0
        assert not np.isnan(result.samples["vout"]).any()

    def test_pooled_monte_carlo_with_crash_end_to_end(self, clean):
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="crash", start=0,
                                          fail_attempts=1)])
        with plan.active():
            sup = monte_carlo_dc(_divider(), {"vout": "out"}, n=24,
                                 seed=3, chunk_size=6, n_workers=2,
                                 retry=FAST)
        assert np.array_equal(sup.samples["vout"],
                              clean.samples["vout"])
        assert sup.failures == []

    def test_shutdown_cancels_queued_futures(self):
        # a failing map() unwinds through __exit__; cancel_futures=True
        # is what keeps the teardown from blocking on queued work
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence")])
        specs = _specs()
        with plan.active():
            with pytest.raises(ConvergenceError):
                with JobQueue(n_workers=2) as queue:  # unsupervised
                    jobs = [queue.submit_shard(s) for s in specs]
                    for job in jobs:
                        job.result(timeout=60)


class TestRequestPath:
    def test_session_request_reports_failures(self):
        request = AnalysisRequest.monte_carlo_dc(
            _divider(), {"vout": "out"}, n=24, seed=3, chunk_size=6,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0))
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence",
                                          start=18)])
        with plan.active():
            with JobQueue(n_workers=2) as queue:
                result = queue.submit(request).result(timeout=60)
        assert result.summary["n_failed"] == 6
        (rec,) = result.failures
        assert isinstance(rec, FailureRecord)
        assert (rec.error, rec.start, rec.stop) == ("ConvergenceError",
                                                    18, 24)
        # the failures survived the worker's serialize round-trip
        # already; one more explicit round-trip for good measure
        again = AnalysisResult.from_dict(result.to_dict())
        assert again.failures == result.failures

    def test_retry_option_round_trips_through_request(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        request = AnalysisRequest.monte_carlo_dc(
            _divider(), {"vout": "out"}, n=8, seed=3, retry=policy)
        decoded = AnalysisRequest.from_json(request.to_json())
        assert decoded.options["retry"] == policy.to_dict()
        # and a dict is accepted directly
        again = AnalysisRequest.monte_carlo_dc(
            _divider(), {"vout": "out"}, n=8, seed=3,
            retry=policy.to_dict())
        assert again.key() == request.key()


class TestFailureSerialization:
    def test_failure_record_round_trips(self):
        rec = FailureRecord.from_exception(
            ConvergenceError("diverged", iterations=40, residual=1e-3,
                             theta_fingerprint="abc123"),
            site="shard", attempts=3, start=10, stop=20)
        assert rec.iterations == 40 and rec.residual == 1e-3
        assert rec.n_lanes == 10
        assert from_jsonable(to_jsonable(rec)) == rec

    def test_shard_result_round_trips_failures(self):
        rec = FailureRecord(error="JobTimeoutError", message="slow",
                            site="shard", attempts=2, start=0, stop=4)
        result = ShardResult(
            kind="mc_dc", start=0, stop=4,
            samples={"vout": np.full(4, np.nan)}, n_failed=4,
            workload_key="k", failures=[rec])
        back = ShardResult.from_json(result.to_json())
        assert back.failures == [rec]
        assert np.isnan(back.samples["vout"]).all()

    def test_solver_errors_keep_context_through_pickle(self):
        for cls in (ConvergenceError, SingularMatrixError):
            exc = cls("bad", iterations=7, residual=2.5e-4,
                      theta_fingerprint="deadbeefdeadbeef")
            back = pickle.loads(pickle.dumps(exc))
            assert type(back) is cls
            assert back.context() == exc.context()
            rendered = str(back)
            assert "iterations=7" in rendered
            assert "residual=2.500e-04" in rendered
            assert "theta=deadbeefdead" in rendered
        assert str(ConvergenceError("plain")) == "plain"

    def test_retryable_taxonomy(self):
        assert ConvergenceError in RETRYABLE_ERRORS
        assert JobTimeoutError in RETRYABLE_ERRORS
        assert WorkerCrashError in RETRYABLE_ERRORS
        assert AnalysisError not in RETRYABLE_ERRORS


class TestMergeDiagnostics:
    def _result(self, start, stop):
        return ShardResult("mc_dc", start, stop,
                           {"m": np.zeros(stop - start)},
                           workload_key="k")

    def test_duplicate_span_named(self):
        with pytest.raises(AnalysisError,
                           match=r"duplicate shard span \[0, 4\)"):
            merge_shard_results([self._result(0, 4),
                                 self._result(0, 4)])

    def test_overlap_named(self):
        with pytest.raises(
                AnalysisError,
                match=r"\[0, 4\) overlaps \[2, 6\) on \[2, 4\)"):
            merge_shard_results([self._result(0, 4),
                                 self._result(2, 6)])

    def test_gap_named(self):
        with pytest.raises(AnalysisError,
                           match=r"span \[4, 6\) is missing"):
            merge_shard_results([self._result(0, 4),
                                 self._result(6, 8)])
