"""Tests for the analysis orchestrators: dc_mismatch_analysis (the prior
art) and transient_mismatch_analysis (the paper's method), plus the
measure objects and result plumbing."""

import numpy as np
import pytest

from repro.analysis.pss import PssOptions
from repro.circuit import Circuit
from repro.core import (DcLevel, EdgeDelay, Frequency, dc_mismatch_analysis,
                        monte_carlo_dc, transient_mismatch_analysis)
from repro.core.interpret import statistical_waveform
from repro.errors import AnalysisError


class TestDcMismatchAnalysis:
    def test_divider_sigma_analytic(self, rc_divider):
        res = dc_mismatch_analysis(rc_divider, {"vout": "out"})
        r1, r2, v = 1e3, 3e3, 1.2
        dvdr1 = -v * r2 / (r1 + r2) ** 2
        dvdr2 = v * r1 / (r1 + r2) ** 2
        expected = np.hypot(dvdr1 * 0.02 * r1, dvdr2 * 0.02 * r2)
        assert res.sigma("vout") == pytest.approx(expected, rel=1e-6)
        assert res.mean("vout") == pytest.approx(0.9, abs=1e-6)

    def test_matches_monte_carlo(self, rc_divider):
        res = dc_mismatch_analysis(rc_divider, {"vout": "out"})
        mc = monte_carlo_dc(rc_divider, {"vout": "out"}, n=4000, seed=3)
        assert res.sigma("vout") == pytest.approx(mc.sigma("vout"),
                                                  rel=0.06)

    def test_ota_offset_vs_mc(self, tech):
        """The classic dcmatch demo (the prior art the paper extends):
        input-referred offset of a unity-gain 5T OTA."""
        from repro.circuits import five_transistor_ota
        ota = five_transistor_ota(tech)
        res = dc_mismatch_analysis(ota, {"vos": ("out", "inp")})
        mc = monte_carlo_dc(ota, {"vos": ("out", "inp")}, n=1500, seed=5)
        assert 1e-3 < res.sigma("vos") < 30e-3
        assert res.sigma("vos") == pytest.approx(mc.sigma("vos"),
                                                 rel=0.12)

    def test_input_pair_dominates_ota(self, tech):
        from repro.circuits import five_transistor_ota
        ota = five_transistor_ota(tech)
        res = dc_mismatch_analysis(ota, {"vos": ("out", "inp")})
        t = res.contributions("vos")
        pair_share = t.fraction_of("MI1") + t.fraction_of("MI2")
        assert pair_share > 0.3

    def test_no_mismatch_params_raises(self):
        ckt = Circuit()
        ckt.add_vsource("V", "a", "0", dc=1.0)
        ckt.add_resistor("R", "a", "0", 1e3)   # sigma_rel = 0
        with pytest.raises(AnalysisError):
            dc_mismatch_analysis(ckt, {"v": "a"})

    def test_unknown_metric_raises(self, rc_divider):
        res = dc_mismatch_analysis(rc_divider, {"vout": "out"})
        with pytest.raises(AnalysisError):
            res.sigma("nope")

    def test_report_renders(self, rc_divider):
        res = dc_mismatch_analysis(rc_divider, {"vout": "out"})
        text = res.report()
        assert "vout" in text and "sigma" in text


class TestTransientMismatchAnalysis:
    def test_requires_a_pss_spec(self, rc_lowpass):
        with pytest.raises(AnalysisError):
            transient_mismatch_analysis(rc_lowpass,
                                        [DcLevel("m", "out")])

    def test_dclevel_on_rc(self, rc_lowpass):
        """DC component of the RC output: only the divider action of R
        against the (absent) load matters -> tiny sigma; the fundamental
        amplitude is the sensitive metric.  This checks plumbing, not
        physics."""
        res = transient_mismatch_analysis(
            rc_lowpass, [DcLevel("vdc", "out")], period=1e-6,
            pss_options=PssOptions(n_steps=128, settle_periods=2))
        assert res.sigma("vdc") < 1e-6
        assert res.mean("vdc") == pytest.approx(0.6, abs=1e-3)

    def test_runtime_breakdown_present(self, rc_lowpass):
        res = transient_mismatch_analysis(
            rc_lowpass, [DcLevel("vdc", "out")], period=1e-6,
            pss_options=PssOptions(n_steps=128, settle_periods=2))
        assert set(res.runtime_breakdown) == {"pss", "lptv", "measures"}
        assert res.runtime_seconds > 0.0

    def test_correlation_matrix_shape(self, tech, logic_path_x):
        tb = logic_path_x
        res = transient_mismatch_analysis(
            tb.circuit,
            [EdgeDelay("dA", "X", "A", tb.vth),
             EdgeDelay("dB", "X", "B", tb.vth)],
            period=tb.period,
            pss_options=PssOptions(n_steps=600, settle_periods=2))
        names, rho = res.correlation_matrix()
        assert names == ["dA", "dB"]
        assert rho[0, 0] == pytest.approx(1.0)
        assert rho[0, 1] == pytest.approx(rho[1, 0])

    def test_statistical_waveform_band(self, cs_amp_pss):
        """Fig. 8: the sigma(t) band must be positive and time-varying
        for a time-varying orbit."""
        from repro.analysis import periodic_sensitivities
        compiled, p = cs_amp_pss
        sens = periodic_sensitivities(p)
        t, v, sig = statistical_waveform(sens, "d")
        assert t.shape == v.shape == sig.shape
        assert np.all(sig >= 0.0)
        assert sig.max() > 2.0 * sig.min()


class TestMeasures:
    def test_dclevel_required_nodes(self):
        assert DcLevel("m", "a", "b").required_nodes() == ["a", "b"]
        assert DcLevel("m", "a").required_nodes() == ["a"]

    def test_edge_delay_on_synthetic_waveset(self):
        from repro.waveform import WaveformSet
        t = np.linspace(0.0, 1.0, 1001)
        ws = WaveformSet(t, {
            "x": np.clip((t - 0.2) * 20, 0, 1),
            "y": 1.0 - np.clip((t - 0.45) * 20, 0, 1)})
        m = EdgeDelay("d", "x", "y", 0.5)
        assert m.measure_waveset(ws) == pytest.approx(0.25, abs=2e-3)

    def test_frequency_measure_on_synthetic(self):
        from repro.waveform import WaveformSet
        t = np.linspace(0, 1e-5, 20001)
        ws = WaveformSet(t, {"osc": np.sin(2 * np.pi * 1e6 * t)})
        m = Frequency("f", "osc")
        assert m.measure_waveset(ws) == pytest.approx(1e6, rel=1e-5)

    def test_frequency_sensitivities_need_oscillator(self, cs_amp_pss):
        from repro.analysis import periodic_sensitivities
        compiled, p = cs_amp_pss
        sens = periodic_sensitivities(p)
        with pytest.raises(AnalysisError):
            Frequency("f", "d").sensitivities(sens)
