"""Unit and property tests for contribution tables, correlations and
derived-metric variances (paper Eqs. 6, 10-13)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.contributions import (ContributionTable, correlation,
                                      correlated_covariance_from_mixing,
                                      covariance, difference_variance,
                                      linear_combination_variance)


def table(metric, s, sig, cov=None):
    keys = [(f"E{i}", "p") for i in range(len(s))]
    return ContributionTable(metric, keys, np.asarray(s, float),
                             np.asarray(sig, float), param_covariance=cov)


class TestVariance:
    def test_rms_sum(self):
        t = table("m", [1.0, 2.0], [0.1, 0.2])
        assert t.variance == pytest.approx(0.01 + 0.16)
        assert t.sigma == pytest.approx(np.sqrt(0.17))

    def test_rows_sorted_by_contribution(self):
        t = table("m", [1.0, 5.0, 2.0], [1.0, 1.0, 1.0])
        rows = t.rows()
        assert [r.sensitivity for r in rows] == [5.0, 2.0, 1.0]

    def test_fraction_of_element(self):
        t = table("m", [3.0, 4.0], [1.0, 1.0])
        assert t.fraction_of("E0") == pytest.approx(9.0 / 25.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ContributionTable("m", [("a", "p")], np.zeros(2), np.zeros(2))

    def test_summary_contains_shares(self):
        t = table("m", [1.0, 1.0], [1.0, 1.0])
        assert "50.0%" in t.summary()


class TestCovarianceAndCorrelation:
    def test_identical_tables_fully_correlated(self):
        a = table("a", [1.0, 2.0], [0.3, 0.4])
        assert correlation(a, a) == pytest.approx(1.0)

    def test_disjoint_support_uncorrelated(self):
        a = table("a", [1.0, 0.0], [1.0, 1.0])
        b = table("b", [0.0, 1.0], [1.0, 1.0])
        assert correlation(a, b) == 0.0

    def test_sign_flip_anticorrelated(self):
        a = table("a", [1.0, 2.0], [1.0, 1.0])
        b = table("b", [-1.0, -2.0], [1.0, 1.0])
        assert correlation(a, b) == pytest.approx(-1.0)

    def test_paper_table1_structure(self):
        """Shared contributions dominate -> high rho; disjoint -> low."""
        shared = table("A", [1.0, 1.0, 0.3, 0.0], np.ones(4))
        shared_b = table("B", [1.0, 1.0, 0.0, 0.3], np.ones(4))
        assert correlation(shared, shared_b) > 0.8
        dis_a = table("A", [0.0, 0.0, 1.0, 0.0], np.ones(4))
        dis_b = table("B", [0.0, 0.0, 0.0, 1.0], np.ones(4))
        assert abs(correlation(dis_a, dis_b)) < 1e-12

    def test_mismatched_keys_rejected(self):
        a = table("a", [1.0], [1.0])
        b = ContributionTable("b", [("X", "q")], np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            covariance(a, b)

    def test_difference_variance_eq13(self):
        """DNL formula: var(A-B) = varA + varB - 2cov."""
        a = table("a", [1.0, 1.0], [1.0, 1.0])
        b = table("b", [1.0, 0.5], [1.0, 1.0])
        direct = difference_variance(a, b)
        manual = (a.variance + b.variance - 2 * covariance(a, b))
        assert direct == pytest.approx(manual)
        # and equals the variance of the (A-B) sensitivity vector
        diff = table("d", [0.0, 0.5], [1.0, 1.0])
        assert direct == pytest.approx(diff.variance)

    def test_linear_combination(self):
        a = table("a", [1.0, 0.0], [1.0, 1.0])
        b = table("b", [0.0, 1.0], [1.0, 1.0])
        v = linear_combination_variance([a, b], np.array([3.0, 4.0]))
        assert v == pytest.approx(25.0)


class TestCorrelatedMismatch:
    def test_mixing_matrix_covariance(self):
        a = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        c = correlated_covariance_from_mixing(a)
        assert c.shape == (3, 3)
        assert c[0, 1] == pytest.approx(1.0)     # fully shared source
        assert c[0, 2] == pytest.approx(0.0)

    def test_quadratic_form_variance(self):
        # two perfectly correlated params with opposite sensitivities
        # must cancel exactly
        cov = correlated_covariance_from_mixing(
            np.array([[1.0], [1.0]]))
        t = table("m", [1.0, -1.0], [1.0, 1.0], cov=cov)
        assert t.variance == pytest.approx(0.0, abs=1e-15)

    def test_common_mode_rejection_story(self):
        """Fully correlated (die-to-die) mismatch cancels in a
        difference metric; independent mismatch does not - the paper's
        motivation for modelling correlations (Section III-C)."""
        s_a = [1.0, 0.0]
        s_b = [0.0, 1.0]
        indep = covariance(table("a", s_a, [1, 1]),
                           table("b", s_b, [1, 1]))
        cov_m = correlated_covariance_from_mixing(np.array([[1.0], [1.0]]))
        corr = covariance(table("a", s_a, [1, 1], cov=cov_m),
                          table("b", s_b, [1, 1], cov=cov_m))
        assert indep == 0.0 and corr == pytest.approx(1.0)


@settings(max_examples=100, deadline=None)
@given(s=arrays(np.float64, 5, elements=st.floats(-10, 10)),
       g=arrays(np.float64, 5, elements=st.floats(0.01, 10)))
def test_property_variance_nonnegative_and_consistent(s, g):
    t = table("m", s, g)
    assert t.variance >= 0.0
    assert t.variance == pytest.approx(sum(r.contribution
                                           for r in t.rows()))


@settings(max_examples=100, deadline=None)
@given(sa=arrays(np.float64, 4, elements=st.floats(-5, 5)),
       sb=arrays(np.float64, 4, elements=st.floats(-5, 5)),
       g=arrays(np.float64, 4, elements=st.floats(0.01, 5)))
def test_property_correlation_bounded(sa, sb, g):
    a, b = table("a", sa, g), table("b", sb, g)
    rho = correlation(a, b)
    assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9


@settings(max_examples=100, deadline=None)
@given(a=arrays(np.float64, (4, 3), elements=st.floats(-3, 3)))
def test_property_mixing_covariance_psd(a):
    c = correlated_covariance_from_mixing(a)
    eig = np.linalg.eigvalsh(c)
    assert np.all(eig >= -1e-9 * max(1.0, np.max(np.abs(eig))))
