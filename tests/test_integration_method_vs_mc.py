"""Integration tests: the paper's central claim on every benchmark.

In the small-mismatch (linear) regime the pseudo-noise/LPTV estimate of
each performance sigma must agree with batched Monte-Carlo within the MC
confidence interval - this is Table II of the paper, executed at reduced
sample counts to keep the suite fast.  The full-size runs live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine
from repro.circuits import logic_path_testbench
from repro.core import (DcLevel, EdgeDelay, Frequency,
                        monte_carlo_transient,
                        transient_mismatch_analysis)
from repro.core.contributions import correlated_covariance_from_mixing


pytestmark = pytest.mark.slow


class TestLinearCircuitExact:
    """On a purely linear circuit the linear model is exact: MC and the
    sensitivity analysis must agree to MC noise even at large sigma."""

    def test_driven_divider_with_cap(self):
        ckt = Circuit("lin")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.2, freq=1e6, offset=0.5))
        ckt.add_resistor("R1", "in", "mid", 1e3, sigma_rel=0.05)
        ckt.add_resistor("R2", "mid", "0", 2e3, sigma_rel=0.05)
        ckt.add_capacitor("C1", "mid", "0", 0.2e-9, sigma_rel=0.05)
        metric = DcLevel("vmid", "mid")
        res = transient_mismatch_analysis(
            ckt, [metric], period=1e-6,
            pss_options=PssOptions(n_steps=128, settle_periods=2))
        mc = monte_carlo_transient(
            ckt, [metric], n=600, t_stop=4e-6, dt=1e-6 / 128,
            window=(3e-6, 4e-6), seed=21)
        assert res.sigma("vmid") == pytest.approx(mc.sigma("vmid"),
                                                  rel=0.10)
        assert res.mean("vmid") == pytest.approx(mc.mean("vmid"),
                                                 rel=0.02)


class TestLogicPathDelay:
    def test_sigma_and_correlation_x_late(self, tech):
        tb = logic_path_testbench(tech, late_input="X")
        measures = [EdgeDelay("dA", "X", "A", tb.vth),
                    EdgeDelay("dB", "X", "B", tb.vth)]
        res = transient_mismatch_analysis(
            tb.circuit, measures, period=tb.period,
            pss_options=PssOptions(n_steps=800, settle_periods=2))
        mc = monte_carlo_transient(
            tb.circuit, measures, n=200, t_stop=2 * tb.period,
            dt=tb.period / 800, window=(tb.period, 2 * tb.period),
            seed=22)
        # sigma within the MC-200 confidence interval (~ +/-10 %)
        assert res.sigma("dA") == pytest.approx(mc.sigma("dA"), rel=0.15)
        # correlation: shared gates -> high (paper Table I: 0.885)
        rho_lin = res.correlation("dA", "dB")
        rho_mc = mc.correlation("dA", "dB")
        assert rho_lin > 0.7
        assert rho_lin == pytest.approx(rho_mc, abs=0.08)

    def test_correlation_collapses_y_late(self, tech):
        tb = logic_path_testbench(tech, late_input="Y")
        measures = [EdgeDelay("dA", "Y", "A", tb.vth),
                    EdgeDelay("dB", "Y", "B", tb.vth)]
        res = transient_mismatch_analysis(
            tb.circuit, measures, period=tb.period,
            pss_options=PssOptions(n_steps=800, settle_periods=2))
        # disjoint critical paths -> |rho| small (paper Table I: 0.01)
        assert abs(res.correlation("dA", "dB")) < 0.35

    def test_correlated_die_level_mismatch_raises_rho(self, tech):
        """Adding a fully shared (die-to-die) component to every vt0
        raises the delay correlation even on disjoint paths - the
        paper's Section III-C argument, via Eq. 6."""
        tb = logic_path_testbench(tech, late_input="Y")
        measures = [EdgeDelay("dA", "Y", "A", tb.vth),
                    EdgeDelay("dB", "Y", "B", tb.vth)]
        res_indep = transient_mismatch_analysis(
            tb.circuit, measures, period=tb.period,
            pss_options=PssOptions(n_steps=800, settle_periods=2))
        keys = res_indep.keys
        sig = np.array([d.sigma for d in
                        tb.circuit.mismatch_decls()])
        m = len(keys)
        mix = np.zeros((m, m + 1))
        mix[:, :m] = np.diag(sig * 0.6)
        shared = np.array([0.8 * s if k[1] == "vt0" else 0.0
                           for k, s in zip(keys, sig)])
        mix[:, m] = shared
        cov = correlated_covariance_from_mixing(mix)
        res_corr = transient_mismatch_analysis(
            tb.circuit, measures, period=tb.period,
            pss_options=PssOptions(n_steps=800, settle_periods=2),
            param_covariance=cov)
        assert (res_corr.correlation("dA", "dB")
                > res_indep.correlation("dA", "dB") + 0.2)


class TestComparatorOffset:
    def test_sigma_vs_mc(self, tech, comparator_pss):
        tb, compiled, pss_result = comparator_pss
        metric = DcLevel("vos", "vos")
        res = transient_mismatch_analysis(
            compiled, [metric], precomputed_pss=pss_result)
        mc = monte_carlo_transient(
            compiled, [metric], n=120, t_stop=36 * tb.period,
            dt=tb.period / 400,
            window=(35 * tb.period, 36 * tb.period), seed=23,
            chunk_size=120)
        # MC-120 CI is ~ +/-13 %
        assert res.sigma("vos") == pytest.approx(mc.sigma("vos"),
                                                 rel=0.20)
        assert 10e-3 < res.sigma("vos") < 80e-3

    def test_symmetry_of_contributions(self, tech, comparator_pss):
        """Matched pairs must contribute equally (M2/M3, M4/M5, ...)."""
        tb, compiled, pss_result = comparator_pss
        res = transient_mismatch_analysis(
            compiled, [DcLevel("vos", "vos")],
            precomputed_pss=pss_result)
        t = res.contributions("vos")
        for a, b in (("M2", "M3"), ("M4", "M5"), ("M6", "M7")):
            assert t.fraction_of(a) == pytest.approx(t.fraction_of(b),
                                                     rel=0.05), (a, b)

    def test_input_pair_vt_sensitivity_is_unity(self, tech,
                                                comparator_pss):
        """dVOS/dVT(M2) = +1 exactly: a threshold shift on one input
        device is indistinguishable from an input offset."""
        tb, compiled, pss_result = comparator_pss
        res = transient_mismatch_analysis(
            compiled, [DcLevel("vos", "vos")],
            precomputed_pss=pss_result)
        t = res.contributions("vos")
        i = t.keys.index(("M2", "vt0"))
        assert t.sensitivities[i] == pytest.approx(1.0, rel=0.02)


class TestOscillatorFrequency:
    def test_sigma_vs_mc(self, tech, oscillator_pss):
        compiled, pss_result = oscillator_pss
        metric = Frequency("f", "osc1")
        res = transient_mismatch_analysis(
            compiled, [metric], precomputed_pss=pss_result)
        mc = monte_carlo_transient(
            compiled, [metric], n=200, t_stop=10e-9, dt=2e-12,
            window=(2e-9, 10e-9), seed=24)
        assert res.mean("f") == pytest.approx(mc.mean("f"), rel=0.02)
        assert res.sigma("f") == pytest.approx(mc.sigma("f"), rel=0.15)

    def test_relative_sigma_sane(self, tech, oscillator_pss):
        compiled, pss_result = oscillator_pss
        res = transient_mismatch_analysis(
            compiled, [Frequency("f", "osc1")],
            precomputed_pss=pss_result)
        assert 0.005 < res.sigma("f") / res.mean("f") < 0.10
