"""Loopback tests of the HTTP front-end (daemon + client).

Everything here crosses real sockets on ephemeral loopback ports, but
the workloads are the cheap sine-driven RC / resistive-divider circuits
from ``test_service.py``, so the suite stays fast.  The invariants under
test are the PR's contract:

* a request served over HTTP is bit-identical to the in-process
  ``AnalysisSession`` run (same engines, same keys, same summaries);
* the shard protocol fans out across worker daemons and merges
  bit-identically to :func:`monte_carlo_transient`;
* tenancy: token auth, bounded per-tenant result quotas layered over
  the shared session memo, pending-job quotas;
* one tagged error schema (:class:`FailureRecord` payloads) with HTTP
  statuses mapped from the exception hierarchy - and injected faults
  degrading into ``failures`` on a 200, not into 5xx.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine
from repro.core import DcLevel
from repro.core.montecarlo import monte_carlo_transient
from repro.errors import (AnalysisError, AuthenticationError,
                          ConvergenceError, FailureRecord,
                          JobTimeoutError, QuotaExceededError, ReproError,
                          WorkerCrashError)
from repro.service import (AnalysisRequest, AnalysisServer,
                           AnalysisSession, FaultPlan, FaultRule,
                           RemoteSession, RetryPolicy, TenantConfig,
                           mc_transient_shards, merge_shard_results,
                           registered_kinds, run_shard,
                           scatter_monte_carlo_transient, scatter_shards)
from repro.service.net import error_payload, status_for, wire_versions

PSS_OPTS = PssOptions(n_steps=64, settle_periods=2)
MEAS = [DcLevel("vout", "out")]


def _rc(r=1e3):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", r, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def _divider(r1=1e3):
    ckt = Circuit("div")
    ckt.add_vsource("V1", "in", "0", dc=1.2)
    ckt.add_resistor("R1", "in", "out", r1, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
    return ckt


def _transient_request(r=1e3):
    return AnalysisRequest.transient_mismatch(
        _rc(r), MEAS, period=1e-6, pss_options=PSS_OPTS)


def _dc_request(r1=1e3):
    return AnalysisRequest.dc_mismatch(_divider(r1), {"vdc": "out"})


def _raw(url, method="GET", body=None, token=None, headers=None):
    """Raw HTTP exchange, bypassing the client: (status, json payload)."""
    req = urllib.request.Request(url, data=body, method=method)
    req.add_header("Content-Type", "application/json")
    if token is not None:
        req.add_header("Authorization", f"Bearer {token}")
    for name, value in (headers or {}).items():
        req.add_header(name, value)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def test_run_bit_identical_to_in_process(self):
        request = _transient_request()
        local = AnalysisSession().run(request)
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            remote = client.run(request)
            again = client.run(request)
        def numbers(summary):
            # everything but the wall-clock timings
            return {k: v for k, v in summary.items()
                    if k != "runtime_breakdown"}

        assert numbers(remote.summary) == numbers(local.summary)
        assert remote.sigma("vout") == local.sigma("vout")
        assert remote.request_key == request.key()
        assert not remote.from_cache
        assert again.from_cache
        assert again.summary == remote.summary

    def test_health_and_version_negotiation(self):
        with AnalysisServer() as server:
            health = RemoteSession(server.url).health()
        assert health["status"] == "ok"
        assert health["versions"] == wire_versions()
        assert health["authenticated"] is False
        assert "transient_mismatch" in health["kinds"]
        assert health["api_version"] is not None

    def test_client_refuses_version_mismatch(self):
        class _Stale(RemoteSession):
            def health(self):
                return {"versions": {"request_format": -1,
                                     "shard_protocol": -1}}

        with AnalysisServer() as server:
            client = _Stale(server.url)
            with pytest.raises(AnalysisError, match="version mismatch"):
                client.run(_dc_request())

    def test_shard_round_trip(self):
        specs = mc_transient_shards(_rc(), MEAS, 8, 2e-6, 2e-8,
                                    chunk_size=4, seed=3)
        local = [run_shard(s) for s in specs]
        with AnalysisServer() as server:
            remote = [RemoteSession(server.url).run_shard(s)
                      for s in specs]
        for mine, theirs in zip(local, remote):
            assert theirs.to_dict() == mine.to_dict()
        merged = merge_shard_results(remote)
        assert np.array_equal(
            merged.samples["vout"],
            merge_shard_results(local).samples["vout"])

    def test_scatter_matches_in_process_mc(self):
        n, t_stop, dt, seed, chunk = 8, 2e-6, 2e-8, 11, 4
        with AnalysisServer() as w1, AnalysisServer() as w2:
            remote = scatter_monte_carlo_transient(
                [w1.url, w2.url], _rc(), MEAS, n, t_stop, dt,
                seed=seed, chunk_size=chunk)
        local = monte_carlo_transient(_rc(), MEAS, n, t_stop, dt,
                                      seed=seed, chunk_size=chunk)
        assert np.array_equal(remote.samples["vout"],
                              local.samples["vout"])
        assert remote.sigma("vout") == local.stats["vout"].std
        assert remote.mean("vout") == local.stats["vout"].mean
        assert remote.n_failed == 0 and remote.failures == []

    def test_scatter_summary_matches_served_request(self):
        """The merged scatter summary equals what ``POST /run`` of the
        whole Monte-Carlo workload reports - two routes, one answer."""
        n, seed, chunk = 8, 5, 4
        request = AnalysisRequest.monte_carlo_transient(
            _rc(), MEAS, n, 2e-6, 2e-8, seed=seed, chunk_size=chunk)
        with AnalysisServer() as server:
            served = RemoteSession(server.url).run(request)
            scattered = scatter_monte_carlo_transient(
                [server.url], _rc(), MEAS, n, 2e-6, 2e-8,
                seed=seed, chunk_size=chunk)
        assert scattered.summary() == served.summary


# ---------------------------------------------------------------------------
# concurrency and the shared memo
# ---------------------------------------------------------------------------
class TestConcurrentClients:
    def test_clients_share_the_warm_cache(self):
        request = _transient_request()
        with AnalysisServer() as server:
            RemoteSession(server.url).run(request)  # warm it
            results, errors = [], []

            def hit():
                try:
                    results.append(RemoteSession(server.url).run(request))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.session.stats()
        assert errors == []
        assert len(results) == 4
        assert all(r.from_cache for r in results)
        assert all(r.summary == results[0].summary for r in results)
        assert stats["results"]["hits"] >= 4

    def test_remote_stats_mirror_session_stats(self):
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            client.run(_dc_request())
            client.run(_dc_request())
            remote = client.stats()
            local = server.session.stats()
        assert remote == local
        assert remote["results"]["hits"] == 1


# ---------------------------------------------------------------------------
# asynchronous jobs
# ---------------------------------------------------------------------------
class TestJobs:
    def test_submit_poll_result(self):
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            job = client.submit(_dc_request())
            result = job.result(timeout=30)
            assert job.done()
            assert job.poll()["status"] == "done"
        assert result.sigma("vdc") > 0
        expected = AnalysisSession().run(_dc_request())
        assert result.summary == expected.summary

    def test_resubmit_is_idempotent(self):
        request = _dc_request()
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            first = client.submit(request)
            first.result(timeout=30)
            second = client.submit(request)
            assert second.key == first.key == request.key()
            assert second.poll()["status"] == "done"
            stats = client.server_stats()
        assert stats["jobs"]["total"] == 1

    def test_unknown_job_key_is_404(self):
        with AnalysisServer() as server:
            status, payload = _raw(server.url + "/jobs/deadbeef")
            with pytest.raises(ReproError, match="no job with key"):
                RemoteSession(server.url)._call("GET", "/jobs/deadbeef")
        assert status == 404
        assert payload["error"]["__type__"] == "FailureRecord"

    def test_failed_job_reports_structured_error(self):
        bad = {"version": 1, "kind": "transient_mismatch",
               "circuit": {}, "measures": [], "outputs": [],
               "options": {}}
        with AnalysisServer() as server:
            status, payload = _raw(server.url + "/jobs", "POST",
                                   json.dumps(bad).encode())
            assert status == 202
            job_url = server.url + "/jobs/" + payload["key"]
            for _ in range(200):
                status, data = _raw(job_url)
                if data["status"] in ("done", "failed"):
                    break
        assert data["status"] == "failed"
        assert data["error"]["__type__"] == "FailureRecord"
        assert data["error"]["site"] == "job"
        assert data["error_status"] in (400, 422)


# ---------------------------------------------------------------------------
# tenancy: tokens and quotas
# ---------------------------------------------------------------------------
TENANTS = [TenantConfig(name="alice", token="tok-a", max_results=2,
                        max_pending_jobs=1),
           TenantConfig(name="bob", token="tok-b", max_results=2)]


class TestTenancy:
    def test_token_required_and_checked(self):
        with AnalysisServer(tenants=TENANTS) as server:
            assert RemoteSession(server.url).health()["authenticated"]
            with pytest.raises(AuthenticationError,
                               match="missing tenant token"):
                RemoteSession(server.url).run(_dc_request())
            with pytest.raises(AuthenticationError,
                               match="unknown tenant token"):
                RemoteSession(server.url, token="wrong").run(_dc_request())
            ok = RemoteSession(server.url, token="tok-a").run(_dc_request())
            assert ok.sigma("vdc") > 0
            status, _ = _raw(server.url + "/stats")
            assert status == 401

    def test_x_repro_token_header(self):
        with AnalysisServer(tenants=TENANTS) as server:
            status, payload = _raw(server.url + "/stats",
                                   headers={"X-Repro-Token": "tok-b"})
        assert status == 200
        assert "bob" in payload["tenants"]

    def test_quota_evicts_tenants_oldest_result(self):
        requests = [_dc_request(r1) for r1 in (1e3, 2e3, 3e3)]
        with AnalysisServer(tenants=TENANTS) as server:
            alice = RemoteSession(server.url, token="tok-a")
            for request in requests:
                alice.run(request)
            # alice holds 2 of 3 keys: the newest is still memoized,
            # the oldest was evicted from the shared memo
            assert alice.run(requests[-1]).from_cache
            rerun = alice.run(requests[0])
            stats = alice.server_stats()
        assert not rerun.from_cache
        assert stats["tenants"]["alice"]["evictions"] >= 1
        assert stats["tenants"]["alice"]["results"] == 2

    def test_shared_results_survive_one_tenants_eviction(self):
        shared = _dc_request(1e3)
        with AnalysisServer(tenants=TENANTS) as server:
            alice = RemoteSession(server.url, token="tok-a")
            bob = RemoteSession(server.url, token="tok-b")
            alice.run(shared)
            bob.run(shared)          # bob now holds the same key
            alice.run(_dc_request(2e3))
            alice.run(_dc_request(3e3))  # alice's quota evicts `shared`
            # ...but bob still holds it, so the memo kept it warm
            assert bob.run(shared).from_cache
            stats = bob.server_stats()
        assert stats["tenants"]["alice"]["evictions"] == 1
        assert stats["session"]["results"]["size"] == 3

    def test_pending_job_quota_is_429(self):
        plan = FaultPlan(rules=[FaultRule(site="run_request",
                                          kind="hang",
                                          hang_seconds=1.0)])
        with AnalysisServer(tenants=TENANTS) as server:
            alice = RemoteSession(server.url, token="tok-a")
            with plan.active():
                slow = alice.submit(_dc_request(1e3))
                with pytest.raises(QuotaExceededError,
                                   match="pending jobs"):
                    alice.submit(_dc_request(2e3))
            assert slow.result(timeout=30).sigma("vdc") > 0
            # with the first job drained the quota frees up
            assert alice.submit(_dc_request(2e3)).result(
                timeout=30).sigma("vdc") > 0

    def test_tenant_config_validation(self):
        with pytest.raises(ValueError, match="max_results"):
            TenantConfig(name="x", token="t", max_results=0)
        with pytest.raises(ValueError, match="max_pending_jobs"):
            TenantConfig(name="x", token="t", max_pending_jobs=0)
        dupes = [TenantConfig(name="a", token="same"),
                 TenantConfig(name="b", token="same")]
        with pytest.raises(ValueError, match="unique"):
            AnalysisServer(tenants=dupes)


# ---------------------------------------------------------------------------
# the uniform error schema
# ---------------------------------------------------------------------------
class TestErrorSchema:
    def test_status_mapping(self):
        assert status_for(AuthenticationError("x")) == 401
        assert status_for(QuotaExceededError("x")) == 429
        assert status_for(JobTimeoutError("x")) == 504
        assert status_for(WorkerCrashError("x")) == 502
        assert status_for(ConvergenceError("x", iterations=3)) == 422
        assert status_for(AnalysisError("x")) == 400
        assert status_for(ValueError("x")) == 400
        assert status_for(RuntimeError("x")) == 500

    def test_error_payload_is_tagged_failure_record(self):
        payload = error_payload(AnalysisError("nope"), 400)
        assert payload["status"] == 400
        assert payload["versions"] == wire_versions()
        record = payload["error"]
        assert record["__type__"] == "FailureRecord"
        assert record["error"] == "AnalysisError"
        assert record["message"] == "nope"

    def test_unknown_kind_lists_registered_kinds(self):
        bad = {"version": 1, "kind": "astrology", "circuit": {},
               "measures": [], "outputs": [], "options": {}}
        with AnalysisServer() as server:
            status, payload = _raw(server.url + "/run", "POST",
                                   json.dumps(bad).encode())
        assert status == 400
        assert payload["error"]["__type__"] == "FailureRecord"
        assert "unknown request kind" in payload["error"]["message"]
        assert sorted(payload["kinds"]) == sorted(registered_kinds())

    def test_future_wire_version_is_400(self):
        request = _dc_request().to_dict()
        request["version"] = 99
        with AnalysisServer() as server:
            status, payload = _raw(server.url + "/run", "POST",
                                   json.dumps(request).encode())
        assert status == 400
        assert "version" in payload["error"]["message"]

    def test_malformed_json_is_400(self):
        with AnalysisServer() as server:
            status, payload = _raw(server.url + "/run", "POST",
                                   b"this is not json")
            empty, _ = _raw(server.url + "/run", "POST", b"")
        assert status == 400
        assert payload["error"]["__type__"] == "FailureRecord"
        assert empty == 400

    def test_unknown_endpoint_is_404(self):
        with AnalysisServer() as server:
            status, payload = _raw(server.url + "/nope")
        assert status == 404
        assert "no endpoint" in payload["error"]["message"]

    def test_client_rebuilds_server_exception(self):
        """A convergence fault on the daemon surfaces client-side as
        the same exception class, solver context and all."""
        plan = FaultPlan(rules=[FaultRule(site="run_request",
                                          kind="convergence")])
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            with plan.active():
                with pytest.raises(ConvergenceError) as info:
                    client.run(_dc_request())
        assert info.value.iterations == 0
        assert "injected convergence failure" in str(info.value)

    def test_raw_convergence_fault_is_422(self):
        plan = FaultPlan(rules=[FaultRule(site="run_request",
                                          kind="convergence")])
        body = json.dumps(_dc_request().to_dict()).encode()
        with AnalysisServer() as server:
            with plan.active():
                status, payload = _raw(server.url + "/run", "POST", body)
        assert status == 422
        assert payload["error"]["error"] == "ConvergenceError"


# ---------------------------------------------------------------------------
# supervision over the wire: faults degrade, they don't 5xx
# ---------------------------------------------------------------------------
class TestFaultedDaemon:
    RETRY = RetryPolicy(max_attempts=2, base_delay=0.0)

    def test_transient_shard_fault_heals_on_retry(self):
        specs = mc_transient_shards(_rc(), MEAS, 8, 2e-6, 2e-8,
                                    chunk_size=4, seed=3)
        clean = [run_shard(s) for s in specs]
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence",
                                          fail_attempts=1)])
        with AnalysisServer(retry=self.RETRY) as server:
            with plan.active():
                healed = scatter_shards([server.url], specs)
        for mine, theirs in zip(clean, healed):
            assert theirs.to_dict() == mine.to_dict()

    def test_exhausted_shard_degrades_into_failures(self):
        n, chunk, seed = 8, 4, 3
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence",
                                          start=chunk)])
        with AnalysisServer(retry=self.RETRY) as server:
            with plan.active():
                result = scatter_monte_carlo_transient(
                    [server.url], _rc(), MEAS, n, 2e-6, 2e-8,
                    seed=seed, chunk_size=chunk)
        local = monte_carlo_transient(_rc(), MEAS, n, 2e-6, 2e-8,
                                      seed=seed, chunk_size=chunk)
        # the faulted span is NaN-frozen and recorded, not a 5xx...
        assert result.n_failed == chunk
        assert len(result.failures) == 1
        record = result.failures[0]
        assert isinstance(record, FailureRecord)
        assert record.error == "ConvergenceError"
        assert (record.start, record.stop) == (chunk, n)
        assert np.all(np.isnan(result.samples["vout"][chunk:]))
        # ...and the surviving span is still bit-identical
        assert np.array_equal(result.samples["vout"][:chunk],
                              local.samples["vout"][:chunk])

    def test_unsupervised_shard_fault_is_422(self):
        spec = mc_transient_shards(_rc(), MEAS, 4, 2e-6, 2e-8,
                                   chunk_size=4, seed=3)[0]
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence")])
        with AnalysisServer() as server:  # no retry policy
            with plan.active():
                with pytest.raises(ConvergenceError):
                    RemoteSession(server.url).run_shard(spec)
