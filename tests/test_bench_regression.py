"""Unit tests for the CI benchmark-regression gate
(``benchmarks/check_regression.py``).

The script is plain stdlib (no repro imports), so it is loaded from its
file path and exercised against synthetic baseline/fresh directories -
the gate's semantics are part of tier-1 even though the benchmarks
themselves only run in the CI bench job.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (Path(__file__).parent.parent / "benchmarks"
           / "check_regression.py")
spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def write_bench(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


@pytest.fixture()
def dirs(tmp_path):
    return tmp_path / "baseline", tmp_path / "fresh"


BASE = {
    "bench": "demo", "mc_samples_env": 24, "n_samples": 60,
    "wall_seconds": {"dense": 10.0, "cached": 5.0},
    "speedup_vs_dense": {"dense": 1.0, "cached": 2.0},
}


def run(base_dir, fresh_dir, *extra):
    return check_regression.main(
        [str(base_dir), str(fresh_dir), *extra])


class TestGate:
    def test_identical_passes(self, dirs):
        base_dir, fresh_dir = dirs
        write_bench(base_dir, "demo", BASE)
        write_bench(fresh_dir, "demo", BASE)
        assert run(base_dir, fresh_dir) == 0

    def test_wall_regression_fails(self, dirs):
        base_dir, fresh_dir = dirs
        write_bench(base_dir, "demo", BASE)
        fresh = json.loads(json.dumps(BASE))
        fresh["wall_seconds"]["cached"] = 5.0 * 1.30     # +30% > 25%
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir) == 1

    def test_wall_within_tolerance_passes(self, dirs):
        base_dir, fresh_dir = dirs
        write_bench(base_dir, "demo", BASE)
        fresh = json.loads(json.dumps(BASE))
        fresh["wall_seconds"]["cached"] = 5.0 * 1.20     # +20% < 25%
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir) == 0

    def test_noise_floor_wall_ignored(self, dirs):
        """Sub-``--min-seconds`` baselines never gate (scheduler noise
        dominates tiny timings on shared runners)."""
        base_dir, fresh_dir = dirs
        base = json.loads(json.dumps(BASE))
        base["wall_seconds"]["tiny"] = 0.01
        write_bench(base_dir, "demo", base)
        fresh = json.loads(json.dumps(base))
        fresh["wall_seconds"]["tiny"] = 0.09             # 9x - ignored
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir) == 0

    def test_speedup_drop_below_one_fails(self, dirs):
        base_dir, fresh_dir = dirs
        write_bench(base_dir, "demo", BASE)
        fresh = json.loads(json.dumps(BASE))
        fresh["speedup_vs_dense"]["cached"] = 0.93
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir) == 1

    def test_speedup_baseline_below_one_tolerated(self, dirs):
        """A factor the baseline environment never achieved (e.g. a
        parallel speedup on a single-core runner) does not flake."""
        base_dir, fresh_dir = dirs
        base = json.loads(json.dumps(BASE))
        base["speedup_parallel"] = 0.8
        write_bench(base_dir, "demo", base)
        fresh = json.loads(json.dumps(base))
        fresh["speedup_parallel"] = 0.7
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir) == 0

    def test_reduction_keys_are_factors(self, dirs):
        base_dir, fresh_dir = dirs
        base = {"mc_samples_env": 24, "mem_reduction_vs_dense_1k": 50.0}
        write_bench(base_dir, "mem", base)
        write_bench(fresh_dir, "mem",
                    {"mc_samples_env": 24,
                     "mem_reduction_vs_dense_1k": 0.5})
        assert run(base_dir, fresh_dir) == 1

    def test_workload_mismatch_skipped(self, dirs):
        """Different workload scaling must skip, not fail: a 24-sample
        CI run says nothing about a 1000-sample baseline."""
        base_dir, fresh_dir = dirs
        write_bench(base_dir, "demo", BASE)
        fresh = json.loads(json.dumps(BASE))
        fresh["mc_samples_env"] = 1000
        fresh["wall_seconds"]["cached"] = 500.0
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir) == 0

    def test_size_key_mismatch_skipped(self, dirs):
        base_dir, fresh_dir = dirs
        write_bench(base_dir, "demo", BASE)
        fresh = json.loads(json.dumps(BASE))
        fresh["n_samples"] = 8
        fresh["wall_seconds"]["cached"] = 500.0
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir) == 0

    def test_missing_baseline_is_informational(self, dirs):
        base_dir, fresh_dir = dirs
        base_dir.mkdir()
        write_bench(fresh_dir, "brand_new", BASE)
        assert run(base_dir, fresh_dir) == 0

    def test_empty_fresh_dir_errors(self, dirs):
        base_dir, fresh_dir = dirs
        base_dir.mkdir()
        fresh_dir.mkdir()
        assert run(base_dir, fresh_dir) == 2

    def test_custom_tolerance(self, dirs):
        base_dir, fresh_dir = dirs
        write_bench(base_dir, "demo", BASE)
        fresh = json.loads(json.dumps(BASE))
        fresh["wall_seconds"]["cached"] = 5.0 * 1.20
        write_bench(fresh_dir, "demo", fresh)
        assert run(base_dir, fresh_dir, "--tol", "0.1") == 1
