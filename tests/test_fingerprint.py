"""Content-hash stability: circuit fingerprints and compile/state keys.

The whole service-layer cache architecture rests on these invariants:
equal circuit *content* must hash equal (regardless of how the netlist
was typed in), and any change that alters the compiled system must hash
different.
"""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.circuit import Circuit, Sine
from repro.circuit.netlist import content_digest
from repro.service import circuit_from_dict, circuit_to_dict


def _divider(node_in="in", node_out="out", r1=1e3, order="forward",
             name="divider"):
    ckt = Circuit(name)
    adds = [
        lambda: ckt.add_vsource("V1", node_in, "0", dc=1.2),
        lambda: ckt.add_resistor("R1", node_in, node_out, r1,
                                 sigma_rel=0.02),
        lambda: ckt.add_resistor("R2", node_out, "0", 3e3,
                                 sigma_rel=0.02),
    ]
    for add in (adds if order == "forward" else reversed(adds)):
        add()
    return ckt


class TestFingerprint:
    def test_insertion_order_invariant(self):
        assert (_divider(order="forward").fingerprint()
                == _divider(order="backward").fingerprint())

    def test_node_rename_invariant(self):
        assert (_divider().fingerprint()
                == _divider(node_in="a", node_out="b").fingerprint())

    def test_circuit_name_invariant(self):
        # the display name is presentation, not content
        assert (_divider(name="x").fingerprint()
                == _divider(name="y").fingerprint())

    def test_value_perturbation_distinct(self):
        assert (_divider().fingerprint()
                != _divider(r1=1e3 * (1 + 1e-12)).fingerprint())

    def test_tolerance_spec_distinct(self):
        a = _divider()
        b = _divider()
        b["R1"].sigma_rel = 0.05
        assert a.fingerprint() != b.fingerprint()

    def test_ground_aliases_equal(self):
        a = Circuit("g1")
        a.add_resistor("R", "n", "0", 1e3)
        b = Circuit("g2")
        b.add_resistor("R", "n", "gnd", 1e3)
        assert a.fingerprint() == b.fingerprint()

    def test_initial_conditions_hash(self):
        a, b = _divider(), _divider()
        b.ic["out"] = 0.5
        assert a.fingerprint() != b.fingerprint()

    def test_serialization_round_trip_preserves_fingerprint(self):
        ckt = Circuit("rt")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
        ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.05)
        ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
        ckt.ic["out"] = 0.1
        rt = circuit_from_dict(circuit_to_dict(ckt))
        assert rt.fingerprint() == ckt.fingerprint()


class TestContentDigest:
    def test_type_tags_distinguish(self):
        # 1 / 1.0 / True / "1" must all hash apart
        digests = {content_digest(v) for v in (1, 1.0, True, "1")}
        assert len(digests) == 4

    def test_ndarray_content(self):
        a = content_digest(np.arange(3.0))
        b = content_digest(np.arange(3.0))
        c = content_digest(np.arange(3.0) + 1e-15)
        assert a == b != c

    def test_dict_order_invariant(self):
        assert (content_digest({"a": 1, "b": 2})
                == content_digest({"b": 2, "a": 1}))

    def test_unhashable_rejected(self):
        with pytest.raises(TypeError):
            content_digest(object())


class TestCompileKeys:
    def test_cache_key_stable_across_compiles(self):
        assert (compile_circuit(_divider()).cache_key
                == compile_circuit(_divider(node_in="a")).cache_key)

    def test_cache_key_cmin_sensitive(self):
        a = compile_circuit(_divider())
        b = compile_circuit(_divider(), cmin=2e-15)
        assert a.cache_key != b.cache_key

    def test_state_key_nominal_vs_deltas(self):
        c = compile_circuit(_divider())
        k_nom = c.state_key()
        assert k_nom == c.state_key(deltas={})
        k_d = c.state_key(deltas={("R1", "r"): 5.0})
        k_d2 = c.state_key(deltas={("R1", "r"): 5.0})
        assert k_d == k_d2 != k_nom

    def test_state_key_batch_shape(self):
        c = compile_circuit(_divider())
        assert c.state_key(batch_shape=(4,)) != c.state_key()

    def test_state_key_array_deltas(self):
        c = compile_circuit(_divider())
        a = c.state_key(deltas={("R1", "r"): np.array([1.0, 2.0])})
        b = c.state_key(deltas={("R1", "r"): np.array([1.0, 2.5])})
        assert a != b
