"""Unit tests for the compiled MNA layer: indexing, stamping structure,
injection construction, and the per-row theta scheme."""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.circuit import Circuit
from repro.constants import BOLTZMANN, T_NOMINAL
from repro.errors import NetlistError


@pytest.fixture()
def mixed_circuit(tech):
    ckt = Circuit("mixed")
    ckt.add_vsource("V1", "a", "0", dc=1.0)
    ckt.add_resistor("R1", "a", "b", 1e3, sigma_rel=0.01)
    ckt.add_capacitor("C1", "b", "0", 1e-12, sigma_rel=0.01)
    ckt.add_inductor("L1", "b", "c", 1e-9, sigma_rel=0.01)
    ckt.add_resistor("R2", "c", "0", 1e3, sigma_rel=0.01)
    ckt.add_mosfet("M1", "c", "a", "0", "0", 1e-6, 0.26e-6, tech)
    return ckt


class TestIndexing:
    def test_unknown_layout(self, mixed_circuit):
        c = compile_circuit(mixed_circuit)
        assert c.n_nodes == 3
        assert c.n == 5           # 3 nodes + V branch + L branch
        assert c.branch("V1") == 3
        assert c.branch("L1") == 4

    def test_ground_maps_to_discard_slot(self, mixed_circuit):
        c = compile_circuit(mixed_circuit)
        assert c.idx("0") == c.n
        assert c.idx("gnd") == c.n

    def test_voltage_of_ground_is_zero(self, mixed_circuit):
        c = compile_circuit(mixed_circuit)
        x = np.arange(float(c.n + 1))
        assert c.voltage(x, "0") == 0.0

    def test_pad_appends_zero(self, mixed_circuit):
        c = compile_circuit(mixed_circuit)
        x = np.ones((4, c.n))
        xp = c.pad(x)
        assert xp.shape == (4, c.n + 1)
        assert np.all(xp[:, -1] == 0.0)


class TestAssembleStructure:
    def test_linear_residual_is_g_times_x(self, mixed_circuit):
        """With MOSFET off (x=0) and no sources, f = G_lin @ x."""
        c = compile_circuit(mixed_circuit)
        state = c.nominal
        x_pad, g_pad, f_pad = c.buffers(())
        rng = np.random.default_rng(0)
        x_pad[:-1] = 0.0
        c.assemble(state, x_pad, 0.0, g_pad, f_pad)
        # residual at x=0: sources only
        f0 = f_pad.copy()
        assert f0[c.branch("V1")] == pytest.approx(-1.0)

    def test_jacobian_matches_fd(self, mixed_circuit):
        """The assembled Jacobian equals finite differences of f."""
        c = compile_circuit(mixed_circuit)
        state = c.nominal
        x_pad, g_pad, f_pad = c.buffers(())
        rng = np.random.default_rng(1)
        x_pad[:-1] = rng.uniform(0.0, 1.0, c.n)
        c.assemble(state, x_pad, 0.0, g_pad, f_pad)
        jac = g_pad[:c.n, :c.n].copy()
        f0 = f_pad[:c.n].copy()
        h = 1e-7
        for j in range(c.n):
            xp = x_pad.copy()
            xp[j] += h
            c.assemble(state, xp, 0.0, g_pad, f_pad)
            fd = (f_pad[:c.n] - f0) / h
            assert np.allclose(jac[:, j], fd, rtol=1e-4,
                               atol=1e-9), f"column {j}"

    def test_ground_row_scrubbed(self, mixed_circuit):
        c = compile_circuit(mixed_circuit)
        g_lin, _ = c.nominal.to_dense()
        assert np.all(g_lin[c.n, :] == 0.0)
        assert np.all(g_lin[:, c.n] == 0.0)

    def test_sparse_state_trash_slot_zero(self, mixed_circuit):
        c = compile_circuit(mixed_circuit)
        state = c.nominal
        assert state.g_data.shape == (state.plan.nnz + 1,)
        assert state.g_data[-1] == 0.0
        assert state.c_data[-1] == 0.0


class TestThetaRows:
    def test_be_is_all_ones(self, mixed_circuit):
        c = compile_circuit(mixed_circuit)
        assert np.all(c.theta_rows(c.nominal, "be") == 1.0)

    def test_trap_collocates_algebraic_and_source_rows(self,
                                                       mixed_circuit):
        c = compile_circuit(mixed_circuit)
        th = c.theta_rows(c.nominal, "trap")
        # V-source constraint row: collocated
        assert th[c.branch("V1")] == 1.0
        # node 'a' KCL contains the algebraic V1 branch current
        assert th[c.node_index["a"]] == 1.0
        # node 'b' has a real capacitor and no algebraic branch: trap
        assert th[c.node_index["b"]] == 0.5
        # inductor branch is differential (its own flux equation)
        assert th[c.branch("L1")] == 0.5


class TestInjections:
    def test_resistor_injection_value(self, rc_divider):
        c = compile_circuit(rc_divider)
        from repro.analysis import dc_operating_point
        dc = dc_operating_point(c)
        injections = c.mismatch_injections(c.nominal, dc.x[None, :])
        by_key = {inj.key: inj for inj in injections}
        inj = by_key[("R1", "r")]
        # dI/dR = -(v_in - v_out)/R^2 = -0.3/1e6 at the 'in' node row
        i_in = c.node_index["in"]
        i_out = c.node_index["out"]
        assert inj.di_dp[0, i_in] == pytest.approx(-0.3e-6, rel=1e-6)
        assert inj.di_dp[0, i_out] == pytest.approx(+0.3e-6, rel=1e-6)

    def test_capacitor_injection_is_reactive(self, tech):
        ckt = Circuit()
        ckt.add_vsource("V", "a", "0", dc=0.7)
        ckt.add_capacitor("C1", "a", "0", 1e-12, sigma_rel=0.01)
        ckt.add_resistor("R1", "a", "0", 1e3)
        c = compile_circuit(ckt)
        x = np.array([[0.7, -0.0007]])
        (inj,) = c.mismatch_injections(c.nominal, x)
        assert inj.dq_dp is not None
        assert inj.dq_dp[0, c.node_index["a"]] == pytest.approx(0.7)
        assert np.all(inj.di_dp == 0.0)

    def test_mosfet_vt_injection_equals_minus_gm(self, tech):
        ckt = Circuit()
        ckt.add_vsource("VD", "d", "0", dc=1.2)
        ckt.add_vsource("VG", "g", "0", dc=0.9)
        ckt.add_mosfet("M1", "d", "g", "0", "0", 2e-6, 0.13e-6, tech)
        c = compile_circuit(ckt)
        from repro.analysis import dc_operating_point
        dc = dc_operating_point(c)
        op = c.mosfet_op(c.nominal, c.pad(dc.x))
        injections = c.mismatch_injections(c.nominal, dc.x[None, :])
        by_key = {inj.key: inj for inj in injections}
        i_d = c.node_index["d"]
        assert by_key[("M1", "vt0")].di_dp[0, i_d] == pytest.approx(
            -float(op["gm"][0]), rel=1e-12)
        assert by_key[("M1", "beta_rel")].di_dp[0, i_d] == pytest.approx(
            float(op["ids"][0]), rel=1e-12)

    def test_noise_injection_psd_values(self, tech):
        ckt = Circuit()
        ckt.add_vsource("V", "a", "0", dc=1.0)
        ckt.add_resistor("R1", "a", "0", 2e3)
        c = compile_circuit(ckt)
        x = np.array([[1.0, -0.0005]])
        (thermal,) = c.noise_injections(c.nominal, x)
        assert thermal.psd0 == pytest.approx(
            4 * BOLTZMANN * T_NOMINAL / 2e3)
        assert thermal.psd(123.0) == thermal.psd0   # white

    def test_unknown_injection_param_rejected(self, rc_divider):
        from repro.circuit.elements import MismatchDecl
        c = compile_circuit(rc_divider)
        with pytest.raises(NetlistError):
            c.mismatch_injections(
                c.nominal, np.zeros((1, c.n)),
                decls=[MismatchDecl(("R1", "bogus"), 1.0)])
