"""Unit and property tests for the EKV-style MOSFET model.

The model's exact derivatives feed every analysis (Newton, LPTV,
adjoint), so the derivative checks here are load-bearing for the whole
package.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import default_technology
from repro.circuit.mosfet import ekv_ids
from repro.constants import PHI_T

TECH = default_technology()
P = TECH.nmos


def eval_nmos(vd, vg, vs, vb=0.0, w=2e-6, l=0.13e-6):
    beta = P.kp * w / l
    lam = P.lam * P.l_ref / l
    return ekv_ids(vd, vg, vs, vb, P.vt0, beta, P.n, lam)


class TestRegions:
    def test_off_device_leaks_little(self):
        ev = eval_nmos(1.2, 0.0, 0.0)
        assert 0.0 < ev.ids < 1e-7

    def test_saturation_square_law(self):
        # deep strong inversion, lambda ~ 0 via L-scaled coefficient
        beta = P.kp * 2e-6 / 0.13e-6
        ev = ekv_ids(1.2, 1.0, 0.0, 0.0, P.vt0, beta, P.n, 0.0)
        expected = beta * (1.0 - P.vt0) ** 2 / (2.0 * P.n)
        assert ev.ids == pytest.approx(expected, rel=0.05)

    def test_subthreshold_slope(self):
        # deep subthreshold: one n*phi_t*ln(10) of VGS is one decade
        i1 = eval_nmos(1.2, 0.08, 0.0).ids
        i2 = eval_nmos(1.2, 0.08 + P.n * PHI_T * np.log(10), 0.0).ids
        assert i2 / i1 == pytest.approx(10.0, rel=0.05)

    def test_triode_linear_in_small_vds(self):
        i1 = eval_nmos(0.01, 1.0, 0.0).ids
        i2 = eval_nmos(0.02, 1.0, 0.0).ids
        assert i2 / i1 == pytest.approx(2.0, rel=0.05)

    def test_drain_source_antisymmetry(self):
        """Swapping D and S must flip the current (channel symmetry)."""
        beta = P.kp * 2e-6 / 0.13e-6
        fwd = ekv_ids(0.3, 1.0, 0.1, 0.0, P.vt0, beta, P.n, 0.0).ids
        rev = ekv_ids(0.1, 1.0, 0.3, 0.0, P.vt0, beta, P.n, 0.0).ids
        assert fwd == pytest.approx(-rev, rel=1e-9)

    def test_zero_vds_zero_current(self):
        assert eval_nmos(0.4, 1.0, 0.4).ids == pytest.approx(0.0, abs=1e-18)

    def test_clm_increases_current(self):
        beta = P.kp * 2e-6 / 0.13e-6
        without = ekv_ids(1.2, 1.0, 0.0, 0.0, P.vt0, beta, P.n, 0.0).ids
        with_clm = ekv_ids(1.2, 1.0, 0.0, 0.0, P.vt0, beta, P.n, 0.2).ids
        assert with_clm > without


class TestDerivatives:
    """Analytic partials vs central finite differences."""

    @pytest.mark.parametrize("vd,vg,vs,vb", [
        (1.2, 1.0, 0.0, 0.0),     # saturation
        (0.05, 1.0, 0.0, 0.0),    # triode
        (1.2, 0.3, 0.0, 0.0),     # subthreshold
        (0.6, 0.9, 0.2, 0.0),     # stacked device bias
        (0.1, 0.8, 0.3, 0.0),     # reverse-ish
    ])
    def test_partials_match_fd(self, vd, vg, vs, vb):
        h = 1e-7
        ev = eval_nmos(vd, vg, vs, vb)
        for g_name, idx in (("g_d", 0), ("g_g", 1), ("g_s", 2),
                            ("g_b", 3)):
            args = [vd, vg, vs, vb]
            args_p = list(args)
            args_m = list(args)
            args_p[idx] += h
            args_m[idx] -= h
            fd = (eval_nmos(*args_p).ids - eval_nmos(*args_m).ids) / (2 * h)
            assert getattr(ev, g_name) == pytest.approx(fd, rel=1e-5,
                                                        abs=1e-12), g_name

    def test_translation_invariance(self):
        """Shifting every terminal by the same voltage changes nothing."""
        ev = eval_nmos(1.0, 0.9, 0.2, 0.0)
        total = ev.g_d + ev.g_g + ev.g_s + ev.g_b
        assert abs(total) < 1e-9 * max(abs(ev.g_g), 1e-12)
        shifted = eval_nmos(1.3, 1.2, 0.5, 0.3)
        assert shifted.ids == pytest.approx(ev.ids, rel=1e-9)

    def test_vt_derivative_is_minus_gm(self):
        """The threshold pseudo-noise modulation (paper Fig. 4)."""
        h = 1e-7
        beta = P.kp * 2e-6 / 0.13e-6
        base = ekv_ids(1.2, 1.0, 0.0, 0.0, P.vt0, beta, P.n, 0.1)
        up = ekv_ids(1.2, 1.0, 0.0, 0.0, P.vt0 + h, beta, P.n, 0.1)
        fd = (up.ids - base.ids) / h
        assert fd == pytest.approx(-base.gm, rel=1e-4)

    def test_beta_derivative_is_ids(self):
        """The current-factor pseudo-noise modulation (paper Fig. 4)."""
        beta = P.kp * 2e-6 / 0.13e-6
        base = ekv_ids(1.2, 1.0, 0.0, 0.0, P.vt0, beta, P.n, 0.1)
        up = ekv_ids(1.2, 1.0, 0.0, 0.0, P.vt0, beta * (1 + 1e-7),
                     P.n, 0.1)
        fd = (up.ids - base.ids) / 1e-7
        assert fd == pytest.approx(base.ids, rel=1e-4)


class TestVectorisation:
    def test_broadcast_over_devices_and_batch(self):
        vg = np.linspace(0.2, 1.2, 7)[:, None] * np.ones((1, 3))
        beta = P.kp * np.array([1e-6, 2e-6, 4e-6]) / 0.13e-6
        ev = ekv_ids(1.2, vg, 0.0, 0.0, P.vt0, beta, P.n, 0.1)
        assert ev.ids.shape == (7, 3)
        assert np.all(np.diff(ev.ids, axis=0) > 0)       # monotone in VG
        assert np.all(np.diff(ev.ids, axis=1) > 0)       # monotone in W

    def test_scalar_matches_vector(self):
        scalar = eval_nmos(1.2, 1.0, 0.0).ids
        vec = eval_nmos(np.array([1.2]), np.array([1.0]),
                        np.array([0.0])).ids
        assert scalar == pytest.approx(float(vec[0]))


@settings(max_examples=200, deadline=None)
@given(vd=st.floats(0.0, 1.32), vg=st.floats(0.0, 1.32),
       vs=st.floats(0.0, 0.6))
def test_property_current_finite_and_gate_drive_strengthens(vd, vg, vs):
    """Anywhere in the supply cube: finite current, and more gate drive
    never weakens conduction (``gm`` has the sign of ``I_DS``, which is
    negative in reverse operation)."""
    ev = eval_nmos(vd, vg, vs)
    assert np.isfinite(ev.ids)
    assert ev.g_g * np.sign(ev.ids) >= -1e-15


@settings(max_examples=200, deadline=None)
@given(vg=st.floats(0.0, 1.32), vs=st.floats(0.0, 0.6),
       d1=st.floats(0.0, 1.32), d2=st.floats(0.0, 1.32))
def test_property_current_monotone_in_vd(vg, vs, d1, d2):
    """With CLM >= 0 the drain current is non-decreasing in VD."""
    lo, hi = min(d1, d2), max(d1, d2)
    i_lo = eval_nmos(lo, vg, vs).ids
    i_hi = eval_nmos(hi, vg, vs).ids
    assert i_hi >= i_lo - 1e-12


@settings(max_examples=100, deadline=None)
@given(vg=st.floats(0.3, 1.2))
def test_property_overflow_safety_extreme_bias(vg):
    """Large biases far outside the supply must not overflow."""
    ev = eval_nmos(50.0, 40.0 * vg, 0.0)
    assert np.isfinite(ev.ids) and np.isfinite(ev.g_g)
