"""Unit tests for AC analysis and stationary noise (.NOISE).

Includes the classic kT/C check: the integrated thermal noise of an RC
filter must equal kT/C regardless of R.
"""

import numpy as np
import pytest

from repro.analysis import ac_analysis, compile_circuit, noise_analysis
from repro.circuit import Circuit
from repro.constants import BOLTZMANN, T_NOMINAL


def rc_filter(r=1e3, c=1e-9):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0", dc=0.0)
    ckt.add_resistor("R", "in", "out", r)
    ckt.add_capacitor("C", "out", "0", c)
    return ckt


class TestAc:
    def test_rc_transfer_magnitude_and_phase(self):
        r, c = 1e3, 1e-9
        compiled = compile_circuit(rc_filter(r, c))
        freqs = np.logspace(3, 8, 21)
        res = ac_analysis(compiled, "VS", freqs)
        h = res.transfer("out")
        expected = 1.0 / (1.0 + 2j * np.pi * freqs * r * c)
        assert np.allclose(np.abs(h), np.abs(expected), rtol=1e-6)
        assert np.allclose(np.angle(h), np.angle(expected), atol=1e-6)

    def test_corner_frequency(self):
        r, c = 1e3, 1e-9
        fc = 1.0 / (2 * np.pi * r * c)
        compiled = compile_circuit(rc_filter(r, c))
        res = ac_analysis(compiled, "VS", np.array([fc]))
        assert abs(res.transfer("out")[0]) == pytest.approx(
            1 / np.sqrt(2), rel=1e-6)

    def test_current_source_stimulus(self):
        ckt = Circuit()
        ckt.add_isource("I1", "0", "a", dc=0.0)
        ckt.add_resistor("R1", "a", "0", 2e3)
        compiled = compile_circuit(ckt)
        res = ac_analysis(compiled, "I1", np.array([1e3]))
        assert res.transfer("a")[0] == pytest.approx(2e3, rel=1e-6)

    def test_rlc_resonance_peak(self):
        ckt = Circuit("rlc")
        ckt.add_vsource("VS", "in", "0", dc=0.0)
        ckt.add_resistor("R", "in", "mid", 10.0)
        ckt.add_inductor("L", "mid", "out", 1e-6)
        ckt.add_capacitor("C", "out", "0", 1e-12)
        compiled = compile_circuit(ckt)
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-12))
        res = ac_analysis(compiled, "VS", np.array([f0]))
        q = np.sqrt(1e-6 / 1e-12) / 10.0
        assert abs(res.transfer("out")[0]) == pytest.approx(q, rel=1e-3)

    def test_gain_of_cs_amplifier(self, tech):
        """|A_v| of a common-source stage ~ gm*(RL || ro)."""
        ckt = Circuit()
        ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
        ckt.add_vsource("VG", "g", "0", dc=0.7)
        ckt.add_resistor("RL", "vdd", "d", 2e3)
        ckt.add_mosfet("M1", "d", "g", "0", "0", 2e-6, 0.26e-6, tech)
        compiled = compile_circuit(ckt)
        res = ac_analysis(compiled, "VG", np.array([1e3]))
        gain = abs(res.transfer("d")[0])
        assert 1.0 < gain < 20.0


class TestStationaryNoise:
    def test_resistor_divider_noise_psd(self):
        """Two equal resistors: output PSD = 4kT(R/2) at low f."""
        ckt = Circuit()
        ckt.add_vsource("VS", "in", "0", dc=0.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_resistor("R2", "out", "0", 1e3)
        compiled = compile_circuit(ckt)
        res = noise_analysis(compiled, "out", np.array([1e3]))
        expected = 4 * BOLTZMANN * T_NOMINAL * 500.0
        assert res.psd[0] == pytest.approx(expected, rel=1e-3)

    def test_ktc_noise(self):
        """Integrated RC noise = kT/C, independent of R."""
        for r in (1e2, 1e4):
            c = 1e-12
            compiled = compile_circuit(rc_filter(r, c))
            fc = 1.0 / (2 * np.pi * r * c)
            freqs = np.logspace(np.log10(fc) - 4, np.log10(fc) + 4, 4000)
            res = noise_analysis(compiled, "out", freqs)
            assert res.total_rms() ** 2 == pytest.approx(
                BOLTZMANN * T_NOMINAL / c, rel=0.02)

    def test_contributions_sum_to_total(self):
        ckt = Circuit()
        ckt.add_vsource("VS", "in", "0", dc=0.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_resistor("R2", "out", "0", 3e3)
        compiled = compile_circuit(ckt)
        res = noise_analysis(compiled, "out", np.array([1e3, 1e6]))
        total = sum(v for v in res.contributions.values())
        assert np.allclose(total, res.psd, rtol=1e-12)

    def test_mosfet_noise_appears(self, tech):
        ckt = Circuit()
        ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
        ckt.add_vsource("VG", "g", "0", dc=0.7)
        ckt.add_resistor("RL", "vdd", "d", 2e3, noisy=False)
        ckt.add_mosfet("M1", "d", "g", "0", "0", 2e-6, 0.26e-6, tech)
        compiled = compile_circuit(ckt)
        res = noise_analysis(compiled, "d", np.array([1e3, 1e9]))
        # flicker dominates at 1 kHz, thermal at 1 GHz
        assert (res.contributions[("M1", "flicker")][0]
                > res.contributions[("M1", "thermal")][0])
        assert (res.contributions[("M1", "flicker")][1]
                < res.contributions[("M1", "thermal")][1])

    def test_summary_renders(self):
        compiled = compile_circuit(rc_filter())
        res = noise_analysis(compiled, "out", np.array([1e4]))
        assert "output noise" in res.summary()
