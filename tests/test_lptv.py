"""Tests for the time-domain LPTV sensitivity engine - the heart of the
paper's method.

Ground truths used:

* finite differences of re-solved PSS (exact up to FD truncation),
* analytic phasor sensitivities on linear circuits,
* the AC analysis (the LPTV engine on an LTI circuit must reduce to it),
* the oscillator adjoint vs re-solved oscillator PSS.
"""

import numpy as np
import pytest

from repro.analysis import (compile_circuit, periodic_sensitivities, pss,
                            pss_oscillator)
from repro.analysis.lptv import PeriodicLinearization
from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def rc_pss():
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    compiled = compile_circuit(ckt)
    result = pss(compiled, 1e-6,
                 options=PssOptions(n_steps=256, settle_periods=3))
    return compiled, result


def rebuild_rc(dr=0.0, dc=0.0):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3 + dr, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9 + dc, sigma_rel=0.02)
    return compile_circuit(ckt)


class TestDrivenSensitivities:
    def test_matches_finite_difference_r(self, rc_pss):
        compiled, p0 = rc_pss
        sens = periodic_sensitivities(p0)
        i = sens.keys.index(("R", "r"))
        opts = PssOptions(n_steps=256, settle_periods=3)
        p1 = pss(rebuild_rc(dr=0.1), 1e-6, options=opts)
        fd = (p1.x[:, 1] - p0.x[:, 1]) / 0.1
        w = sens.node_waveforms("out")[:, i]
        assert np.max(np.abs(w - fd)) < 2e-4 * np.max(np.abs(fd))

    def test_matches_finite_difference_c(self, rc_pss):
        compiled, p0 = rc_pss
        sens = periodic_sensitivities(p0)
        i = sens.keys.index(("C", "c"))
        opts = PssOptions(n_steps=256, settle_periods=3)
        p1 = pss(rebuild_rc(dc=1e-13), 1e-6, options=opts)
        fd = (p1.x[:, 1] - p0.x[:, 1]) / 1e-13
        w = sens.node_waveforms("out")[:, i]
        assert np.max(np.abs(w - fd)) < 2e-4 * np.max(np.abs(fd))

    def test_analytic_phasor_sensitivity(self, rc_pss):
        """d v_out / dR of the fundamental must match the phasor
        derivative -j w C Vin / (1 + j w R C)^2."""
        compiled, p0 = rc_pss
        sens = periodic_sensitivities(p0)
        i = sens.keys.index(("R", "r"))
        w = sens.node_waveforms("out")[:, i]
        # fft/N yields the coefficient of exp(+j w0 t) directly
        got = np.fft.fft(w[:-1])[1] / (w.shape[0] - 1)
        w0 = 2 * np.pi * 1e6
        vin1 = 0.3 / 2j
        expected = -1j * w0 * 1e-9 * vin1 / (1 + 1j * w0 * 1e3 * 1e-9) ** 2
        assert got == pytest.approx(expected, rel=1e-3)

    def test_mosfet_vt_beta_sensitivities_vs_fd(self, cs_amp_pss, tech):
        compiled, p0 = cs_amp_pss
        sens = periodic_sensitivities(p0)
        iout = compiled.node_index["d"]
        opts = PssOptions(n_steps=512, settle_periods=4)
        for key, delta in ((("M1", "vt0"), 1e-5),
                           (("M1", "beta_rel"), 1e-5)):
            i = sens.keys.index(key)
            state = compiled.make_state(deltas={key: delta})
            p1 = pss(compiled, 1e-6, state=state, options=opts)
            fd = (p1.x[:, iout] - p0.x[:, iout]) / delta
            w = sens.node_waveforms("d")[:, i]
            err = np.max(np.abs(w - fd)) / np.max(np.abs(fd))
            assert err < 5e-3, key

    def test_injections_must_match_orbit(self, rc_pss):
        compiled, p0 = rc_pss
        lin = PeriodicLinearization(p0)
        bad = compiled.mismatch_injections(p0.state, p0.x[:10])
        with pytest.raises(AnalysisError):
            lin.solve(bad)

    def test_empty_injections_rejected(self, rc_pss):
        compiled, p0 = rc_pss
        lin = PeriodicLinearization(p0)
        with pytest.raises(AnalysisError):
            lin.solve([])

    def test_df_dp_requires_oscillator(self, rc_pss):
        compiled, p0 = rc_pss
        sens = periodic_sensitivities(p0)
        with pytest.raises(AnalysisError):
            sens.df_dp()


class TestLptvReducesToAc:
    """On an LTI circuit the periodic sensitivity of the orbit equals
    the phasor-derivative waveform - equivalently, the LPTV transfer at
    f -> 0 equals the AC transfer, which the RC checks above exercise.
    Here: a time-invariant bias point (DC-driven RC) must give a
    *constant* sensitivity waveform equal to the DC sensitivity."""

    def test_constant_waveform_for_dc_drive(self):
        ckt = Circuit("dcrc")
        ckt.add_vsource("VS", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.01)
        ckt.add_resistor("R2", "out", "0", 1e3, sigma_rel=0.01)
        ckt.add_capacitor("C", "out", "0", 1e-12)
        compiled = compile_circuit(ckt)
        p = pss(compiled, 1e-6, options=PssOptions(n_steps=64,
                                                   settle_periods=1))
        sens = periodic_sensitivities(p)
        w = sens.node_waveforms("out")
        assert np.max(np.abs(w - w[0])) < 1e-9 * np.max(np.abs(w))
        # divider DC sensitivity: d/dR1 of Vin*R2/(R1+R2) = -Vin*R2/(R1+R2)^2
        i = sens.keys.index(("R1", "r"))
        assert w[0, i] == pytest.approx(-1.0 * 1e3 / 4e6, rel=1e-6)


class TestOscillatorAdjoint:
    def test_frequency_sensitivities_vs_fd(self, oscillator_pss):
        compiled, p0 = oscillator_pss
        sens = periodic_sensitivities(p0)
        dfdp = sens.df_dp()
        opts = PssOptions(n_steps=300)
        for key, delta in ((("MN1", "vt0"), 2e-4),
                           (("MP3", "beta_rel"), 2e-3)):
            i = sens.keys.index(key)
            state = compiled.make_state(deltas={key: delta})
            p1 = pss_oscillator(compiled, anchor="osc1", t_settle=8e-9,
                                dt_settle=2e-12, state=state, options=opts,
                                period_guess=p0.period)
            fd = (1 / p1.period - 1 / p0.period) / delta
            assert dfdp[i] == pytest.approx(fd, rel=0.03), key

    def test_ring_symmetry_of_sensitivities(self, oscillator_pss):
        """All NMOS vt0 sensitivities must have equal magnitude (the
        ring is rotationally symmetric)."""
        compiled, p0 = oscillator_pss
        sens = periodic_sensitivities(p0)
        dfdp = sens.df_dp()
        mags = [abs(dfdp[sens.keys.index((f"MN{i}", "vt0"))])
                for i in range(1, 6)]
        assert np.max(mags) / np.min(mags) == pytest.approx(1.0, rel=0.02)

    def test_vt_increase_slows_nmos_ring(self, oscillator_pss):
        """Higher NMOS threshold -> weaker pulldown -> lower frequency."""
        compiled, p0 = oscillator_pss
        sens = periodic_sensitivities(p0)
        i = sens.keys.index(("MN2", "vt0"))
        assert sens.df_dp()[i] < 0.0

    def test_beta_increase_speeds_ring(self, oscillator_pss):
        compiled, p0 = oscillator_pss
        sens = periodic_sensitivities(p0)
        i = sens.keys.index(("MN2", "beta_rel"))
        assert sens.df_dp()[i] > 0.0
