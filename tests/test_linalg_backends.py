"""Backend parity suite and Monte-Carlo robustness regressions.

Parity: the dense, cached-dense and sparse linear-solver backends must
agree to tight tolerance on every analysis (dcop / transient / pss /
lptv) - factorization reuse is an implementation detail, never a
numerical one.

Regressions covered (all previously fatal or wrong):

* a single diverging/singular lane in a batched transient killed the
  whole Monte-Carlo run instead of being isolated and frozen;
* ``MonteCarloResult.n_failed`` counted failed *measures*, not failed
  *lanes*, double-counting lanes that fail twice;
* the measurement-window mask used an absolute ``1e-15`` time
  tolerance, silently dropping grid-edge samples on second-scale runs.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.montecarlo as mc_mod
from repro.analysis import compile_circuit, pss, periodic_sensitivities
from repro.analysis.dcop import NewtonOptions, dc_operating_point
from repro.analysis.pss import PssOptions
from repro.analysis.transient import TransientOptions, transient
from repro.circuit import Circuit, Sine
from repro.core import DcLevel, monte_carlo_transient
from repro.core.montecarlo import measure_lanes, measurement_window_mask
from repro.errors import SingularMatrixError
from repro.linalg import (SPARSE_AUTO_THRESHOLD, CachedDenseBackend,
                          FactorizationCache, SparseBackend,
                          available_backends, mark_singular_lanes,
                          resolve_backend)

BACKENDS = ["dense", "cached", "sparse"]


def cs_amp(tech):
    """Sine-driven common-source MOS amplifier with mismatch decls."""
    ckt = Circuit("cs_amp")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VG", "g", "0",
                    wave=Sine(amplitude=0.25, freq=1e6, offset=0.7))
    ckt.add_resistor("RL", "vdd", "d", 2e3, sigma_rel=0.02)
    ckt.add_mosfet("M1", "d", "g", "0", "0", w=2e-6, l=0.26e-6, tech=tech)
    ckt.add_capacitor("CL", "d", "0", 20e-15)
    return ckt


def rc_ladder(n_sections):
    """Sine-driven RC ladder: ``n_sections + 1`` nodes, all linear."""
    ckt = Circuit(f"ladder{n_sections}")
    ckt.add_vsource("VIN", "n0", "0",
                    wave=Sine(amplitude=0.5, freq=1e6, offset=0.5))
    for k in range(1, n_sections + 1):
        ckt.add_resistor(f"R{k}", f"n{k-1}", f"n{k}", 1e3)
        ckt.add_capacitor(f"C{k}", f"n{k}", "0", 1e-12)
    return ckt


def floating_cap_circuit():
    """One capacitor node whose Jacobian row vanishes when ``c -> 0``.

    Compiled with ``cmin=0`` so a lane with capacitor delta ``-c`` has
    an exactly singular transient Jacobian.
    """
    ckt = Circuit("floatcap")
    ckt.add_isource("I1", "a", "0", dc=0.0)
    ckt.add_capacitor("C1", "a", "0", 1e-9, sigma_rel=0.1)
    ckt.set_ic(a=0.5)
    return ckt


# ---------------------------------------------------------------------------
# backend selection and plumbing
# ---------------------------------------------------------------------------
class TestBackendSelection:
    def test_registry(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_auto_picks_by_size(self):
        assert resolve_backend("auto", 10).name == "cached"
        assert resolve_backend(None, 10).name == "cached"
        assert resolve_backend("auto", SPARSE_AUTO_THRESHOLD).name == "sparse"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown linear-solver"):
            resolve_backend("cholesky", 10)

    def test_compile_and_set_backend(self, tech):
        compiled = compile_circuit(cs_amp(tech), backend="sparse")
        assert compiled.backend.name == "sparse"
        assert compiled.set_backend("dense").backend.name == "dense"

    def test_percall_override_does_not_mutate_caller(self, tech):
        """monte_carlo_transient(compiled, backend=...) is a per-call
        override, not a persistent switch of the caller's object."""
        compiled = compile_circuit(cs_amp(tech), backend="sparse")
        monte_carlo_transient(compiled, [DcLevel("vd", "d")], n=3,
                              t_stop=1e-7, dt=1e-9, backend="dense")
        assert compiled.backend.name == "sparse"

    def test_auto_on_large_netlist(self):
        compiled = compile_circuit(rc_ladder(SPARSE_AUTO_THRESHOLD))
        assert compiled.backend.name == "sparse"
        assert compile_circuit(rc_ladder(4)).backend.name == "cached"


# ---------------------------------------------------------------------------
# parity: every backend must produce the same physics
# ---------------------------------------------------------------------------
class TestBackendParity:
    def _per_backend(self, tech, run):
        ref = None
        for be in BACKENDS:
            out = run(compile_circuit(cs_amp(tech), backend=be))
            if ref is None:
                ref = out
            else:
                np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-8)

    def test_dcop(self, tech):
        self._per_backend(tech, lambda c: dc_operating_point(c).x)

    def test_transient(self, tech):
        self._per_backend(
            tech, lambda c: transient(c, t_stop=2e-6, dt=4e-9).signal("d"))

    def test_batched_transient(self, tech):
        deltas = {("M1", "vt0"): np.array([-5e-3, 0.0, 5e-3]),
                  ("RL", "r"): np.array([20.0, 0.0, -20.0])}

        def run(c):
            state = c.make_state(deltas=deltas)
            return transient(c, t_stop=2e-6, dt=4e-9,
                             state=state).signal("d")
        self._per_backend(tech, run)

    def test_pss_and_lptv(self, tech):
        opts = PssOptions(n_steps=128, settle_periods=2)

        def run(c):
            p = pss(c, 1e-6, options=opts)
            sens = periodic_sensitivities(p)
            return sens.node_waveforms("d")
        self._per_backend(tech, run)

    def test_sparse_matches_dense_on_ladder(self):
        sigs = {}
        for be in ("dense", "sparse"):
            c = compile_circuit(rc_ladder(40), backend=be)
            sigs[be] = transient(c, t_stop=1e-6, dt=5e-9).signal("n40")
        np.testing.assert_allclose(sigs["sparse"], sigs["dense"],
                                   rtol=1e-8, atol=1e-12)


# ---------------------------------------------------------------------------
# factorization cache policy
# ---------------------------------------------------------------------------
class TestFactorizationCache:
    def test_reuses_until_contraction_stalls(self):
        cache = FactorizationCache(CachedDenseBackend())
        a = np.diag([2.0, 4.0])
        cache.new_sequence()
        cache.solve(np.array([1.0, 1.0]), lambda: a)
        assert cache.n_factor == 1
        cache.solve(np.array([0.1, 0.1]), lambda: a)   # contracting: reuse
        assert (cache.n_factor, cache.n_reused) == (1, 1)
        cache.solve(np.array([10.0, 10.0]), lambda: a)  # stall: re-factor
        assert cache.n_factor == 2

    def test_singular_jacobian_raises_and_invalidates(self):
        cache = FactorizationCache(CachedDenseBackend())
        with pytest.raises(np.linalg.LinAlgError):
            cache.solve(np.ones(2), lambda: np.zeros((2, 2)))
        cache.solve(np.ones(2), lambda: np.eye(2))  # recovered
        assert cache.n_factor == 1

    def test_singularity_at_stall_refactor_invalidates(self):
        """A lane going singular exactly when a contraction stall
        triggers a re-factor must not stay cached - the lane-isolation
        retry depends on the next solve re-factoring."""
        cache = FactorizationCache(CachedDenseBackend())
        good = np.stack([np.eye(2), 2.0 * np.eye(2)])
        bad = np.stack([np.eye(2), np.zeros((2, 2))])  # lane 1 singular
        rhs = np.ones((2, 2))
        cache.new_sequence()
        cache.solve(rhs, lambda: good)
        cache.solve(0.1 * rhs, lambda: good)           # contracting reuse
        with pytest.raises(np.linalg.LinAlgError):
            cache.solve(10.0 * rhs, lambda: bad)       # stall -> re-factor
        out = cache.solve(rhs, lambda: good)           # repaired retry
        assert np.all(np.isfinite(out))

    def test_age_bound_forces_refactor(self):
        """Sequences accepting on their first iteration never trip the
        contraction test; the age bound must retire the factorization
        anyway so a drifting Jacobian cannot be reused forever."""
        cache = FactorizationCache(CachedDenseBackend())
        a = np.eye(2)
        for _ in range(cache.policy.max_age + 2):
            cache.new_sequence()
            cache.solve(np.full(2, 1e-12), lambda: a)
        assert cache.n_factor >= 2

    def test_constant_jacobian_never_ages_out(self):
        cache = FactorizationCache(CachedDenseBackend(), jac_constant=True)
        a = np.eye(2)
        for _ in range(cache.policy.max_age + 2):
            cache.new_sequence()
            cache.solve(np.full(2, 1e-12), lambda: a)
        assert cache.n_factor == 1

    def test_sparse_multi_rhs_and_transpose(self):
        rng = np.random.default_rng(7)
        a = np.tril(rng.normal(size=(6, 6))) + 6 * np.eye(6)
        b = rng.normal(size=(6, 3))
        fact = SparseBackend().factor(a)
        np.testing.assert_allclose(fact.solve(b), np.linalg.solve(a, b),
                                   atol=1e-12)
        np.testing.assert_allclose(fact.solve(b, trans=True),
                                   np.linalg.solve(a.T, b), atol=1e-12)

    def test_mark_singular_lanes(self):
        jac = np.stack([np.eye(2), np.zeros((2, 2)),
                        np.full((2, 2), np.nan), np.eye(2)])
        failed = np.zeros(4, dtype=bool)
        assert mark_singular_lanes(jac, failed) == 2
        assert failed.tolist() == [False, True, True, False]


# ---------------------------------------------------------------------------
# regression: lane isolation in batched transients
# ---------------------------------------------------------------------------
class TestLaneIsolation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_singular_lane_is_frozen(self, backend):
        compiled = compile_circuit(floating_cap_circuit(), cmin=0.0,
                                   backend=backend)
        deltas = {("C1", "c"): np.array([0.0, -1e-9, 0.0])}
        state = compiled.make_state(deltas=deltas)
        res = transient(compiled, t_stop=1e-6, dt=1e-8, state=state,
                        options=TransientOptions(isolate_lanes=True))
        assert res.failed_lanes.tolist() == [False, True, False]
        v = res.signal("a")
        assert np.all(np.isnan(v[:, 1]))
        np.testing.assert_allclose(v[:, [0, 2]], 0.5, atol=1e-9)
        assert np.all(np.isnan(res.x_final_pad[1]))

    def test_singular_lane_raises_without_isolation(self):
        compiled = compile_circuit(floating_cap_circuit(), cmin=0.0)
        state = compiled.make_state(
            deltas={("C1", "c"): np.array([0.0, -1e-9, 0.0])})
        with pytest.raises(SingularMatrixError):
            transient(compiled, t_stop=1e-6, dt=1e-8, state=state)

    def test_nonconverging_lane_is_frozen(self):
        """A lane needing more step-limited Newton iterations than the
        budget must not take the healthy lanes down with it."""
        ckt = Circuit("rc")
        ckt.add_vsource("V1", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_capacitor("C1", "out", "0", 1e-9)
        compiled = compile_circuit(ckt)
        state = compiled.make_state(
            source_values={"V1": np.array([1.0, 50.0])})
        opts = TransientOptions(
            isolate_lanes=True,
            newton=NewtonOptions(max_step=1.0, max_iterations=10))
        res = transient(compiled, t_stop=1e-6, dt=1e-8, state=state,
                        x0_pad=compiled.initial_padded((2,)),
                        options=opts)
        assert res.failed_lanes.tolist() == [False, True]
        v = res.signal("out")
        assert np.all(np.isnan(v[:, 1]))
        # healthy lane follows the analytic RC charge curve (t = tau, up
        # to the first-step artifact of trap from an inconsistent IC)
        assert v[-1, 0] == pytest.approx(1.0 - np.exp(-1.0), rel=1e-2)

    def test_monte_carlo_survives_divergent_lane(self, monkeypatch):
        """End to end: a deliberately broken lane completes the MC run
        and is reported as one failed sample (not one per measure)."""
        compiled = compile_circuit(floating_cap_circuit(), cmin=0.0)

        def rigged(compiled_, n, rng, sigma_scale=1.0, keys=None,
                   param_covariance=None):
            deltas = np.zeros(n)
            deltas[2] = -1e-9            # exactly cancels the capacitor
            return {("C1", "c"): deltas}

        monkeypatch.setattr(mc_mod, "sample_mismatch", rigged)
        measures = [DcLevel("va", "a"), DcLevel("va2", "a")]
        mc = monte_carlo_transient(compiled, measures, n=5,
                                   t_stop=1e-6, dt=1e-8)
        assert mc.n_failed == 1                      # distinct lanes
        assert mc.failed_metrics == {"va": 1, "va2": 1}
        assert np.isnan(mc.samples["va"][2])
        assert mc.stats["va"].mean == pytest.approx(0.5, abs=1e-9)


# ---------------------------------------------------------------------------
# regression: n_failed lane counting and window tolerance
# ---------------------------------------------------------------------------
class TestMeasureLanes:
    def test_counts_distinct_failed_lanes(self):
        t = np.linspace(0.0, 1.0, 11)
        sig = np.ones((11, 3))
        sig[:, 1] = np.nan                  # lane 1 fails both measures
        measures = [DcLevel("m1", "a"), DcLevel("m2", "a")]
        out = {"m1": np.empty(3), "m2": np.empty(3)}
        assert measure_lanes(t, {"a": sig}, measures, out, 0) == 1
        assert np.isnan(out["m1"][1]) and np.isnan(out["m2"][1])


class TestWindowMask:
    def test_grid_edge_samples_survive_second_scale_runs(self):
        # mirror the Monte-Carlo call pattern: a last-period window
        # (24 p, 25 p) on a grid built from dt = p / 400 - the edge
        # sample lands ulps past the window for second-scale periods
        p = 0.9
        dt = p / 400
        t = dt * np.arange(400 * 25 + 1)
        w = (24 * p, 25 * p)
        assert t[-1] > w[1]                 # the rounding the bug hits
        old = (t >= w[0] - 1e-15) & (t <= w[1] + 1e-15)
        assert old.sum() == 400             # seed behaviour: edge dropped
        mask = measurement_window_mask(t, w, dt)
        assert mask.sum() == 401
        assert mask[-1]

    def test_tolerance_does_not_leak_neighbours(self):
        dt = 1e-9
        t = dt * np.arange(101)
        mask = measurement_window_mask(t, (2e-9, 5e-9), dt)
        assert mask.sum() == 4              # samples at 2, 3, 4, 5 ns
