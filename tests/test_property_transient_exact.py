"""Property test: the transient integrator vs the exact linear solution.

For any linear RC network the MNA system reduces to a linear ODE whose
step response is computable with a matrix exponential.  Hypothesis
generates random RC ladder networks; the trapezoidal integrator must
track ``expm`` to discretisation accuracy.  This guards the integrator,
the stamping and the per-row theta scheme all at once.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.analysis import compile_circuit, transient
from repro.circuit import Circuit


def build_ladder(rs, cs, v_in=1.0):
    """Series-R / shunt-C ladder with len(rs) == len(cs) stages."""
    ckt = Circuit("ladder")
    ckt.add_vsource("V1", "n0", "0", dc=v_in)
    prev = "n0"
    for i, (r, c) in enumerate(zip(rs, cs), start=1):
        ckt.add_resistor(f"R{i}", prev, f"n{i}", r)
        ckt.add_capacitor(f"C{i}", f"n{i}", "0", c)
        prev = f"n{i}"
    return ckt


def exact_response(rs, cs, t, v_in=1.0):
    """Node voltages of the ladder at time *t*, from rest, via expm.

    State = capacitor voltages v_k; C_k dv_k/dt = (v_{k-1} - v_k)/R_k
    - (v_k - v_{k+1})/R_{k+1}.
    """
    n = len(rs)
    a = np.zeros((n, n))
    b = np.zeros(n)
    for k in range(n):
        a[k, k] -= 1.0 / (rs[k] * cs[k])
        if k > 0:
            a[k, k - 1] += 1.0 / (rs[k] * cs[k])
        else:
            b[k] = v_in / (rs[k] * cs[k])
        if k + 1 < n:
            a[k, k] -= 1.0 / (rs[k + 1] * cs[k])
            a[k, k + 1] += 1.0 / (rs[k + 1] * cs[k])
    # x(t) = expm(a t) x0 + a^-1 (expm(a t) - I) b, x0 = 0
    ea = expm(a * t)
    return np.linalg.solve(a, (ea - np.eye(n)) @ b)


stage_values = st.lists(
    st.tuples(st.floats(100.0, 1e4), st.floats(1e-12, 1e-10)),
    min_size=1, max_size=5)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stages=stage_values)
def test_property_ladder_step_response_matches_expm(stages):
    rs = [s[0] for s in stages]
    cs = [s[1] for s in stages]
    ckt = build_ladder(rs, cs)
    ckt.set_ic(n0=1.0, **{f"n{i}": 0.0 for i in range(1, len(rs) + 1)})
    compiled = compile_circuit(ckt)

    tau_min = min(r * c for r, c in stages)
    tau_max = sum(r * c for r, c in stages)
    t_stop = 2.0 * tau_max
    dt = min(tau_min / 20.0, t_stop / 200.0)
    res = transient(compiled, t_stop=t_stop, dt=dt)

    exact = exact_response(rs, cs, t_stop)
    for i in range(1, len(rs) + 1):
        got = res.signals[f"n{i}"][-1]
        assert got == pytest.approx(exact[i - 1], abs=5e-3), f"node n{i}"


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stages=stage_values)
def test_property_dc_gain_is_unity(stages):
    """At t >> tau every ladder node must reach the source voltage."""
    rs = [s[0] for s in stages]
    cs = [s[1] for s in stages]
    ckt = build_ladder(rs, cs)
    ckt.set_ic(n0=1.0, **{f"n{i}": 0.0 for i in range(1, len(rs) + 1)})
    compiled = compile_circuit(ckt)
    # Elmore constant bounds the slowest mode of an RC ladder
    tau_elmore = sum(c * sum(rs[:k + 1]) for k, (r, c) in
                     enumerate(stages))
    res = transient(compiled, t_stop=25.0 * tau_elmore,
                    dt=tau_elmore / 10.0)
    for i in range(1, len(rs) + 1):
        assert res.signals[f"n{i}"][-1] == pytest.approx(1.0, abs=2e-3)
