"""Tests for the periodic steady-state engines (driven and oscillator)."""

import numpy as np
import pytest

from repro.analysis import compile_circuit, pss, pss_oscillator
from repro.analysis.pss import PssOptions
from repro.errors import AnalysisError


class TestDrivenPss:
    def test_rc_matches_phasor_solution(self, rc_lowpass):
        f0, r, cv = 1e6, 1e3, 1e-9
        compiled = compile_circuit(rc_lowpass)
        res = pss(compiled, 1 / f0,
                  options=PssOptions(n_steps=400, settle_periods=2))
        assert res.residual < 1e-8
        h = 1.0 / (1.0 + 2j * np.pi * f0 * r * cv)
        amp = res.fundamental_amplitude("out")
        assert amp == pytest.approx(0.3 * abs(h), rel=1e-3)
        # DC component passes through unattenuated
        assert res.waveform("out").mean() == pytest.approx(0.6, abs=1e-3)

    def test_orbit_endpoints_match(self, rc_lowpass):
        compiled = compile_circuit(rc_lowpass)
        res = pss(compiled, 1e-6, options=PssOptions(n_steps=128,
                                                     settle_periods=1))
        assert np.max(np.abs(res.x[-1] - res.x[0])) < 1e-8

    def test_settle_engine_agrees_with_shooting(self, rc_lowpass):
        compiled = compile_circuit(rc_lowpass)
        shoot = pss(compiled, 1e-6, options=PssOptions(n_steps=200))
        settle = pss(compiled, 1e-6,
                     options=PssOptions(n_steps=200, engine="settle",
                                        settle_periods=2))
        iout = compiled.node_index["out"]
        assert np.allclose(shoot.x[:, iout], settle.x[:, iout], atol=1e-6)

    def test_nonlinear_stage_pss(self, cs_amp_pss):
        compiled, res = cs_amp_pss
        assert res.residual < 1e-8
        # output swings below VDD around a sensible bias
        w = res.waveform("d")
        assert 0.1 < w.min() < w.max() < 1.25

    def test_batched_state_rejected(self, rc_lowpass):
        compiled = compile_circuit(rc_lowpass)
        state = compiled.make_state(deltas={("R", "r"): np.zeros(2)})
        with pytest.raises(AnalysisError):
            pss(compiled, 1e-6, state=state)

    def test_waveset_has_all_nodes(self, rc_lowpass):
        compiled = compile_circuit(rc_lowpass)
        res = pss(compiled, 1e-6, options=PssOptions(n_steps=64,
                                                     settle_periods=1))
        ws = res.waveset()
        assert set(ws.names()) == {"in", "out"}


class TestOscillatorPss:
    def test_ring_oscillator_period(self, oscillator_pss):
        compiled, res = oscillator_pss
        assert res.is_oscillator
        assert res.residual < 1e-7
        # sanity band for the default ring: a few GHz
        assert 0.5e9 < res.f0 < 10e9

    def test_period_matches_transient_estimate(self, oscillator_pss, tech):
        from repro.analysis import transient
        from repro.analysis.transient import TransientOptions
        compiled, res = oscillator_pss
        tr = transient(compiled, t_stop=8e-9, dt=1e-12,
                       options=TransientOptions(record=["osc1"]))
        f_tr = tr.waveset()["osc1"].frequency(skip=5)
        assert res.f0 == pytest.approx(f_tr, rel=2e-3)

    def test_orbit_swings_rail_to_rail(self, oscillator_pss, tech):
        compiled, res = oscillator_pss
        w = res.waveform("osc3")
        assert w.min() < 0.1 * tech.vdd
        assert w.max() > 0.9 * tech.vdd

    def test_all_stages_same_waveform_shifted(self, oscillator_pss):
        """In a symmetric ring all stages see the same orbit, phase
        shifted by T/N per stage pair."""
        compiled, res = oscillator_pss
        w1 = res.waveform("osc1")
        w3 = res.waveform("osc3")
        assert w1.peak_to_peak() == pytest.approx(w3.peak_to_peak(),
                                                  rel=1e-3)

    def test_anchor_is_pinned(self, oscillator_pss):
        compiled, res = oscillator_pss
        assert res.anchor_index == compiled.node_index["osc1"]

    def test_period_guess_shortcut(self, tech):
        from repro.circuits import ring_oscillator
        compiled = compile_circuit(ring_oscillator(tech, n_stages=3,
                                                   c_load=10e-15))
        res = pss_oscillator(compiled, anchor="osc1", t_settle=6e-9,
                             dt_settle=2e-12,
                             options=PssOptions(n_steps=200))
        res2 = pss_oscillator(compiled, anchor="osc1", t_settle=6e-9,
                              dt_settle=2e-12,
                              options=PssOptions(n_steps=200),
                              period_guess=res.period)
        assert res2.period == pytest.approx(res.period, rel=1e-6)

    def test_even_stage_count_rejected(self, tech):
        from repro.circuits import ring_oscillator
        with pytest.raises(ValueError):
            ring_oscillator(tech, n_stages=4)


class TestComparatorPss:
    def test_metastable_steady_state(self, comparator_pss):
        tb, compiled, res = comparator_pss
        assert res.residual < 1e-8
        # nominal circuit is symmetric: offset is (numerically) zero
        assert abs(res.waveform("vos").mean()) < 1e-6

    def test_outputs_precharged_at_cycle_start(self, comparator_pss, tech):
        tb, compiled, res = comparator_pss
        assert res.waveform("outp")(res.t[0]) == pytest.approx(
            tech.vdd, abs=0.05)
        assert res.waveform("outn")(res.t[0]) == pytest.approx(
            tech.vdd, abs=0.05)

    def test_injected_vt_shift_moves_offset_one_to_one(self, comparator_pss,
                                                       tech):
        """A VT shift on one input device must appear 1:1 in vos."""
        tb, compiled, _ = comparator_pss
        state = compiled.make_state(deltas={("M2", "vt0"): 5e-3})
        res = pss(compiled, tb.period,
                  options=PssOptions(n_steps=400, settle_periods=40),
                  state=state)
        assert res.waveform("vos").mean() == pytest.approx(5e-3, rel=0.03)
