"""Shared fixtures: technology, small circuits, cached PSS results.

Expensive fixtures (comparator PSS, oscillator PSS) are session-scoped so
the integration tests share one solve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compile_circuit, pss, pss_oscillator
from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine, default_technology
from repro.circuits import (logic_path_testbench, ring_oscillator,
                            strongarm_offset_testbench)


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture()
def rc_divider():
    """DC resistive divider with mismatch on both resistors."""
    ckt = Circuit("divider")
    ckt.add_vsource("V1", "in", "0", dc=1.2)
    ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
    return ckt


@pytest.fixture()
def rc_lowpass():
    """Sine-driven RC low-pass with R and C mismatch."""
    ckt = Circuit("rc_lowpass")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


@pytest.fixture(scope="session")
def cs_amp_pss(tech):
    """PSS of a sine-driven common-source amplifier (time-varying G)."""
    ckt = Circuit("cs_amp")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VG", "g", "0",
                    wave=Sine(amplitude=0.25, freq=1e6, offset=0.7))
    ckt.add_resistor("RL", "vdd", "d", 2e3, sigma_rel=0.02)
    ckt.add_mosfet("M1", "d", "g", "0", "0", w=2e-6, l=0.26e-6, tech=tech)
    ckt.add_capacitor("CL", "d", "0", 20e-15)
    compiled = compile_circuit(ckt)
    result = pss(compiled, 1e-6,
                 options=PssOptions(n_steps=512, settle_periods=4))
    return compiled, result


@pytest.fixture(scope="session")
def oscillator_pss(tech):
    """Converged PSS of the 5-stage ring oscillator."""
    ckt = ring_oscillator(tech)
    compiled = compile_circuit(ckt)
    result = pss_oscillator(compiled, anchor="osc1", t_settle=8e-9,
                            dt_settle=2e-12,
                            options=PssOptions(n_steps=300))
    return compiled, result


@pytest.fixture(scope="session")
def comparator_pss(tech):
    """Converged PSS of the StrongARM offset testbench."""
    tb = strongarm_offset_testbench(tech)
    compiled = compile_circuit(tb.circuit)
    result = pss(compiled, tb.period,
                 options=PssOptions(n_steps=500, settle_periods=30))
    return tb, compiled, result


@pytest.fixture(scope="session")
def logic_path_x(tech):
    return logic_path_testbench(tech, late_input="X")


def assert_close(a, b, rtol, msg=""):
    __tracebackhide__ = True
    if not np.allclose(a, b, rtol=rtol):
        raise AssertionError(
            f"{msg}: {a!r} vs {b!r} (rtol {rtol})")
