"""Tests for the Gaussian-mixture extension (paper Section VIII,
Fig. 13)."""

import numpy as np
import pytest

from repro.core.gaussian_mixture import (ProjectedMixture, project_mixture,
                                         project_mixture_with_background,
                                         split_gaussian)
from repro.stats import gaussian_pdf


class TestSplitGaussian:
    def test_weights_normalised(self):
        comps = split_gaussian(1.0, n_components=7)
        assert sum(c.weight for c in comps) == pytest.approx(1.0)

    def test_mixture_reproduces_parent_moments(self):
        comps = split_gaussian(2.0, n_components=15, span_sigmas=4.0)
        mix = ProjectedMixture(list(comps))
        assert mix.mean == pytest.approx(0.0, abs=1e-9)
        assert mix.sigma == pytest.approx(2.0, rel=0.05)
        assert abs(mix.skewness) < 1e-9

    def test_mixture_pdf_close_to_parent(self):
        comps = split_gaussian(1.0, n_components=21, span_sigmas=4.5)
        mix = ProjectedMixture(list(comps))
        x = np.linspace(-3, 3, 301)
        assert np.max(np.abs(mix.pdf(x) - gaussian_pdf(x, 0, 1))) < 0.02

    def test_needs_two_components(self):
        with pytest.raises(ValueError):
            split_gaussian(1.0, n_components=1)


class TestProjection:
    def test_linear_model_projects_to_gaussian(self):
        """With a globally linear model the mixture must reproduce the
        plain linear result: mean P0, sigma |S| sigma_p."""
        comps = split_gaussian(0.5, n_components=15, span_sigmas=4.0)
        mix = project_mixture(lambda p: (2.0 + 3.0 * p, 3.0), comps)
        assert mix.mean == pytest.approx(2.0, abs=1e-9)
        assert mix.sigma == pytest.approx(1.5, rel=0.05)
        assert abs(mix.skewness) < 1e-6

    def test_quadratic_model_produces_skew(self):
        """A convex response (P = p^2-ish) must yield positive skew -
        the non-Gaussian shape the plain linear analysis cannot give
        (the point of Fig. 13)."""
        comps = split_gaussian(1.0, n_components=21, span_sigmas=4.0)
        mix = project_mixture(
            lambda p: (p + 0.3 * p * p, 1.0 + 0.6 * p), comps)
        assert mix.skewness > 0.1

    def test_pdf_integrates_to_one(self):
        comps = split_gaussian(1.0, n_components=9)
        mix = project_mixture(lambda p: (p, 1.0), comps)
        x = np.linspace(-8, 8, 4001)
        assert np.trapezoid(mix.pdf(x), x) == pytest.approx(1.0, abs=1e-4)

    def test_background_widens_components(self):
        comps = split_gaussian(1.0, n_components=5)
        narrow = project_mixture(lambda p: (p, 1.0), comps)
        wide = project_mixture_with_background(
            lambda p: (p, 1.0, 2.0), comps)
        assert wide.sigma > narrow.sigma
        assert wide.sigma == pytest.approx(
            np.hypot(narrow.sigma, 2.0), rel=0.02)

    def test_saturating_model_compresses_tail(self):
        """A saturating response maps a Gaussian to a left-compressed
        distribution with negative skew - the ring-oscillator behaviour
        of Fig. 12."""
        comps = split_gaussian(1.0, n_components=21, span_sigmas=4.0)

        def sat(p):
            return np.tanh(p), 1.0 / np.cosh(p) ** 2

        mix = project_mixture(sat, comps)
        assert mix.sigma < 1.0
