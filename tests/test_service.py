"""The application layer: AnalysisSession caches, requests, job queue.

Session tests run on a cheap sine-driven RC so the suite stays fast;
the comparator-scale cache win is measured by
``benchmarks/bench_service_cache.py``.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import compile_circuit, pss
from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine
from repro.core import (DcLevel, dc_mismatch_analysis,
                        transient_mismatch_analysis)
from repro.core.analysis import run_dc_mismatch, run_transient_mismatch
from repro.errors import AnalysisError
from repro.service import (AnalysisRequest, AnalysisResult,
                           AnalysisSession, JobQueue)

PSS_OPTS = PssOptions(n_steps=64, settle_periods=2)


def _rc(r=1e3):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", r, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def _divider(r1=1e3):
    ckt = Circuit("div")
    ckt.add_vsource("V1", "in", "0", dc=1.2)
    ckt.add_resistor("R1", "in", "out", r1, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
    return ckt


MEAS = [DcLevel("vout", "out")]


class TestSessionCaches:
    def test_compile_and_pss_cache_hits(self):
        s = AnalysisSession()
        r1 = s.transient_mismatch(_rc(), MEAS, period=1e-6,
                                  pss_options=PSS_OPTS)
        # fresh but content-equal circuit object: everything hits
        r2 = s.transient_mismatch(_rc(), MEAS, period=1e-6,
                                  pss_options=PSS_OPTS)
        st = s.stats()
        assert st["compiled"]["hits"] == 1
        assert st["pss"]["hits"] == 1
        assert r1.sigma("vout") == r2.sigma("vout")
        assert r2.pss is r1.pss

    def test_changed_value_misses(self):
        s = AnalysisSession()
        s.transient_mismatch(_rc(), MEAS, period=1e-6,
                             pss_options=PSS_OPTS)
        s.transient_mismatch(_rc(r=2e3), MEAS, period=1e-6,
                             pss_options=PSS_OPTS)
        st = s.stats()
        assert st["compiled"]["hits"] == 0
        assert st["pss"]["hits"] == 0

    def test_custom_state_bypasses_pss_cache(self):
        s = AnalysisSession()
        compiled = s.compile(_rc())
        state = compiled.make_state(deltas={("R", "r"): 10.0})
        s.transient_mismatch(compiled, MEAS, period=1e-6, state=state,
                             pss_options=PSS_OPTS)
        assert s.stats()["pss"]["size"] == 0

    def test_cold_parity_with_engine(self):
        """The session path is bit-identical to the direct engine path."""
        wrapped = AnalysisSession().transient_mismatch(
            _rc(), MEAS, period=1e-6, pss_options=PSS_OPTS)
        compiled = compile_circuit(_rc())
        direct = run_transient_mismatch(
            compiled, MEAS, pss(compiled, 1e-6, options=PSS_OPTS))
        assert wrapped.sigma("vout") == direct.sigma("vout")
        assert wrapped.nominal["vout"] == direct.nominal["vout"]

    def test_free_function_routes_through_default_session(self):
        from repro.service import default_session
        before = default_session().stats()["compiled"]["misses"]
        transient_mismatch_analysis(_rc(r=7e3), MEAS, period=1e-6,
                                    pss_options=PSS_OPTS)
        assert (default_session().stats()["compiled"]["misses"]
                == before + 1)

    def test_dc_parity(self):
        wrapped = dc_mismatch_analysis(_divider(), {"vout": "out"})
        direct = run_dc_mismatch(compile_circuit(_divider()),
                                 {"vout": "out"})
        assert wrapped.sigma("vout") == direct.sigma("vout")

    def test_runtime_breakdown_patched(self):
        s = AnalysisSession()
        res = s.transient_mismatch(_rc(), MEAS, period=1e-6,
                                   pss_options=PSS_OPTS)
        bd = res.runtime_breakdown
        assert set(bd) == {"pss", "lptv", "measures"}
        assert bd["pss"] > 0.0
        assert res.runtime_seconds >= bd["pss"]


class TestCacheHygiene:
    def test_eviction_bounds_and_cascades(self):
        s = AnalysisSession(compiled_capacity=2)
        first = s.compile(_rc(r=1e3))
        first.nominal  # populate the cache eviction must drop
        assert first._nominal_state is not None
        s.compile(_rc(r=2e3))
        s.compile(_rc(r=3e3))  # evicts the LRU entry (first)
        assert s.stats()["compiled"]["size"] == 2
        assert first._nominal_state is None

    def test_result_store_bounded(self):
        s = AnalysisSession(result_capacity=2)
        for r1 in (1e3, 2e3, 3e3):
            s.run(AnalysisRequest.dc_mismatch(_divider(r1),
                                              {"vout": "out"}))
        assert s.stats()["results"]["size"] == 2

    def test_clear_cascades(self):
        s = AnalysisSession()
        compiled = s.compile(_rc())
        compiled.nominal
        res = s.transient_mismatch(compiled, MEAS, period=1e-6,
                                   pss_options=PSS_OPTS)
        assert res.pss._lin is not None
        s.clear()
        assert all(v["size"] == 0 for v in s.stats().values())
        assert compiled._nominal_state is None
        assert res.pss._lin is None


class TestRequests:
    def test_run_memoizes(self):
        s = AnalysisSession()
        req = AnalysisRequest.dc_mismatch(_divider(), {"vout": "out"})
        a = s.run(req)
        b = s.run(AnalysisRequest.dc_mismatch(_divider(),
                                              {"vout": "out"}))
        assert not a.from_cache and b.from_cache
        assert a.summary == b.summary
        assert a.request_key == b.request_key == req.key()

    def test_json_round_trip_key_equal(self):
        req = AnalysisRequest.transient_mismatch(
            _rc(), MEAS, period=1e-6, pss_options=PSS_OPTS)
        rt = AnalysisRequest.from_json(req.to_json())
        assert rt == req
        assert rt.key() == req.key()

    def test_result_round_trip(self):
        s = AnalysisSession()
        res = s.run(AnalysisRequest.dc_mismatch(_divider(),
                                                {"vout": "out"}))
        rt = AnalysisResult.from_json(res.to_json())
        assert rt.summary == res.summary
        assert rt.sigma("vout") == res.sigma("vout")
        assert rt.detail is None

    def test_mc_request_matches_free_function(self):
        from repro.core import monte_carlo_transient
        ref = monte_carlo_transient(_rc(), MEAS, n=6, t_stop=2e-6,
                                    dt=2e-8, window=(1e-6, 2e-6),
                                    seed=5, chunk_size=3)
        res = AnalysisSession().run(AnalysisRequest.monte_carlo_transient(
            _rc(), MEAS, n=6, t_stop=2e-6, dt=2e-8, window=(1e-6, 2e-6),
            seed=5, chunk_size=3))
        assert res.sigma("vout") == ref.sigma("vout")
        assert res.mean("vout") == ref.mean("vout")
        assert np.array_equal(res.detail.samples["vout"],
                              ref.samples["vout"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(AnalysisError, match="kind"):
            AnalysisRequest(kind="nope", circuit={})

    def test_unknown_metric_message(self):
        s = AnalysisSession()
        res = s.run(AnalysisRequest.dc_mismatch(_divider(),
                                                {"vout": "out"}))
        with pytest.raises(AnalysisError, match="available"):
            res.sigma("nope")


class TestJobQueue:
    def test_inline_queue_shares_session(self):
        s = AnalysisSession()
        req = AnalysisRequest.dc_mismatch(_divider(), {"vout": "out"})
        with JobQueue(session=s) as q:
            a = q.submit(req).result()
            b = q.submit(req).result()
        assert not a.from_cache and b.from_cache
        assert a.detail is not None  # inline keeps the rich result

    def test_inline_error_propagates(self):
        bad = AnalysisRequest.dc_mismatch(
            Circuit("empty"), {"v": "x"})
        with JobQueue(session=AnalysisSession()) as q:
            job = q.submit(bad)
            with pytest.raises(Exception):
                job.result()

    def test_worker_pool_matches_inline(self):
        req = AnalysisRequest.monte_carlo_transient(
            _rc(), MEAS, n=6, t_stop=2e-6, dt=2e-8,
            window=(1e-6, 2e-6), seed=5, chunk_size=3)
        inline = AnalysisSession().run(req)
        with JobQueue(n_workers=2) as q:
            remote = q.map([req])[0]
        assert remote.summary == inline.summary
        assert remote.detail is None


class TestImportLayering:
    def test_domain_layer_never_imports_service(self):
        tools = Path(__file__).parent.parent / "tools"
        sys.path.insert(0, str(tools))
        try:
            from check_import_layering import violations
        finally:
            sys.path.remove(str(tools))
        root = Path(__file__).parent.parent
        assert violations(root) == []
