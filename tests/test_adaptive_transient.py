"""Adaptive (LTE-controlled) transient stepping and the fixes it forced:
content-keyed factorization caching, final-step snapping on the fixed
grid, and local-spacing measurement-window tolerances."""

import warnings

import numpy as np
import pytest

from repro.analysis import compile_circuit, transient
from repro.analysis.transient import TransientOptions
from repro.circuit import Circuit, Sine, SmoothPulse, default_technology
from repro.circuits import ring_oscillator
from repro.core import DcLevel, monte_carlo_transient
from repro.core.montecarlo import measurement_window_mask
from repro.errors import ConvergenceError
from repro.linalg import FactorizationCache
from repro.linalg.backends import (DenseLuFactorization,
                                   LinearSolverBackend, NewtonPolicy)

TAU = 1e-6


def rc_step_circuit(r=1e3, c=1e-9, v=1.0):
    ckt = Circuit("rc_step")
    ckt.add_vsource("V1", "in", "0", dc=v)
    ckt.add_resistor("R", "in", "out", r)
    ckt.add_capacitor("C", "out", "0", c)
    ckt.set_ic({"in": v, "out": 0.0})
    return ckt


# ---------------------------------------------------------------------------
# the adaptive engine
# ---------------------------------------------------------------------------
class TestAdaptiveAccuracy:
    @pytest.mark.parametrize("backend", ["dense", "cached", "sparse"])
    def test_matches_analytic_on_every_backend(self, backend):
        """All three solver paths (dense, cached-LU, native CSR) run the
        adaptive engine and hit the analytic RC charging curve."""
        c = compile_circuit(rc_step_circuit(), backend=backend)
        res = transient(c, t_stop=5 * TAU, dt=TAU / 200,
                        options=TransientOptions(adaptive=True,
                                                 rtol=1e-4, atol=1e-9))
        w = res.waveset()["out"]
        for frac in (0.5, 1.0, 2.0, 3.0):
            assert w(frac * TAU) == pytest.approx(1.0 - np.exp(-frac),
                                                  abs=1e-3)
        assert res.n_accepted == len(res.t) - 1
        # the controller must actually be adapting: the grid is
        # non-uniform and coarsens as the exponential settles
        gaps = np.diff(res.t)
        assert gaps.max() / gaps.min() > 5.0

    def test_fewer_steps_than_fixed_at_matched_accuracy(self):
        c = compile_circuit(rc_step_circuit())
        fixed = transient(c, t_stop=5 * TAU, dt=TAU / 200)
        adaptive = transient(c, t_stop=5 * TAU, dt=TAU / 200,
                             options=TransientOptions(adaptive=True,
                                                      rtol=1e-4,
                                                      atol=1e-9))
        t_probe = np.linspace(0.2 * TAU, 5 * TAU, 50)
        exact = 1.0 - np.exp(-t_probe / TAU)
        err_f = np.max(np.abs(fixed.waveset()["out"](t_probe) - exact))
        err_a = np.max(np.abs(adaptive.waveset()["out"](t_probe) - exact))
        assert err_a < 1e-3 and err_f < 1e-3          # matched accuracy
        assert adaptive.n_accepted < fixed.n_accepted / 4

    def test_batched_lanes_share_one_grid(self):
        """Batched adaptive runs integrate every lane on one step
        sequence and still track each lane's own time constant."""
        c = compile_circuit(rc_step_circuit())
        deltas = {("R", "r"): np.array([-200.0, 0.0, 500.0])}
        state = c.make_state(deltas=deltas)
        res = transient(c, t_stop=2 * TAU, dt=TAU / 100, state=state,
                        options=TransientOptions(adaptive=True,
                                                 rtol=1e-4, atol=1e-9))
        out = res.signal("out")          # (K+1, 3)
        assert out.shape == (res.t.size, 3)
        for j, dr in enumerate(deltas[("R", "r")]):
            tau = (1e3 + dr) * 1e-9
            expected = 1.0 - np.exp(-res.t / tau)
            assert np.allclose(out[:, j], expected, atol=2e-3)

    def test_oscillator_frequency_with_fewer_steps(self):
        """The ring oscillator - a strongly nonlinear autonomous circuit
        - keeps its frequency at matched accuracy on fewer steps."""
        osc = compile_circuit(ring_oscillator(default_technology()))
        opts = TransientOptions(record=["osc1"])
        fixed = transient(osc, t_stop=10e-9, dt=2e-12, options=opts)
        adaptive = transient(
            osc, t_stop=10e-9, dt=2e-12,
            options=TransientOptions(record=["osc1"], adaptive=True,
                                     rtol=3e-3, atol=1e-6))
        f_fixed = fixed.waveset()["osc1"].frequency(skip=3)
        f_adapt = adaptive.waveset()["osc1"].frequency(skip=3)
        assert f_adapt == pytest.approx(f_fixed, rel=2e-3)
        assert adaptive.n_accepted < fixed.n_accepted


class TestController:
    def test_pulse_edge_triggers_rejections(self):
        """A long-idle circuit hit by a fast pulse: the controller must
        coast on large steps, then reject into the edge - and still
        resolve it accurately."""
        ckt = Circuit("pulse_rc")
        ckt.add_vsource("V1", "in", "0", wave=SmoothPulse(
            v0=0.0, v1=1.0, delay=0.0, t_rise=20e-9, t_high=1e-6,
            t_fall=20e-9, t_period=10e-6))
        ckt.add_resistor("R", "in", "out", 1e3)
        ckt.add_capacitor("C", "out", "0", 1e-11)   # tau = 10 ns
        c = compile_circuit(ckt)
        res = transient(c, t_stop=8e-6, dt=1e-9,
                        options=TransientOptions(adaptive=True,
                                                 rtol=1e-3, atol=1e-6))
        assert res.n_rejected > 0
        w = res.waveset()["out"]
        assert w(0.8e-6) == pytest.approx(1.0, abs=1e-2)    # charged
        assert w(8e-6) == pytest.approx(0.0, abs=1e-2)      # discharged
        # coasting through the dead time must use steps far beyond the
        # edge-resolving ones
        assert np.diff(res.t).max() > 50 * np.diff(res.t).min()

    def test_low_duty_cycle_pulse_is_not_stepped_over(self):
        """The default ``dt_max`` is bounded by the pulse's *active
        width*, not just its period: a 2% duty-cycle pulse must show up
        in the output even though period/16 steps would straddle it."""
        ckt = Circuit("narrow_pulse")
        ckt.add_vsource("V1", "in", "0", wave=SmoothPulse(
            v0=0.0, v1=1.0, delay=0.5e-6, t_rise=10e-9, t_high=20e-9,
            t_fall=10e-9, t_period=2e-6))
        ckt.add_resistor("R", "in", "out", 1e3)
        ckt.add_capacitor("C", "out", "0", 1e-11)   # tau = 10 ns
        c = compile_circuit(ckt)
        res = transient(c, t_stop=4e-6, dt=1e-8,
                        options=TransientOptions(adaptive=True))
        w = res.waveset()["out"]
        assert np.diff(res.t).max() <= 20e-9 * (1 + 1e-9)
        for pulse_at in (0.5e-6, 2.5e-6):           # both pulses seen
            sel = (res.t >= pulse_at) & (res.t <= pulse_at + 60e-9)
            assert w.v[sel].max() > 0.5

    def test_first_step_is_conservative(self):
        """A huge initial ``dt`` must not bake an untested error into
        the start of the run: the controller starts small and ramps."""
        c = compile_circuit(rc_step_circuit())
        res = transient(c, t_stop=5 * TAU, dt=TAU,
                        options=TransientOptions(adaptive=True,
                                                 rtol=1e-4, atol=1e-9))
        w = res.waveset()["out"]
        assert w(0.3 * TAU) == pytest.approx(1.0 - np.exp(-0.3), abs=1e-3)
        assert res.t[1] - res.t[0] <= 5 * TAU / 1000 * (1 + 1e-9)

    def test_lands_exactly_on_requested_times(self):
        c = compile_circuit(rc_step_circuit())
        t_out = [1.7e-7, 3.33e-7, 1.05e-6]
        res = transient(c, t_stop=5 * TAU, dt=TAU / 200,
                        options=TransientOptions(adaptive=True,
                                                 t_out=t_out))
        for tp in t_out:
            assert tp in res.t           # exact, not within-epsilon
        assert res.t[-1] == 5 * TAU
        assert np.all(np.diff(res.t) > 0.0)

    def test_dt_bounds_are_respected(self):
        c = compile_circuit(rc_step_circuit())
        res = transient(c, t_stop=TAU, dt=TAU / 100,
                        options=TransientOptions(adaptive=True,
                                                 dt_min=TAU / 500,
                                                 dt_max=TAU / 20))
        gaps = np.diff(res.t)
        assert gaps.max() <= TAU / 20 * (1 + 1e-9)
        # landing steps may be shorter than dt_min; all others not
        assert np.sort(gaps)[-2] >= TAU / 500 * (1 - 1e-9)

    def test_inconsistent_dt_bounds_rejected(self):
        c = compile_circuit(rc_step_circuit())
        with pytest.raises(ValueError):
            transient(c, t_stop=TAU, dt=TAU / 100,
                      options=TransientOptions(adaptive=True,
                                               dt_min=1e-6, dt_max=1e-9))

    def test_adaptive_refuses_stride_and_record_states(self):
        c = compile_circuit(rc_step_circuit())
        with pytest.raises(ValueError):
            transient(c, t_stop=TAU, dt=1e-9,
                      options=TransientOptions(adaptive=True, stride=4))
        with pytest.raises(ValueError):
            transient(c, t_stop=TAU, dt=1e-9,
                      options=TransientOptions(adaptive=True,
                                               record_states=True))

    def test_t_out_refuses_fixed_grid(self):
        """The fixed grid cannot honour exact landing times and must say
        so instead of silently ignoring them."""
        c = compile_circuit(rc_step_circuit())
        with pytest.raises(ValueError):
            transient(c, t_stop=TAU, dt=1e-9,
                      options=TransientOptions(t_out=[0.5 * TAU]))

    def test_error_test_accepts_at_the_floor(self):
        """An unreachable error target with a reachable ``dt_min``:
        the controller accepts at the floor (nothing smaller exists)
        instead of aborting, and the run completes."""
        c = compile_circuit(rc_step_circuit())
        res = transient(c, t_stop=TAU, dt=TAU / 10,
                        options=TransientOptions(adaptive=True, rtol=1e-16,
                                                 atol=1e-18,
                                                 dt_min=TAU / 50))
        assert res.t[-1] == TAU
        assert res.n_rejected > 0

    def test_lane_isolation_quarantines_only_at_the_floor(self):
        """A genuinely singular lane walks the controller down to the
        step floor and is frozen there; healthy lanes are untouched
        (an off-floor Newton failure must reject the step, not
        quarantine)."""
        ckt = Circuit("int")
        ckt.add_isource("I1", "0", "a", dc=1e-6)    # v = I * t / C
        ckt.add_capacitor("C1", "a", "0", 1e-9)
        ckt.set_ic(a=0.0)
        c = compile_circuit(ckt, cmin=0.0)
        deltas = {("C1", "c"): np.array([0.0, -1e-9, 0.0])}  # lane 1: C=0
        state = c.make_state(deltas=deltas)
        res = transient(c, t_stop=1e-6, dt=1e-8, state=state,
                        options=TransientOptions(adaptive=True,
                                                 isolate_lanes=True,
                                                 dt_min=1e-10))
        assert res.failed_lanes.tolist() == [False, True, False]
        assert res.n_rejected > 0        # rejected down to the floor
        out = res.signal("a")
        assert np.isnan(out[-1, 1])
        assert out[-1, 0] == pytest.approx(1e-3, rel=1e-3)
        assert out[-1, 2] == pytest.approx(1e-3, rel=1e-3)

    def test_rejection_cap_raises(self):
        """An impossible error target with an unreachable floor must
        abort after ``max_rejections`` instead of looping forever."""
        c = compile_circuit(rc_step_circuit())
        with pytest.raises(ConvergenceError):
            transient(c, t_stop=5 * TAU, dt=TAU / 10,
                      options=TransientOptions(adaptive=True, rtol=1e-16,
                                               atol=1e-18,
                                               max_rejections=3))


# ---------------------------------------------------------------------------
# the fixed grid: final-step snap
# ---------------------------------------------------------------------------
class TestFinalStepSnap:
    def test_non_multiple_span_snaps_and_warns(self):
        c = compile_circuit(rc_step_circuit())
        t_stop = 2.37e-7                 # 23.7 steps of 1e-8
        with pytest.warns(UserWarning, match="integer multiple"):
            res = transient(c, t_stop=t_stop, dt=1e-8)
        assert res.t[-1] == t_stop       # lands exactly
        assert len(res.t) == 25          # 23 full steps + 1 short step
        assert res.t[-1] - res.t[-2] == pytest.approx(0.7e-8, rel=1e-9)

    def test_integer_multiple_span_stays_silent(self):
        c = compile_circuit(rc_step_circuit())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = transient(c, t_stop=2e-7, dt=1e-8)
        assert res.t.size == 21

    @pytest.mark.parametrize("backend", ["dense", "cached", "sparse"])
    def test_snapped_step_is_accurate_on_every_backend(self, backend):
        """Regression for the dt-keyed factorization cache: the
        shortened final step changes ``C/dt``, so answering it from the
        full-step LU would be wrong - all backends must agree with the
        analytic value at the snapped endpoint."""
        c = compile_circuit(rc_step_circuit(), backend=backend)
        t_stop = 1.6180339887e-6         # irrational-ish in units of dt
        with pytest.warns(UserWarning):
            res = transient(c, t_stop=t_stop, dt=1e-8)
        v_end = res.waveset()["out"].v[-1]
        assert v_end == pytest.approx(1.0 - np.exp(-t_stop / TAU),
                                      abs=1e-4)

    def test_span_shorter_than_dt_takes_one_step(self):
        c = compile_circuit(rc_step_circuit())
        with pytest.warns(UserWarning):
            res = transient(c, t_stop=0.4e-8, dt=1e-8)
        assert res.t.size == 2 and res.t[-1] == 0.4e-8

    def test_zero_span_still_rejected(self):
        c = compile_circuit(rc_step_circuit())
        with pytest.raises(ValueError):
            transient(c, t_stop=0.0, dt=1e-9)


# ---------------------------------------------------------------------------
# factorization-cache keying
# ---------------------------------------------------------------------------
class _CountingBackend(LinearSolverBackend):
    name = "counting"

    def __init__(self):
        self.policy = NewtonPolicy(reuse=True)
        self.n_factored = 0

    def factor(self, a):
        self.n_factored += 1
        return DenseLuFactorization(np.asarray(a, dtype=float))


class TestCacheKeying:
    def test_key_content_not_identity(self):
        """Equal-content keys must reuse; a dt change must re-factor.

        The old integrator invalidated on ``theta is not last_theta`` -
        an identity check that both re-factored for equal-content
        arrays and, far worse, could never see a changed step size."""
        be = _CountingBackend()
        cache = FactorizationCache(be, jac_constant=True)
        a = np.diag([2.0, 4.0])
        rhs = np.ones(2)
        theta = np.array([0.5, 1.0])

        cache.set_key((theta.tobytes(), 1e-9))
        cache.solve(rhs, lambda: a)
        assert be.n_factored == 1

        # same content, freshly built array (new identity): no re-factor
        cache.set_key((theta.copy().tobytes(), 1e-9))
        cache.solve(rhs, lambda: a)
        assert be.n_factored == 1

        # changed dt: the step matrix changed, stale LU is poison
        cache.set_key((theta.tobytes(), 2e-9))
        cache.solve(rhs, lambda: a)
        assert be.n_factored == 2

        # changed theta content (trap <-> BE): re-factor too
        cache.set_key((np.ones(2).tobytes(), 2e-9))
        cache.solve(rhs, lambda: a)
        assert be.n_factored == 3

    def test_adaptive_linear_run_refactors_per_step_size(self):
        """On a linear circuit the cache used to factor exactly once per
        run; with adaptive dt it must factor once per distinct step
        size instead of trusting the stale LU."""
        be = _CountingBackend()
        c = compile_circuit(rc_step_circuit(), backend=be)
        res = transient(c, t_stop=2 * TAU, dt=TAU / 50,
                        options=TransientOptions(adaptive=True,
                                                 rtol=1e-4, atol=1e-9))
        assert res.n_accepted > 2
        # growing steps => multiple step sizes => multiple factors,
        # but far fewer than one per Newton iteration
        assert 2 <= be.n_factored <= res.n_accepted + res.n_rejected + 1
        w = res.waveset()["out"]
        assert w(TAU) == pytest.approx(1.0 - np.exp(-1.0), abs=1e-3)


# ---------------------------------------------------------------------------
# measurement windows on non-uniform grids
# ---------------------------------------------------------------------------
class TestWindowMaskNonUniform:
    def test_local_tolerance_on_mixed_grid(self):
        t = np.array([0.0, 1.0, 1.001, 1.002, 2.0])
        mask = measurement_window_mask(t, (1.0000005, 1.0025))
        # 1.0 is within half its fine-side gap (0.0005) of the edge;
        # 2.0 is nowhere near even with its coarse 0.499 tolerance
        assert mask.tolist() == [False, True, True, True, False]

    def test_global_dt_would_leak_neighbours(self):
        """The regression the adaptive grid exposed: a coarse nominal
        ``dt`` as tolerance selects samples far outside the window when
        the controller refined locally."""
        dt_nominal = 1e-6
        t = np.concatenate([np.arange(5) * dt_nominal,
                            5e-6 + np.arange(100) * 1e-9])
        window = (5e-6 + 10e-9, 5e-6 + 20e-9)
        leaky = measurement_window_mask(t, window, dt_nominal)
        tight = measurement_window_mask(t, window)
        assert leaky.sum() >= 100         # old behaviour: grabs everything
        assert tight.sum() == 11          # samples 10..20 ns past 5 us

    def test_uniform_grid_unchanged(self):
        dt = 1e-9
        t = dt * np.arange(101)
        explicit = measurement_window_mask(t, (2e-9, 5e-9), dt)
        derived = measurement_window_mask(t, (2e-9, 5e-9))
        assert np.array_equal(explicit, derived)
        assert derived.sum() == 4


# ---------------------------------------------------------------------------
# adaptive Monte-Carlo
# ---------------------------------------------------------------------------
class TestAdaptiveMonteCarlo:
    def _rc(self):
        ckt = Circuit("rc")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
        ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.03)
        ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.01)
        return ckt

    def test_parallel_adaptive_bit_identical_to_serial(self):
        common = dict(measures=[DcLevel("v", "out")], n=12, t_stop=4e-6,
                      dt=1e-8, window=(3e-6, 4e-6), seed=9, chunk_size=4,
                      adaptive=True, rtol=1e-4, atol=1e-7)
        serial = monte_carlo_transient(self._rc(), **common)
        parallel = monte_carlo_transient(self._rc(), n_workers=2, **common)
        assert np.array_equal(serial.samples["v"], parallel.samples["v"])
        assert serial.n_failed == parallel.n_failed

    def test_adaptive_stats_track_fixed_grid(self):
        common = dict(measures=[DcLevel("v", "out")], n=24, t_stop=4e-6,
                      dt=1e-8, window=(3e-6, 4e-6), seed=5)
        fixed = monte_carlo_transient(self._rc(), **common)
        adaptive = monte_carlo_transient(self._rc(), adaptive=True,
                                         rtol=1e-4, atol=1e-7, **common)
        assert np.max(np.abs(fixed.samples["v"] - adaptive.samples["v"])) \
            < 5e-4
        assert adaptive.sigma("v") == pytest.approx(fixed.sigma("v"),
                                                    rel=0.05)

    def test_chunking_transparent_on_adaptive_grid(self):
        """Chunks own their step sequences, so different chunk sizes may
        produce (slightly) different trajectories - but every chunk
        size must agree within the LTE tolerance."""
        common = dict(measures=[DcLevel("v", "out")], n=20, t_stop=4e-6,
                      dt=1e-8, window=(3e-6, 4e-6), seed=9,
                      adaptive=True, rtol=1e-4, atol=1e-7)
        a = monte_carlo_transient(self._rc(), chunk_size=20, **common)
        b = monte_carlo_transient(self._rc(), chunk_size=7, **common)
        assert np.allclose(a.samples["v"], b.samples["v"], atol=5e-4)
