"""The engine registry: every analysis kind is a serializable request.

Round-trips a sample request of *every* registered kind through JSON
(with a coverage assertion so a newly registered kind cannot dodge the
suite), checks the registry error surface, and proves the new pss/ac/
sweep kinds are bit-identical to the direct functional API.
"""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.analysis.ac import ac_analysis
from repro.analysis.pss import PssOptions, pss
from repro.circuit import Circuit, Sine
from repro.core import DcLevel
from repro.errors import AnalysisError
from repro.service import (AnalysisEngine, AnalysisRequest,
                           AnalysisSession, engine_for, register_engine,
                           registered_kinds, unregister_engine)

PSS_OPTS = PssOptions(n_steps=64, settle_periods=2)


def _rc(r=1e3):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", r, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def _divider():
    ckt = Circuit("div")
    ckt.add_vsource("V1", "in", "0", dc=1.2)
    ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
    return ckt


MEAS = [DcLevel("vout", "out")]
FREQS = [1e3, 1e4, 1e5]


# One sample request per registered kind.  The coverage test below
# fails if a kind is registered without a factory here, so the JSON
# round-trip suite can never silently skip a kind.
SAMPLES = {
    "transient_mismatch": lambda: AnalysisRequest.transient_mismatch(
        _rc(), MEAS, period=1e-6, pss_options=PSS_OPTS),
    "dc_mismatch": lambda: AnalysisRequest.dc_mismatch(
        _divider(), {"vout": "out"}),
    "mc_transient": lambda: AnalysisRequest.monte_carlo_transient(
        _rc(), MEAS, n=4, t_stop=2e-6, dt=2e-8, seed=3),
    "mc_dc": lambda: AnalysisRequest.monte_carlo_dc(
        _divider(), {"vout": "out"}, n=8, seed=3),
    "pss": lambda: AnalysisRequest.pss(
        _rc(), MEAS, period=1e-6, pss_options=PSS_OPTS),
    "ac": lambda: AnalysisRequest.ac(
        _rc(), {"vout": "out"}, source="VS", freqs=FREQS),
    "sweep": lambda: AnalysisRequest.sweep(
        [AnalysisRequest.dc_mismatch(_divider(), {"vout": "out"})],
        labels=["div"]),
}


class TestRegistry:
    def test_every_registered_kind_has_a_sample(self):
        assert set(SAMPLES) == set(registered_kinds())

    @pytest.mark.parametrize("kind", sorted(SAMPLES))
    def test_json_round_trip(self, kind):
        req = SAMPLES[kind]()
        back = AnalysisRequest.from_json(req.to_json())
        assert back == req
        assert back.key() == req.key()

    def test_unknown_kind_lists_registered_kinds(self):
        with pytest.raises(AnalysisError, match="kind") as exc:
            AnalysisRequest(kind="nope", circuit={}, options={})
        for kind in registered_kinds():
            assert kind in str(exc.value)

    def test_fan_out_flags(self):
        assert engine_for("mc_transient").fan_out
        assert engine_for("mc_dc").fan_out
        assert not engine_for("transient_mismatch").fan_out
        assert not engine_for("pss").fan_out

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="registered"):
            register_engine(engine_for("pss"))

    def test_custom_engine_register_run_unregister(self):
        engine = AnalysisEngine(
            kind="toy_echo",
            canonicalize=lambda text="": {"text": str(text)},
            run=lambda session, ctx: ctx.options["text"].upper(),
            summarize=lambda detail, ctx: {"echo": detail},
        )
        register_engine(engine)
        try:
            req = AnalysisRequest.build("toy_echo", text="hi")
            res = AnalysisSession().run(req)
            assert res.summary == {"echo": "HI"}
            assert res.detail == "HI"
        finally:
            unregister_engine("toy_echo")
        with pytest.raises(AnalysisError, match="toy_echo"):
            AnalysisRequest.build("toy_echo", text="hi")


class TestPssRequests:
    def test_cold_parity_with_direct_pss(self):
        """The request path computes the very same orbit as pss()."""
        direct = pss(compile_circuit(_rc()), 1e-6, options=PSS_OPTS)
        res = AnalysisSession().run(SAMPLES["pss"]())
        assert res.summary["f0"] == direct.f0
        assert res.summary["n_steps"] == direct.n_steps
        np.testing.assert_array_equal(res.detail.x, direct.x)

    def test_memoized_repeat(self):
        s = AnalysisSession()
        r1 = s.run(SAMPLES["pss"]())
        r2 = s.run(SAMPLES["pss"]())
        assert not r1.from_cache and r2.from_cache
        assert r2.summary == r1.summary

    def test_measures_evaluated_on_orbit(self):
        res = AnalysisSession().run(SAMPLES["pss"]())
        assert "vout" in res.summary["metrics"]
        v = res.summary["metrics"]["vout"]["nominal"]
        assert np.isfinite(v)

    def test_needs_period_or_anchor(self):
        with pytest.raises(AnalysisError, match="period"):
            AnalysisRequest.pss(_rc(), MEAS)


class TestAcRequests:
    def test_parity_with_direct_ac(self):
        compiled = compile_circuit(_rc())
        h = ac_analysis(compiled, "VS", FREQS).transfer("out")
        res = AnalysisSession().run(SAMPLES["ac"]())
        out = res.summary["metrics"]["vout"]
        np.testing.assert_allclose(out["magnitude"], np.abs(h))
        assert res.summary["freqs"] == FREQS

    def test_requires_source_and_freqs(self):
        with pytest.raises(AnalysisError, match="source"):
            AnalysisRequest.ac(_rc(), {"vout": "out"}, source=None,
                               freqs=FREQS)
        with pytest.raises(AnalysisError, match="freqs"):
            AnalysisRequest.ac(_rc(), {"vout": "out"}, source="VS",
                               freqs=None)


class TestSweepRequests:
    def test_sub_requests_share_session_caches(self):
        s = AnalysisSession()
        sub = AnalysisRequest.dc_mismatch(_divider(), {"vout": "out"})
        sweep = AnalysisRequest.sweep([sub, sub], labels=["a", "b"])
        res = s.run(sweep)
        cases = res.summary["cases"]
        assert [c["label"] for c in cases] == ["a", "b"]
        assert not cases[0]["from_cache"] and cases[1]["from_cache"]
        assert cases[0]["summary"] == cases[1]["summary"]
        # the sub-result landed in the request memo under its own key
        assert s.run(sub).from_cache

    def test_label_count_checked(self):
        sub = AnalysisRequest.dc_mismatch(_divider(), {"vout": "out"})
        with pytest.raises(AnalysisError, match="label"):
            AnalysisRequest.sweep([sub], labels=["a", "b"])
