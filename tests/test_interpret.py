"""Tests for the PSD-interpretation layer (paper Eqs. 7-9, Section V).

The decisive consistency check: the delay variance obtained through the
paper's PSD route (P1 at 1 Hz offset from the fundamental, Eq. 8) must
match the variance computed directly from the time-domain crossing
shifts, on a circuit where the variation is a pure time shift.
"""

import numpy as np
import pytest

from repro.analysis import (compile_circuit, periodic_sensitivities, pnoise,
                            pss)
from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine
from repro.constants import TWO_PI
from repro.core.interpret import (delay_variance_from_psd,
                                  frequency_variance_from_psd,
                                  phase_variance_from_psd,
                                  psd_from_delay_variance,
                                  psd_from_frequency_variance,
                                  variance_from_baseband_psd)


class TestConversionAlgebra:
    def test_baseband_identity(self):
        assert variance_from_baseband_psd(8.24e-4) == pytest.approx(
            8.24e-4)
        # the paper's example: sigma = 28.7 mV
        assert np.sqrt(variance_from_baseband_psd(8.24e-4)) \
            == pytest.approx(28.7e-3, rel=0.01)

    def test_delay_roundtrip(self):
        var = (3e-12) ** 2
        p1 = psd_from_delay_variance(var, 1e9, 0.6)
        assert delay_variance_from_psd(p1, 1e9, 0.6) == pytest.approx(var)

    def test_frequency_roundtrip(self):
        var = (5e6) ** 2
        p1 = psd_from_frequency_variance(var, 0.6)
        assert frequency_variance_from_psd(p1, 0.6) == pytest.approx(var)

    def test_phase_delay_consistency(self):
        """sigma_D = sigma_phi / (2 pi f0) for any P1, Ac."""
        p1, f0, ac = 2.5e-7, 2e9, 0.55
        s_phi = np.sqrt(phase_variance_from_psd(p1, ac))
        s_d = np.sqrt(delay_variance_from_psd(p1, f0, ac))
        assert s_d == pytest.approx(s_phi / (TWO_PI * f0))

    def test_paper_convention_factor(self):
        p1, ac = 1e-6, 1.0
        ours = phase_variance_from_psd(p1, ac, convention="repro")
        paper = phase_variance_from_psd(p1, ac, convention="paper")
        assert ours == pytest.approx(2.0 * paper)


class TestPsdRouteVsTimeDomain:
    """Build a circuit whose mismatch produces (almost) a pure time
    shift of a sinusoid: an RC phase shifter driven well above its
    corner.  Then Eq. 8's PSD reading must equal the direct crossing-
    shift variance."""

    @pytest.fixture(scope="class")
    def shifter(self):
        f0 = 1e6
        ckt = Circuit("shifter")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.5, freq=f0, offset=0.0))
        # corner well below f0: output phase ~ -90deg, amplitude ~ A/(wRC)
        ckt.add_resistor("R", "in", "out", 10e3, sigma_rel=0.01)
        ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.01)
        compiled = compile_circuit(ckt)
        p = pss(compiled, 1 / f0,
                options=PssOptions(n_steps=512, settle_periods=6))
        return compiled, p

    def test_delay_sigma_from_p1_matches_crossing_shift(self, shifter):
        compiled, p = shifter
        # time-domain: crossing shift of the output mid-level crossing
        sens = periodic_sensitivities(p)
        from repro.core.measures import EdgeDelay
        delay = EdgeDelay("d", "in", "out", 0.0, from_edge="rise",
                          to_edge="rise")
        s = delay.sensitivities(sens)
        var_td = float(np.sum((s * sens.sigmas) ** 2))

        # PSD route: P1 at 1 Hz from the fundamental (Eq. 8)
        pn = pnoise(p, "out", sidebands=(0, 1), n_harmonics=10)
        ac = p.fundamental_amplitude("out")
        var_psd = delay_variance_from_psd(pn.psd[1], p.f0, ac)
        # the shift is not a *pure* time translation (amplitude also
        # moves), so allow a modest tolerance
        assert var_psd == pytest.approx(var_td, rel=0.2)

    def test_p1_scales_with_sigma_squared(self, shifter):
        compiled, p = shifter
        inj = compiled.mismatch_injections(p.state, p.x)
        pn1 = pnoise(p, "out", sidebands=(1,), n_harmonics=10,
                     pseudo_injections=inj)
        # doubling every sigma quadruples the PSD
        from dataclasses import replace
        from repro.circuit.elements import MismatchDecl
        inj2 = [replace(i, decl=MismatchDecl(i.decl.key,
                                             2.0 * i.decl.sigma))
                for i in inj]
        pn2 = pnoise(p, "out", sidebands=(1,), n_harmonics=10,
                     pseudo_injections=inj2)
        assert pn2.psd[1] == pytest.approx(4.0 * pn1.psd[1], rel=1e-9)


class TestOscillatorPsdRoute:
    def test_frequency_sigma_via_eq9(self, oscillator_pss):
        """sigma_f from the adjoint, pushed through Eq. 9 to a P1 and
        back, must round-trip; and the synthesised P1 must be positive
        and finite."""
        compiled, p = oscillator_pss
        sens = periodic_sensitivities(p)
        dfdp = sens.df_dp()
        var_f = float(np.sum((dfdp * sens.sigmas) ** 2))
        ac = p.fundamental_amplitude("osc1")
        p1 = psd_from_frequency_variance(var_f, ac)
        assert p1 > 0.0 and np.isfinite(p1)
        assert frequency_variance_from_psd(p1, ac) == pytest.approx(
            var_f, rel=1e-12)
