"""Unit tests for the DC operating point, sweeps and batched solves."""

import numpy as np
import pytest

from repro.analysis import compile_circuit, dc_operating_point, dc_sweep
from repro.circuit import Circuit
from repro.errors import NetlistError


class TestLinearDc:
    def test_divider(self, rc_divider):
        dc = dc_operating_point(compile_circuit(rc_divider))
        assert dc.voltage("out") == pytest.approx(0.9, abs=1e-6)
        assert dc.current("V1") == pytest.approx(-0.3e-3, rel=1e-6)

    def test_differential_voltage(self, rc_divider):
        dc = dc_operating_point(compile_circuit(rc_divider))
        assert dc.voltage("in", "out") == pytest.approx(0.3, abs=1e-6)

    def test_isource_into_resistor(self):
        ckt = Circuit()
        ckt.add_isource("I1", "0", "a", dc=1e-3)   # pushes into node a
        ckt.add_resistor("R1", "a", "0", 2e3)
        dc = dc_operating_point(compile_circuit(ckt))
        # gmin (1e-12 S to ground) shunts ~2 pA, so only ~1e-9 relative
        assert dc.voltage("a") == pytest.approx(2.0, rel=1e-6)

    def test_vcvs_gain(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", dc=0.25)
        ckt.add_vcvs("E1", "out", "0", "in", "0", gain=4.0)
        ckt.add_resistor("RL", "out", "0", 1e3)
        dc = dc_operating_point(compile_circuit(ckt))
        assert dc.voltage("out") == pytest.approx(1.0, rel=1e-9)

    def test_vccs_linear(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "in", "0", dc=0.5)
        ckt.add_vccs("G1", "0", "out", "in", "0", gm=1e-3)
        ckt.add_resistor("RL", "out", "0", 1e3)
        dc = dc_operating_point(compile_circuit(ckt))
        assert dc.voltage("out") == pytest.approx(0.5, rel=1e-9)

    def test_inductor_is_dc_short(self):
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", dc=1.0)
        ckt.add_inductor("L1", "a", "b", 1e-9)
        ckt.add_resistor("R1", "b", "0", 1e3)
        dc = dc_operating_point(compile_circuit(ckt))
        assert dc.voltage("b") == pytest.approx(1.0, rel=1e-6)
        assert dc.current("L1") == pytest.approx(1e-3, rel=1e-4)


class TestNonlinearDc:
    def test_diode_connected_nmos(self, tech):
        ckt = Circuit()
        ckt.add_vsource("VDD", "vdd", "0", dc=1.2)
        ckt.add_resistor("R1", "vdd", "d", 10e3)
        ckt.add_mosfet("M1", "d", "d", "0", "0", 1e-6, 0.26e-6, tech)
        dc = dc_operating_point(compile_circuit(ckt))
        vd = dc.voltage("d")
        # diode-connected: VGS above threshold but far below supply
        assert tech.nmos.vt0 * 0.8 < vd < 0.9

    def test_cmos_inverter_transfer(self, tech):
        from repro.circuits.logic import add_inverter
        ckt = Circuit()
        ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
        ckt.add_vsource("VIN", "in", "0", dc=0.0)
        add_inverter(ckt, "g1", "in", "out", tech)
        c = compile_circuit(ckt)
        sweep = dc_sweep(c, "VIN", np.linspace(0.0, tech.vdd, 21))
        vout = c.voltage(c.pad(sweep.x), "out")
        assert vout[0] == pytest.approx(tech.vdd, abs=1e-3)
        assert vout[-1] == pytest.approx(0.0, abs=1e-3)
        assert np.all(np.diff(vout) < 1e-6)     # monotone falling

    def test_five_transistor_ota_bias(self, tech):
        from repro.circuits import five_transistor_ota
        dc = dc_operating_point(compile_circuit(five_transistor_ota(tech)))
        # unity-gain buffer: the output follows the input within the
        # finite-gain error (matched devices -> no systematic offset
        # beyond the mirror's V_DS imbalance)
        assert dc.voltage("out") == pytest.approx(dc.voltage("inp"),
                                                  abs=0.02)
        assert 0.05 < dc.voltage("tail") < 0.6
        # mirror node sits one |VGS_P| below the supply
        assert 0.2 < dc.voltage("mir") < 0.9


class TestBatchedDc:
    def test_dc_sweep_matches_pointwise(self, rc_divider):
        c = compile_circuit(rc_divider)
        vals = np.array([0.6, 1.2, 2.4])
        sweep = dc_sweep(c, "V1", vals)
        vout = c.voltage(c.pad(sweep.x), "out")
        assert np.allclose(vout, 0.75 * vals, rtol=1e-9)

    def test_batched_deltas(self, rc_divider):
        c = compile_circuit(rc_divider)
        deltas = {("R2", "r"): np.array([0.0, 300.0, -300.0])}
        state = c.make_state(deltas=deltas)
        dc = dc_operating_point(c, state)
        r2 = 3e3 + deltas[("R2", "r")]
        assert np.allclose(dc.voltage("out"), 1.2 * r2 / (1e3 + r2),
                           rtol=1e-9)

    def test_inconsistent_batch_shapes_rejected(self, rc_divider):
        c = compile_circuit(rc_divider)
        with pytest.raises(ValueError):
            c.make_state(deltas={("R1", "r"): np.zeros(3),
                                 ("R2", "r"): np.zeros(4)})


class TestCompilerErrors:
    def test_unknown_node_in_idx(self, rc_divider):
        c = compile_circuit(rc_divider)
        with pytest.raises(NetlistError):
            c.idx("nonexistent")

    def test_source_override_requires_dc(self, tech):
        from repro.circuit import Sine
        ckt = Circuit()
        ckt.add_vsource("V1", "a", "0", wave=Sine())
        ckt.add_resistor("R1", "a", "0", 1e3)
        c = compile_circuit(ckt)
        state = c.make_state(source_values={"V1": 2.0})
        with pytest.raises(NetlistError):
            dc_operating_point(c, state)
