"""Sparse-native parameter states: parity, memory and cache bounds.

``CompiledCircuit.make_state`` builds the linear G/C templates as value
arrays over the circuit's CSR plan (O(nnz) per state); dense-path
consumers densify lazily and explicitly via ``ParamState.to_dense``.
Three contracts are pinned here:

* **parity** - every analysis (dcop, transient, ac, lptv, pss, MC)
  produces *bit-identical* results whether the state is consumed
  sparse-natively or pre-densified through the escape hatch, and the
  densified template equals the historical dense builder output;
* **memory** - constructing the 1k-node ladder state stays within an
  O(nnz) budget and far below a single dense ``(n+1)^2`` template
  (tracemalloc regression test);
* **cache hygiene** - the per-batch-shape scatter-index cache is
  bounded, and ``clear_caches`` actually drops the derived caches.
"""

import tracemalloc

import numpy as np
import pytest

from repro.analysis import compile_circuit, periodic_sensitivities, pss
from repro.analysis.ac import ac_analysis
from repro.analysis.dcop import dc_operating_point
from repro.analysis.mna import _BIDX_CACHE_MAX
from repro.analysis.pss import PssOptions
from repro.analysis.transient import TransientOptions, transient
from repro.circuit import Circuit, Sine, default_technology
from repro.circuits import rc_ladder
from repro.core import monte_carlo_dc, monte_carlo_transient
from repro.core.measures import DcLevel


@pytest.fixture(scope="module")
def tech():
    return default_technology()


@pytest.fixture(scope="module")
def cs_amp(tech):
    """Common-source amp: MOSFET + R/C mismatch + time-varying drive."""
    ckt = Circuit("cs_amp")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VG", "g", "0",
                    wave=Sine(amplitude=0.25, freq=1e6, offset=0.7))
    ckt.add_resistor("RL", "vdd", "d", 2e3, sigma_rel=0.02)
    ckt.add_mosfet("M1", "d", "g", "0", "0", w=2e-6, l=0.26e-6, tech=tech)
    ckt.add_capacitor("CL", "d", "0", 20e-15, sigma_rel=0.03)
    return ckt


def _twin_states(compiled, deltas=None, **kw):
    """Two identical states: one left sparse, one pre-densified."""
    lazy = compiled.make_state(deltas=deltas, **kw)
    eager = compiled.make_state(deltas=deltas, **kw)
    eager.to_dense()
    return lazy, eager


class TestSparseTemplates:
    def test_state_is_sparse_native(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        state = compiled.make_state(deltas={("RL", "r"): 25.0})
        nnz = state.plan.nnz
        assert state.g_data.shape == (nnz + 1,)
        assert state.c_data.shape == (nnz + 1,)
        # trash slot (ground stamps) scrubbed
        assert state.g_data[nnz] == 0.0 and state.c_data[nnz] == 0.0

    def test_to_dense_matches_plan_densify(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        state = compiled.make_state(deltas={("CL", "c"): 2e-15})
        g_lin, c_lin = state.to_dense()
        n = compiled.n
        np.testing.assert_array_equal(
            g_lin[:n, :n], state.plan.densify(state.g_data))
        np.testing.assert_array_equal(
            c_lin[:n, :n], state.plan.densify(state.c_data))
        # ground row/col of the padded image stays zero
        assert np.all(g_lin[n, :] == 0.0) and np.all(g_lin[:, n] == 0.0)

    def test_to_dense_is_cached(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        state = compiled.nominal
        assert state.to_dense()[0] is state.to_dense()[0]

    def test_batched_linear_deltas(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        dr = np.array([-30.0, 0.0, 55.0])
        state = compiled.make_state(deltas={("RL", "r"): dr})
        assert state.g_data.shape == (3, state.plan.nnz + 1)
        g_lin, _ = state.to_dense()
        assert g_lin.shape == (3, compiled.n + 1, compiled.n + 1)
        for b, d in enumerate(dr):
            ref = compiled.make_state(
                deltas={("RL", "r"): float(d)}).to_dense()[0]
            np.testing.assert_array_equal(g_lin[b], ref)

    def test_theta_rows_sparse_matches_dense_logic(self, cs_amp):
        """theta from the sparse template == theta recomputed from the
        densified image with the historical dense algorithm."""
        compiled = compile_circuit(cs_amp)
        state = compiled.nominal
        th = compiled.theta_rows(state, "trap")
        n = compiled.n
        _, c_lin = state.to_dense()
        c_phys = c_lin[:n, :n].copy()
        idx = np.arange(compiled.n_nodes)
        c_phys[idx, idx] -= compiled.cmin
        diff_row = np.any(np.abs(c_phys) > 1e-30, axis=1)
        alg_var = ~np.any(np.abs(c_phys) > 1e-30, axis=0)
        branch = np.arange(compiled.n_nodes, n)
        bad = branch[alg_var[branch]]
        g_lin = state.to_dense()[0]
        touches = np.zeros(n, dtype=bool)
        if bad.size:
            touches = np.any(np.abs(g_lin[:n, bad]) > 0.0, axis=1)
        ref = np.where((~diff_row) | touches, 1.0, 0.5)
        np.testing.assert_array_equal(th, ref)


class TestAnalysisParity:
    """Bit-identical results from sparse-native and pre-densified
    states, per analysis."""

    def test_dcop(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        lazy, eager = _twin_states(compiled, {("M1", "vt0"): 3e-3})
        a = dc_operating_point(compiled, lazy).x
        b = dc_operating_point(compiled, eager).x
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("backend", ["dense", "cached", "sparse"])
    def test_transient(self, cs_amp, backend):
        compiled = compile_circuit(cs_amp, backend=backend)
        lazy, eager = _twin_states(compiled, {("RL", "r"): 40.0})
        kw = dict(t_stop=2e-6, dt=2e-9,
                  options=TransientOptions(record=["d"]))
        a = transient(compiled, state=lazy, **kw)
        b = transient(compiled, state=eager, **kw)
        np.testing.assert_array_equal(a.signal("d"), b.signal("d"))

    @pytest.mark.parametrize("backend", ["cached", "sparse"])
    def test_ac(self, cs_amp, backend):
        compiled = compile_circuit(cs_amp, backend=backend)
        lazy, eager = _twin_states(compiled)
        freqs = np.logspace(3, 9, 7)
        a = ac_analysis(compiled, "VG", freqs, state=lazy)
        b = ac_analysis(compiled, "VG", freqs, state=eager)
        np.testing.assert_array_equal(a.x, b.x)

    def test_ac_sparse_backend_matches_dense(self):
        """The CSR-native AC sweep equals the dense escape-hatch sweep
        to solver precision."""
        freqs = np.logspace(3, 9, 9)
        d = ac_analysis(compile_circuit(rc_ladder(40), backend="dense"),
                        "VIN", freqs)
        s = ac_analysis(compile_circuit(rc_ladder(40), backend="sparse"),
                        "VIN", freqs)
        np.testing.assert_allclose(s.transfer("n40"), d.transfer("n40"),
                                   rtol=1e-9)

    def test_pss_and_lptv(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        lazy, eager = _twin_states(compiled)
        opts = PssOptions(n_steps=128, settle_periods=2)
        pa = pss(compiled, 1e-6, state=lazy, options=opts)
        pb = pss(compiled, 1e-6, state=eager, options=opts)
        np.testing.assert_array_equal(pa.x, pb.x)
        sa = periodic_sensitivities(pa)
        sb = periodic_sensitivities(pb)
        np.testing.assert_array_equal(sa.waveforms, sb.waveforms)

    def test_monte_carlo(self, cs_amp):
        """MC (batched dense stacks built from the sparse template once
        per chunk) reproduces bit-identically across runs, transient
        and DC."""
        mc_kw = dict(n=8, t_stop=1e-6, dt=4e-9, seed=3, chunk_size=4)
        a = monte_carlo_transient(cs_amp, [DcLevel("vd", "d")], **mc_kw)
        b = monte_carlo_transient(cs_amp, [DcLevel("vd", "d")], **mc_kw)
        np.testing.assert_array_equal(a.samples["vd"], b.samples["vd"])
        da = monte_carlo_dc(cs_amp, {"vd": "d"}, n=8, seed=5)
        db = monte_carlo_dc(cs_amp, {"vd": "d"}, n=8, seed=5)
        np.testing.assert_array_equal(da.samples["vd"], db.samples["vd"])


class TestMemoryRegression:
    def test_1k_ladder_state_is_onnz(self):
        """make_state on the 1k-node ladder must not touch any dense
        ``(n+1)^2`` array: its tracemalloc peak stays within an O(nnz)
        budget, far below even a single dense template."""
        compiled = compile_circuit(rc_ladder(1000), backend="sparse")
        compiled.csr_plan            # structural, built once per circuit
        compiled.make_state()        # warm one-time slot-position maps
        tracemalloc.start()
        state = compiled.make_state()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        nnz = state.plan.nnz
        dense_one = (compiled.n + 1) ** 2 * 8
        # a dense template would be ~8 MB here; the sparse state is a
        # few value/index arrays of length nnz (+ scatter temporaries)
        assert peak < 128 * nnz, f"peak {peak} B exceeds O(nnz) budget"
        assert peak < dense_one / 5, (
            f"peak {peak} B is within 5x of a dense (n+1)^2 template "
            f"({dense_one} B) - a dense array leaked into make_state")

    def test_dense_escape_hatch_is_the_expensive_path(self):
        """to_dense really is where the O(n^2) lives (>=5x the sparse
        construction peak on the 1k ladder)."""
        compiled = compile_circuit(rc_ladder(1000), backend="sparse")
        compiled.csr_plan
        compiled.make_state()
        tracemalloc.start()
        state = compiled.make_state()
        _, sparse_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tracemalloc.start()
        state.to_dense()
        _, dense_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert dense_peak >= 5 * sparse_peak


class TestCacheHygiene:
    def test_bidx_cache_is_bounded(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        for b in range(1, 3 * _BIDX_CACHE_MAX):
            compiled._bidx((b,))
        assert len(compiled._bidx_cache) <= _BIDX_CACHE_MAX
        # most-recently-used shapes survive
        assert (3 * _BIDX_CACHE_MAX - 1,) in compiled._bidx_cache

    def test_bidx_cache_reuses_hot_shape(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        a = compiled._bidx((4,))
        for b in range(5, 5 + _BIDX_CACHE_MAX - 1):
            compiled._bidx((b,))
        assert compiled._bidx((4,)) is a

    def test_clear_caches(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        nominal = compiled.nominal
        nominal.to_dense()
        dc_operating_point(compiled)         # populates source caches
        compiled._bidx((7,))
        assert nominal.src_static is not None
        compiled.clear_caches()
        assert compiled._bidx_cache == {}
        assert nominal._dense is None
        assert nominal.src_static is None and nominal.src_cache is None
        assert compiled._nominal_state is None
        # a rebuilt nominal state is identical to the old one
        fresh = compiled.nominal
        np.testing.assert_array_equal(fresh.g_data, nominal.g_data)
        np.testing.assert_array_equal(fresh.c_data, nominal.c_data)

    def test_state_clear_caches_rebuilds_identically(self, cs_amp):
        compiled = compile_circuit(cs_amp)
        state = compiled.make_state(deltas={("RL", "r"): 10.0})
        before = dc_operating_point(compiled, state).x
        g0, c0 = (x.copy() for x in state.to_dense())
        state.clear_caches()
        g1, c1 = state.to_dense()
        np.testing.assert_array_equal(g0, g1)
        np.testing.assert_array_equal(c0, c1)
        after = dc_operating_point(compiled, state).x
        np.testing.assert_array_equal(before, after)
