"""Property-based tests on randomly generated linear networks.

On a linear resistive network the mismatch propagation is exactly
linear, so three independent computations must agree for *any* network:

1. the adjoint DC mismatch analysis (paper's Eq. 1),
2. exact first-order perturbation via finite differences,
3. Monte-Carlo at small sigma.

Hypothesis generates random ladder/mesh topologies and values; this is
the package's strongest guard against stamping/adjoint sign errors.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import compile_circuit, dc_operating_point
from repro.circuit import Circuit
from repro.core import dc_mismatch_analysis, monte_carlo_dc


def ladder_circuit(r_values, v_in=1.0, sigma_rel=0.01):
    """Series/shunt resistor ladder: R1 series, R2 shunt, R3 series..."""
    ckt = Circuit("ladder")
    ckt.add_vsource("V1", "n0", "0", dc=v_in)
    prev = "n0"
    node = 0
    for i, r in enumerate(r_values):
        if i % 2 == 0:
            node += 1
            ckt.add_resistor(f"R{i}", prev, f"n{node}", r,
                             sigma_rel=sigma_rel)
            prev = f"n{node}"
        else:
            ckt.add_resistor(f"R{i}", prev, "0", r, sigma_rel=sigma_rel)
    if len(r_values) % 2 == 1:
        # terminate to ground so the last node is well defined
        ckt.add_resistor("Rterm", prev, "0", 1e4, sigma_rel=sigma_rel)
    return ckt, prev


resistor_values = st.lists(
    st.floats(min_value=50.0, max_value=5e4), min_size=2, max_size=9)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(r_values=resistor_values)
def test_property_adjoint_matches_finite_difference(r_values):
    ckt, out = ladder_circuit(r_values)
    compiled = compile_circuit(ckt)
    res = dc_mismatch_analysis(compiled, {"v": out})
    t = res.contributions("v")

    for key, s_adj in zip(t.keys, t.sensitivities):
        ename = key[0]
        r0 = ckt[ename].r
        h = 1e-6 * r0
        dc_p = dc_operating_point(
            compiled, compiled.make_state(deltas={key: h}))
        dc_m = dc_operating_point(
            compiled, compiled.make_state(deltas={key: -h}))
        fd = (dc_p.voltage(out) - dc_m.voltage(out)) / (2 * h)
        assert s_adj == pytest.approx(fd, rel=1e-4, abs=1e-12)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(r_values=resistor_values)
def test_property_sigma_matches_monte_carlo(r_values):
    ckt, out = ladder_circuit(r_values)
    res = dc_mismatch_analysis(ckt, {"v": out})
    mc = monte_carlo_dc(ckt, {"v": out}, n=3000, seed=17)
    sigma = res.sigma("v")
    if sigma < 1e-12:
        assert mc.sigma("v") < 1e-6
    else:
        assert mc.sigma("v") == pytest.approx(sigma, rel=0.12)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(r_values=resistor_values,
       scale=st.floats(min_value=0.25, max_value=4.0))
def test_property_sigma_scales_linearly(r_values, scale):
    """sigma_out is exactly linear in the mismatch sigmas."""
    ckt1, out = ladder_circuit(r_values, sigma_rel=0.01)
    ckt2, _ = ladder_circuit(r_values, sigma_rel=0.01 * scale)
    s1 = dc_mismatch_analysis(ckt1, {"v": out}).sigma("v")
    s2 = dc_mismatch_analysis(ckt2, {"v": out}).sigma("v")
    assert s2 == pytest.approx(scale * s1, rel=1e-9)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(r_values=resistor_values)
def test_property_full_correlation_vs_ratiometric_output(r_values):
    """With one global random factor on every resistor (rho = 1), any
    ratiometric output voltage is invariant: the correlated variance
    must vanish while the independent one generally does not."""
    from repro.core.contributions import (ContributionTable,
                                          correlated_covariance_from_mixing)
    ckt, out = ladder_circuit(r_values)
    res = dc_mismatch_analysis(ckt, {"v": out})
    t = res.contributions("v")
    sig = t.sigmas
    # rho=1 with sigma_i proportional to R_i == one global scale factor
    mix = sig[:, None].copy()
    cov = correlated_covariance_from_mixing(mix)
    corr_table = ContributionTable("v", t.keys, t.sensitivities, sig,
                                   param_covariance=cov)
    assert corr_table.variance <= 1e-10 * max(t.variance, 1e-20) + 1e-24
