"""The ``repro.api`` facade: closure, versioning, layering, shims.

This suite pins the PR's API-redesign contract:

* ``repro.api`` is a *closed* surface - ``API_VERSION`` is present,
  every ``__all__`` name resolves, and the re-exports are the very
  objects from their home modules (no copies, no drift);
* the in-repo examples and the network front-end respect the layering
  rules CI enforces (``examples-use-facade``, ``net-no-internals``);
* the request paths take ``variations`` / ``retry`` / ``n_workers``
  uniformly, and the legacy positional call shapes of the analysis
  entry points warn (``DeprecationWarning``) without breaking.
"""

import re
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.api as api
from repro.api import (AnalysisRequest, Circuit, RetryPolicy,
                       dc_mismatch_analysis,
                       transient_mismatch_analysis)

ROOT = Path(__file__).parent.parent


def _divider(r1=1e3):
    ckt = Circuit("div")
    ckt.add_vsource("V1", "in", "0", dc=1.2)
    ckt.add_resistor("R1", "in", "out", r1, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
    return ckt


def _layering_violations(only=None):
    tools = ROOT / "tools"
    sys.path.insert(0, str(tools))
    try:
        from check_import_layering import RULES, violations
    finally:
        sys.path.remove(str(tools))
    return {r.name for r in RULES}, violations(ROOT, only=only)


# ---------------------------------------------------------------------------
# the closed surface
# ---------------------------------------------------------------------------
class TestFacade:
    def test_api_version_is_major_minor(self):
        assert re.fullmatch(r"\d+\.\d+", api.API_VERSION)
        assert "API_VERSION" in api.__all__

    def test_all_names_resolve(self):
        missing = [name for name in api.__all__
                   if not hasattr(api, name)]
        assert missing == []

    def test_all_has_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_reexports_are_the_home_objects(self):
        from repro.circuit import Circuit as home_circuit
        from repro.core import \
            transient_mismatch_analysis as home_transient
        from repro.service import AnalysisServer as home_server
        from repro.service import RemoteSession as home_client
        assert api.Circuit is home_circuit
        assert api.transient_mismatch_analysis is home_transient
        assert api.AnalysisServer is home_server
        assert api.RemoteSession is home_client

    def test_daemon_reports_the_facade_version(self):
        with api.AnalysisServer() as server:
            health = api.RemoteSession(server.url).health()
        assert health["api_version"] == api.API_VERSION


# ---------------------------------------------------------------------------
# layering rules (the same checker CI runs)
# ---------------------------------------------------------------------------
class TestLayering:
    def test_new_rules_are_registered(self):
        names, _ = _layering_violations()
        assert {"net-no-internals", "examples-use-facade"} <= names

    def test_net_layer_uses_no_internals(self):
        _, found = _layering_violations(only="net-no-internals")
        assert found == []

    def test_examples_import_only_the_facade(self):
        _, found = _layering_violations(only="examples-use-facade")
        assert found == []


# ---------------------------------------------------------------------------
# keyword uniformity: variations / retry / n_workers everywhere
# ---------------------------------------------------------------------------
class TestUniformKeywords:
    def test_single_solve_requests_accept_and_drop_them(self):
        plain = AnalysisRequest.dc_mismatch(_divider(), {"v": "out"})
        tuned = AnalysisRequest.dc_mismatch(
            _divider(), {"v": "out"},
            retry=RetryPolicy(max_attempts=2), n_workers=4)
        assert tuned.key() == plain.key()

    def test_entry_points_accept_retry_and_n_workers(self):
        res = dc_mismatch_analysis(
            _divider(), {"v": "out"},
            retry=RetryPolicy(max_attempts=2), n_workers=2)
        assert res.sigma("v") > 0

    def test_bogus_retry_is_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            AnalysisRequest.dc_mismatch(_divider(), {"v": "out"},
                                        retry="soon")


# ---------------------------------------------------------------------------
# deprecation policy: positional call shapes warn, then keep working
# ---------------------------------------------------------------------------
class TestPositionalDeprecation:
    def test_dc_positional_warns_and_matches_keyword(self):
        cov = np.diag([1e-4, 1e-4])
        with pytest.warns(DeprecationWarning,
                          match="param_covariance positionally"):
            legacy = dc_mismatch_analysis(_divider(), {"v": "out"},
                                          None, cov)
        modern = dc_mismatch_analysis(_divider(), {"v": "out"},
                                      param_covariance=cov)
        assert legacy.sigma("v") == modern.sigma("v")

    def test_transient_positional_warns_and_matches_keyword(self):
        from repro.api import DcLevel, PssOptions
        ckt = Circuit("rc")
        ckt.add_vsource("VS", "in", "0",
                        wave=api.Sine(amplitude=0.3, freq=1e6,
                                      offset=0.6))
        ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.05)
        ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
        opts = PssOptions(n_steps=64, settle_periods=2)
        meas = [DcLevel("vout", "out")]
        with pytest.warns(DeprecationWarning,
                          match="passing period positionally"):
            legacy = transient_mismatch_analysis(ckt, meas, 1e-6,
                                                 pss_options=opts)
        modern = transient_mismatch_analysis(ckt, meas, period=1e-6,
                                             pss_options=opts)
        assert legacy.sigma("vout") == modern.sigma("vout")

    def test_keyword_call_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            dc_mismatch_analysis(_divider(), {"v": "out"})

    def test_too_many_positionals_is_a_type_error(self):
        with pytest.raises(TypeError, match="at most"):
            dc_mismatch_analysis(_divider(), {"v": "out"},
                                 None, None, None, None, None)

    def test_positional_keyword_clash_is_a_type_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="multiple values"):
                dc_mismatch_analysis(_divider(), {"v": "out"}, None,
                                     state=None)
