"""Unit tests for the statistics helpers, including the paper's
confidence-interval numbers (Section VI / VIII)."""

import numpy as np
import pytest

from repro.stats import (ascii_histogram, describe, gaussian_pdf,
                         histogram_against_gaussian, normalized_skewness,
                         sigma_confidence_interval,
                         sigma_relative_ci_halfwidth)


class TestDescribe:
    def test_gaussian_sample_moments(self):
        rng = np.random.default_rng(0)
        x = rng.normal(2.0, 0.5, 200_000)
        st = describe(x)
        assert st.mean == pytest.approx(2.0, abs=0.01)
        assert st.std == pytest.approx(0.5, rel=0.01)
        assert abs(st.skewness) < 0.02

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            describe(np.array([1.0]))

    def test_ci_contains_truth_usually(self):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(50):
            x = rng.normal(0.0, 1.0, 400)
            st = describe(x)
            hits += st.std_ci_low <= 1.0 <= st.std_ci_high
        assert hits >= 42   # ~95 % coverage, generous slack


class TestPaperConfidenceNumbers:
    """The paper quotes +/-14 %, +/-4.5 %, +/-1.4 % for n = 100, 1000,
    10000 (Sections VI and VIII)."""

    @pytest.mark.parametrize("n,expected", [(100, 0.14), (1000, 0.045),
                                            (10000, 0.014)])
    def test_relative_halfwidth(self, n, expected):
        assert sigma_relative_ci_halfwidth(n) == pytest.approx(
            expected, rel=0.05)

    def test_chi2_interval_matches_asymptotics(self):
        lo, hi = sigma_confidence_interval(1.0, 10000)
        assert 0.5 * (hi - lo) == pytest.approx(0.014, rel=0.03)

    def test_interval_ordering(self):
        lo, hi = sigma_confidence_interval(2.0, 50)
        assert lo < 2.0 < hi


class TestSkewness:
    def test_symmetric_sample_has_tiny_skew(self):
        rng = np.random.default_rng(2)
        x = rng.normal(5.0, 1.0, 100_000)
        assert abs(normalized_skewness(x)) < 0.05

    def test_paper_definition_sign(self):
        # right-skewed distribution around a positive mean -> positive
        rng = np.random.default_rng(3)
        x = 5.0 + rng.exponential(1.0, 100_000)
        assert normalized_skewness(x) > 0.0

    def test_cube_root_scaling(self):
        # mu3^(1/3)/mu: scaling x by c scales the metric by c/c = 1
        rng = np.random.default_rng(4)
        x = 5.0 + rng.exponential(1.0, 50_000)
        a = normalized_skewness(x)
        b = normalized_skewness(3.0 * x)
        assert a == pytest.approx(b, rel=1e-9)


class TestHistogramHelpers:
    def test_pdf_normalisation(self):
        x = np.linspace(-6, 6, 10001)
        p = gaussian_pdf(x, 0.0, 1.0)
        assert np.trapezoid(p, x) == pytest.approx(1.0, abs=1e-6)

    def test_histogram_density_integrates_to_one(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, 20000)
        centres, density, pdf = histogram_against_gaussian(x, 0.0, 1.0,
                                                           bins=40)
        width = centres[1] - centres[0]
        assert np.sum(density) * width == pytest.approx(1.0, rel=1e-6)
        assert pdf.max() == pytest.approx(gaussian_pdf(
            np.array([0.0]), 0.0, 1.0)[0], rel=0.05)

    def test_ascii_histogram_renders(self):
        rng = np.random.default_rng(6)
        x = rng.normal(0, 1, 5000)
        art = ascii_histogram(x, 0.0, 1.0, bins=15, label="offset")
        assert "offset" in art
        assert art.count("\n") == 15
        assert "*" in art and "#" in art
