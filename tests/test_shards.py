"""The serializable Monte-Carlo shard protocol.

The contract under test: a shard executed anywhere - serially, in a
worker process, or rebuilt from its JSON encoding in a fresh process -
produces bit-identical samples, and the merge reproduces the
single-process Monte-Carlo run exactly.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, Sine
from repro.core import DcLevel, monte_carlo_dc, monte_carlo_transient
from repro.errors import AnalysisError
from repro.service import (ShardResult, ShardSpec, mc_dc_shards,
                           mc_transient_shards, merge_shard_results,
                           run_shard)


def _rc():
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.03)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.01)
    return ckt


MC_KW = dict(n=10, t_stop=3e-6, dt=2e-8, window=(2e-6, 3e-6), seed=7,
             chunk_size=4)


class TestTransientShards:
    def test_merge_matches_monte_carlo(self):
        ref = monte_carlo_transient(_rc(), [DcLevel("vout", "out")],
                                    **MC_KW)
        specs = mc_transient_shards(
            _rc(), [DcLevel("vout", "out")], MC_KW["n"], MC_KW["t_stop"],
            MC_KW["dt"], chunk_size=MC_KW["chunk_size"],
            window=MC_KW["window"], seed=MC_KW["seed"])
        samples, n_failed, failures = merge_shard_results(
            [run_shard(s) for s in specs])
        assert np.array_equal(samples["vout"], ref.samples["vout"])
        assert n_failed == ref.n_failed
        assert failures == []

    def test_json_round_trip_bit_identical(self):
        ref = monte_carlo_transient(_rc(), [DcLevel("vout", "out")],
                                    **MC_KW)
        specs = mc_transient_shards(
            _rc(), [DcLevel("vout", "out")], MC_KW["n"], MC_KW["t_stop"],
            MC_KW["dt"], chunk_size=MC_KW["chunk_size"],
            window=MC_KW["window"], seed=MC_KW["seed"])
        results = []
        for spec in specs:
            rt = ShardSpec.from_json(spec.to_json())
            assert rt == spec
            assert rt.workload_key() == spec.workload_key()
            # the result round-trips too
            results.append(ShardResult.from_json(run_shard(rt).to_json()))
        samples = merge_shard_results(results).samples
        assert np.array_equal(samples["vout"], ref.samples["vout"])

    def test_parallel_equals_serial(self):
        ref = monte_carlo_transient(_rc(), [DcLevel("vout", "out")],
                                    **MC_KW)
        par = monte_carlo_transient(_rc(), [DcLevel("vout", "out")],
                                    n_workers=2, **MC_KW)
        assert np.array_equal(ref.samples["vout"], par.samples["vout"])
        assert ref.n_failed == par.n_failed

    def test_shards_are_location_independent(self):
        # one shard alone redraws the same deltas as the full plan
        specs = mc_transient_shards(
            _rc(), [DcLevel("vout", "out")], 10, 3e-6, 2e-8,
            chunk_size=4, seed=7)
        from repro.analysis import compile_circuit
        compiled = compile_circuit(_rc())
        full = {k: np.concatenate([s.deltas(compiled)[k] for s in specs])
                for k in specs[0].deltas(compiled)}
        one = ShardSpec.from_dict(specs[1].to_dict()).deltas(compiled)
        for k, v in one.items():
            assert np.array_equal(v, full[k][4:8])


class TestDcShards:
    def test_merge_matches_monte_carlo_dc(self):
        ckt = Circuit("div")
        ckt.add_vsource("V1", "in", "0", dc=1.2)
        ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.02)
        ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
        ref = monte_carlo_dc(ckt, {"vout": "out"}, n=20, seed=3,
                             chunk_size=6)
        specs = mc_dc_shards(ckt, {"vout": "out"}, 20, 6, seed=3)
        samples = merge_shard_results(
            [run_shard(ShardSpec.from_json(s.to_json()))
             for s in specs]).samples
        assert np.array_equal(samples["vout"], ref.samples["vout"])


class TestProtocolGuards:
    def _spec(self, **kw):
        base = dict(kind="mc_dc", circuit={"format": 1, "elements": []},
                    n_total=8, start=0, stop=4)
        base.update(kw)
        return ShardSpec(**base)

    def test_version_mismatch_rejected(self):
        d = self._spec().to_dict()
        d["version"] = 99
        with pytest.raises(AnalysisError, match="version"):
            ShardSpec.from_dict(d)
        r = ShardResult(kind="mc_dc", start=0, stop=4,
                        samples={"m": np.zeros(4)}).to_dict()
        r["version"] = 0
        with pytest.raises(AnalysisError, match="version"):
            ShardResult.from_dict(r)

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            self._spec(start=4, stop=4)
        with pytest.raises(ValueError):
            self._spec(stop=9)

    def test_merge_refuses_gaps(self):
        a = ShardResult("mc_dc", 0, 4, {"m": np.zeros(4)},
                        workload_key="k")
        c = ShardResult("mc_dc", 6, 8, {"m": np.zeros(2)},
                        workload_key="k")
        with pytest.raises(AnalysisError,
                           match=r"gap in shard coverage: span \[4, 6\)"):
            merge_shard_results([a, c])

    def test_merge_refuses_mixed_workloads(self):
        a = ShardResult("mc_dc", 0, 4, {"m": np.zeros(4)},
                        workload_key="k1")
        b = ShardResult("mc_dc", 4, 8, {"m": np.zeros(4)},
                        workload_key="k2")
        with pytest.raises(AnalysisError, match="workload"):
            merge_shard_results([a, b])

    def test_merge_out_of_order_input(self):
        a = ShardResult("mc_dc", 0, 2, {"m": np.array([0.0, 1.0])},
                        workload_key="k")
        b = ShardResult("mc_dc", 2, 4, {"m": np.array([2.0, 3.0])},
                        workload_key="k")
        samples = merge_shard_results([b, a]).samples
        assert np.array_equal(samples["m"], [0.0, 1.0, 2.0, 3.0])
