"""Tests for the frequency-domain LPTV engine and periodic noise.

The decisive check: the harmonic conversion-matrix engine and the
time-domain shooting engine are two independent implementations of the
same LPTV operator - their quasi-DC responses must coincide.
"""

import numpy as np
import pytest

from repro.analysis import (HarmonicLptv, compile_circuit,
                            periodic_sensitivities, pnoise, pss)
from repro.analysis.pss import PssOptions
from repro.circuit import Circuit, Sine
from repro.core.interpret import variance_from_baseband_psd
from repro.core.measures import DcLevel
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def small_pss(request):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    compiled = compile_circuit(ckt)
    return compiled, pss(compiled, 1e-6,
                         options=PssOptions(n_steps=256, settle_periods=3))


class TestEngineAgreement:
    def test_rc_waveforms_agree(self, small_pss):
        compiled, p = small_pss
        sens = periodic_sensitivities(p)
        engine = HarmonicLptv(p, n_harmonics=12)
        injections = compiled.mismatch_injections(p.state, p.x)
        for i, inj in enumerate(injections):
            resp = engine.solve_injection(inj, 1.0)
            w_h = engine.time_domain_waveform(resp, "out")
            w_s = sens.node_waveforms("out")[:, i]
            scale = max(np.max(np.abs(w_s)), 1e-30)
            assert np.max(np.abs(w_h - w_s)) / scale < 1e-3, inj.key

    def test_mosfet_stage_waveforms_agree(self, cs_amp_pss):
        compiled, p = cs_amp_pss
        sens = periodic_sensitivities(p)
        engine = HarmonicLptv(p, n_harmonics=24)
        injections = compiled.mismatch_injections(p.state, p.x)
        for i, inj in enumerate(injections):
            resp = engine.solve_injection(inj, 1.0)
            w_h = engine.time_domain_waveform(resp, "d")
            w_s = sens.node_waveforms("d")[:, i]
            scale = max(np.max(np.abs(w_s)), 1e-30)
            assert np.max(np.abs(w_h - w_s)) / scale < 1e-3, inj.key

    def test_truncation_guard(self, small_pss):
        compiled, p = small_pss
        with pytest.raises(AnalysisError):
            HarmonicLptv(p, n_harmonics=100)


class TestPNoise:
    def test_baseband_reading_matches_time_domain(self, cs_amp_pss):
        """PNOISE baseband PSD at 1 Hz == variance of the DC component
        computed from the shooting sensitivities (paper Section V-A)."""
        compiled, p = cs_amp_pss
        pn = pnoise(p, "d", sidebands=(0,), n_harmonics=24)
        sens = periodic_sensitivities(p)
        s = DcLevel("d_mean", "d").sensitivities(sens)
        var_td = float(np.sum((s * sens.sigmas) ** 2))
        var_pn = variance_from_baseband_psd(pn.psd[0])
        assert var_pn == pytest.approx(var_td, rel=0.02)

    def test_contributions_sum_to_total(self, cs_amp_pss):
        compiled, p = cs_amp_pss
        pn = pnoise(p, "d", sidebands=(0, 1), n_harmonics=16)
        for sb in (0, 1):
            assert sum(pn.contributions[sb].values()) == pytest.approx(
                pn.psd[sb], rel=1e-9)

    def test_physical_noise_included_separately(self, cs_amp_pss):
        compiled, p = cs_amp_pss
        pn = pnoise(p, "d", sidebands=(0,), n_harmonics=16,
                    include_pseudo=True, include_physical=True)
        keys = set(pn.contributions[0])
        assert ("M1", "vt0") in keys            # pseudo
        assert ("M1", "thermal") in keys        # physical
        # at 1 Hz the mismatch pseudo-noise dwarfs device noise
        assert (pn.contributions[0][("M1", "vt0")]
                > 100 * pn.contributions[0][("M1", "thermal")])

    def test_unanalysed_sideband_raises(self, cs_amp_pss):
        compiled, p = cs_amp_pss
        pn = pnoise(p, "d", sidebands=(0,), n_harmonics=16)
        with pytest.raises(AnalysisError):
            pn.sideband_psd(3)

    def test_summary_renders(self, cs_amp_pss):
        compiled, p = cs_amp_pss
        pn = pnoise(p, "d", sidebands=(0, 1), n_harmonics=16)
        text = pn.summary()
        assert "sideband N=+1" in text and "sideband N=+0" in text
