"""Transient breakpoint schedule: source corners become landing targets.

Smooth pulse edges, PWL corners and gate-window transitions register
their landing times with the adaptive stepper, so the LTE controller
stops paying rejected steps to *discover* each edge.
"""

import numpy as np
import pytest

from repro.analysis import compile_circuit, pss, transient
from repro.analysis.pss import PssOptions
from repro.analysis.transient import TransientOptions, source_breakpoints
from repro.circuit import Circuit, Sine, SmoothPulse
from repro.circuit.controlled import GateWindow
from repro.circuit.sources import Dc, Pwl, periodic_breakpoints

NS = 1e-9


def _pulse():
    return SmoothPulse(v0=0.0, v1=1.0, delay=0.0, t_rise=1 * NS,
                       t_high=3 * NS, t_fall=1 * NS, t_period=10 * NS)


class TestWaveBreakpoints:
    def test_smooth_pulse_corners(self):
        pts = _pulse().breakpoints(0.0, 20 * NS)
        expect = {1, 4, 5, 10, 11, 14, 15}  # ns; interval is open
        assert set(np.round(pts / NS).astype(int)) == expect

    def test_pwl_aperiodic(self):
        w = Pwl(times=[0.0, 1 * NS, 2 * NS], values=[0.0, 1.0, 0.0])
        assert set(w.breakpoints(0.0, 3 * NS)) == {1 * NS, 2 * NS}
        assert w.breakpoints(5 * NS, 9 * NS).size == 0

    def test_pwl_periodic(self):
        w = Pwl(times=[0.0, 1 * NS, 2 * NS], values=[0.0, 1.0, 0.0],
                t_period=2 * NS)
        pts = w.breakpoints(0.0, 5 * NS)
        assert set(np.round(pts / NS).astype(int)) == {1, 2, 3, 4}

    def test_gate_window_corners(self):
        g = GateWindow(t_on=2 * NS, t_off=6 * NS, period=10 * NS,
                       tau=1 * NS)
        pts = g.breakpoints(0.0, 10 * NS)
        assert set(np.round(pts / NS).astype(int)) == {2, 3, 6, 7}

    def test_dc_and_sine_have_none(self):
        assert Dc(1.0).breakpoints(0.0, 1.0).size == 0
        assert Sine(freq=1e6).breakpoints(0.0, 1e-5).size == 0

    def test_pathological_expansion_guarded(self):
        # span/period ratio that would expand past the guard: empty
        pts = periodic_breakpoints([0.0, 0.25], 0.0, 1e-12, 0.0, 1.0)
        assert pts.size == 0


class TestSourceBreakpoints:
    def _compiled(self):
        ckt = Circuit("pulse_rc")
        ckt.add_vsource("VP", "in", "0", wave=_pulse())
        ckt.add_resistor("R", "in", "out", 1e3)
        ckt.add_capacitor("C", "out", "0", 1e-12)
        return compile_circuit(ckt)

    def test_collects_and_sorts(self):
        pts = source_breakpoints(self._compiled(), 0.0, 20 * NS)
        assert np.all(np.diff(pts) > 0)
        assert set(np.round(pts / NS).astype(int)) == {1, 4, 5, 10, 11,
                                                       14, 15}

    def test_cap_falls_back_to_empty(self):
        compiled = self._compiled()
        # 5e-5 s of 10 ns pulses: ~20000 corners, over the cap but
        # under the per-wave expansion guard
        with pytest.warns(UserWarning, match="breakpoint"):
            pts = source_breakpoints(compiled, 0.0, 5e-5)
        assert pts.size == 0

    def test_adaptive_lands_on_corners(self):
        compiled = self._compiled()
        res = transient(compiled, t_stop=20 * NS, dt=0.5 * NS,
                        options=TransientOptions(record=["out"],
                                                 adaptive=True))
        for corner in source_breakpoints(compiled, 0.0, 20 * NS):
            assert np.any(res.t == corner)

    def test_opt_out(self):
        compiled = self._compiled()
        res = transient(compiled, t_stop=20 * NS, dt=0.5 * NS,
                        options=TransientOptions(
                            record=["out"], adaptive=True,
                            breakpoints=False))
        # without the schedule the stepper has no reason to hit 11 ns
        # exactly (dt does not divide it after LTE adjustments)
        assert res.n_accepted > 0

    def test_schedule_reduces_rejections(self):
        compiled = self._compiled()
        off = transient(compiled, t_stop=40 * NS, dt=0.5 * NS,
                        options=TransientOptions(
                            record=["out"], adaptive=True,
                            breakpoints=False))
        on = transient(compiled, t_stop=40 * NS, dt=0.5 * NS,
                       options=TransientOptions(record=["out"],
                                                adaptive=True))
        assert on.n_rejected <= off.n_rejected
        # accuracy sanity: same final value
        assert np.isclose(on.x_final_pad[:-1][0], off.x_final_pad[:-1][0],
                          rtol=1e-2, atol=1e-3)


class TestAdaptiveSettle:
    def test_settle_adaptive_matches_fixed_orbit(self):
        ckt = Circuit("rc_lp")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
        ckt.add_resistor("R", "in", "out", 1e3)
        ckt.add_capacitor("C", "out", "0", 1e-9)
        compiled = compile_circuit(ckt)
        fixed = pss(compiled, 1e-6,
                    options=PssOptions(n_steps=128, settle_periods=3))
        adapt = pss(compiled, 1e-6,
                    options=PssOptions(n_steps=128, settle_periods=3,
                                       settle_adaptive=True))
        # the shooting Newton polishes both to the same orbit
        assert np.allclose(adapt.x, fixed.x, rtol=1e-6, atol=1e-9)
        assert adapt.residual <= 1e-6
