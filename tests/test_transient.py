"""Unit tests for the transient integrator: analytic circuits,
convergence order, batching, DAE robustness."""

import numpy as np
import pytest

from repro.analysis import compile_circuit, transient
from repro.analysis.transient import TransientOptions
from repro.circuit import Circuit, Sine


def rc_step_circuit(r=1e3, c=1e-9, v=1.0):
    ckt = Circuit("rc_step")
    ckt.add_vsource("V1", "in", "0", dc=v)
    ckt.add_resistor("R", "in", "out", r)
    ckt.add_capacitor("C", "out", "0", c)
    ckt.set_ic({"in": v, "out": 0.0})
    return ckt


class TestAnalyticCircuits:
    def test_rc_charging_curve(self):
        tau = 1e-6
        c = compile_circuit(rc_step_circuit())
        res = transient(c, t_stop=5 * tau, dt=tau / 200)
        w = res.waveset()["out"]
        for frac in (0.5, 1.0, 2.0, 3.0):
            expected = 1.0 - np.exp(-frac)
            assert w(frac * tau) == pytest.approx(expected, abs=2e-4)

    def test_rc_sine_amplitude_and_phase(self):
        f0, r, cv = 1e6, 1e3, 1e-9
        ckt = Circuit("rc")
        ckt.add_vsource("VS", "in", "0", wave=Sine(amplitude=1.0, freq=f0))
        ckt.add_resistor("R", "in", "out", r)
        ckt.add_capacitor("C", "out", "0", cv)
        res = transient(compile_circuit(ckt), t_stop=10 / f0,
                        dt=1 / (f0 * 500))
        w = res.waveset()["out"].slice(6 / f0, 10 / f0)
        h = 1.0 / (1.0 + 2j * np.pi * f0 * r * cv)
        assert w.fundamental_amplitude(f0) == pytest.approx(abs(h),
                                                            rel=1e-3)

    def test_lc_resonance_energy_conservation(self):
        """Trapezoidal integration preserves LC oscillation amplitude."""
        l, cv = 1e-6, 1e-12   # f0 ~ 159 MHz
        ckt = Circuit("lc")
        ckt.add_inductor("L", "a", "0", l)
        ckt.add_capacitor("C", "a", "0", cv)
        ckt.set_ic(a=1.0)
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * cv))
        res = transient(compile_circuit(ckt), t_stop=20 / f0,
                        dt=1 / (f0 * 200))
        w = res.waveset()["a"]
        assert w.frequency(skip=3) == pytest.approx(f0, rel=1e-3)
        late = w.slice(15 / f0, 20 / f0)
        assert late.peak_to_peak() == pytest.approx(2.0, rel=5e-3)

    def test_lc_with_backward_euler_decays(self):
        """BE's numerical damping must shrink the LC amplitude - this
        is why trapezoidal is the default for oscillators."""
        l, cv = 1e-6, 1e-12
        ckt = Circuit("lc")
        ckt.add_inductor("L", "a", "0", l)
        ckt.add_capacitor("C", "a", "0", cv)
        ckt.set_ic(a=1.0)
        f0 = 1.0 / (2 * np.pi * np.sqrt(l * cv))
        res = transient(compile_circuit(ckt), t_stop=20 / f0,
                        dt=1 / (f0 * 200),
                        options=TransientOptions(method="be"))
        w = res.waveset()["a"]
        assert w.slice(15 / f0, 20 / f0).peak_to_peak() < 1.0


class TestConvergenceOrder:
    def _rc_error(self, n_per_tau, method):
        tau = 1e-6
        c = compile_circuit(rc_step_circuit())
        res = transient(c, t_stop=2 * tau, dt=tau / n_per_tau,
                        options=TransientOptions(method=method))
        w = res.waveset()["out"]
        t = w.t[1:]
        return np.max(np.abs(w.v[1:] - (1.0 - np.exp(-t / tau))))

    def test_trap_second_order(self):
        e1 = self._rc_error(50, "trap")
        e2 = self._rc_error(100, "trap")
        assert e1 / e2 == pytest.approx(4.0, rel=0.3)

    def test_be_first_order(self):
        e1 = self._rc_error(50, "be")
        e2 = self._rc_error(100, "be")
        assert e1 / e2 == pytest.approx(2.0, rel=0.3)


class TestBatching:
    def test_batched_rc_matches_scalar(self):
        c = compile_circuit(rc_step_circuit())
        deltas = {("R", "r"): np.array([-200.0, 0.0, 500.0])}
        state = c.make_state(deltas=deltas)
        res = transient(c, t_stop=2e-6, dt=1e-8, state=state)
        out = res.signal("out")          # (K+1, 3)
        assert out.shape[1] == 3
        for j, dr in enumerate(deltas[("R", "r")]):
            tau = (1e3 + dr) * 1e-9
            expected = 1.0 - np.exp(-res.t / tau)
            assert np.allclose(out[:, j], expected, atol=2e-3)

    def test_waveset_refuses_batched(self):
        c = compile_circuit(rc_step_circuit())
        state = c.make_state(deltas={("R", "r"): np.zeros(2)})
        res = transient(c, t_stop=1e-7, dt=1e-9, state=state)
        with pytest.raises(ValueError):
            res.waveset()


class TestOptionsAndRobustness:
    def test_record_subset_and_stride(self):
        c = compile_circuit(rc_step_circuit())
        res = transient(c, t_stop=1e-6, dt=1e-9,
                        options=TransientOptions(record=["out"], stride=4))
        assert set(res.signals) == {"out"}
        assert res.t.size == res.signal("out").size

    def test_record_branch_current(self):
        c = compile_circuit(rc_step_circuit())
        res = transient(c, t_stop=1e-6, dt=1e-9,
                        options=TransientOptions(record=["i:V1"]))
        i = res.signal("i:V1")
        assert i[1] == pytest.approx(-1e-3, rel=0.05)   # initial surge

    def test_continuation_from_final_state(self):
        c = compile_circuit(rc_step_circuit())
        r1 = transient(c, t_stop=1e-6, dt=1e-9)
        r2 = transient(c, t_stop=2e-6, dt=1e-9, t_start=1e-6,
                       x0_pad=r1.x_final_pad)
        w = r2.waveset()["out"]
        assert w(2e-6) == pytest.approx(1.0 - np.exp(-2.0), abs=1e-3)

    def test_zero_span_rejected(self):
        c = compile_circuit(rc_step_circuit())
        with pytest.raises(ValueError):
            transient(c, t_stop=0.0, dt=1e-9)

    def test_inconsistent_ic_recovered_by_be_start(self):
        """A deliberately inconsistent IC must not break the first step."""
        ckt = rc_step_circuit()
        ckt.set_ic({"in": 0.3, "out": 0.7})   # 'in' contradicts V1=1.0
        res = transient(compile_circuit(ckt), t_stop=1e-6, dt=1e-9)
        w = res.waveset()["in"]
        assert w(1e-8) == pytest.approx(1.0, abs=1e-6)
