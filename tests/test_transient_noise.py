"""Tests for the transient-noise engine (paper Fig. 5(a) baseline)."""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.analysis.transient_noise import transient_noise_analysis
from repro.circuit import Circuit
from repro.constants import BOLTZMANN, T_NOMINAL
from repro.errors import AnalysisError


def ktc_circuit(r=10e3, c=1e-12):
    ckt = Circuit("ktc")
    ckt.add_vsource("V", "in", "0", dc=0.5)
    ckt.add_resistor("R", "in", "out", r)
    ckt.add_capacitor("C", "out", "0", c)
    return compile_circuit(ckt)


pytestmark = pytest.mark.slow


class TestKtc:
    def test_stationary_sigma_is_ktc(self):
        c = 1e-12
        compiled = ktc_circuit(c=c)
        res = transient_noise_analysis(compiled, t_stop=300e-9,
                                       dt=0.25e-9, n_runs=300,
                                       record=["out"], seed=2)
        expect = np.sqrt(BOLTZMANN * T_NOMINAL / c)
        assert res.stationary_sigma("out") == pytest.approx(expect,
                                                            rel=0.10)

    def test_independent_of_r(self):
        """kT/C does not depend on the resistor value."""
        s = []
        for r in (3e3, 30e3):
            compiled = ktc_circuit(r=r)
            res = transient_noise_analysis(
                compiled, t_stop=60 * r * 1e-12, dt=0.05 * r * 1e-12,
                n_runs=250, record=["out"], seed=3)
            s.append(res.stationary_sigma("out"))
        assert s[0] == pytest.approx(s[1], rel=0.15)

    def test_sigma_t_grows_from_zero(self):
        """Starting from the deterministic DC point, the ensemble spread
        grows with the RC time constant before saturating."""
        compiled = ktc_circuit()
        res = transient_noise_analysis(compiled, t_stop=100e-9,
                                       dt=0.25e-9, n_runs=200,
                                       record=["out"], seed=4)
        sig = res.sigma_t("out")
        assert sig[1] < 0.3 * sig[-1]
        assert np.all(np.isfinite(sig))

    def test_mean_stays_at_bias(self):
        compiled = ktc_circuit()
        res = transient_noise_analysis(compiled, t_stop=100e-9,
                                       dt=0.25e-9, n_runs=200,
                                       record=["out"], seed=5)
        assert res.mean_t("out")[-1] == pytest.approx(0.5, abs=1e-4)

    def test_requires_noise_sources(self):
        ckt = Circuit("quiet")
        ckt.add_vsource("V", "a", "0", dc=1.0)
        ckt.add_resistor("R", "a", "0", 1e3, noisy=False)
        compiled = compile_circuit(ckt)
        with pytest.raises(AnalysisError):
            transient_noise_analysis(compiled, 1e-9, 1e-12, 4,
                                     record=["a"])
