"""Smoke tests: the bundled examples must run end to end.

The heavyweight examples (Monte-Carlo flags, the Gaussian-mixture sweep)
are exercised in reduced form or skipped here; the benchmark suite
covers their full-scale equivalents.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.slow


def run_example(name: str, argv: list[str] | None = None,
                monkeypatch=None, tmp_path=None) -> None:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "ring oscillator" in out
    assert "analytic sigma" in out


def test_logic_path_skew(capsys):
    run_example("logic_path_skew.py")
    out = capsys.readouterr().out
    assert "correlation rho(A, B)" in out
    assert "skew sigma(A-B)" in out


def test_dac_dnl(capsys):
    run_example("dac_dnl.py")
    out = capsys.readouterr().out
    assert "Eq.13" in out


def test_statistical_waveform(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_example("statistical_waveform.py")
    out = capsys.readouterr().out
    assert "sigma(t)" in out
    assert (tmp_path / "statistical_waveform.csv").exists()


def test_service_batch(capsys):
    run_example("service_batch.py")
    out = capsys.readouterr().out
    assert "from_cache=True, sigma identical: True" in out
    assert "request round-trips through JSON" in out
    assert "sweep request replays the study: 4/4" in out


def test_service_daemon(capsys):
    run_example("service_daemon.py")
    out = capsys.readouterr().out
    assert "from_cache=True" in out
    assert "bit-identical to the in-process run: True" in out


def test_service_batch_against_daemon(capsys):
    from repro.service import AnalysisServer
    with AnalysisServer() as server:
        run_example("service_batch.py", argv=["--url", server.url])
    out = capsys.readouterr().out
    assert f"daemon at {server.url}" in out
    assert "from_cache=True, sigma identical: True" in out
    assert "sweep request replays the study: 4/4" in out


def test_variation_spec(capsys):
    run_example("variation_spec.py")
    out = capsys.readouterr().out
    assert "spec round-trips through JSON" in out
    assert "sigma identical = True" in out


def test_comparator_offset_no_mc(capsys):
    run_example("comparator_offset.py", argv=[])
    out = capsys.readouterr().out
    assert "StrongARM comparator input offset" in out
    assert "width sensitivities" in out
