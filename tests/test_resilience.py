"""Chaos tests of the fault-tolerant network dispatch layer.

The invariants under test are this PR's contract:

* the client never leaks a raw :class:`urllib.error.URLError` - every
  no-response failure surfaces as a typed
  :class:`~repro.errors.TransportError` naming the endpoint and method;
* :class:`CircuitBreaker` walks closed -> open -> half-open with a
  single probe slot, under an injectable clock;
* a :class:`WorkerPool` scatter survives dead, draining and slow
  endpoints and still merges **bit-identical** to the fault-free
  in-process :func:`monte_carlo_transient` run (shards are generative,
  so re-dispatch changes nothing);
* a shard that exhausts every endpoint degrades into NaN-frozen lanes
  with a ``site="transport"`` :class:`FailureRecord` (serializable,
  counted by ``n_failed``), or - when every lane is lost - one typed
  error;
* ``POST /admin/drain`` refuses new work with a tagged 503 while
  in-flight jobs finish and stay pollable;
* the acceptance storm: real OS-process daemons, one SIGKILLed and one
  drained, and the merged samples still match bit for bit.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.circuit import Circuit, Sine
from repro.core import DcLevel
from repro.core.montecarlo import monte_carlo_transient
from repro.errors import (ConvergenceError, DrainingError, FailureRecord,
                          ReproError, TransportError)
from repro.service import (AnalysisRequest, AnalysisServer, FaultPlan,
                           FaultRule, RemoteSession, RetryPolicy,
                           from_jsonable, mc_transient_shards,
                           merge_shard_results,
                           scatter_monte_carlo_transient, scatter_shards,
                           to_jsonable)
from repro.service.resilience import (CircuitBreaker, ScatterPolicy,
                                      WorkerPool,
                                      is_infrastructure_failure)

MEAS = [DcLevel("vout", "out")]
FAST = ScatterPolicy(base_delay=0.0)


def _rc(r=1e3):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
    ckt.add_resistor("R", "in", "out", r, sigma_rel=0.05)
    ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
    return ckt


def _specs(n=8, chunk=4, seed=3):
    return mc_transient_shards(_rc(), MEAS, n, 2e-6, 2e-8,
                               chunk_size=chunk, seed=seed)


def _local(n=8, chunk=4, seed=3):
    return monte_carlo_transient(_rc(), MEAS, n, 2e-6, 2e-8,
                                 chunk_size=chunk, seed=seed)


def _dead_url():
    """A loopback URL nothing listens on (bound, then released)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"http://127.0.0.1:{port}"


def _raw(url, method="GET", body=None):
    req = urllib.request.Request(url, data=body, method=method)
    req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


# ---------------------------------------------------------------------------
# typed transport errors (never a raw URLError)
# ---------------------------------------------------------------------------
class TestTransportError:
    def test_dead_endpoint_raises_typed_error(self):
        url = _dead_url()
        client = RemoteSession(url, timeout=2.0)
        with pytest.raises(TransportError) as info:
            client.health()
        assert info.value.endpoint == url
        assert info.value.method == "GET"
        assert isinstance(info.value, ReproError)

    def test_injected_drop_surfaces_as_transport_error(self):
        plan = FaultPlan(rules=[FaultRule(site="transport",
                                          kind="crash")])
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            with plan.active():
                with pytest.raises(TransportError) as info:
                    client.health()
        assert info.value.endpoint == server.url
        assert "no HTTP response" in str(info.value)

    def test_transport_error_pickles_with_context(self):
        import pickle
        err = pickle.loads(pickle.dumps(TransportError(
            "boom", endpoint="http://x:1", method="POST")))
        assert (err.endpoint, err.method) == ("http://x:1", "POST")

    def test_job_polls_heal_through_transient_drops(self):
        """The job keeps running server-side whether or not a poll got
        through, so ``result()`` retries transient transport failures
        instead of abandoning a perfectly healthy job."""
        request = AnalysisRequest.dc_mismatch(_rc(), {"vdc": "out"})
        plan = FaultPlan(rules=[FaultRule(site="transport",
                                          kind="crash",
                                          fail_attempts=2)])
        with AnalysisServer() as server:
            job = RemoteSession(server.url).submit(request)
            with plan.active():
                result = job.result(timeout=30.0, poll_interval=0.01)
        assert result.summary["metrics"]["vdc"]["sigma"] > 0.0

    def test_job_poll_retry_budget_is_bounded(self):
        request = AnalysisRequest.dc_mismatch(_rc(), {"vdc": "out"})
        plan = FaultPlan(rules=[FaultRule(site="transport",
                                          kind="crash")])
        with AnalysisServer() as server:
            job = RemoteSession(server.url).submit(request)
            job.result(timeout=30.0)  # let it finish cleanly first
            with plan.active():
                with pytest.raises(TransportError):
                    job.result(timeout=30.0, poll_interval=0.01,
                               transport_retries=2)


# ---------------------------------------------------------------------------
# the breaker automaton
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def _clocked(self, **kw):
        now = [0.0]
        breaker = CircuitBreaker(clock=lambda: now[0], **kw)
        return breaker, now

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._clocked(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, _ = self._clocked(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_half_opens_with_one_probe_slot(self):
        breaker, now = self._clocked(failure_threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        now[0] = 9.9
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.state == "half_open"
        assert breaker.allow()          # the single probe slot
        assert not breaker.allow()      # everyone else waits

    def test_probe_outcome_resolves_half_open(self):
        breaker, now = self._clocked(failure_threshold=1, cooldown=1.0)
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_failure()        # failed probe: re-open
        assert breaker.state == "open" and not breaker.allow()
        now[0] = 2.0
        assert breaker.allow()
        breaker.record_success()        # healed probe: close
        assert breaker.state == "closed" and breaker.allow()

    def test_validates_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestScatterPolicy:
    def test_backoff_shape(self):
        policy = ScatterPolicy(base_delay=0.05, backoff=2.0)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.20)
        assert ScatterPolicy(base_delay=0.0).delay(3) == 0.0

    def test_round_trips_through_dict(self):
        policy = ScatterPolicy(max_attempts=5, hedge=True,
                               hedge_percentile=90.0)
        assert ScatterPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize("bad", [
        {"max_attempts": 0}, {"failure_threshold": 0},
        {"cooldown": -1.0}, {"hedge_percentile": 0.0},
        {"hedge_percentile": 101.0}, {"hedge_min_samples": 0}])
    def test_validates(self, bad):
        with pytest.raises(ValueError):
            ScatterPolicy(**bad)

    def test_infrastructure_classification(self):
        assert is_infrastructure_failure(TransportError("x"))
        err = ReproError("supervised shard died")
        err.http_status = 502
        assert is_infrastructure_failure(err)
        assert not is_infrastructure_failure(ConvergenceError("x"))
        assert not is_infrastructure_failure(
            DrainingError("deliberate"))


# ---------------------------------------------------------------------------
# the pool: dispatch, failover, degrade
# ---------------------------------------------------------------------------
class TestWorkerPool:
    def test_clean_scatter_is_bit_identical(self):
        local = _local()
        with AnalysisServer() as w1, AnalysisServer() as w2:
            with WorkerPool([w1.url, w2.url], policy=FAST) as pool:
                merged = merge_shard_results(pool.scatter(_specs()))
        assert np.array_equal(merged.samples["vout"],
                              local.samples["vout"])
        assert merged.n_failed == 0

    def test_failed_endpoint_fails_over_bit_identical(self):
        """Every call to one endpoint drops at the socket; its shards
        re-dispatch to the healthy endpoint and the merge is still
        exact, while the dead endpoint's breaker opens."""
        local = _local()
        with AnalysisServer() as w1, AnalysisServer() as w2:
            plan = FaultPlan(rules=[FaultRule(
                site="transport", kind="crash",
                start=f"{w1.url} POST /shard")])
            policy = ScatterPolicy(base_delay=0.0, failure_threshold=1)
            with plan.active():
                with WorkerPool([w1.url, w2.url],
                                policy=policy) as pool:
                    merged = merge_shard_results(pool.scatter(_specs()))
                    stats = pool.stats()
        assert np.array_equal(merged.samples["vout"],
                              local.samples["vout"])
        assert merged.n_failed == 0
        by_url = {e["url"]: e for e in stats["endpoints"]}
        assert by_url[w1.url]["failures"] >= 1
        assert by_url[w1.url]["breaker"] in ("open", "half_open")
        assert by_url[w2.url]["failures"] == 0

    def test_probe_routes_around_draining_endpoint(self):
        local = _local()
        with AnalysisServer() as w1, AnalysisServer() as w2:
            RemoteSession(w2.url).drain()
            with WorkerPool([w1.url, w2.url], policy=FAST) as pool:
                pool.probe()
                merged = merge_shard_results(pool.scatter(_specs()))
                stats = pool.stats()
        assert np.array_equal(merged.samples["vout"],
                              local.samples["vout"])
        by_url = {e["url"]: e for e in stats["endpoints"]}
        assert by_url[w2.url]["draining"] is True
        assert by_url[w2.url]["dispatched"] == 0
        assert by_url[w1.url]["dispatched"] == len(_specs())

    def test_background_probe_discovers_dead_endpoint(self):
        dead = _dead_url()
        with AnalysisServer() as live:
            with WorkerPool([live.url,
                             RemoteSession(dead, timeout=1.0)],
                            policy=ScatterPolicy(failure_threshold=1),
                            probe_interval=0.05) as pool:
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    by_url = {e["url"]: e for e in
                              pool.stats()["endpoints"]}
                    if by_url[dead]["failures"] >= 1:
                        break
                    time.sleep(0.02)
        assert by_url[dead]["failures"] >= 1
        assert by_url[dead]["breaker"] in ("open", "half_open")
        assert by_url[live.url]["breaker"] == "closed"

    def test_all_dead_scatter_degrades_with_transport_records(self):
        specs = _specs()
        sessions = [RemoteSession(_dead_url(), timeout=1.0)
                    for _ in range(2)]
        with WorkerPool(sessions, policy=FAST) as pool:
            results = pool.scatter(specs)
        merged = merge_shard_results(results)
        assert merged.n_failed == sum(s.stop - s.start for s in specs)
        assert np.all(np.isnan(merged.samples["vout"]))
        assert len(merged.failures) == len(specs)
        for spec, record in zip(specs, merged.failures):
            assert isinstance(record, FailureRecord)
            assert record.site == "transport"
            assert record.error == "TransportError"
            assert record.attempts == FAST.max_attempts
            assert (record.start, record.stop) == (spec.start,
                                                   spec.stop)
            assert record.n_lanes == spec.stop - spec.start
            # the record survives the wire
            assert from_jsonable(to_jsonable(record)) == record

    def test_all_lanes_lost_raises_one_typed_error(self):
        urls = [_dead_url(), _dead_url()]
        with WorkerPool([RemoteSession(u, timeout=1.0) for u in urls],
                        policy=FAST) as pool:
            with pytest.raises(TransportError, match="all 8 lanes"):
                scatter_monte_carlo_transient(
                    pool, _rc(), MEAS, 8, 2e-6, 2e-8, seed=3,
                    chunk_size=4)

    def test_degrade_false_raises_naming_the_span(self):
        policy = ScatterPolicy(base_delay=0.0, degrade=False,
                               max_attempts=2)
        with WorkerPool([RemoteSession(_dead_url(), timeout=1.0)],
                        policy=policy) as pool:
            with pytest.raises(TransportError,
                               match=r"shard \[0, 4\)"):
                pool.scatter(_specs(n=4, chunk=4))

    def test_partial_transport_loss_counts_degraded_lanes(self):
        """A merge of one healthy and one transport-degraded shard
        counts exactly the degraded lanes and keeps the survivors."""
        specs = _specs()
        with AnalysisServer() as server:
            good = RemoteSession(server.url).run_shard(specs[0])
        from repro.service.shards import degraded_shard_result
        bad = degraded_shard_result(
            specs[1], TransportError("endpoint never answered"),
            attempts=3, site="transport")
        merged = merge_shard_results([good, bad])
        local = _local()
        assert merged.n_failed == specs[1].stop - specs[1].start
        assert merged.failures[0].site == "transport"
        assert np.array_equal(merged.samples["vout"][:specs[0].stop],
                              local.samples["vout"][:specs[0].stop])
        assert np.all(np.isnan(merged.samples["vout"][specs[1].start:]))

    def test_terminal_shard_failure_names_span_and_endpoint(self):
        """A workload failure (not infrastructure) propagates out of
        the pool annotated with which span died where - and out of the
        static scatter path identically."""
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence", start=4)])
        with AnalysisServer() as server:  # unsupervised: faults raise
            with plan.active():
                with WorkerPool([server.url], policy=FAST) as pool:
                    with pytest.raises(ConvergenceError) as via_pool:
                        pool.scatter(_specs())
                with pytest.raises(ConvergenceError) as via_static:
                    scatter_shards([server.url], _specs())
        for info in (via_pool, via_static):
            assert f"[shard [4, 8) on {server.url}]" in str(info.value)
            assert info.value.shard_span == (4, 8)
            assert info.value.endpoint == server.url

    def test_hedged_dispatch_beats_a_straggler(self):
        """A shard stuck on a slow endpoint past the observed latency
        percentile is duplicated onto the other endpoint; the first
        result wins, the merge stays exact, and the scatter finishes
        long before the straggler would have."""
        hang = 3.0
        policy = ScatterPolicy(hedge=True, hedge_percentile=50.0,
                               hedge_min_samples=2, hedge_floor=0.01,
                               base_delay=0.0)
        local = _local(n=16, chunk=4)
        with AnalysisServer() as w1, AnalysisServer() as w2:
            with WorkerPool([w1.url, w2.url], policy=policy) as pool:
                pool.scatter(_specs())  # warm the latency window
                plan = FaultPlan(rules=[FaultRule(
                    site="transport", kind="hang", hang_seconds=hang,
                    start=f"{w1.url} POST /shard")])
                with plan.active():
                    t0 = time.monotonic()
                    merged = merge_shard_results(
                        pool.scatter(_specs(n=16, chunk=4)))
                    elapsed = time.monotonic() - t0
                stats = pool.stats()
        assert np.array_equal(merged.samples["vout"],
                              local.samples["vout"])
        assert stats["hedges"] >= 1
        assert elapsed < hang

    def test_pool_requires_an_endpoint(self):
        with pytest.raises(ValueError):
            WorkerPool([])


# ---------------------------------------------------------------------------
# summary parity: two routes, one answer - failures included
# ---------------------------------------------------------------------------
class TestSummaryParity:
    def test_degraded_scatter_summary_matches_served_request(self):
        """With the same deterministic fault plan active on both
        routes, the scatter summary (``n_failed`` and all) equals what
        ``POST /run`` of the whole supervised workload reports."""
        n, chunk, seed = 8, 4, 3
        retry = RetryPolicy(max_attempts=2, base_delay=0.0)
        plan = FaultPlan(rules=[FaultRule(site="run_shard",
                                          kind="convergence",
                                          start=chunk)])
        request = AnalysisRequest.monte_carlo_transient(
            _rc(), MEAS, n, 2e-6, 2e-8, seed=seed, chunk_size=chunk,
            retry=retry)
        with AnalysisServer(retry=retry) as server:
            with plan.active():
                served = RemoteSession(server.url).run(request)
                scattered = scatter_monte_carlo_transient(
                    [server.url], _rc(), MEAS, n, 2e-6, 2e-8,
                    seed=seed, chunk_size=chunk, policy=FAST)
        assert scattered.n_failed == chunk
        assert scattered.summary() == served.summary
        assert served.summary["n_failed"] == chunk


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------
class TestDrain:
    def test_drain_refuses_new_work_with_tagged_503(self):
        body = json.dumps(AnalysisRequest.dc_mismatch(
            _rc(), {"vdc": "out"}).to_dict()).encode()
        with AnalysisServer() as server:
            status, payload = _raw(server.url + "/admin/drain", "POST")
            assert status == 200
            assert payload["status"] == "draining"
            for path in ("/run", "/jobs"):
                code, refusal = _raw(server.url + path, "POST", body)
                assert code == 503
                assert refusal["error"]["error"] == "DrainingError"
                assert refusal["retry_after"] == pytest.approx(
                    payload["retry_after"])
            spec_body = json.dumps(_specs()[0].to_dict()).encode()
            code, _ = _raw(server.url + "/shard", "POST", spec_body)
            assert code == 503

    def test_client_raises_draining_error_with_hint(self):
        with AnalysisServer(drain_retry_after=2.5) as server:
            client = RemoteSession(server.url)
            assert client.drain()["status"] == "draining"
            with pytest.raises(DrainingError) as info:
                client.run(AnalysisRequest.dc_mismatch(
                    _rc(), {"vdc": "out"}))
        assert info.value.retry_after == pytest.approx(2.5)
        assert info.value.http_status == 503

    def test_health_reports_draining_without_refusing(self):
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            client.drain()
            health = client.health()
            stats = client.server_stats()
        assert health["status"] == "draining"
        assert health["draining"] is True
        assert stats["draining"] is True

    def test_inflight_jobs_finish_and_stay_pollable(self):
        request = AnalysisRequest.dc_mismatch(_rc(), {"vdc": "out"})
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            job = client.submit(request)
            drained = client.drain()
            assert drained["status"] == "draining"
            result = job.result(timeout=30.0)    # accepted work finishes
            assert job.poll()["status"] == "done"  # and stays pollable
            with pytest.raises(DrainingError):
                client.submit(AnalysisRequest.dc_mismatch(
                    _rc(1.1e3), {"vdc": "out"}))
        assert result.summary["metrics"]["vdc"]["sigma"] > 0.0

    def test_drain_is_idempotent(self):
        with AnalysisServer() as server:
            client = RemoteSession(server.url)
            assert client.drain()["status"] == "draining"
            assert client.drain()["status"] == "draining"


# ---------------------------------------------------------------------------
# the acceptance storm: real processes, real SIGKILL
# ---------------------------------------------------------------------------
def _spawn_daemon():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env)
    url = proc.stdout.readline().strip()
    if not url.startswith("http"):
        proc.kill()
        raise RuntimeError(f"daemon failed to announce: {url!r}")
    return proc, url


class TestSubprocessFailover:
    def test_scatter_survives_sigkill_and_drain_bit_identical(self):
        """Three real daemon processes; one is SIGKILLed, one drained.
        The pool reroutes both endpoints' shards and the merged samples
        still match the fault-free in-process run bit for bit."""
        n, chunk, seed = 24, 4, 11
        local = monte_carlo_transient(_rc(), MEAS, n, 2e-6, 2e-8,
                                      seed=seed, chunk_size=chunk)
        daemons = [_spawn_daemon() for _ in range(3)]
        procs = [p for p, _ in daemons]
        urls = [u for _, u in daemons]
        try:
            with WorkerPool(urls,
                            policy=ScatterPolicy(base_delay=0.0,
                                                 failure_threshold=1)
                            ) as pool:
                pool.probe()   # all three look healthy right now
                RemoteSession(urls[2]).drain()
                procs[0].send_signal(signal.SIGKILL)
                procs[0].wait(timeout=10)
                # the pool has not probed since: it still believes in
                # both endpoints and must *discover* the kill and the
                # drain through dispatch failures / tagged 503s
                result = scatter_monte_carlo_transient(
                    pool, _rc(), MEAS, n, 2e-6, 2e-8, seed=seed,
                    chunk_size=chunk)
                stats = pool.stats()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=10)
        assert np.array_equal(result.samples["vout"],
                              local.samples["vout"])
        assert result.n_failed == 0 and result.failures == []
        by_url = {e["url"]: e for e in stats["endpoints"]}
        assert by_url[urls[0]]["failures"] >= 1       # the kill was felt
        assert by_url[urls[2]]["draining"] is True    # the drain too
        assert by_url[urls[1]]["failures"] == 0
