"""Tests for the pseudo-noise PSD layer (paper Section III)."""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.circuit.elements import PsdShape
from repro.core.pseudo_noise import (PseudoNoisePsd, folding_safety_ratio,
                                     injection_table,
                                     pseudo_noise_sources)


class TestPseudoNoisePsd:
    def test_psd_value_at_reference_is_variance(self):
        src = PseudoNoisePsd(("M1", "vt0"), sigma=6.5e-3)
        assert src.psd(1.0) == pytest.approx((6.5e-3) ** 2)

    def test_one_over_f_shape(self):
        src = PseudoNoisePsd(("M1", "vt0"), sigma=1e-2)
        assert src.psd(10.0) == pytest.approx(src.psd(1.0) / 10.0)
        assert src.shape is PsdShape.FLICKER

    def test_paper_reading_example(self):
        """Paper Section V-A: PSD 8.24e-4 V^2/Hz at 1 Hz <-> 28.7 mV."""
        src = PseudoNoisePsd(("x", "y"), sigma=28.7e-3)
        assert src.psd(1.0) == pytest.approx(8.24e-4, rel=0.01)


class TestCircuitLevel:
    def test_sources_cover_all_decls(self, rc_divider):
        compiled = compile_circuit(rc_divider)
        sources = pseudo_noise_sources(compiled)
        assert {s.key for s in sources} == {("R1", "r"), ("R2", "r")}
        by_key = {s.key: s for s in sources}
        assert by_key[("R1", "r")].sigma == pytest.approx(20.0)

    def test_injection_table_alias(self, rc_divider):
        compiled = compile_circuit(rc_divider)
        x = np.zeros((1, compiled.n))
        a = injection_table(compiled, compiled.nominal, x)
        b = compiled.mismatch_injections(compiled.nominal, x)
        assert [i.key for i in a] == [i.key for i in b]

    def test_folding_safety(self):
        """1 GHz fundamental vs 1 Hz reading: folded pseudo-noise is
        down by 1e9 - the paper's argument for the 1/f shape."""
        assert folding_safety_ratio(1e9) == pytest.approx(1e9)
        assert folding_safety_ratio(2e9, f_ref=2.0) == pytest.approx(1e9)
