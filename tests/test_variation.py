"""Declarative variation specs: lowering, correlation, serialization.

The contract under test is the acceptance criterion of the spec: a
``VariationSpec`` lowers onto exactly the ``param_covariance`` matrix
one would build by hand, so every downstream path (Eq. 6 propagation,
Monte-Carlo sampling, the shard protocol) is bit-identical between the
declarative and the raw-array form.
"""

import json
import math

import numpy as np
import pytest

from repro import (CorrelationGroup, ParameterVariation, VariationSpec,
                   monte_carlo_dc, spec_for_circuit)
from repro.circuit import Circuit, default_technology
from repro.core import dc_mismatch_analysis
from repro.errors import AnalysisError
from repro.service import ShardSpec, from_jsonable, to_jsonable
from repro.service.shards import mc_dc_shards, merge_shard_results, run_shard


def _divider():
    ckt = Circuit("div")
    ckt.add_vsource("V1", "in", "0", dc=1.2)
    ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 3e3, sigma_rel=0.02)
    return ckt


def _spec(rho=None, **overrides):
    groups = () if rho is None else (CorrelationGroup("rs", rho),)
    group = None if rho is None else "rs"
    return VariationSpec(
        variations=(
            ParameterVariation("R1", "r", group=group, **overrides),
            ParameterVariation("R2", "r", group=group, **overrides),
        ),
        groups=groups,
    )


class TestLowering:
    def test_diagonal_matches_hand_built_covariance(self):
        ckt = _divider()
        decls = ckt.mismatch_decls()
        hand = np.diag([d.sigma ** 2 for d in decls])
        cov = _spec().lower(decls)
        np.testing.assert_array_equal(cov, hand)

    def test_correlation_group_off_diagonals(self):
        ckt = _divider()
        decls = ckt.mismatch_decls()
        cov = _spec(rho=0.5).lower(decls)
        stds = np.array([d.sigma for d in decls])
        hand = np.diag(stds ** 2)
        hand[0, 1] = hand[1, 0] = 0.5 * stds[0] * stds[1]
        np.testing.assert_array_equal(cov, hand)

    def test_sigma_override_and_scale(self):
        ckt = _divider()
        decls = ckt.mismatch_decls()
        cov = _spec(sigma=7.0, scale=2.0).lower(decls)
        np.testing.assert_array_equal(np.diag(cov), [196.0, 196.0])

    def test_uniform_moment_matching(self):
        spec = _spec(half_width=3.0, distribution="uniform")
        std = spec.variations[0].std(declared=None)
        assert std == pytest.approx(3.0 / math.sqrt(3.0))

    def test_lognormal_mixture_second_moment(self):
        decl_sigma = 0.4
        spec = _spec(distribution="lognormal", shape=0.5)
        comps = spec.mixture("R1", "r", declared_sigma=decl_sigma,
                            n_components=15, span_sigmas=4.0)
        w = np.array([c.weight for c in comps])
        mu = np.array([c.mean for c in comps])
        sd = np.array([c.sigma for c in comps])
        mean = float(w @ mu)
        var = float(w @ (sd ** 2 + mu ** 2)) - mean ** 2
        assert mean == pytest.approx(0.0, abs=0.05 * decl_sigma)
        assert math.sqrt(var) == pytest.approx(decl_sigma, rel=0.05)

    def test_undeclared_target_rejected(self):
        spec = VariationSpec(
            variations=(ParameterVariation("R9", "r", sigma=1.0),))
        with pytest.raises(AnalysisError, match="R9"):
            spec.lower(_divider().mismatch_decls())

    def test_unknown_group_rejected(self):
        with pytest.raises(AnalysisError, match="group"):
            VariationSpec(variations=(
                ParameterVariation("R1", "r", sigma=1.0, group="ghost"),))


class TestSerialization:
    def test_jsonable_round_trip(self):
        spec = _spec(rho=0.25)
        back = from_jsonable(json.loads(json.dumps(to_jsonable(spec))))
        assert back == spec
        assert back.fingerprint() == spec.fingerprint()

    def test_fingerprint_order_independent(self):
        a = _spec(rho=0.25)
        b = VariationSpec(variations=tuple(reversed(a.variations)),
                          groups=a.groups)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sensitive_to_values(self):
        assert _spec().fingerprint() != _spec(scale=2.0).fingerprint()

    def test_plain_dict_round_trip(self):
        spec = _spec(rho=0.25)
        assert VariationSpec.from_dict(spec.to_dict()) == spec


class TestEndToEnd:
    def test_dc_mismatch_spec_equals_hand_built(self):
        ckt = _divider()
        spec = spec_for_circuit(ckt)
        cov = spec.covariance(ckt)
        a = dc_mismatch_analysis(ckt, {"vout": "out"}, variations=spec)
        b = dc_mismatch_analysis(ckt, {"vout": "out"},
                                 param_covariance=cov)
        assert a.sigma("vout") == b.sigma("vout")

    def test_mc_bit_identical_to_hand_built(self):
        ckt = _divider()
        spec = _spec(rho=0.3)
        cov = spec.covariance(ckt)
        a = monte_carlo_dc(ckt, {"vout": "out"}, 32, seed=5,
                           param_covariance=cov)
        b = monte_carlo_dc(ckt, {"vout": "out"}, 32, seed=5,
                           variations=spec)
        np.testing.assert_array_equal(a.samples["vout"],
                                      b.samples["vout"])

    def test_mc_bit_identical_across_pool(self):
        ckt = _divider()
        spec = _spec(rho=0.3)
        a = monte_carlo_dc(ckt, {"vout": "out"}, 32, seed=5,
                           param_covariance=spec.covariance(ckt))
        c = monte_carlo_dc(ckt, {"vout": "out"}, 32, seed=5,
                           variations=spec, n_workers=2)
        np.testing.assert_array_equal(a.samples["vout"],
                                      c.samples["vout"])

    def test_both_forms_rejected(self):
        ckt = _divider()
        spec = _spec()
        with pytest.raises(ValueError, match="not both"):
            monte_carlo_dc(ckt, {"vout": "out"}, 4, variations=spec,
                           param_covariance=spec.covariance(ckt))

    def test_shard_spec_carries_variations(self):
        ckt = _divider()
        spec = _spec(rho=0.3)
        cov_shards = mc_dc_shards(ckt, {"vout": "out"}, 32, 8, seed=5,
                                  param_covariance=spec.covariance(ckt))
        var_shards = mc_dc_shards(ckt, {"vout": "out"}, 32, 8, seed=5,
                                  variations=spec)
        assert all(isinstance(s.variations, dict) for s in var_shards)
        merged_cov = merge_shard_results(
            [run_shard(s) for s in cov_shards])
        merged_var = merge_shard_results(
            [run_shard(s) for s in var_shards])
        np.testing.assert_array_equal(merged_cov.samples["vout"],
                                      merged_var.samples["vout"])

    def test_shard_round_trip_keeps_variations(self):
        ckt = _divider()
        shard = mc_dc_shards(ckt, {"vout": "out"}, 8, 8, seed=5,
                             variations=_spec(rho=0.3))[0]
        back = ShardSpec.from_json(shard.to_json())
        assert back.variations == shard.variations
        assert back.workload_key() == shard.workload_key()

    def test_technology_variation_spec_scaled(self):
        tech = default_technology()
        from repro import inverter_chain
        ckt = inverter_chain(tech, n_stages=2)
        spec = tech.variation_spec(ckt, scale=4.0)
        cov = spec.covariance(ckt)
        base = tech.variation_spec(ckt).covariance(ckt)
        np.testing.assert_allclose(cov, 16.0 * base)
