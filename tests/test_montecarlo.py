"""Tests for the batched Monte-Carlo engine."""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.circuit import Circuit, Sine
from repro.core import DcLevel, monte_carlo_transient, sample_mismatch
from repro.core.contributions import correlated_covariance_from_mixing
from repro.errors import MeasurementError


class TestSampling:
    def test_sample_shapes_and_sigmas(self, rc_divider):
        c = compile_circuit(rc_divider)
        rng = np.random.default_rng(0)
        deltas = sample_mismatch(c, 20_000, rng)
        assert set(deltas) == {("R1", "r"), ("R2", "r")}
        assert deltas[("R1", "r")].std() == pytest.approx(20.0, rel=0.03)
        assert deltas[("R2", "r")].std() == pytest.approx(60.0, rel=0.03)

    def test_sigma_scale(self, rc_divider):
        c = compile_circuit(rc_divider)
        rng = np.random.default_rng(0)
        deltas = sample_mismatch(c, 20_000, rng, sigma_scale=2.5)
        assert deltas[("R1", "r")].std() == pytest.approx(50.0, rel=0.03)

    def test_correlated_sampling(self, rc_divider):
        c = compile_circuit(rc_divider)
        rng = np.random.default_rng(1)
        # perfectly correlated draws via C = A A^T with A = [s1; s2]
        mix = np.array([[20.0], [60.0]])
        cov = correlated_covariance_from_mixing(mix)
        deltas = sample_mismatch(c, 20_000, rng, param_covariance=cov)
        r = np.corrcoef(deltas[("R1", "r")], deltas[("R2", "r")])[0, 1]
        assert r == pytest.approx(1.0, abs=1e-6)

    def test_key_subset(self, rc_divider):
        c = compile_circuit(rc_divider)
        rng = np.random.default_rng(2)
        deltas = sample_mismatch(c, 10, rng, keys=[("R2", "r")])
        assert list(deltas) == [("R2", "r")]

    def test_wrong_covariance_shape(self, rc_divider):
        c = compile_circuit(rc_divider)
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            sample_mismatch(c, 10, rng, param_covariance=np.eye(3))


class TestTransientMc:
    def _rc(self):
        ckt = Circuit("rc")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
        ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.03)
        ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.01)
        return ckt

    def test_chunking_is_transparent(self):
        ckt = self._rc()
        common = dict(measures=[DcLevel("v", "out")], n=40,
                      t_stop=4e-6, dt=1e-8, window=(3e-6, 4e-6), seed=9)
        a = monte_carlo_transient(ckt, chunk_size=40, **common)
        b = monte_carlo_transient(ckt, chunk_size=7, **common)
        assert np.allclose(a.samples["v"], b.samples["v"], rtol=1e-12)

    def test_seed_reproducibility(self):
        ckt = self._rc()
        common = dict(measures=[DcLevel("v", "out")], n=16,
                      t_stop=4e-6, dt=1e-8, window=(3e-6, 4e-6))
        a = monte_carlo_transient(ckt, seed=11, **common)
        b = monte_carlo_transient(ckt, seed=11, **common)
        c = monte_carlo_transient(ckt, seed=12, **common)
        assert np.array_equal(a.samples["v"], b.samples["v"])
        assert not np.array_equal(a.samples["v"], c.samples["v"])

    def test_partial_lane_failure_records_nan(self):
        """A lane whose measurement fails records NaN and is counted;
        the other lanes survive."""
        from repro.core import EdgeDelay
        from repro.core.montecarlo import measure_lanes
        t = np.linspace(0.0, 1.0, 101)
        good = np.clip((t - 0.3) * 10, 0, 1)
        bad = np.zeros_like(t)                    # never crosses
        signals = {"a": np.stack([good, bad], axis=1),
                   "b": np.stack([1 - good, 1 - good], axis=1)}
        out = {"d": np.empty(2)}
        failures = measure_lanes(
            t, signals, [EdgeDelay("d", "a", "b", 0.5)], out, 0)
        assert failures == 1
        assert np.isfinite(out["d"][0])
        assert np.isnan(out["d"][1])

    def test_all_failed_raises(self):
        from repro.core import EdgeDelay
        ckt = self._rc()
        with pytest.raises(MeasurementError):
            monte_carlo_transient(
                ckt, [EdgeDelay("d", "out", "out", 5.0)],
                n=4, t_stop=2e-6, dt=1e-8, seed=1)

    def test_report_renders(self):
        ckt = self._rc()
        mc = monte_carlo_transient(ckt, [DcLevel("v", "out")], n=8,
                                   t_stop=3e-6, dt=1e-8,
                                   window=(2e-6, 3e-6), seed=4)
        text = mc.report()
        assert "Monte-Carlo" in text and "sigma" in text
