"""Technology / Pelgrom model tests, including the paper's calibration
point (Section VI): the 3-sigma drain-current variation of a
8.32 um / 0.13 um nMOS at VGS = 1.0 V.

The paper quotes ~14 % on its foundry BSIM model; our EKV substitute
lands near 11 % with the published matching constants (AVT = 6.5 mV.um,
Abeta = 3.25 %.um) - the exact number is recorded in EXPERIMENTS.md and
pinned here so regressions are caught.
"""

import math

import numpy as np
import pytest

from repro.analysis import compile_circuit, dc_operating_point
from repro.circuit import Circuit
from repro.core import monte_carlo_dc


class TestPelgrom:
    def test_sigma_scaling_with_area(self, tech):
        assert tech.sigma_vt(1e-6, 0.13e-6) == pytest.approx(
            2.0 * tech.sigma_vt(4e-6, 0.13e-6))
        assert tech.sigma_beta_rel(2e-6, 0.26e-6) == pytest.approx(
            tech.abeta / math.sqrt(2e-6 * 0.26e-6))

    def test_paper_constants(self, tech):
        assert tech.avt == pytest.approx(6.5e-9)
        assert tech.abeta == pytest.approx(3.25e-8)

    def test_calibration_device_sigmas(self, tech):
        """8.32/0.13 um: sigma_VT ~ 6.25 mV, sigma_beta ~ 3.13 %."""
        assert tech.sigma_vt(8.32e-6, 0.13e-6) == pytest.approx(
            6.25e-3, rel=0.01)
        assert tech.sigma_beta_rel(8.32e-6, 0.13e-6) == pytest.approx(
            0.03126, rel=0.01)

    def test_scaled_technology(self, tech):
        t2 = tech.scaled(3.0)
        assert t2.avt == pytest.approx(3.0 * tech.avt)
        assert t2.abeta == pytest.approx(3.0 * tech.abeta)
        assert t2.nmos == tech.nmos       # electrical params untouched


class TestCalibrationPoint:
    def _id_samples(self, tech, n=2000, scale=1.0):
        ckt = Circuit("calib")
        ckt.add_vsource("VG", "g", "0", dc=1.0)
        ckt.add_vsource("VD", "d", "0", dc=1.2)
        ckt.add_mosfet("M1", "d", "g", "0", "0", 8.32e-6, 0.13e-6,
                       tech.scaled(scale))
        compiled = compile_circuit(ckt)
        from repro.core.montecarlo import sample_mismatch
        rng = np.random.default_rng(42)
        deltas = sample_mismatch(compiled, n, rng)
        state = compiled.make_state(deltas=deltas)
        dc = dc_operating_point(compiled, state)
        return -dc.current("VD")

    def test_three_sigma_id_variation(self, tech):
        """Model-measured 3-sigma(dId/Id): ~11 % for this EKV model
        (paper's BSIM: ~14 %); must stay in a plausible band."""
        ids = self._id_samples(tech)
        rel3 = 3.0 * ids.std() / ids.mean()
        assert 0.08 < rel3 < 0.16

    def test_first_order_formula_close_to_mc(self, tech):
        ids = self._id_samples(tech)
        mc3 = 3.0 * ids.std() / ids.mean()
        formula3 = 3.0 * tech.sigma_id_rel(8.32e-6, 0.13e-6, 1.0)
        assert formula3 == pytest.approx(mc3, rel=0.15)

    def test_mismatch_scale_scales_id_sigma(self, tech):
        """Scaling the matching constants scales sigma(Id) linearly
        (the Fig. 11 sweep relies on this)."""
        s1 = self._id_samples(tech, scale=1.0).std()
        s3 = self._id_samples(tech, scale=3.0).std()
        assert s3 / s1 == pytest.approx(3.0, rel=0.1)


class TestMonteCarloDc:
    def test_divider_sigma_analytic(self, rc_divider):
        """v_out = V R2/(R1+R2): first-order sigma known analytically."""
        compiled = compile_circuit(rc_divider)
        mc = monte_carlo_dc(compiled, {"vout": "out"}, n=4000, seed=7)
        r1, r2, v = 1e3, 3e3, 1.2
        dvdr1 = -v * r2 / (r1 + r2) ** 2
        dvdr2 = v * r1 / (r1 + r2) ** 2
        expected = math.hypot(dvdr1 * 0.02 * r1, dvdr2 * 0.02 * r2)
        assert mc.sigma("vout") == pytest.approx(expected, rel=0.06)

    def test_ota_offset_is_millivolts(self, tech):
        from repro.circuits import five_transistor_ota
        ota = five_transistor_ota(tech)
        mc = monte_carlo_dc(compile_circuit(ota),
                            {"vos": ("out", "inp")}, n=400, seed=1)
        assert 1e-3 < mc.sigma("vos") < 30e-3
