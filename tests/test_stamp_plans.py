"""Parity tests for the compile-time stamp plans and native CSR path.

The vectorized assembler (:mod:`repro.analysis.stamps`) must reproduce
the seed's per-element stamping loops to numerical round-off, for every
element family, across scalar and batched states; the native-CSR
assembly must match the dense assembly on the same states; and the
process-parallel Monte-Carlo sharding must reproduce the serial run
bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.analysis.transient import TransientOptions, transient
from repro.circuit import (Circuit, GateWindow, Sine, SmoothPulse,
                           default_technology)
from repro.circuits import (five_transistor_ota, logic_path_testbench,
                            resistor_string_dac, ring_oscillator,
                            strongarm_offset_testbench)
from repro.core import DcLevel, monte_carlo_dc, monte_carlo_transient
from repro.errors import NetlistError


# ---------------------------------------------------------------------------
# reference implementation: the seed's per-element loops
# ---------------------------------------------------------------------------
def reference_templates(compiled, deltas, batch):
    """Seed-style per-element linear stamping (g_lin, c_lin)."""
    deltas = deltas or {}
    n1 = compiled.n + 1
    g_lin = np.zeros(batch + (n1, n1))
    c_lin = np.zeros(batch + (n1, n1))

    def dfor(key):
        return deltas.get(key, 0.0)

    def add(mat, row, col, val):
        mat[..., row, col] += val

    for e in compiled.resistors:
        p, q = compiled.idx(e.pos), compiled.idx(e.neg)
        g = 1.0 / (e.r + np.asarray(dfor((e.name, "r"))))
        add(g_lin, p, p, g), add(g_lin, q, q, g)
        add(g_lin, p, q, -g), add(g_lin, q, p, -g)
    for e in compiled.capacitors:
        p, q = compiled.idx(e.pos), compiled.idx(e.neg)
        c = e.c + np.asarray(dfor((e.name, "c")))
        add(c_lin, p, p, c), add(c_lin, q, q, c)
        add(c_lin, p, q, -c), add(c_lin, q, p, -c)
    for e in compiled.inductors:
        p, q = compiled.idx(e.pos), compiled.idx(e.neg)
        br = compiled.branch(e.name)
        lval = e.l + np.asarray(dfor((e.name, "l")))
        add(g_lin, p, br, 1.0), add(g_lin, q, br, -1.0)
        add(g_lin, br, p, -1.0), add(g_lin, br, q, 1.0)
        add(c_lin, br, br, lval)
    for e in compiled.vsources:
        p, q = compiled.idx(e.pos), compiled.idx(e.neg)
        br = compiled.branch(e.name)
        add(g_lin, p, br, 1.0), add(g_lin, q, br, -1.0)
        add(g_lin, br, p, 1.0), add(g_lin, br, q, -1.0)
    for e in compiled.vcvs:
        p, q = compiled.idx(e.pos), compiled.idx(e.neg)
        cp, cn = compiled.idx(e.ctrl_pos), compiled.idx(e.ctrl_neg)
        br = compiled.branch(e.name)
        add(g_lin, p, br, 1.0), add(g_lin, q, br, -1.0)
        add(g_lin, br, p, 1.0), add(g_lin, br, q, -1.0)
        add(g_lin, br, cp, -e.gain), add(g_lin, br, cn, e.gain)
    for e in compiled.linear_vccs:
        p, q = compiled.idx(e.pos), compiled.idx(e.neg)
        cp, cn = compiled.idx(e.ctrl_pos), compiled.idx(e.ctrl_neg)
        add(g_lin, p, cp, e.gm), add(g_lin, p, cn, -e.gm)
        add(g_lin, q, cp, -e.gm), add(g_lin, q, cn, e.gm)
    for e in compiled.mosfets:
        d, g, s, b = (compiled.idx(e.d), compiled.idx(e.g),
                      compiled.idx(e.s), compiled.idx(e.b))
        for (a, c, val) in ((g, s, e.c_gs), (g, d, e.c_gd),
                            (d, b, e.c_db), (s, b, e.c_sb)):
            if val > 0.0:
                add(c_lin, a, a, val), add(c_lin, c, c, val)
                add(c_lin, a, c, -val), add(c_lin, c, a, -val)
    if compiled.cmin > 0.0:
        for i in range(compiled.n_nodes):
            add(c_lin, i, i, compiled.cmin)
    for m in (g_lin, c_lin):
        m[..., compiled.n, :] = 0.0
        m[..., :, compiled.n] = 0.0
    return g_lin, c_lin


def reference_assemble(compiled, state, x_pad, t, source_scale=1.0,
                       gmin=0.0):
    """Seed-style residual/Jacobian assembly (per-element loops)."""
    g_lin = state.to_dense()[0]
    g_pad = np.array(np.broadcast_to(
        g_lin, x_pad.shape[:-1] + g_lin.shape[-2:]))
    if gmin > 0.0:
        diag = np.einsum("...ii->...i", g_pad)
        diag[..., :compiled.n_nodes] += gmin
    f_pad = np.matmul(g_pad, x_pad[..., None])[..., 0]

    def source_value(el):
        if el.name in state.source_values:
            return state.source_values[el.name]
        return el.wave(t)

    for e in compiled.vsources:
        br = compiled.branch(e.name)
        f_pad[..., br] -= source_scale * source_value(e)
    for e in compiled.isources:
        val = source_scale * source_value(e)
        f_pad[..., compiled.idx(e.pos)] += val
        f_pad[..., compiled.idx(e.neg)] -= val

    if compiled.mosfets:
        ev = compiled._mos_eval(state, x_pad)
        ids_phys = compiled._mos_sign * ev.ids
        for k, e in enumerate(compiled.mosfets):
            d, s = compiled.idx(e.d), compiled.idx(e.s)
            f_pad[..., d] += ids_phys[..., k]
            f_pad[..., s] -= ids_phys[..., k]
            g = compiled.idx(e.g)
            b = compiled.idx(e.b)
            for col, gv in ((d, ev.g_d), (g, ev.g_g), (s, ev.g_s),
                            (b, ev.g_b)):
                g_pad[..., d, col] += gv[..., k]
                g_pad[..., s, col] -= gv[..., k]

    for e in compiled.nl_vccs:
        p, q = compiled.idx(e.pos), compiled.idx(e.neg)
        cp, cn = compiled.idx(e.ctrl_pos), compiled.idx(e.ctrl_neg)
        vc = x_pad[..., cp] - x_pad[..., cn]
        phi, dphi = e.phi(vc)
        gate = e.gate_value(t)
        cur = gate * e.gm * phi
        f_pad[..., p] += cur
        f_pad[..., q] -= cur
        gd = gate * e.gm * dphi
        g_pad[..., p, cp] += gd
        g_pad[..., p, cn] -= gd
        g_pad[..., q, cp] -= gd
        g_pad[..., q, cn] += gd
    f_pad[..., compiled.n] = 0.0
    return g_pad, f_pad


# ---------------------------------------------------------------------------
# circuits under test
# ---------------------------------------------------------------------------
def all_elements_circuit():
    """Synthetic netlist touching every supported element family."""
    tech = default_technology()
    ckt = Circuit("everything")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VIN", "in", "0",
                    wave=Sine(amplitude=0.2, freq=1e6, offset=0.8))
    ckt.add_isource("IB", "vdd", "nb", dc=20e-6)
    ckt.add_isource("IP", "nb", "0",
                    wave=SmoothPulse(v0=0.0, v1=5e-6, t_rise=1e-9,
                                     t_high=0.3e-6, t_fall=1e-9,
                                     t_period=1e-6))
    ckt.add_resistor("R1", "in", "a", 1e3, sigma_rel=0.05)
    ckt.add_resistor("R2", "a", "0", 2e3, sigma_rel=0.05)
    ckt.add_capacitor("C1", "a", "0", 1e-12, sigma_rel=0.05)
    ckt.add_inductor("L1", "a", "b", 1e-6, sigma_rel=0.05)
    ckt.add_resistor("R3", "b", "0", 500.0)
    ckt.add_vcvs("E1", "c", "0", "a", "0", gain=2.0)
    ckt.add_resistor("R4", "c", "0", 1e4)
    ckt.add_vccs("GLIN", "nb", "0", "a", "0", gm=1e-4)
    ckt.add_vccs("GLIM", "c", "0", "b", "0", gm=2e-4, vlimit=0.3)
    ckt.add_vccs("GGATE", "a", "0", "c", "0", gm=1e-4, vlimit=0.5,
                 gate=GateWindow(t_on=0.1e-6, t_off=0.4e-6,
                                 period=1e-6, tau=10e-9))
    ckt.add_mosfet("M1", "nb", "a", "0", "0", w=2e-6, l=0.26e-6,
                   tech=tech)
    ckt.add_mosfet("M2", "vdd", "c", "nb", "vdd", w=4e-6, l=0.26e-6,
                   tech=tech, polarity="p")
    return ckt


def builtin_circuits():
    tech = default_technology()
    return {
        "ota": five_transistor_ota(tech),
        "comparator_tb": strongarm_offset_testbench(tech).circuit,
        "logic_path": logic_path_testbench(tech).circuit,
        "ring_osc": ring_oscillator(tech),
        "dac": resistor_string_dac(tech, n_bits=3),
        "everything": all_elements_circuit(),
    }


def random_linear_deltas(compiled, rng, batch=()):
    """Random deltas for every linear parameter and mismatch decl."""
    deltas = {}
    for e in compiled.resistors:
        deltas[(e.name, "r")] = rng.normal(0.0, 0.01 * e.r, batch or None)
    for e in compiled.capacitors:
        deltas[(e.name, "c")] = rng.normal(0.0, 0.01 * e.c, batch or None)
    for e in compiled.inductors:
        deltas[(e.name, "l")] = rng.normal(0.0, 0.01 * e.l, batch or None)
    for e in compiled.mosfets:
        deltas[(e.name, "vt0")] = rng.normal(0.0, 2e-3, batch or None)
        deltas[(e.name, "beta_rel")] = rng.normal(0.0, 0.01, batch or None)
    return deltas


CIRCUITS = builtin_circuits()


@pytest.mark.parametrize("name", sorted(CIRCUITS))
@pytest.mark.parametrize("batch", [(), (5,)])
class TestStampPlanParity:
    def test_linear_templates(self, name, batch):
        compiled = compile_circuit(CIRCUITS[name])
        rng = np.random.default_rng(hash(name) % 2**32)
        deltas = random_linear_deltas(compiled, rng, batch)
        state = compiled.make_state(deltas=deltas)
        # sparse-native state: the dense image is the explicit escape
        # hatch, and the sparse value arrays stay O(nnz)
        assert state.g_data.shape[-1] == state.plan.nnz + 1
        g_lin, c_lin = state.to_dense()
        g_ref, c_ref = reference_templates(compiled, deltas, batch)
        assert g_lin.shape == g_ref.shape
        np.testing.assert_allclose(g_lin, g_ref, rtol=1e-12,
                                   atol=1e-12 * np.abs(g_ref).max())
        np.testing.assert_allclose(c_lin, c_ref, rtol=1e-12,
                                   atol=1e-12 * max(np.abs(c_ref).max(),
                                                    1e-30))

    def test_assemble(self, name, batch):
        compiled = compile_circuit(CIRCUITS[name])
        rng = np.random.default_rng((hash(name) + 1) % 2**32)
        deltas = random_linear_deltas(compiled, rng, batch)
        state = compiled.make_state(deltas=deltas)
        x_pad = np.zeros(batch + (compiled.n + 1,))
        x_pad[..., :compiled.n] = rng.uniform(
            0.0, 1.5, batch + (compiled.n,))
        for t in (0.0, 0.37e-6):
            for scale, gmin in ((1.0, 0.0), (0.35, 1e-3)):
                _, g_pad, f_pad = compiled.buffers(batch)
                compiled.assemble(state, x_pad, t, g_pad, f_pad,
                                  source_scale=scale, gmin=gmin)
                g_ref, f_ref = reference_assemble(
                    compiled, state, x_pad, t, source_scale=scale,
                    gmin=gmin)
                scale_g = max(np.abs(g_ref).max(), 1.0)
                scale_f = max(np.abs(f_ref).max(), 1.0)
                np.testing.assert_allclose(g_pad, g_ref,
                                           atol=1e-12 * scale_g)
                np.testing.assert_allclose(f_pad, f_ref,
                                           atol=1e-12 * scale_f)

    def test_residual_only_matches_jacobian_run(self, name, batch):
        compiled = compile_circuit(CIRCUITS[name])
        rng = np.random.default_rng((hash(name) + 2) % 2**32)
        state = compiled.make_state()
        x_pad = np.zeros(batch + (compiled.n + 1,))
        x_pad[..., :compiled.n] = rng.uniform(
            0.0, 1.2, batch + (compiled.n,))
        _, g_pad, f_full = compiled.buffers(batch)
        compiled.assemble(state, x_pad, 0.2e-6, g_pad, f_full)
        _, _, f_only = compiled.buffers(batch)
        compiled.assemble(state, x_pad, 0.2e-6, g_pad, f_only,
                          jacobian=False)
        np.testing.assert_allclose(f_only, f_full, rtol=0, atol=1e-12)


@pytest.mark.parametrize("name", sorted(CIRCUITS))
class TestCsrParity:
    def test_csr_assemble_matches_dense(self, name):
        compiled = compile_circuit(CIRCUITS[name], backend="sparse")
        rng = np.random.default_rng((hash(name) + 3) % 2**32)
        deltas = random_linear_deltas(compiled, rng)
        state = compiled.make_state(deltas=deltas)
        asm = compiled.csr_assembler(state)
        plan = compiled.csr_plan
        x_pad = np.zeros(compiled.n + 1)
        x_pad[:compiled.n] = rng.uniform(0.0, 1.5, compiled.n)
        f_csr = np.zeros(compiled.n + 1)
        for t, scale, gmin in ((0.0, 1.0, 0.0), (0.43e-6, 0.7, 1e-4)):
            asm.assemble(x_pad, t, f_csr, source_scale=scale, gmin=gmin)
            _, g_pad, f_pad = compiled.buffers(())
            compiled.assemble(state, x_pad, t, g_pad, f_pad,
                              source_scale=scale, gmin=gmin)
            g_dense = plan.densify(asm.g_data)
            np.testing.assert_allclose(
                g_dense, g_pad[:compiled.n, :compiled.n],
                atol=1e-12 * max(np.abs(g_pad).max(), 1.0))
            np.testing.assert_allclose(
                f_csr, f_pad, atol=1e-12 * max(np.abs(f_pad).max(), 1.0))

    def test_csr_pattern_covers_dense(self, name):
        """Every structurally possible dense entry is in the pattern."""
        compiled = compile_circuit(CIRCUITS[name], backend="sparse")
        g_lin, c_lin = compiled.nominal.to_dense()
        plan = compiled.csr_plan
        n = compiled.n
        dense_g = np.abs(g_lin[:n, :n]) > 0
        dense_c = np.abs(c_lin[:n, :n]) > 0
        pattern = np.zeros((n, n), dtype=bool)
        pattern[plan.rows, plan.cols] = True
        assert not (dense_g & ~pattern).any()
        assert not (dense_c & ~pattern).any()


class TestCsrTransientParity:
    @pytest.mark.parametrize("name", ["everything", "ring_osc"])
    def test_transient_matches_dense_backend(self, name):
        record = {"everything": "a", "ring_osc": "osc1"}[name]
        res = {}
        for be in ("dense", "sparse"):
            compiled = compile_circuit(CIRCUITS[name], backend=be)
            res[be] = transient(
                compiled, t_stop=2e-8, dt=2e-11,
                options=TransientOptions(record=[record]))
        np.testing.assert_allclose(res["sparse"].signal(record),
                                   res["dense"].signal(record),
                                   atol=5e-9)


class TestSourcePlan:
    def test_static_vector_cached_and_correct(self):
        ckt = all_elements_circuit()
        compiled = compile_circuit(ckt)
        state = compiled.make_state()
        _, g_pad, f1 = compiled.buffers(())
        x_pad = np.zeros(compiled.n + 1)
        compiled.assemble(state, x_pad, 0.1e-6, g_pad, f1)
        assert state.src_static is not None
        # second time point must re-evaluate the time-varying waves
        _, _, f2 = compiled.buffers(())
        compiled.assemble(state, x_pad, 0.6e-6, g_pad, f2)
        _, ref1 = reference_assemble(compiled, state, x_pad, 0.1e-6)
        _, ref2 = reference_assemble(compiled, state, x_pad, 0.6e-6)
        np.testing.assert_allclose(f1, ref1, atol=1e-12)
        np.testing.assert_allclose(f2, ref2, atol=1e-12)
        assert not np.allclose(f1, f2)   # the pulse/sine moved

    def test_override_on_time_varying_source_raises(self):
        ckt = Circuit("bad_override")
        ckt.add_vsource("VS", "a", "0",
                        wave=Sine(amplitude=1.0, freq=1e6))
        ckt.add_resistor("R", "a", "0", 1e3)
        compiled = compile_circuit(ckt)
        state = compiled.make_state(source_values={"VS": 1.0})
        _, g_pad, f_pad = compiled.buffers(())
        with pytest.raises(NetlistError):
            compiled.assemble(state, np.zeros(compiled.n + 1), 0.0,
                              g_pad, f_pad)

    def test_batched_dc_override(self):
        ckt = Circuit("override")
        ckt.add_vsource("VS", "a", "0", dc=1.0)
        ckt.add_resistor("Ra", "a", "b", 1e3)
        ckt.add_resistor("Rb", "b", "0", 1e3)
        compiled = compile_circuit(ckt)
        vals = np.array([0.5, 1.0, 2.0])
        state = compiled.make_state(source_values={"VS": vals},
                                    batch_shape=vals.shape)
        x_pad = np.zeros(vals.shape + (compiled.n + 1,))
        _, g_pad, f_pad = compiled.buffers(vals.shape)
        compiled.assemble(state, x_pad, 0.0, g_pad, f_pad)
        br = compiled.branch("VS")
        np.testing.assert_allclose(f_pad[:, br], -vals)


class TestBidxCache:
    def test_cached_per_batch_shape(self):
        compiled = compile_circuit(CIRCUITS["ota"])
        state = compiled.make_state(batch_shape=(4,))
        x_pad = np.zeros((4, compiled.n + 1))
        _, g_pad, f_pad = compiled.buffers((4,))
        compiled.assemble(state, x_pad, 0.0, g_pad, f_pad)
        compiled.assemble(state, x_pad, 0.0, g_pad, f_pad)
        assert (4,) in compiled._bidx_cache
        first = compiled._bidx_cache[(4,)]
        compiled.assemble(state, x_pad, 0.0, g_pad, f_pad)
        assert compiled._bidx_cache[(4,)] is first


class TestParallelMonteCarlo:
    def _testbench(self):
        tech = default_technology()
        return five_transistor_ota(tech), [DcLevel("vout", "out")]

    def test_transient_workers_bitwise_identical(self):
        ckt, meas = self._testbench()
        kw = dict(n=12, t_stop=2e-8, dt=1e-10, seed=11, chunk_size=4)
        serial = monte_carlo_transient(ckt, meas, **kw)
        parallel = monte_carlo_transient(ckt, meas, n_workers=3, **kw)
        for name in serial.samples:
            np.testing.assert_array_equal(serial.samples[name],
                                          parallel.samples[name])
        assert serial.n_failed == parallel.n_failed
        assert serial.failed_metrics == parallel.failed_metrics

    def test_dc_workers_bitwise_identical(self):
        ckt, _ = self._testbench()
        kw = dict(n=10, seed=7, chunk_size=5)
        serial = monte_carlo_dc(ckt, {"vout": "out"}, **kw)
        parallel = monte_carlo_dc(ckt, {"vout": "out"}, n_workers=2, **kw)
        for name in serial.samples:
            np.testing.assert_array_equal(serial.samples[name],
                                          parallel.samples[name])

    def test_dc_single_batch_unchanged_without_workers(self):
        """Default chunking must stay one batch (seed behaviour)."""
        ckt, _ = self._testbench()
        a = monte_carlo_dc(ckt, {"vout": "out"}, n=8, seed=3)
        b = monte_carlo_dc(ckt, {"vout": "out"}, n=8, seed=3, chunk_size=8)
        np.testing.assert_array_equal(a.samples["vout"],
                                      b.samples["vout"])
