"""End-to-end correlated-mismatch tests (paper Eq. 6, Section III-C).

The linear engine handles correlation as a quadratic form over the
parameter covariance; the MC engine samples the joint Gaussian.  Both
paths must agree on circuits where the effect is first-order.
"""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.circuit import Circuit
from repro.core import dc_mismatch_analysis, monte_carlo_dc
from repro.core.contributions import (ContributionTable,
                                      correlated_covariance_from_mixing)


@pytest.fixture()
def matched_divider():
    """Divider of two nominally equal resistors - the textbook
    ratiometric circuit: common-mode R variation cancels exactly."""
    ckt = Circuit("matched_divider")
    ckt.add_vsource("V1", "in", "0", dc=1.0)
    ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.02)
    ckt.add_resistor("R2", "out", "0", 1e3, sigma_rel=0.02)
    return ckt


def mixing(rho: float, sigmas) -> np.ndarray:
    """Two-parameter mixing matrix realising correlation *rho*."""
    s1, s2 = sigmas
    a = np.array([
        [s1, 0.0],
        [rho * s2, np.sqrt(max(0.0, 1 - rho * rho)) * s2],
    ])
    return correlated_covariance_from_mixing(a)


class TestLinearQuadraticForm:
    @pytest.mark.parametrize("rho", [-1.0, -0.5, 0.0, 0.5, 1.0])
    def test_divider_sigma_vs_closed_form(self, matched_divider, rho):
        res = dc_mismatch_analysis(matched_divider, {"v": "out"})
        t0 = res.contributions("v")
        cov = mixing(rho, t0.sigmas)
        t = ContributionTable("v", t0.keys, t0.sensitivities, t0.sigmas,
                              param_covariance=cov)
        # S1 = -S2 for the matched divider; closed form:
        # var = S^2 (s1^2 + s2^2 - 2 rho s1 s2)
        s = abs(t0.sensitivities[0])
        sig = t0.sigmas[0]
        expected = (s * sig) ** 2 * (2.0 - 2.0 * rho)
        assert t.variance == pytest.approx(expected, rel=1e-9)

    def test_full_correlation_cancels(self, matched_divider):
        res = dc_mismatch_analysis(matched_divider, {"v": "out"})
        t0 = res.contributions("v")
        cov = mixing(1.0, t0.sigmas)
        t = ContributionTable("v", t0.keys, t0.sensitivities, t0.sigmas,
                              param_covariance=cov)
        # ~9 orders below the uncorrelated sigma (7 mV): pure rounding
        assert t.sigma < 1e-9


class TestMonteCarloAgreement:
    @pytest.mark.parametrize("rho", [0.0, 0.8, -0.8])
    def test_mc_matches_quadratic_form(self, matched_divider, rho):
        res = dc_mismatch_analysis(matched_divider, {"v": "out"})
        t0 = res.contributions("v")
        cov = mixing(rho, t0.sigmas)
        t = ContributionTable("v", t0.keys, t0.sensitivities, t0.sigmas,
                              param_covariance=cov)
        mc = monte_carlo_dc(matched_divider, {"v": "out"}, n=6000,
                            seed=31, param_covariance=cov)
        assert mc.sigma("v") == pytest.approx(t.sigma, rel=0.06,
                                              abs=1e-7)

    def test_sampled_correlation_matches_request(self, matched_divider):
        from repro.core import sample_mismatch
        compiled = compile_circuit(matched_divider)
        rng = np.random.default_rng(5)
        decls = matched_divider.mismatch_decls()
        cov = mixing(0.6, [d.sigma for d in decls])
        draws = sample_mismatch(compiled, 30_000, rng,
                                param_covariance=cov)
        r = np.corrcoef(draws[("R1", "r")], draws[("R2", "r")])[0, 1]
        assert r == pytest.approx(0.6, abs=0.02)
