"""Tests for design-parameter (width) sensitivities - paper Section VII,
Eqs. 14-16 and Fig. 10."""

import numpy as np
import pytest

from repro.circuit import Circuit, default_technology
from repro.core import dc_mismatch_analysis
from repro.core.design_sensitivity import (sigma_after_resize,
                                           width_sensitivities,
                                           width_sensitivity_report)


@pytest.fixture(scope="module")
def ota_result():
    tech = default_technology()
    from repro.circuits import five_transistor_ota
    ota = five_transistor_ota(tech)
    res = dc_mismatch_analysis(ota, {"vos": ("out", "inp")})
    return ota, res


class TestWidthSensitivities:
    def test_chain_rule_value(self, ota_result):
        """d var/dW = -var_i/W exactly, since both Pelgrom variances
        scale as 1/W (Eqs. 14-16)."""
        ota, res = ota_result
        rows = width_sensitivities(res.contributions("vos"), ota)
        for r in rows:
            assert r.dvar_dw == pytest.approx(
                -r.variance_contribution / r.width)

    def test_shares_sum_to_one(self, ota_result):
        ota, res = ota_result
        rows = width_sensitivities(res.contributions("vos"), ota)
        assert sum(r.normalized_impact for r in rows) == pytest.approx(
            1.0, abs=1e-9)

    def test_sorted_descending(self, ota_result):
        ota, res = ota_result
        rows = width_sensitivities(res.contributions("vos"), ota)
        impacts = [r.normalized_impact for r in rows]
        assert impacts == sorted(impacts, reverse=True)

    def test_widening_dominant_device_shrinks_sigma(self, ota_result):
        """Doubling the W of the top contributor must reduce the
        predicted sigma; its own contribution halves in variance."""
        ota, res = ota_result
        t = res.contributions("vos")
        top = width_sensitivities(t, ota)[0]
        new = sigma_after_resize(t, ota, {top.device: 2.0 * top.width})
        assert new < t.sigma
        expected_var = t.variance - 0.5 * top.variance_contribution
        assert new == pytest.approx(np.sqrt(expected_var), rel=1e-9)

    def test_resize_all_halves_sigma(self, ota_result):
        """Quadrupling every W divides every sigma_i by 2 -> sigma/2,
        when all contributions come from MOSFETs."""
        ota, res = ota_result
        t = res.contributions("vos")
        widths = {r.device: 4.0 * r.width
                  for r in width_sensitivities(t, ota)}
        new = sigma_after_resize(t, ota, widths)
        assert new == pytest.approx(0.5 * t.sigma, rel=1e-9)

    def test_report_renders_with_labels(self, ota_result):
        ota, res = ota_result
        text = width_sensitivity_report(res.contributions("vos"), ota,
                                        labels={"MI1": "input+"})
        assert "input+" in text and "W [um]" in text

    def test_non_mosfet_contributions_ignored(self):
        tech = default_technology()
        ckt = Circuit()
        ckt.add_vsource("V", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "out", 1e3, sigma_rel=0.01)
        ckt.add_resistor("R2", "out", "0", 1e3, sigma_rel=0.01)
        ckt.add_mosfet("M1", "out", "in", "0", "0", 1e-6, 0.26e-6, tech)
        res = dc_mismatch_analysis(ckt, {"v": "out"})
        rows = width_sensitivities(res.contributions("v"), ckt)
        assert all(r.device == "M1" for r in rows)
