"""Functional tests for the bundled benchmark circuits."""

import pytest

from repro.analysis import compile_circuit, transient
from repro.analysis.transient import TransientOptions
from repro.circuits import (inverter_chain, logic_path_testbench,
                            resistor_string_dac, ring_oscillator)
from repro.circuits.dac import dac_tap_names


class TestRingOscillator:
    def test_free_running_oscillation(self, tech):
        ckt = ring_oscillator(tech)
        res = transient(compile_circuit(ckt), t_stop=6e-9, dt=2e-12,
                        options=TransientOptions(record=["osc1"]))
        w = res.waveset()["osc1"]
        assert w.peak_to_peak() > 0.8 * tech.vdd
        assert 0.5e9 < w.frequency(skip=4) < 10e9

    def test_more_stages_lower_frequency(self, tech):
        def freq(n):
            ckt = ring_oscillator(tech, n_stages=n)
            res = transient(compile_circuit(ckt), t_stop=10e-9, dt=2e-12,
                            options=TransientOptions(record=["osc1"]))
            return res.waveset()["osc1"].frequency(skip=4)
        assert freq(7) < freq(5)


class TestInverterChain:
    def test_signal_propagates_with_delay(self, tech):
        ckt = inverter_chain(tech, n_stages=4, period=4e-9)
        c = compile_circuit(ckt)
        res = transient(c, t_stop=8e-9, dt=2e-12,
                        options=TransientOptions(record=["in", "n4"]))
        ws = res.waveset()
        vth = 0.5 * tech.vdd
        t_in = ws["in"].crossing(vth, "rise", -1).time
        t_out = ws["n4"].crossing(vth, "rise", t_start=t_in).time
        assert 10e-12 < (t_out - t_in) < 500e-12

    def test_even_chain_noninverting(self, tech):
        ckt = inverter_chain(tech, n_stages=4, period=4e-9)
        res = transient(compile_circuit(ckt), t_stop=8e-9, dt=2e-12,
                        options=TransientOptions(record=["n4"]))
        w = res.waveset()["n4"]
        assert w.min() < 0.05 * tech.vdd
        assert w.max() > 0.95 * tech.vdd


class TestLogicPath:
    @pytest.mark.parametrize("late", ["X", "Y"])
    def test_outputs_fall_after_late_input(self, tech, late):
        tb = logic_path_testbench(tech, late_input=late)
        c = compile_circuit(tb.circuit)
        res = transient(c, t_stop=2 * tb.period, dt=tb.period / 1500,
                        options=TransientOptions(
                            record=[late, "A", "B"]))
        ws = res.waveset()
        t0 = ws[late].crossing(tb.vth, "rise", -1).time
        for out in ("A", "B"):
            tc = ws[out].crossing(tb.vth, "fall", t_start=t0).time
            assert 0 < tc - t0 < 0.1 * tb.period

    def test_invalid_late_input(self, tech):
        with pytest.raises(ValueError):
            logic_path_testbench(tech, late_input="Z")


class TestComparatorTestbench:
    def test_loop_converges_and_tracks_vt_shift(self, tech,
                                                comparator_pss):
        tb, compiled, _ = comparator_pss
        state = compiled.make_state(deltas={("M3", "vt0"): 6e-3})
        res = transient(compiled, t_stop=40 * tb.period,
                        dt=tb.period / 400, state=state,
                        options=TransientOptions(record=["vos"]))
        vos = res.waveset()["vos"]
        final = vos(res.t[-1])
        # VT up on the negative-input device -> offset = -6 mV
        assert final == pytest.approx(-6e-3, rel=0.05)
        # converged: last two cycles equal
        assert abs(final - vos(res.t[-1] - tb.period)) < 2e-6

    def test_decision_polarity(self, tech, comparator_pss):
        """inp > inn must drive outp high / outn low at evaluation."""
        tb, compiled, _ = comparator_pss
        state = compiled.make_state(source_values={})
        # apply a large offset through the integrator initial condition
        tb2 = tb.circuit
        ic = dict(tb2.ic)
        tb2.ic["vos"] = 0.05
        res = transient(compiled, t_stop=1.5 * tb.period,
                        dt=tb.period / 800,
                        options=TransientOptions(
                            record=["outp", "outn"]))
        ws = res.waveset()
        t_eval = 0.75 * tb.period
        assert ws["outp"](t_eval) > ws["outn"](t_eval)
        tb2.ic.update(ic)


class TestDac:
    def test_nominal_ladder_levels(self, tech):
        dac = resistor_string_dac(tech, n_bits=3)
        c = compile_circuit(dac)
        from repro.analysis import dc_operating_point
        dc = dc_operating_point(c)
        for i, tap in enumerate(dac_tap_names(3), start=1):
            assert dc.voltage(tap) == pytest.approx(
                tech.vdd * i / 8.0, rel=1e-6)

    def test_every_resistor_declares_mismatch(self, tech):
        dac = resistor_string_dac(tech, n_bits=3, sigma_rel=0.02)
        assert len(dac.mismatch_decls()) == 8
