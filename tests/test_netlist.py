"""Unit tests for circuit construction and element declarations."""

import math

import pytest

from repro.circuit import (Circuit, GateWindow, Mosfet, PsdShape,
                           SmoothPulse, default_technology, merge)
from repro.circuit.netlist import GROUND_NAMES
from repro.errors import NetlistError


class TestCircuit:
    def test_duplicate_names_rejected(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1e3)
        with pytest.raises(NetlistError):
            ckt.add_resistor("R1", "b", "0", 1e3)

    def test_nodes_exclude_ground(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "gnd", 1e3)
        ckt.add_resistor("R2", "a", "0", 1e3)
        assert ckt.nodes() == ["a"]
        assert "gnd" in GROUND_NAMES and "0" in GROUND_NAMES

    def test_lookup_and_contains(self):
        ckt = Circuit()
        r = ckt.add_resistor("R1", "a", "0", 1e3)
        assert ckt["R1"] is r
        assert "R1" in ckt and "R2" not in ckt
        with pytest.raises(NetlistError):
            ckt["R2"]

    def test_validate_empty(self):
        with pytest.raises(NetlistError):
            Circuit().validate()

    def test_validate_no_ground(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "b", 1e3)
        with pytest.raises(NetlistError):
            ckt.validate()

    def test_vsource_needs_exactly_one_spec(self):
        ckt = Circuit()
        with pytest.raises(NetlistError):
            ckt.add_vsource("V1", "a", "0")
        with pytest.raises(NetlistError):
            ckt.add_vsource("V2", "a", "0", dc=1.0,
                            wave=SmoothPulse())

    def test_merge(self):
        a = Circuit("a")
        a.add_resistor("R1", "x", "0", 1.0)
        b = Circuit("b")
        b.add_resistor("R2", "y", "0", 1.0)
        m = merge("ab", [a, b])
        assert len(m) == 2

    def test_merge_collision(self):
        a = Circuit("a")
        a.add_resistor("R1", "x", "0", 1.0)
        b = Circuit("b")
        b.add_resistor("R1", "y", "0", 1.0)
        with pytest.raises(NetlistError):
            merge("ab", [a, b])

    def test_set_ic(self):
        ckt = Circuit()
        ckt.set_ic({"a": 1.0}, b=2.0)
        assert ckt.ic == {"a": 1.0, "b": 2.0}


class TestDeclarations:
    def test_resistor_mismatch_decl(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 2e3, sigma_rel=0.01)
        (decl,) = ckt.mismatch_decls()
        assert decl.key == ("R1", "r")
        assert decl.sigma == pytest.approx(20.0)

    def test_quiet_resistor_declares_nothing(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 2e3, noisy=False)
        assert ckt.mismatch_decls() == []
        assert ckt.noise_decls() == []

    def test_mosfet_pelgrom_sigmas(self):
        tech = default_technology()
        ckt = Circuit()
        m = ckt.add_mosfet("M1", "d", "g", "0", "0", 2e-6, 0.13e-6, tech)
        decls = {d.key[1]: d.sigma for d in m.mismatch_decls()}
        wl = 2e-6 * 0.13e-6
        assert decls["vt0"] == pytest.approx(tech.avt / math.sqrt(wl))
        assert decls["beta_rel"] == pytest.approx(
            tech.abeta / math.sqrt(wl))

    def test_mosfet_multiplier_scales_sigma(self):
        tech = default_technology()
        a = Mosfet.from_tech("Ma", "d", "g", "0", "0", 2e-6, 0.13e-6,
                             tech, m=4.0)
        b = Mosfet.from_tech("Mb", "d", "g", "0", "0", 2e-6, 0.13e-6,
                             tech, m=1.0)
        assert a.sigma_vt == pytest.approx(b.sigma_vt / 2.0)
        assert a.beta == pytest.approx(4.0 * b.beta)

    def test_mosfet_noise_decls(self):
        tech = default_technology()
        ckt = Circuit()
        ckt.add_mosfet("M1", "d", "g", "0", "0", 2e-6, 0.13e-6, tech)
        shapes = {d.key[1]: d.shape for d in ckt.noise_decls()}
        assert shapes == {"thermal": PsdShape.WHITE,
                          "flicker": PsdShape.FLICKER}

    def test_invalid_polarity(self):
        tech = default_technology()
        with pytest.raises(ValueError):
            Mosfet("Mx", "d", "g", "0", "0", polarity="x",
                   params=tech.nmos)

    def test_positive_value_checks(self):
        ckt = Circuit()
        with pytest.raises(ValueError):
            ckt.add_resistor("R", "a", "0", -1.0)
        with pytest.raises(ValueError):
            ckt.add_capacitor("C", "a", "0", 0.0)
        with pytest.raises(ValueError):
            ckt.add_inductor("L", "a", "0", -1e-9)


class TestTimeFunctions:
    def test_smooth_pulse_levels(self):
        p = SmoothPulse(v0=0.0, v1=1.2, delay=0.0, t_rise=1e-9,
                        t_high=3e-9, t_fall=1e-9, t_period=10e-9)
        assert p(0.0) == pytest.approx(0.0)
        assert p(0.5e-9) == pytest.approx(0.6)     # mid-rise
        assert p(2e-9) == pytest.approx(1.2)
        assert p(4.5e-9) == pytest.approx(0.6)     # mid-fall
        assert p(8e-9) == pytest.approx(0.0)

    def test_smooth_pulse_periodicity(self):
        p = SmoothPulse(t_rise=1e-9, t_high=2e-9, t_fall=1e-9,
                        t_period=8e-9)
        assert p(1.5e-9) == pytest.approx(p(1.5e-9 + 3 * 8e-9))

    def test_smooth_pulse_overfull_rejected(self):
        with pytest.raises(ValueError):
            SmoothPulse(t_rise=5e-9, t_high=5e-9, t_fall=5e-9,
                        t_period=10e-9)

    def test_gate_window_shape(self):
        g = GateWindow(t_on=2e-9, t_off=4e-9, period=10e-9, tau=0.5e-9)
        assert g(1e-9) == pytest.approx(0.0)
        assert g(3e-9) == pytest.approx(1.0)
        assert g(5e-9) == pytest.approx(0.0)
        assert g(13e-9) == pytest.approx(1.0)   # periodic

    def test_gate_window_validation(self):
        with pytest.raises(ValueError):
            GateWindow(t_on=4e-9, t_off=2e-9, period=10e-9)
        with pytest.raises(ValueError):
            GateWindow(t_on=1e-9, t_off=9.9e-9, period=10e-9, tau=0.5e-9)
