"""Unit tests for the waveform container and measurements."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.waveform import Waveform, WaveformSet, sine


def ramp(t0=0.0, t1=1.0, v0=0.0, v1=1.0, n=101):
    t = np.linspace(t0, t1, n)
    return Waveform(t, v0 + (v1 - v0) * (t - t0) / (t1 - t0), "ramp")


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Waveform(np.arange(3), np.arange(4))

    def test_rejects_non_monotonic_time(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([1.0]))

    def test_interpolation(self):
        w = ramp()
        assert w(0.5) == pytest.approx(0.5)
        assert w(0.25) == pytest.approx(0.25)


class TestBasics:
    def test_mean_of_ramp(self):
        assert ramp().mean() == pytest.approx(0.5)

    def test_min_max_ptp(self):
        w = sine(np.linspace(0, 1, 2001), amplitude=2.0, frequency=3.0)
        assert w.max() == pytest.approx(2.0, abs=1e-4)
        assert w.min() == pytest.approx(-2.0, abs=1e-4)
        assert w.peak_to_peak() == pytest.approx(4.0, abs=2e-4)

    def test_slice_bounds(self):
        w = ramp(n=101)
        s = w.slice(0.2, 0.8)
        assert s.t[0] >= 0.2 and s.t[-1] <= 0.8

    def test_slice_too_narrow_raises(self):
        with pytest.raises(MeasurementError):
            ramp(n=11).slice(0.501, 0.549)

    def test_value_at_fraction(self):
        assert ramp().value_at_fraction(0.75) == pytest.approx(0.75)

    def test_derivative_of_ramp_is_constant(self):
        d = ramp().derivative()
        assert np.allclose(d.v, 1.0)


class TestCrossings:
    def test_single_rise(self):
        c = ramp().crossing(0.5, "rise")
        assert c.time == pytest.approx(0.5)
        assert c.slope == pytest.approx(1.0)
        assert c.edge == "rise"

    def test_no_fall_in_ramp(self):
        assert ramp().crossings(0.5, "fall") == []

    def test_missing_crossing_raises(self):
        with pytest.raises(MeasurementError):
            ramp().crossing(2.0)

    def test_sine_crossing_count(self):
        # phase offset keeps the boundary samples off the threshold
        w = sine(np.linspace(0, 1, 4001), amplitude=1.0, frequency=5.0,
                 phase=0.1)
        assert len(w.crossings(0.0, "rise")) == 5
        assert len(w.crossings(0.0, "fall")) == 5

    def test_crossing_interpolation_accuracy(self):
        t = np.linspace(0, 1, 101)
        w = Waveform(t, np.sin(2 * np.pi * t))
        c = w.crossing(0.0, "fall")
        assert c.time == pytest.approx(0.5, abs=1e-3)

    def test_occurrence_indexing(self):
        w = sine(np.linspace(0, 1, 4001), amplitude=1.0, frequency=4.0)
        rises = w.crossings(0.0, "rise")
        assert w.crossing(0.0, "rise", 2).time == rises[2].time
        assert w.crossing(0.0, "rise", -1).time == rises[-1].time

    def test_time_window_filter(self):
        w = sine(np.linspace(0, 1, 4001), amplitude=1.0, frequency=4.0)
        found = w.crossings(0.0, "rise", t_start=0.5)
        assert all(c.time >= 0.5 for c in found)

    def test_touching_threshold_not_double_counted(self):
        t = np.linspace(0, 4, 401)
        v = np.abs(np.sin(np.pi * t / 2))    # touches zero, never crosses
        w = Waveform(t, v)
        assert w.crossings(0.0) == []


class TestPeriodAndFrequency:
    def test_period_of_sine(self):
        w = sine(np.linspace(0, 10e-6, 20001), amplitude=1.0,
                 frequency=1e6)
        assert w.period() == pytest.approx(1e-6, rel=1e-6)
        assert w.frequency() == pytest.approx(1e6, rel=1e-6)

    def test_period_needs_enough_crossings(self):
        w = sine(np.linspace(0, 1.2e-6, 1201), amplitude=1.0,
                 frequency=1e6)
        with pytest.raises(MeasurementError):
            w.period(skip=2)

    def test_fundamental_amplitude(self):
        w = sine(np.linspace(0, 8e-6, 8001), amplitude=0.7,
                 frequency=1e6, offset=0.3)
        assert w.fundamental_amplitude(1e6) == pytest.approx(0.7, rel=1e-3)

    def test_delay_to(self):
        t = np.linspace(0, 1, 1001)
        a = Waveform(t, np.clip((t - 0.2) * 10, 0, 1))
        b = Waveform(t, 1.0 - np.clip((t - 0.5) * 10, 0, 1))
        d = a.delay_to(b, 0.5, 0.5, "rise", "fall")
        assert d == pytest.approx(0.3, abs=1e-3)

    def test_is_settled_on_periodic_signal(self):
        w = sine(np.linspace(0, 10e-6, 20001), amplitude=1.0,
                 frequency=1e6)
        assert w.is_settled(1e-6, reltol=1e-6)

    def test_is_settled_false_on_decaying_signal(self):
        t = np.linspace(0, 10e-6, 20001)
        v = np.exp(-t / 3e-6) * np.sin(2 * np.pi * 1e6 * t)
        assert not Waveform(t, v).is_settled(1e-6, reltol=1e-6)


class TestWaveformSet:
    def test_differential_access(self):
        t = np.linspace(0, 1, 11)
        ws = WaveformSet(t, {"a": t, "b": 2 * t})
        assert np.allclose(ws["a", "b"].v, -t)

    def test_missing_signal_raises(self):
        ws = WaveformSet(np.linspace(0, 1, 11),
                         {"a": np.zeros(11)})
        with pytest.raises(MeasurementError):
            ws["nope"]

    def test_names_sorted(self):
        t = np.linspace(0, 1, 3)
        ws = WaveformSet(t, {"z": t, "a": t})
        assert ws.names() == ["a", "z"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WaveformSet(np.linspace(0, 1, 3), {"a": np.zeros(4)})
