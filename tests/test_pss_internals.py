"""Deeper tests of the PSS machinery: monodromy correctness, settle
fallback behaviour, grid consistency."""

import numpy as np
import pytest

from repro.analysis import compile_circuit
from repro.analysis.dcop import NewtonOptions
from repro.analysis.pss import PssOptions, integrate_period, pss
from repro.circuit import Circuit, Sine
from repro.errors import ConvergenceError


def rc_circuit(tau=1e-7):
    ckt = Circuit("rc")
    ckt.add_vsource("VS", "in", "0",
                    wave=Sine(amplitude=0.5, freq=1e6, offset=0.5))
    ckt.add_resistor("R", "in", "out", 1e3)
    ckt.add_capacitor("C", "out", "0", tau / 1e3)
    return compile_circuit(ckt)


NEWTON = NewtonOptions(max_step=1.0, max_iterations=50)


class TestMonodromy:
    def test_rc_floquet_multiplier(self):
        """The RC node's one-period multiplier is exp(-T/tau)."""
        tau = 2e-7
        compiled = rc_circuit(tau)
        from repro.analysis import dc_operating_point
        x_pad = compiled.pad(dc_operating_point(compiled).x)
        _, mono = integrate_period(compiled, compiled.nominal, x_pad,
                                   0.0, 1e-6, 400, "trap", NEWTON,
                                   want_monodromy=True)
        iout = compiled.node_index["out"]
        assert mono[iout, iout] == pytest.approx(np.exp(-1e-6 / tau),
                                                 rel=1e-3)

    def test_monodromy_matches_perturbation(self):
        """M dx0 must predict the end-of-period response to an initial
        state kick."""
        compiled = rc_circuit(2e-7)
        from repro.analysis import dc_operating_point
        x_pad = compiled.pad(dc_operating_point(compiled).x)
        orbit0, mono = integrate_period(compiled, compiled.nominal,
                                        x_pad, 0.0, 1e-6, 300, "trap",
                                        NEWTON, want_monodromy=True)
        iout = compiled.node_index["out"]
        kick = 1e-3
        x_kicked = x_pad.copy()
        x_kicked[iout] += kick
        orbit1, _ = integrate_period(compiled, compiled.nominal,
                                     x_kicked, 0.0, 1e-6, 300, "trap",
                                     NEWTON)
        predicted = mono[:, iout] * kick
        actual = orbit1[-1] - orbit0[-1]
        assert np.allclose(predicted, actual, rtol=1e-3, atol=1e-12)

    def test_orbit_sample_count(self):
        compiled = rc_circuit()
        from repro.analysis import dc_operating_point
        x_pad = compiled.pad(dc_operating_point(compiled).x)
        orbit, _ = integrate_period(compiled, compiled.nominal, x_pad,
                                    0.0, 1e-6, 123, "trap", NEWTON)
        assert orbit.shape == (124, compiled.n)


class TestSettleEngine:
    def test_settle_gives_up_on_slow_circuit(self):
        """A circuit with tau >> max periods must raise, not hang."""
        compiled = rc_circuit(tau=1e-3)    # 1000 periods
        with pytest.raises(ConvergenceError):
            pss(compiled, 1e-6,
                options=PssOptions(engine="settle", n_steps=64,
                                   settle_periods=0,
                                   settle_max_periods=5))

    def test_settle_result_metadata(self):
        compiled = rc_circuit(2e-8)
        res = pss(compiled, 1e-6,
                  options=PssOptions(engine="settle", n_steps=64,
                                     settle_periods=1))
        assert res.engine == "settle"
        assert res.n_steps == 64

    def test_comparator_settle_matches_shooting(self, comparator_pss):
        """Both PSS engines agree on the comparator's metastable vos."""
        tb, compiled, shoot = comparator_pss
        settle = pss(compiled, tb.period,
                     options=PssOptions(engine="settle", n_steps=500,
                                        settle_periods=30,
                                        settle_max_periods=120))
        v_a = shoot.waveform("vos").mean()
        v_b = settle.waveform("vos").mean()
        assert abs(v_a - v_b) < 1e-6


class TestGridConsistency:
    def test_finer_grid_converges_period_values(self):
        compiled = rc_circuit(2e-7)
        iout = compiled.node_index["out"]
        vals = []
        for n in (100, 200, 400):
            res = pss(compiled, 1e-6,
                      options=PssOptions(n_steps=n, settle_periods=2))
            vals.append(res.x[n // 2, iout])   # mid-period sample
        # second-order convergence: error shrinks ~4x per refinement
        e1 = abs(vals[0] - vals[2])
        e2 = abs(vals[1] - vals[2])
        assert e2 < 0.5 * e1

    def test_absolute_time_axis(self):
        compiled = rc_circuit()
        res = pss(compiled, 1e-6,
                  options=PssOptions(n_steps=64, settle_periods=3))
        assert res.t[0] == pytest.approx(3e-6)
        assert res.t[-1] - res.t[0] == pytest.approx(1e-6)
