"""Matrix-free (Krylov) periodic engines: parity against the dense
path, memory scaling, and the satellite fixes that rode along.

The parity suite pins the forced matrix-free shooting/LPTV engines
against the forced dense engines on the paper's two workhorse
testbenches (driven StrongARM comparator, 5-stage ring oscillator):
waveforms, ``dT_dp`` and ``df_dp`` must agree to 1e-8 relative.  Small
circuits on the default auto selection must keep *bit-identical*
results (the dense fallback is the pre-Krylov code path).
"""

import tracemalloc
import warnings

import numpy as np
import pytest

from repro.analysis import (OrbitLinearization, compile_circuit,
                            periodic_sensitivities, pss, pss_oscillator)
from repro.analysis.lptv import PeriodicLinearization
from repro.analysis.pss import PssOptions, _advance_to_crossing
from repro.circuit import Circuit, Sine
from repro.circuits import rc_ladder
from repro.errors import AnalysisError
from repro.linalg import (MATRIX_FREE_MIN_UNKNOWNS, gmres_blocked,
                          resolve_backend, solve_blocked, use_matrix_free)

PARITY_RTOL = 1e-8


def _rel_diff(a, b):
    scale = max(float(np.max(np.abs(a))), 1e-300)
    return float(np.max(np.abs(a - b))) / scale


# ---------------------------------------------------------------------------
# GMRES unit tests
# ---------------------------------------------------------------------------
class TestGmresBlocked:
    def test_matches_direct_solve(self):
        rng = np.random.default_rng(7)
        a = np.eye(40) + 0.3 * rng.standard_normal((40, 40))
        b = rng.standard_normal(40)
        x, n_iter, ok = gmres_blocked(lambda v: a @ v, b, tol=1e-12)
        assert ok
        assert np.allclose(x, np.linalg.solve(a, b), rtol=1e-9, atol=1e-12)

    def test_blocked_rhs_matches_column_solves(self):
        rng = np.random.default_rng(11)
        a = np.eye(30) + 0.2 * rng.standard_normal((30, 30))
        b = rng.standard_normal((30, 5))
        x, _, ok = gmres_blocked(lambda v: a @ v, b, tol=1e-12)
        assert ok
        assert np.allclose(x, np.linalg.solve(a, b), rtol=1e-9, atol=1e-12)

    def test_zero_rhs_is_exact(self):
        x, n_iter, ok = gmres_blocked(lambda v: 2.0 * v, np.zeros(8))
        assert ok and n_iter == 0
        assert np.all(x == 0.0)

    def test_mixed_zero_and_nonzero_columns(self):
        a = np.diag(np.arange(1.0, 11.0))
        b = np.zeros((10, 3))
        b[:, 1] = 1.0
        x, _, ok = gmres_blocked(lambda v: a @ v, b, tol=1e-12)
        assert ok
        assert np.all(x[:, 0] == 0.0) and np.all(x[:, 2] == 0.0)
        assert np.allclose(a @ x[:, 1], b[:, 1], rtol=1e-10)

    def test_many_iteration_solve_grows_workspace(self):
        """A spread spectrum needs > 32 Arnoldi steps - exercises the
        capacity-doubling of the Hessenberg/Givens bookkeeping."""
        a = np.diag(np.arange(1.0, 61.0))
        b = np.ones(60)
        x, n_iter, ok = gmres_blocked(lambda v: a @ v, b, tol=1e-12,
                                      maxiter=100)
        assert ok and n_iter > 32
        assert np.allclose(a @ x, b, rtol=1e-10, atol=1e-12)

    def test_nonconvergence_is_reported_not_raised(self):
        rng = np.random.default_rng(3)
        a = np.eye(50) + 0.5 * rng.standard_normal((50, 50))
        b = rng.standard_normal(50)
        x, n_iter, ok = gmres_blocked(lambda v: a @ v, b, tol=1e-14,
                                      maxiter=3)
        assert not ok and n_iter == 3
        assert np.all(np.isfinite(x))

    def test_solve_blocked_chunks_match_unchunked(self):
        rng = np.random.default_rng(5)
        a = np.eye(20) + 0.1 * rng.standard_normal((20, 20))
        b = rng.standard_normal((20, 9))
        x1, _, ok1 = solve_blocked(lambda v: a @ v, b, tol=1e-12,
                                   max_cols=4)
        x2, _, ok2 = gmres_blocked(lambda v: a @ v, b, tol=1e-12)
        assert ok1 and ok2
        assert np.allclose(x1, x2, rtol=1e-9, atol=1e-13)

    def test_use_matrix_free_selection(self):
        sparse = resolve_backend("sparse", 1000)
        cached = resolve_backend("cached", 10)
        assert use_matrix_free(sparse, MATRIX_FREE_MIN_UNKNOWNS)
        assert not use_matrix_free(sparse, MATRIX_FREE_MIN_UNKNOWNS - 1)
        assert not use_matrix_free(cached, 10_000)
        assert use_matrix_free(cached, 3, override=True)
        assert not use_matrix_free(sparse, 10_000, override=False)


# ---------------------------------------------------------------------------
# parity: driven comparator
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def comparator_both(tech):
    from repro.circuits import strongarm_offset_testbench
    tb = strongarm_offset_testbench(tech)
    compiled = compile_circuit(tb.circuit)
    opts = dict(n_steps=400, settle_periods=30)
    dense = pss(compiled, tb.period,
                options=PssOptions(matrix_free=False, **opts))
    with warnings.catch_warnings():
        warnings.simplefilter("error", UserWarning)  # no GMRES fallback
        mf = pss(compiled, tb.period,
                 options=PssOptions(matrix_free=True, **opts))
    return compiled, dense, mf


class TestDrivenComparatorParity:
    def test_orbits_agree(self, comparator_both):
        _, dense, mf = comparator_both
        assert _rel_diff(dense.x, mf.x) < PARITY_RTOL

    def test_sensitivity_waveforms_agree(self, comparator_both):
        _, dense, mf = comparator_both
        sd = periodic_sensitivities(dense, matrix_free=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            sm = periodic_sensitivities(mf, matrix_free=True)
        assert sd.keys == sm.keys
        assert _rel_diff(sd.waveforms, sm.waveforms) < PARITY_RTOL

    def test_mf_linearization_is_sparse_and_shared(self, comparator_both):
        _, _, mf = comparator_both
        lin = mf.linearization(True)
        assert lin.sparse
        assert mf.linearization(True) is lin
        assert PeriodicLinearization(mf, matrix_free=True).lin is lin


# ---------------------------------------------------------------------------
# parity: ring oscillator
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def oscillator_both(tech):
    from repro.circuits import ring_oscillator
    compiled = compile_circuit(ring_oscillator(tech))
    opts = PssOptions(n_steps=300, matrix_free=False)
    dense = pss_oscillator(compiled, anchor="osc1", t_settle=8e-9,
                           dt_settle=2e-12, options=opts)
    with warnings.catch_warnings():
        warnings.simplefilter("error", UserWarning)
        mf = pss_oscillator(compiled, anchor="osc1", t_settle=8e-9,
                            dt_settle=2e-12,
                            options=PssOptions(n_steps=300,
                                               matrix_free=True),
                            period_guess=dense.period)
    return compiled, dense, mf


class TestOscillatorParity:
    def test_periods_agree(self, oscillator_both):
        _, dense, mf = oscillator_both
        assert abs(dense.period - mf.period) < PARITY_RTOL * dense.period

    def test_dT_dp_and_df_dp_agree(self, oscillator_both):
        _, dense, mf = oscillator_both
        sd = periodic_sensitivities(dense, matrix_free=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            sm = periodic_sensitivities(mf, matrix_free=True)
        assert _rel_diff(sd.dT_dp, sm.dT_dp) < PARITY_RTOL
        assert _rel_diff(sd.df_dp(), sm.df_dp()) < PARITY_RTOL

    def test_sensitivity_waveforms_agree(self, oscillator_both):
        _, dense, mf = oscillator_both
        sd = periodic_sensitivities(dense, matrix_free=False)
        sm = periodic_sensitivities(mf, matrix_free=True)
        assert _rel_diff(sd.waveforms, sm.waveforms) < PARITY_RTOL


# ---------------------------------------------------------------------------
# dense fallback: small circuits stay bit-identical on auto selection
# ---------------------------------------------------------------------------
class TestDenseFallback:
    @pytest.fixture()
    def rc(self):
        ckt = Circuit("rc")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.3, freq=1e6, offset=0.6))
        ckt.add_resistor("R", "in", "out", 1e3, sigma_rel=0.05)
        ckt.add_capacitor("C", "out", "0", 1e-9, sigma_rel=0.02)
        return compile_circuit(ckt)

    def test_auto_selects_dense_below_threshold(self, rc):
        assert not use_matrix_free(rc.backend, rc.n)

    def test_auto_pss_bit_identical_to_forced_dense(self, rc):
        opts = dict(n_steps=128, settle_periods=2)
        auto = pss(rc, 1e-6, options=PssOptions(**opts))
        forced = pss(rc, 1e-6, options=PssOptions(matrix_free=False,
                                                  **opts))
        assert np.array_equal(auto.x, forced.x)

    def test_auto_lptv_bit_identical_to_forced_dense(self, rc):
        p = pss(rc, 1e-6, options=PssOptions(n_steps=128,
                                             settle_periods=2))
        s_auto = periodic_sensitivities(p)
        p.clear_caches()
        s_forced = periodic_sensitivities(p, matrix_free=False)
        assert np.array_equal(s_auto.waveforms, s_forced.waveforms)

    def test_forced_mf_matches_on_small_circuit(self, rc):
        opts = dict(n_steps=128, settle_periods=2)
        dense = pss(rc, 1e-6, options=PssOptions(matrix_free=False,
                                                 **opts))
        mf = pss(rc, 1e-6, options=PssOptions(matrix_free=True, **opts))
        assert _rel_diff(dense.x, mf.x) < PARITY_RTOL
        sd = periodic_sensitivities(dense, matrix_free=False)
        sm = periodic_sensitivities(mf, matrix_free=True)
        assert _rel_diff(sd.waveforms, sm.waveforms) < PARITY_RTOL


# ---------------------------------------------------------------------------
# memory: the orbit linearisation stays O(n_steps * nnz)
# ---------------------------------------------------------------------------
class TestOrbitLinearizationMemory:
    #: Generous per-entry budget [bytes / (n_steps+1) / nnz]: the
    #: ``g_data_t`` block is 8, the derived ``B_k`` block another 8,
    #: per-step factorizations and sweep temporaries a few dozen more -
    #: while the dense ``(N+1, n, n)`` stack would cost ~1600x this at
    #: 1k nodes.
    BUDGET_BYTES_PER_ENTRY = 96

    @staticmethod
    def _nonlinear_ladder(n_sections, tech):
        """Ladder plus one MOSFET so ``G(t)`` is state-dependent -
        the linearisation must store and factor every step."""
        ckt = rc_ladder(n_sections)
        ckt.add_mosfet("M1", f"n{n_sections}", f"n{n_sections - 1}",
                       "0", "0", w=2e-6, l=0.26e-6, tech=tech)
        return ckt

    def test_1k_ladder_linearization_is_sparse_sized(self, tech):
        n_steps = 64
        compiled = compile_circuit(self._nonlinear_ladder(1000, tech),
                                   backend="sparse")
        state = compiled.nominal
        compiled.csr_plan
        compiled.orbit_csr_jacobians(state, np.zeros((2, compiled.n)),
                                     np.zeros(2))   # warm slot maps
        x = np.zeros((n_steps + 1, compiled.n))
        t = np.linspace(0.0, 1e-6, n_steps + 1)

        tracemalloc.start()
        lin = OrbitLinearization(compiled, state, x, t, 1e-6, "trap")
        lin.factors()
        lin.apply_monodromy(np.ones(compiled.n))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        nnz = compiled.csr_plan.nnz
        budget = self.BUDGET_BYTES_PER_ENTRY * (n_steps + 1) * nnz
        dense_stack = (n_steps + 1) * compiled.n ** 2 * 8
        assert lin.sparse and not lin.time_invariant
        assert len(set(map(id, lin.factors()))) == n_steps
        assert peak < budget, (peak, budget)
        assert budget < 0.1 * dense_stack   # the bound itself is sparse

    def test_time_invariant_linearization_stores_one_row(self):
        """A linear circuit's G is time-invariant: one assembled row
        (broadcast) and one shared factorization, O(nnz) total."""
        n_steps = 64
        compiled = compile_circuit(rc_ladder(1000), backend="sparse")
        compiled.csr_plan
        compiled.orbit_csr_jacobians(compiled.nominal,
                                     np.zeros((2, compiled.n)),
                                     np.zeros(2))
        x = np.zeros((n_steps + 1, compiled.n))
        t = np.linspace(0.0, 1e-6, n_steps + 1)
        tracemalloc.start()
        lin = OrbitLinearization(compiled, compiled.nominal, x, t,
                                 1e-6, "trap")
        lin.factors()
        lin.apply_monodromy(np.ones(compiled.n))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert lin.time_invariant
        assert lin.g_data_t.strides[0] == 0      # broadcast, not copied
        assert len(set(map(id, lin.factors()))) == 1
        # O(nnz), independent of n_steps (generous constant)
        assert peak < 512 * compiled.csr_plan.nnz, peak

    def test_clear_factors_drops_and_rebuilds(self):
        compiled = compile_circuit(rc_ladder(200), backend="sparse")
        x = np.zeros((9, compiled.n))
        t = np.linspace(0.0, 1e-6, 9)
        lin = OrbitLinearization(compiled, x=x, t=t, period=1e-6,
                                 method="trap", state=compiled.nominal)
        v = np.ones(compiled.n)
        before = lin.apply_monodromy(v)
        assert lin._factors is not None
        lin.clear_factors()
        assert lin._factors is None
        after = lin.apply_monodromy(v)
        assert np.array_equal(before, after)


# ---------------------------------------------------------------------------
# satellite fixes
# ---------------------------------------------------------------------------
class TestSatelliteFixes:
    def _rc(self):
        ckt = Circuit("rc")
        ckt.add_vsource("VS", "in", "0",
                        wave=Sine(amplitude=0.5, freq=1e6, offset=0.5))
        ckt.add_resistor("R", "in", "out", 1e3)
        ckt.add_capacitor("C", "out", "0", 2e-10)
        return compile_circuit(ckt)

    def test_settle_max_periods_zero_is_clear_error(self):
        compiled = self._rc()
        with pytest.raises(AnalysisError, match="settle_max_periods"):
            pss(compiled, 1e-6,
                options=PssOptions(engine="settle", n_steps=32,
                                   settle_periods=0,
                                   settle_max_periods=0))

    def test_n_steps_below_two_is_clear_error(self):
        compiled = self._rc()
        with pytest.raises(AnalysisError, match="n_steps"):
            pss(compiled, 1e-6, options=PssOptions(n_steps=1))

    def test_zero_max_iterations_is_clear_error(self):
        compiled = self._rc()
        with pytest.raises(AnalysisError, match="max_iterations"):
            pss(compiled, 1e-6, options=PssOptions(max_iterations=0))

    def test_nonpositive_period_is_clear_error(self):
        compiled = self._rc()
        with pytest.raises(AnalysisError, match="period"):
            pss(compiled, 0.0)
        with pytest.raises(AnalysisError, match="period"):
            pss_oscillator(compiled, anchor="out", t_settle=1e-6,
                           dt_settle=1e-8, period_guess=-1e-6)

    def test_advance_to_crossing_warns_on_fallback(self):
        compiled = self._rc()
        state = compiled.nominal
        x_pad = np.zeros(compiled.n + 1)
        a_idx = compiled.node_index["out"]
        with pytest.warns(UserWarning, match="phase anchor"):
            _advance_to_crossing(compiled, state, x_pad, 0.0, 1e-8,
                                 level=10.0, a_idx=a_idx, period=1e-6,
                                 opts=PssOptions(), anchor="out")

    def test_pss_result_clear_caches(self):
        compiled = self._rc()
        p = pss(compiled, 1e-6, options=PssOptions(n_steps=64,
                                                   settle_periods=2))
        lin1 = p.linearization()
        assert p.linearization() is lin1
        p.clear_caches()
        assert p.linearization() is not lin1

    def test_periodic_linearization_clear_caches(self):
        compiled = self._rc()
        ckt_lin = PeriodicLinearization(
            pss(compiled, 1e-6, options=PssOptions(n_steps=64,
                                                   settle_periods=2)))
        mono1 = ckt_lin.monodromy()
        assert ckt_lin.lin._factors is not None
        assert ckt_lin.clear_caches() is ckt_lin
        assert ckt_lin.lin._factors is None
        assert np.array_equal(mono1, ckt_lin.monodromy())

    def test_pnoise_rejects_engine_from_other_orbit(self):
        from repro.analysis import HarmonicLptv, pnoise
        compiled = self._rc()
        opts = PssOptions(n_steps=128, settle_periods=2)
        p1 = pss(compiled, 1e-6, options=opts)
        p2 = pss(compiled, 1e-6, options=opts)
        engine = HarmonicLptv(p1, n_harmonics=8)
        pnoise(p1, "out", engine=engine)            # same orbit: fine
        pnoise(p1, "out", n_harmonics=8, engine=engine)   # consistent
        with pytest.raises(AnalysisError, match="different PSS"):
            pnoise(p2, "out", engine=engine)
        with pytest.raises(AnalysisError, match="n_harmonics"):
            pnoise(p1, "out", n_harmonics=12, engine=engine)

    def test_harmonic_engine_shares_linearization(self):
        from repro.analysis import HarmonicLptv
        compiled = self._rc()
        p = pss(compiled, 1e-6, options=PssOptions(n_steps=128,
                                                   settle_periods=2))
        engine = HarmonicLptv(p, n_harmonics=8)
        assert p._lin is not None          # built through the cache
        assert engine is not None
