"""Transient analysis on a fixed time grid (backward Euler / trapezoidal).

The integrator works on the charge-oriented MNA system

.. math:: \\frac{d}{dt} q(x) + i(x, t) = 0, \\qquad q(x) = C x

(all charges in the bundled element set are linear, see
:mod:`repro.analysis.mna`).  A *fixed uniform grid* is used deliberately:

* shooting PSS needs the one-period state-transition map, which falls out
  of the per-step Jacobians only when every Newton step lands on the same
  grid;
* the LPTV sensitivity engine reuses the same grid, making the linear
  analysis exact on the discretisation;
* batched Monte-Carlo lanes must share time points to be solved as one
  stacked system.

Trapezoidal is the default (second order, no numerical damping - important
for oscillator period accuracy); backward Euler is available for heavily
damped settling runs and is used for the very first step after a raw
initial condition (it swallows inconsistent ICs within one step).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConvergenceError, SingularMatrixError
from ..waveform import WaveformSet
from .dcop import NewtonOptions, dc_operating_point
from .mna import CompiledCircuit, ParamState

Method = str  # "trap" | "be"


@dataclass
class TransientOptions:
    """Knobs for :func:`transient`."""

    method: Method = "trap"
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(
        max_step=1.0, max_iterations=50))
    #: Node names (or voltage-source names prefixed ``i:``) to record.
    #: ``None`` records every node voltage.
    record: list[str] | None = None
    #: Keep every ``stride``-th sample in the recorded signals.
    stride: int = 1
    #: Store the full unknown trajectory (needed by PSS; batchless only).
    record_states: bool = False


@dataclass
class TransientResult:
    """Output of :func:`transient`.

    ``t`` has ``K+1`` entries (including the start point); recorded signals
    are arrays of shape ``(K+1, *batch)``.
    """

    compiled: CompiledCircuit
    state: ParamState
    t: np.ndarray
    signals: dict[str, np.ndarray]
    x_final_pad: np.ndarray
    states: np.ndarray | None = None

    def signal(self, name: str) -> np.ndarray:
        try:
            return self.signals[name]
        except KeyError:
            raise KeyError(
                f"'{name}' was not recorded; available: "
                f"{sorted(self.signals)}") from None

    def waveset(self) -> WaveformSet:
        """Recorded signals as a :class:`WaveformSet` (batchless runs)."""
        for v in self.signals.values():
            if v.ndim != 1:
                raise ValueError(
                    "waveset() is only available for batchless runs; "
                    "use .signal(name) for batched data")
        return WaveformSet(self.t, self.signals)


def _record_indices(compiled: CompiledCircuit,
                    record: list[str] | None) -> dict[str, int]:
    if record is None:
        return dict(compiled.node_index)
    out: dict[str, int] = {}
    for name in record:
        if name.startswith("i:"):
            out[name] = compiled.branch(name[2:])
        else:
            out[name] = compiled.idx(name)
            if out[name] == compiled.n:
                raise ValueError(f"cannot record ground node '{name}'")
    return out


def transient(compiled: CompiledCircuit, t_stop: float, dt: float,
              state: ParamState | None = None,
              x0_pad: np.ndarray | None = None,
              t_start: float = 0.0,
              options: TransientOptions | None = None,
              batch_shape: tuple[int, ...] = ()) -> TransientResult:
    """Integrate the circuit from *t_start* to *t_stop* with step *dt*.

    Starting point, in order of precedence: *x0_pad* (padded state, e.g.
    the final state of a previous run), the circuit's ``ic`` dictionary
    (SPICE ``uic`` style, missing nodes start at 0), or - when no ICs are
    set at all - the DC operating point at *t_start*.

    Raises
    ------
    ConvergenceError
        When a Newton solve fails at some time step.
    """
    opts = options or TransientOptions()
    state = state or compiled.nominal
    if state.batched:
        batch_shape = state.batch_shape

    n = compiled.n
    n_steps = int(round((t_stop - t_start) / dt))
    if n_steps < 1:
        raise ValueError("t_stop must exceed t_start by at least one step")
    t_grid = t_start + dt * np.arange(n_steps + 1)

    if x0_pad is not None:
        x_pad = np.broadcast_to(
            x0_pad, batch_shape + (n + 1,)).copy()
        first_step_be = False
    elif compiled.circuit.ic:
        x_pad = compiled.initial_padded(batch_shape)
        first_step_be = True
    else:
        dc = dc_operating_point(compiled, state, t=t_start,
                                batch_shape=batch_shape)
        x_pad = compiled.pad(dc.x)
        first_step_be = False

    rec = _record_indices(compiled, opts.record)
    kept = range(0, n_steps + 1, opts.stride)
    n_kept = len(kept)
    sig_store = {name: np.empty((n_kept,) + batch_shape)
                 for name in rec}
    states = (np.empty((n_steps + 1, n)) if opts.record_states else None)
    if states is not None and batch_shape:
        raise ValueError("record_states requires a batchless run")

    _, g_pad, f_pad = compiled.buffers(batch_shape)
    j_pad = np.empty_like(g_pad)
    c_over_h = compiled.capacitance(state) / dt
    theta_trap = np.append(compiled.theta_rows(state, opts.method), 1.0)
    theta_be = np.ones(compiled.n + 1)

    def store(k_idx: int, k: int) -> None:
        for name, idx in rec.items():
            sig_store[name][k_idx] = x_pad[..., idx]
        if states is not None:
            states[k] = x_pad[..., :n]

    kept_set = {k: i for i, k in enumerate(kept)}
    if 0 in kept_set:
        store(0, 0)

    # previous-step static residual, needed by trapezoidal
    compiled.assemble(state, x_pad, float(t_grid[0]), g_pad, f_pad)
    f_prev = f_pad.copy()
    x_prev = x_pad.copy()

    for k in range(1, n_steps + 1):
        t_k = float(t_grid[k])
        be_step = opts.method == "be" or (k == 1 and first_step_be)
        theta = theta_be if be_step else theta_trap
        _newton_step(compiled, state, x_pad, x_prev, f_prev, t_k, theta,
                     c_over_h, g_pad, f_pad, j_pad, opts.newton)
        # refresh f_prev at the accepted point for the next trap step
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        np.copyto(f_prev, f_pad)
        np.copyto(x_prev, x_pad)
        if k in kept_set:
            store(kept_set[k], k)
        elif states is not None:
            states[k] = x_pad[..., :n]

    return TransientResult(
        compiled=compiled, state=state, t=t_grid[::opts.stride][:n_kept],
        signals=sig_store, x_final_pad=x_pad.copy(), states=states)


def _newton_step(compiled: CompiledCircuit, state: ParamState,
                 x_pad: np.ndarray, x_prev: np.ndarray,
                 f_prev: np.ndarray, t_k: float, theta: np.ndarray,
                 c_over_h: np.ndarray, g_pad: np.ndarray,
                 f_pad: np.ndarray, j_pad: np.ndarray,
                 newton: NewtonOptions) -> None:
    """One implicit time step solved in place into ``x_pad``.

    *theta* is the per-equation implicitness vector (padded length
    ``n+1``); see :meth:`CompiledCircuit.theta_rows`.
    """
    n = compiled.n
    for _ in range(newton.max_iterations):
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        dx = x_pad - x_prev
        res = np.matmul(c_over_h, dx[..., None])[..., 0]
        res += theta * f_pad
        res += (1.0 - theta) * f_prev
        np.multiply(g_pad, theta[..., :, None], out=j_pad)
        j_pad += c_over_h
        try:
            delta = np.linalg.solve(j_pad[..., :n, :n],
                                    res[..., :n, None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular transient Jacobian at t={t_k:.4e}") from exc
        np.clip(delta, -newton.max_step, newton.max_step, out=delta)
        x_pad[..., :n] -= delta
        if float(np.max(np.abs(delta))) <= newton.vntol:
            return
    raise ConvergenceError(
        f"transient Newton failed at t={t_k:.4e} on "
        f"'{compiled.circuit.name}'")
