"""Transient analysis: fixed-grid and adaptive (LTE-controlled) stepping.

The integrator works on the charge-oriented MNA system

.. math:: \\frac{d}{dt} q(x) + i(x, t) = 0, \\qquad q(x) = C x

(all charges in the bundled element set are linear, see
:mod:`repro.analysis.mna`).  Two step drivers share one per-step solver:

**Fixed uniform grid** (the default).  Shooting PSS needs the one-period
state-transition map, which falls out of the per-step Jacobians only
when every Newton step lands on the same grid; the LPTV sensitivity
engine reuses the same grid, making the linear analysis exact on the
discretisation; and batched Monte-Carlo lanes must share time points to
be solved as one stacked system.  When ``t_stop - t_start`` is not an
integer multiple of ``dt`` the final step is *shortened to land exactly
on* ``t_stop`` (with a warning) instead of silently truncating or
overshooting the span.

**Adaptive stepping** (:attr:`TransientOptions.adaptive`).  A
local-truncation-error controller grows and shrinks the step within
``[dt_min, dt_max]``: every corrected solution is compared against an
embedded extrapolation predictor that costs no extra solves.  On
trapezoidal steps the predictor is the quadratic through the last three
accepted points - itself third-order, so the scaled difference isolates
trapezoidal's own O(h^3) truncation term (the classic
predictor-corrector estimate, step growing as ``rtol^(1/3)``); backward
Euler steps and the start-up phase fall back to the linear predictor
and the O(h^2) first-order estimate.  Steps whose estimate exceeds
``rtol``/``atol`` are rejected and retried smaller - as are steps whose
Newton iteration fails outright.  The stepper lands *exactly* on ``t_stop`` and on every
requested :attr:`TransientOptions.t_out` time (measurement-window
edges), so measurements never interpolate across a step boundary.
Batched Monte-Carlo lanes share one step sequence per stacked solve
(the controller takes the worst lane), which keeps chunked runs
deterministic and mergeable: a chunk's time grid depends only on the
chunk's own lanes.  The resulting :attr:`TransientResult.t` is
non-uniform; every consumer downstream (:class:`~repro.waveform.
Waveform` measurements, window masks) interpolates or uses local grid
spacing, so no uniformity assumption survives outside the PSS/LPTV
engines - which require the fixed grid and refuse ``adaptive``.

Trapezoidal is the default (second order, no numerical damping -
important for oscillator period accuracy); backward Euler is available
for heavily damped settling runs and is used for the very first step
after a raw initial condition (it swallows inconsistent ICs within one
step).

Linear solves go through the circuit's pluggable backend
(:mod:`repro.linalg`).  Backends whose policy allows factorization
reuse switch the integrator to a modified-Newton loop that keeps one
Jacobian factorization alive across iterations *and* time steps.  The
factorization cache is keyed on the *content* of the step-matrix
ingredients ``(theta, dt)`` (:meth:`~repro.linalg.FactorizationCache.
set_key`), so a changing step size can never be answered by a stale LU;
on the native-CSR path a ``dt`` change costs one ``c_lin_data / dt``
vector rescale (:meth:`~repro.analysis.mna.CsrAssembler.c_over_h_data`)
plus the re-factor itself.

Batched runs can additionally *isolate lane failures*
(:attr:`TransientOptions.isolate_lanes`): a Monte-Carlo sample whose
Newton iteration diverges or whose Jacobian goes singular is frozen and
reported in :attr:`TransientResult.failed_lanes` instead of killing the
remaining lanes.  On the adaptive grid a Newton failure first rejects
the step; lanes are only quarantined once the step floor is reached, so
healthy lanes never freeze just because the controller tried an
ambitious step.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.controlled import GateWindow
from ..circuit.sources import SmoothPulse
from ..errors import ConvergenceError, SingularMatrixError
from ..linalg import FactorizationCache, mark_singular_lanes
from ..waveform import WaveformSet
from .dcop import NewtonOptions, dc_operating_point
from .mna import CompiledCircuit, ParamState

Method = str  # "trap" | "be"

#: Step-controller constants (classic I-controller with safety margin).
_SAFETY = 0.9
_GROW_MAX = 2.0
_SHRINK_MIN = 0.2


@dataclass
class TransientOptions:
    """Knobs for :func:`transient`."""

    method: Method = "trap"
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(
        max_step=1.0, max_iterations=50))
    #: Node names (or voltage-source names prefixed ``i:``) to record.
    #: ``None`` records every node voltage.
    record: list[str] | None = None
    #: Keep every ``stride``-th sample in the recorded signals
    #: (fixed grid only).
    stride: int = 1
    #: Store the full unknown trajectory (needed by PSS; batchless,
    #: fixed grid only).
    record_states: bool = False
    #: On batched runs, freeze lanes whose Newton solve diverges or goes
    #: singular (recorded as NaN in their signals and flagged in
    #: :attr:`TransientResult.failed_lanes`) instead of raising and
    #: killing the healthy lanes.  Ignored on batchless runs.
    isolate_lanes: bool = False
    #: Switch from the fixed uniform grid to LTE-controlled adaptive
    #: stepping.  The ``dt`` argument of :func:`transient` becomes a
    #: *ceiling on the initial step* (the controller starts at
    #: ``min(dt, span/1000)`` - the first step carries no error test -
    #: and ramps up from there); :attr:`rtol`/:attr:`atol` set the
    #: per-step error target, the step stays within
    #: ``[dt_min, dt_max]``, and the resulting
    #: :attr:`TransientResult.t` is non-uniform.
    adaptive: bool = False
    #: Relative local-error target per accepted step (adaptive only).
    rtol: float = 1e-3
    #: Absolute local-error floor [V or A] per unknown (adaptive only).
    atol: float = 1e-6
    #: Smallest step the controller may take.  ``None``: ``dt * 1e-9``.
    #: An error-test failure at the floor is accepted (nothing smaller
    #: exists); a Newton failure at the floor raises.
    dt_min: float | None = None
    #: Largest step the controller may take.  ``None``: an eighth of the
    #: span, further capped to 1/16 of the fastest periodic source or
    #: gate period - the LTE test only sees source activity *after*
    #: stepping over it, so the cap is what prevents aliasing a whole
    #: clock cycle away.
    dt_max: float | None = None
    #: Abort (``ConvergenceError``) after this many consecutive
    #: rejections of one step.
    max_rejections: int = 50
    #: Time points the adaptive stepper must land on *exactly* (e.g.
    #: measurement-window edges).  Points outside ``(t_start, t_stop)``
    #: are ignored; ``t_stop`` is always landed on.  Requires
    #: :attr:`adaptive` (the fixed grid cannot honour it and refuses).
    t_out: Sequence[float] | None = None
    #: Register every source/gate waveform corner (pulse edges, PWL
    #: corners, gate-window transitions; see
    #: :func:`source_breakpoints`) as an exact landing time of the
    #: adaptive stepper.  The LTE controller only *reacts* to an edge
    #: after stepping into it, so without the schedule every edge costs
    #: a burst of rejected steps; with it the stepper walks up to the
    #: edge exactly and restarts small on the other side.  Ignored on
    #: the fixed grid.
    breakpoints: bool = True


@dataclass
class TransientResult:
    """Output of :func:`transient`.

    ``t`` has ``K+1`` entries (including the start point); recorded
    signals are arrays of shape ``(K+1, *batch)``.  On a fixed-grid run
    ``t`` is uniform except possibly for a shortened final step (span
    not an integer multiple of ``dt``); on an adaptive run ``t`` is the
    accepted step sequence and generally non-uniform - consumers must
    use local spacing (as :func:`~repro.core.montecarlo.
    measurement_window_mask` does) or interpolate (as every
    :class:`~repro.waveform.Waveform` measurement does), never assume
    ``t[1] - t[0]`` holds globally.
    """

    compiled: CompiledCircuit
    state: ParamState
    t: np.ndarray
    signals: dict[str, np.ndarray]
    x_final_pad: np.ndarray
    states: np.ndarray | None = None
    #: Boolean mask of lanes frozen by :attr:`TransientOptions.isolate_lanes`
    #: (``None`` when isolation was off or the run was batchless).
    failed_lanes: np.ndarray | None = None
    #: Accepted integration steps (``len(t) - 1``, except on strided
    #: fixed-grid runs where ``t`` keeps every ``stride``-th sample).
    n_accepted: int = 0
    #: Steps rejected and retried by the adaptive controller (0 on the
    #: fixed grid).
    n_rejected: int = 0

    def signal(self, name: str) -> np.ndarray:
        try:
            return self.signals[name]
        except KeyError:
            raise KeyError(
                f"'{name}' was not recorded; available: "
                f"{sorted(self.signals)}") from None

    def waveset(self) -> WaveformSet:
        """Recorded signals as a :class:`WaveformSet` (batchless runs).

        Valid for adaptive runs too: waveform measurements interpolate
        on the (then non-uniform) time axis.
        """
        for v in self.signals.values():
            if v.ndim != 1:
                raise ValueError(
                    "waveset() is only available for batchless runs; "
                    "use .signal(name) for batched data")
        return WaveformSet(self.t, self.signals)


def _record_indices(compiled: CompiledCircuit,
                    record: list[str] | None) -> dict[str, int]:
    if record is None:
        return dict(compiled.node_index)
    out: dict[str, int] = {}
    for name in record:
        if name.startswith("i:"):
            out[name] = compiled.branch(name[2:])
        else:
            out[name] = compiled.idx(name)
            if out[name] == compiled.n:
                raise ValueError(f"cannot record ground node '{name}'")
    return out


class _LaneGuard:
    """Tracks and quarantines failed lanes of a batched Newton solve.

    A failed lane keeps its last accepted state during the rest of the
    run (so its residuals stay finite and its Jacobian rows are replaced
    by identity) and is NaN-ed out of the recorded signals at the end.
    """

    def __init__(self, batch_shape: tuple[int, ...], n: int):
        self.failed = np.zeros(batch_shape, dtype=bool)
        self.n = n

    @property
    def any(self) -> bool:
        return bool(self.failed.any())

    def scrub_rhs(self, rhs: np.ndarray) -> None:
        if self.any:
            rhs[self.failed] = 0.0

    def patch_jac(self, jac: np.ndarray) -> None:
        if self.any:
            jac[self.failed] = np.eye(self.n)

    def quarantine(self, mask: np.ndarray, x_pad: np.ndarray,
                   x_prev: np.ndarray) -> None:
        """Mark *mask* lanes failed and roll them back to ``x_prev``."""
        mask = mask & ~self.failed
        if mask.any():
            self.failed |= mask
            x_pad[mask] = x_prev[mask]

    def absorb_bad_delta(self, delta: np.ndarray, x_pad: np.ndarray,
                         x_prev: np.ndarray) -> None:
        """Quarantine lanes whose update is non-finite; zero their delta."""
        bad = ~np.all(np.isfinite(delta), axis=-1)
        if bad.any():
            self.quarantine(bad, x_pad, x_prev)
            delta[self.failed] = 0.0

    def worst(self, delta: np.ndarray) -> float:
        """Batch-max update norm over the healthy lanes."""
        per_lane = np.max(np.abs(delta), axis=-1)
        if self.any:
            per_lane = np.where(self.failed, 0.0, per_lane)
        return float(np.max(per_lane))


def _solve_isolated(solve, jac_builder, rhs: np.ndarray,
                    guard: _LaneGuard | None, t_k: float,
                    circuit_name: str) -> np.ndarray:
    """Run *solve* (rhs -> delta), isolating singular lanes on failure."""
    try:
        return solve(rhs)
    except np.linalg.LinAlgError as exc:
        if guard is None:
            raise SingularMatrixError(
                f"singular transient Jacobian at t={t_k:.4e} on "
                f"'{circuit_name}'") from exc
        jac = jac_builder()
        if mark_singular_lanes(jac, guard.failed) == 0:
            raise SingularMatrixError(
                f"singular transient Jacobian at t={t_k:.4e} on "
                f"'{circuit_name}' (no offending lane found)") from exc
        guard.patch_jac(jac)
        guard.scrub_rhs(rhs)
        return solve(rhs)


class _StepSolver:
    """One implicit time step, behind the linear-solver-backend seam.

    Owns the per-run work buffers of whichever assembly path the
    backend selects (dense, dense with factorization reuse, or native
    CSR) and the step-size-dependent operands: :meth:`set_step` rescales
    ``C/h`` and re-keys the factorization cache on ``(theta, h)``, so
    both step drivers - fixed grid and adaptive - stay ignorant of the
    backend underneath.
    """

    def __init__(self, compiled: CompiledCircuit, state: ParamState,
                 opts: TransientOptions, batch_shape: tuple[int, ...],
                 theta_trap: np.ndarray, theta_be: np.ndarray):
        self.compiled = compiled
        self.state = state
        self.opts = opts
        self.batch_shape = batch_shape
        n = compiled.n
        self._thetas = {False: (theta_trap, theta_trap.tobytes()),
                        True: (theta_be, theta_be.tobytes())}
        self.theta = theta_trap

        reuse = compiled.backend.policy.reuse
        self.cache = (FactorizationCache(
            compiled.backend, jac_constant=not compiled.has_nonlinear)
            if reuse else None)
        self.guard = (_LaneGuard(batch_shape, n)
                      if opts.isolate_lanes and batch_shape else None)

        # native-CSR path: batchless runs on a wants_csr backend assemble
        # straight onto the circuit's sparsity plan - the sparse-native
        # state template is consumed as-is, residuals are CSR mat-vecs
        # and no dense (n+1)^2 array (template or buffer) ever exists
        self.use_csr = (self.cache is not None
                        and compiled.backend.wants_csr and not batch_shape)
        if self.use_csr:
            self.asm = compiled.csr_assembler(state)
            self.coh_data = np.empty_like(self.asm.c_lin_data)
            self.g_pad = self.j_pad = self.c_over_h = None
            self.f_pad = np.zeros(n + 1)
        else:
            self.asm = self.coh_data = None
            _, self.g_pad, self.f_pad = compiled.buffers(batch_shape)
            self.j_pad = (np.empty_like(self.g_pad)
                          if self.cache is None else None)
            # dense path: densify the sparse template once per run
            # (cached on the state - batched MC chunks pay this once)
            self._c_mat = compiled.capacitance(state)
            self.c_over_h = np.empty_like(self._c_mat)
        self.h: float | None = None

    def set_step(self, be_step: bool, h: float) -> None:
        """Select the scheme and step size for the next :meth:`step`.

        A changed *h* rescales the ``C/h`` operand (a vector rescale on
        the CSR path, see :meth:`~repro.analysis.mna.CsrAssembler.
        c_over_h_data`); the factorization cache is keyed on the
        *content* pair ``(theta, h)`` so a stale LU can never serve a
        changed step matrix - and an unchanged one is never re-factored
        just because a theta array was rebuilt.
        """
        theta, fingerprint = self._thetas[be_step]
        self.theta = theta
        h = float(h)
        if h != self.h:
            if self.use_csr:
                self.asm.c_over_h_data(h, out=self.coh_data)
            else:
                np.multiply(self._c_mat, 1.0 / h, out=self.c_over_h)
            self.h = h
        if self.cache is not None:
            self.cache.set_key((fingerprint, h))

    def residual_only(self, x_pad: np.ndarray, t: float) -> None:
        """Assemble the static residual ``f(x, t)`` into ``f_pad``."""
        if self.use_csr:
            self.asm.assemble(x_pad, t, self.f_pad, jacobian=False)
        else:
            self.compiled.assemble(self.state, x_pad, t, self.g_pad,
                                   self.f_pad, jacobian=False)

    def step(self, x_pad: np.ndarray, x_prev: np.ndarray,
             f_prev: np.ndarray, t_k: float,
             guard: _LaneGuard | None) -> None:
        """One implicit step ``x_prev -> x_pad`` at the configured
        ``(theta, h)``; leaves ``f_pad`` at the accepted residual."""
        if self.cache is not None:
            if self.use_csr:
                _newton_step_reuse_csr(self.compiled, self.asm, x_pad,
                                       x_prev, f_prev, t_k, self.theta,
                                       self.coh_data, self.f_pad,
                                       self.cache, self.opts.newton)
            else:
                _newton_step_reuse(self.compiled, self.state, x_pad,
                                   x_prev, f_prev, t_k, self.theta,
                                   self.c_over_h, self.g_pad, self.f_pad,
                                   self.cache, self.opts.newton, guard)
            # the reuse loop accepts with f_pad already assembled at the
            # accepted state - no refresh assembly needed
        else:
            _newton_step(self.compiled, self.state, x_pad, x_prev,
                         f_prev, t_k, self.theta, self.c_over_h,
                         self.g_pad, self.f_pad, self.j_pad,
                         self.opts.newton, guard=guard)
            # refresh f_pad at the accepted point for the next trap
            # step (residual only - the Jacobian is rebuilt next step)
            self.residual_only(x_pad, t_k)


def _initial_state(compiled: CompiledCircuit, state: ParamState,
                   x0_pad: np.ndarray | None, t_start: float,
                   batch_shape: tuple[int, ...]
                   ) -> tuple[np.ndarray, bool]:
    """Starting point and whether the first step must be backward Euler."""
    n = compiled.n
    if x0_pad is not None:
        return np.broadcast_to(x0_pad, batch_shape + (n + 1,)).copy(), False
    if compiled.circuit.ic:
        return compiled.initial_padded(batch_shape), True
    dc = dc_operating_point(compiled, state, t=t_start,
                            batch_shape=batch_shape)
    return compiled.pad(dc.x), False


def transient(compiled: CompiledCircuit, t_stop: float, dt: float,
              state: ParamState | None = None,
              x0_pad: np.ndarray | None = None,
              t_start: float = 0.0,
              options: TransientOptions | None = None,
              batch_shape: tuple[int, ...] = ()) -> TransientResult:
    """Integrate the circuit from *t_start* to *t_stop*.

    On the default fixed grid *dt* is the uniform step; with
    :attr:`TransientOptions.adaptive` it is a ceiling on the initial
    step of the LTE controller, which then floats within
    ``[dt_min, dt_max]`` and lands exactly on ``t_stop`` and every
    :attr:`TransientOptions.t_out` point.

    Starting point, in order of precedence: *x0_pad* (padded state, e.g.
    the final state of a previous run), the circuit's ``ic`` dictionary
    (SPICE ``uic`` style, missing nodes start at 0), or - when no ICs are
    set at all - the DC operating point at *t_start*.

    Linear systems are solved by ``compiled.backend``; see
    :mod:`repro.linalg` for backend selection and the factorization
    reuse policy.

    Warns
    -----
    UserWarning
        On the fixed grid, when ``t_stop - t_start`` is not an integer
        multiple of *dt*: the final step is shortened to land exactly
        on *t_stop* (the seed behaviour silently rounded the span).

    Raises
    ------
    ConvergenceError
        When a Newton solve fails at some time step (unless the failure
        is confined to isolated lanes, see
        :attr:`TransientOptions.isolate_lanes`), or when the adaptive
        controller cannot find an acceptable step above ``dt_min``.
    """
    opts = options or TransientOptions()
    state = state or compiled.nominal
    if state.batched:
        batch_shape = state.batch_shape
    if dt <= 0.0:
        raise ValueError("dt must be positive")
    if t_stop - t_start <= 0.0:
        raise ValueError("t_stop must exceed t_start by at least one step")
    if opts.adaptive:
        if opts.record_states:
            raise ValueError(
                "record_states requires the fixed grid (PSS/LPTV need "
                "uniform steps); disable adaptive")
        if opts.stride != 1:
            raise ValueError("stride requires the fixed grid")
    elif opts.t_out:
        raise ValueError(
            "t_out requires adaptive=True: the fixed grid cannot land "
            "on arbitrary times (its spacing is the contract)")

    x_pad, first_step_be = _initial_state(compiled, state, x0_pad,
                                          t_start, batch_shape)
    rec = _record_indices(compiled, opts.record)
    theta_trap = np.append(compiled.theta_rows(state, opts.method), 1.0)
    theta_be = np.ones(compiled.n + 1)
    solver = _StepSolver(compiled, state, opts, batch_shape,
                         theta_trap, theta_be)

    if opts.adaptive:
        return _adaptive_loop(compiled, state, opts, solver, x_pad,
                              first_step_be, t_start, t_stop, dt, rec)
    return _fixed_loop(compiled, state, opts, solver, x_pad,
                       first_step_be, t_start, t_stop, dt, rec,
                       batch_shape)


def _finalize(compiled: CompiledCircuit, state: ParamState,
              solver: _StepSolver, t: np.ndarray,
              sig_store: dict[str, np.ndarray], x_pad: np.ndarray,
              states: np.ndarray | None, n_accepted: int,
              n_rejected: int) -> TransientResult:
    failed = solver.guard.failed if solver.guard is not None else None
    x_final = x_pad.copy()
    if failed is not None and failed.any():
        for sig in sig_store.values():
            sig[:, failed] = np.nan
        x_final[failed] = np.nan
    return TransientResult(
        compiled=compiled, state=state, t=t, signals=sig_store,
        x_final_pad=x_final, states=states, failed_lanes=failed,
        n_accepted=n_accepted, n_rejected=n_rejected)


# ---------------------------------------------------------------------------
# fixed-grid driver
# ---------------------------------------------------------------------------
def _fixed_grid(t_start: float, t_stop: float, dt: float,
                circuit_name: str) -> tuple[np.ndarray, float]:
    """Uniform grid from *t_start* to *t_stop*; the final step is
    shortened (with a warning) when the span is not an integer multiple
    of *dt*.  Returns ``(t_grid, h_last)``."""
    span = t_stop - t_start
    ratio = span / dt
    n_steps = int(round(ratio))
    if n_steps >= 1 and abs(ratio - n_steps) <= 1e-9 * ratio:
        t_grid = t_start + dt * np.arange(n_steps + 1)
        t_grid[-1] = t_stop     # absorb accumulated rounding
        return t_grid, dt
    n_steps = int(np.floor(ratio * (1.0 + 1e-12))) + 1
    t_grid = t_start + dt * np.arange(n_steps + 1)
    t_grid[-1] = t_stop
    h_last = float(t_stop - t_grid[-2])
    warnings.warn(
        f"transient span {span:.6e} s on '{circuit_name}' is not an "
        f"integer multiple of dt={dt:.6e} s; the final step is "
        f"shortened to {h_last:.6e} s to land exactly on t_stop "
        f"(the seed integrator silently rounded the span)",
        UserWarning, stacklevel=4)
    return t_grid, h_last


def _fixed_loop(compiled: CompiledCircuit, state: ParamState,
                opts: TransientOptions, solver: _StepSolver,
                x_pad: np.ndarray, first_step_be: bool, t_start: float,
                t_stop: float, dt: float, rec: dict[str, int],
                batch_shape: tuple[int, ...]) -> TransientResult:
    n = compiled.n
    t_grid, h_last = _fixed_grid(t_start, t_stop, dt,
                                 compiled.circuit.name)
    n_steps = len(t_grid) - 1
    guard = solver.guard

    kept = range(0, n_steps + 1, opts.stride)
    n_kept = len(kept)
    sig_store = {name: np.empty((n_kept,) + batch_shape)
                 for name in rec}
    states = (np.empty((n_steps + 1, n)) if opts.record_states else None)
    if states is not None and batch_shape:
        raise ValueError("record_states requires a batchless run")

    def store(k_idx: int, k: int) -> None:
        for name, idx in rec.items():
            sig_store[name][k_idx] = x_pad[..., idx]
        if states is not None:
            states[k] = x_pad[..., :n]

    kept_set = {k: i for i, k in enumerate(kept)}
    if 0 in kept_set:
        store(0, 0)

    # previous-step static residual, needed by trapezoidal
    solver.residual_only(x_pad, float(t_grid[0]))
    f_prev = solver.f_pad.copy()
    x_prev = x_pad.copy()
    x_prev2 = x_pad.copy()      # one more step back, for the predictor

    for k in range(1, n_steps + 1):
        t_k = float(t_grid[k])
        h = dt if k < n_steps else h_last
        be_step = opts.method == "be" or (k == 1 and first_step_be)
        solver.set_step(be_step, h)
        if solver.cache is not None and k >= 2:
            # extrapolation predictor: start Newton from
            # x_prev + r*(x_prev - x_prev2), cheap and second-order
            # (r != 1 only on a shortened final step)
            r = h / dt
            if r == 1.0:
                x_pad += x_prev
                x_pad -= x_prev2
            else:
                np.subtract(x_prev, x_prev2, out=x_pad)
                x_pad *= r
                x_pad += x_prev
            if guard is not None and guard.any:
                x_pad[guard.failed] = x_prev[guard.failed]
        solver.step(x_pad, x_prev, f_prev, t_k, guard)
        np.copyto(f_prev, solver.f_pad)
        np.copyto(x_prev2, x_prev)
        np.copyto(x_prev, x_pad)
        if k in kept_set:
            store(kept_set[k], k)
        elif states is not None:
            states[k] = x_pad[..., :n]

    return _finalize(compiled, state, solver,
                     t_grid[::opts.stride][:n_kept], sig_store, x_pad,
                     states, n_steps, 0)


# ---------------------------------------------------------------------------
# adaptive driver
# ---------------------------------------------------------------------------
def _default_dt_max(compiled: CompiledCircuit, span: float) -> float:
    """Largest step the controller may try without external guidance.

    An eighth of the span, capped to 1/16 of the fastest periodic
    source or VCCS-gate period *and* to the narrowest pulse/gate active
    width: the LTE test only sees what a step did to the *solution*, so
    it can reject a step that crossed a clock edge but cannot see a
    step that silently jumped over an entire pulse.  The period cap
    bounds how much of a cycle one step may cover; the half-active-width
    cap guarantees some step *endpoint* samples the interior of every
    low-duty-cycle pulse (endpoints one full width apart can phase-lock
    onto the two near-zero pulse edges and skip the middle), and the
    solution kick at that sample then drives refinement.  Aperiodic sources (DC, one-shot PWL) impose no cap;
    pass an explicit ``dt_max`` when such a source carries fast
    activity.
    """
    cap = span / 8.0
    waves = [el.wave for el in compiled.vsources + compiled.isources]
    # a gated Vccs is never in linear_vccs (is_linear requires no gate)
    waves += [el.gate for el in compiled.nl_vccs if el.gate is not None]
    for w in waves:
        p = getattr(w, "period", None)
        if p:
            cap = min(cap, p / 16.0)
        if isinstance(w, SmoothPulse):
            cap = min(cap, 0.5 * (w.t_rise + w.t_high + w.t_fall))
        elif isinstance(w, GateWindow):
            cap = min(cap, 0.5 * (w.t_off - w.t_on + 2.0 * w.tau))
    return cap


#: Above this many registered landing times the schedule is dropped
#: (the stepper would degenerate to a near-fixed grid anyway).
_BREAKPOINT_CAP = 4096


def source_breakpoints(compiled: CompiledCircuit, t_start: float,
                       t_stop: float) -> np.ndarray:
    """Union of waveform corner times in ``(t_start, t_stop)``.

    Collects :meth:`~repro.circuit.sources.TimeFunction.breakpoints`
    from every independent source and every VCCS gate window, sorted
    and de-duplicated to a relative tolerance.  The PSS settle phase
    inherits the same schedule through
    :attr:`~repro.analysis.pss.PssOptions.settle_adaptive`.
    """
    chunks = []
    waves = [el.wave for el in compiled.vsources + compiled.isources]
    waves += [el.gate for el in compiled.nl_vccs if el.gate is not None]
    for w in waves:
        bp = getattr(w, "breakpoints", None)
        if bp is not None:
            chunks.append(np.asarray(bp(t_start, t_stop), dtype=float))
    if not chunks:
        return np.empty(0)
    pts = np.sort(np.concatenate(chunks))
    if pts.size == 0:
        return pts
    eps = max(1e-12 * (t_stop - t_start),
              4.0 * np.spacing(max(abs(t_start), abs(t_stop))))
    keep = np.empty(pts.size, dtype=bool)
    keep[0] = True
    keep[1:] = np.diff(pts) > eps
    pts = pts[keep]
    if pts.size > _BREAKPOINT_CAP:
        warnings.warn(
            f"{pts.size} source breakpoints in [{t_start:.3g}, "
            f"{t_stop:.3g}] exceed the cap ({_BREAKPOINT_CAP}); "
            "dropping the landing schedule - pass dt_max instead")
        return np.empty(0)
    return pts


def _scaled_mismatch(x_new: np.ndarray, x_pred: np.ndarray,
                     x_prev: np.ndarray, n: int, rtol: float,
                     atol: float, guard: _LaneGuard | None) -> float:
    """Worst corrector-minus-predictor component over scale (healthy
    lanes only) - the raw ingredient of both LTE estimates below."""
    d = x_new[..., :n] - x_pred[..., :n]
    scale = atol + rtol * np.maximum(np.abs(x_new[..., :n]),
                                     np.abs(x_prev[..., :n]))
    ratio = np.abs(d) / scale
    if guard is not None and guard.any:
        ratio[guard.failed] = 0.0
    return float(np.max(ratio))


def _adaptive_loop(compiled: CompiledCircuit, state: ParamState,
                   opts: TransientOptions, solver: _StepSolver,
                   x_pad: np.ndarray, first_step_be: bool,
                   t_start: float, t_stop: float, dt: float,
                   rec: dict[str, int]) -> TransientResult:
    n = compiled.n
    span = t_stop - t_start
    dt_min = opts.dt_min if opts.dt_min is not None else dt * 1e-9
    dt_max = (opts.dt_max if opts.dt_max is not None
              else _default_dt_max(compiled, span))
    if dt_min > dt_max:
        raise ValueError(f"dt_min={dt_min:.3e} exceeds dt_max={dt_max:.3e}")
    guard = solver.guard

    pts: set[float] = set()
    if opts.t_out:
        pts |= {float(tp) for tp in opts.t_out
                if t_start < float(tp) < t_stop}
    if opts.breakpoints:
        pts |= set(source_breakpoints(compiled, t_start, t_stop).tolist())
    targets = [float(t_stop)]
    if pts:
        # merge, dropping near-coincident targets (a landing time a few
        # ulp from its neighbour would force a sliver step)
        eps = max(1e-12 * span,
                  4.0 * np.spacing(max(abs(t_start), abs(t_stop))))
        targets = []
        last = t_start
        for p in sorted(pts):
            if p - last > eps and t_stop - p > eps:
                targets.append(p)
                last = p
        targets.append(float(t_stop))

    times = [t_start]
    store: dict[str, list[np.ndarray]] = {
        name: [x_pad[..., idx].copy()] for name, idx in rec.items()}

    solver.residual_only(x_pad, t_start)
    f_prev = solver.f_pad.copy()
    x_prev = x_pad.copy()       # accepted solution at t
    x_prev2 = x_pad.copy()      # ... one step back
    x_prev3 = x_pad.copy()      # ... two steps back
    x_pred = np.empty_like(x_pad)
    x_tmp = np.empty_like(x_pad)    # predictor scratch (no per-step allocs)
    h1 = h2 = 0.0               # the last two accepted step sizes

    t = t_start
    # the first step is accepted without an error test (no predictor
    # history exists), so it must not be allowed to bake a large error
    # into the start of the waveform: begin at a conservative fraction
    # of the span and let the controller ramp up (it doubles per
    # accepted step, so a timid start costs ~10 cheap steps)
    h = float(min(max(min(dt, span / 1000.0), dt_min), dt_max))
    n_acc = n_rej = 0
    ti = 0
    while ti < len(targets):
        target = targets[ti]
        rejections = 0
        while True:                     # attempts at the next step
            rem = target - t
            land = False
            h_step = h
            # stretch (a little, never past dt_max) or split so the
            # approach to a landing time never leaves a sliver step
            if rem <= min(1.25 * h_step, dt_max):
                h_step, land = rem, True
            elif rem <= 2.0 * h_step:
                h_step = 0.5 * rem
            h_floor = max(dt_min,
                          4.0 * np.spacing(max(abs(t), abs(target))))
            at_floor = h_step <= h_floor * (1.0 + 1e-9)
            t_k = target if land else t + h_step

            be_step = opts.method == "be" or (n_acc == 0 and first_step_be)
            solver.set_step(be_step, h_step)

            # embedded predictor: extrapolate the accepted history to
            # t_k.  Quadratic (through three points) once trapezoidal
            # has the history - its own error is O(h^3), matching the
            # corrector, so the difference isolates the trap LTE;
            # linear otherwise (first-order embedded result).
            if n_acc >= 2 and not be_step:
                a, b, c = h_step, h_step + h1, h_step + h1 + h2
                w1 = b * c / (h1 * (h1 + h2))
                w2 = -a * c / (h1 * h2)
                w3 = a * b / (h2 * (h1 + h2))
                np.multiply(x_prev, w1, out=x_pred)
                np.multiply(x_prev2, w2, out=x_tmp)
                x_pred += x_tmp
                np.multiply(x_prev3, w3, out=x_tmp)
                x_pred += x_tmp
                lte_frac = h_step ** 3 / (2.0 * a * b * c + h_step ** 3)
                exp = 1.0 / 3.0
            elif n_acc >= 1:
                np.subtract(x_prev, x_prev2, out=x_pred)
                x_pred *= h_step / h1
                x_pred += x_prev
                lte_frac = h_step / (h_step + h1)
                exp = 0.5
            else:
                np.copyto(x_pred, x_prev)
                lte_frac = 0.0          # first step: accepted on faith
                exp = 0.5
            if guard is not None and guard.any:
                x_pred[guard.failed] = x_prev[guard.failed]
            np.copyto(x_pad, x_pred)

            # off the floor, a Newton failure rejects the step (healthy
            # lanes must not freeze over an ambitious h); lanes already
            # quarantined stay guarded so their rows remain patched,
            # but any *new* quarantine off the floor is rolled back
            # into a step rejection below
            use_guard = (guard if guard is not None
                         and (at_floor or guard.any) else None)
            prior_failed = (use_guard.failed.copy()
                            if use_guard is not None and not at_floor
                            else None)
            try:
                solver.step(x_pad, x_prev, f_prev, t_k, use_guard)
            except (ConvergenceError, SingularMatrixError) as exc:
                n_rej += 1
                rejections += 1
                if at_floor or rejections > opts.max_rejections:
                    raise ConvergenceError(
                        f"adaptive transient on '{compiled.circuit.name}'"
                        f": Newton kept failing down to the step floor "
                        f"({h_step:.3e} s) at t={t:.6e}",
                        iterations=rejections,
                        residual=getattr(exc, "residual", None),
                        theta_fingerprint=state.theta_fingerprint()
                        ) from exc
                h = max(h_floor, 0.25 * h_step)
                continue
            if prior_failed is not None \
                    and np.any(use_guard.failed != prior_failed):
                np.copyto(use_guard.failed, prior_failed)
                n_rej += 1
                rejections += 1
                if rejections > opts.max_rejections:
                    raise ConvergenceError(
                        f"adaptive transient on '{compiled.circuit.name}'"
                        f": lanes kept failing at t={t:.6e} above the "
                        f"step floor ({h_step:.3e} s)",
                        iterations=rejections,
                        theta_fingerprint=state.theta_fingerprint())
                h = max(h_floor, 0.25 * h_step)
                continue

            err = lte_frac * _scaled_mismatch(
                x_pad, x_pred, x_prev, n, opts.rtol, opts.atol,
                use_guard) if lte_frac else 0.0
            if err <= 1.0 or at_floor:
                break                   # accepted
            n_rej += 1
            rejections += 1
            if rejections > opts.max_rejections:
                raise ConvergenceError(
                    f"adaptive transient on '{compiled.circuit.name}': "
                    f"{opts.max_rejections} consecutive rejections at "
                    f"t={t:.6e} (last h={h_step:.3e} s, err={err:.3g})",
                    iterations=rejections, residual=float(err),
                    theta_fingerprint=state.theta_fingerprint())
            fac = (0.1 if not np.isfinite(err)
                   else max(0.1, min(0.5, _SAFETY * err ** -exp)))
            h = max(h_floor, fac * h_step)

        n_acc += 1
        np.copyto(f_prev, solver.f_pad)
        np.copyto(x_prev3, x_prev2)
        np.copyto(x_prev2, x_prev)
        np.copyto(x_prev, x_pad)
        h2, h1 = h1, h_step
        t = t_k
        times.append(t)
        for name, idx in rec.items():
            store[name].append(x_pad[..., idx].copy())
        if land:
            ti += 1
        fac = (_GROW_MAX if err == 0.0 else
               min(_GROW_MAX, max(_SHRINK_MIN, _SAFETY * err ** -exp)))
        h = float(min(dt_max, max(dt_min, h_step * fac)))

    sig_store = {name: np.stack(vals) for name, vals in store.items()}
    return _finalize(compiled, state, solver, np.asarray(times),
                     sig_store, x_pad, None, n_acc, n_rej)


def _residual(x_pad, x_prev, f_pad, f_prev, theta, c_over_h):
    dx = x_pad - x_prev
    res = np.matmul(c_over_h, dx[..., None])[..., 0]
    res += theta * f_pad
    res += (1.0 - theta) * f_prev
    return res


def _newton_step(compiled: CompiledCircuit, state: ParamState,
                 x_pad: np.ndarray, x_prev: np.ndarray,
                 f_prev: np.ndarray, t_k: float, theta: np.ndarray,
                 c_over_h: np.ndarray, g_pad: np.ndarray,
                 f_pad: np.ndarray, j_pad: np.ndarray,
                 newton: NewtonOptions,
                 guard: _LaneGuard | None = None) -> None:
    """One implicit time step solved in place into ``x_pad``.

    Full Newton: the Jacobian is rebuilt and factored every iteration
    (the backend still provides the solver).  *theta* is the
    per-equation implicitness vector (padded length ``n+1``); see
    :meth:`CompiledCircuit.theta_rows`.
    """
    n = compiled.n
    backend = compiled.backend
    for _ in range(newton.max_iterations):
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        res = _residual(x_pad, x_prev, f_pad, f_prev, theta, c_over_h)
        np.multiply(g_pad, theta[..., :, None], out=j_pad)
        j_pad += c_over_h
        jac = j_pad[..., :n, :n]
        rhs = res[..., :n]
        if guard is not None:
            guard.patch_jac(jac)
            guard.scrub_rhs(rhs)
        delta = _solve_isolated(lambda b: backend.solve(jac, b),
                                lambda: jac, rhs, guard, t_k,
                                compiled.circuit.name)
        np.clip(delta, -newton.max_step, newton.max_step, out=delta)
        if guard is not None:
            guard.absorb_bad_delta(delta, x_pad, x_prev)
        x_pad[..., :n] -= delta
        worst = (guard.worst(delta) if guard is not None
                 else float(np.max(np.abs(delta))))
        if worst <= newton.vntol:
            return
    if guard is not None:
        guard.quarantine(np.max(np.abs(delta), axis=-1) > newton.vntol,
                         x_pad, x_prev)
        return
    raise ConvergenceError(
        f"transient Newton failed at t={t_k:.4e} on "
        f"'{compiled.circuit.name}'",
        iterations=newton.max_iterations,
        theta_fingerprint=state.theta_fingerprint())


def _newton_step_reuse_csr(compiled: CompiledCircuit, asm, x_pad, x_prev,
                           f_prev, t_k: float, theta: np.ndarray,
                           coh_data, f_pad: np.ndarray,
                           cache: FactorizationCache,
                           newton: NewtonOptions) -> None:
    """One implicit time step on the native-CSR assembly path.

    Semantically identical to :func:`_newton_step_reuse` (modified
    Newton against the factorization cache, ``f_pad`` left at the last
    assembled iterate), but every residual is a CSR mat-vec over the
    circuit's sparsity plan and the step matrix is assembled by value
    scatter - no dense ``(n+1)^2`` buffer exists on this path.
    Batchless only (batched Monte-Carlo stacks keep the dense path),
    so no lane guard is threaded through.
    """
    n = compiled.n
    thn = theta[:n]
    one_minus = 1.0 - thn

    def jac():
        asm.assemble(x_pad, t_k, f_pad)
        return asm.step_matrix(theta, coh_data)

    cache.new_sequence()
    plan = asm.plan
    for _ in range(newton.max_iterations):
        asm.assemble(x_pad, t_k, f_pad, jacobian=False)
        rhs = plan.matvec(coh_data, x_pad[:n] - x_prev[:n])
        rhs += thn * f_pad[:n]
        rhs += one_minus * f_prev[:n]
        try:
            delta = cache.solve(rhs, jac)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular transient Jacobian at t={t_k:.4e} on "
                f"'{compiled.circuit.name}'") from exc
        delta.clip(-newton.max_step, newton.max_step, out=delta)
        x_pad[:n] -= delta
        if float(np.abs(delta).max()) <= newton.vntol:
            return
    raise ConvergenceError(
        f"transient Newton failed at t={t_k:.4e} on "
        f"'{compiled.circuit.name}'",
        iterations=newton.max_iterations)


def _newton_step_reuse(compiled: CompiledCircuit, state: ParamState,
                       x_pad: np.ndarray, x_prev: np.ndarray,
                       f_prev: np.ndarray, t_k: float, theta: np.ndarray,
                       c_over_h: np.ndarray, g_pad: np.ndarray,
                       f_pad: np.ndarray, cache: FactorizationCache,
                       newton: NewtonOptions,
                       guard: _LaneGuard | None = None) -> None:
    """One implicit time step with modified-Newton factorization reuse.

    Differences from :func:`_newton_step`:

    * the step matrix is only materialised when the cache re-factors
      (policy in :mod:`repro.linalg`), every other iteration is a
      back-substitution against the cached factorization;
    * on acceptance ``f_pad`` is left at the last *assembled* iterate,
      which trails the accepted state by the final sub-``vntol``
      update.  The resulting ``f_prev`` error is O(G * vntol) - orders
      of magnitude below the Newton tolerance - and skipping the
      refresh assembly removes one full device evaluation per step,
      the single largest cost of batched Monte-Carlo transients.
    """
    n = compiled.n

    def jac() -> np.ndarray:
        # only called when the cache re-factors: one full assembly
        # (with device derivatives) at the current iterate
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        j = theta[:n, None] * g_pad[..., :n, :n] + c_over_h[..., :n, :n]
        if guard is not None:
            guard.patch_jac(j)
        return j

    cache.new_sequence()
    for _ in range(newton.max_iterations):
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad, jacobian=False)
        res = _residual(x_pad, x_prev, f_pad, f_prev, theta, c_over_h)
        rhs = res[..., :n]
        if guard is not None:
            guard.scrub_rhs(rhs)
        delta = _solve_isolated(lambda b: cache.solve(b, jac), jac, rhs,
                                guard, t_k, compiled.circuit.name)
        np.clip(delta, -newton.max_step, newton.max_step, out=delta)
        if guard is not None:
            guard.absorb_bad_delta(delta, x_pad, x_prev)
        x_pad[..., :n] -= delta
        worst = (guard.worst(delta) if guard is not None
                 else float(np.max(np.abs(delta))))
        if worst <= newton.vntol:
            return
    if guard is not None:
        guard.quarantine(np.max(np.abs(delta), axis=-1) > newton.vntol,
                         x_pad, x_prev)
        return
    raise ConvergenceError(
        f"transient Newton failed at t={t_k:.4e} on "
        f"'{compiled.circuit.name}'",
        iterations=newton.max_iterations,
        theta_fingerprint=state.theta_fingerprint())
