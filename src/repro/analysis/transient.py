"""Transient analysis on a fixed time grid (backward Euler / trapezoidal).

The integrator works on the charge-oriented MNA system

.. math:: \\frac{d}{dt} q(x) + i(x, t) = 0, \\qquad q(x) = C x

(all charges in the bundled element set are linear, see
:mod:`repro.analysis.mna`).  A *fixed uniform grid* is used deliberately:

* shooting PSS needs the one-period state-transition map, which falls out
  of the per-step Jacobians only when every Newton step lands on the same
  grid;
* the LPTV sensitivity engine reuses the same grid, making the linear
  analysis exact on the discretisation;
* batched Monte-Carlo lanes must share time points to be solved as one
  stacked system.

Trapezoidal is the default (second order, no numerical damping - important
for oscillator period accuracy); backward Euler is available for heavily
damped settling runs and is used for the very first step after a raw
initial condition (it swallows inconsistent ICs within one step).

Linear solves go through the circuit's pluggable backend
(:mod:`repro.linalg`).  Backends whose policy allows factorization reuse
switch the integrator to a modified-Newton loop that keeps one Jacobian
factorization alive across iterations *and* time steps, re-factoring
only when the update norm stops contracting; on a fixed grid with a
constant capacitance matrix this removes almost every O(n^3) factor from
the hot path (linear circuits factor exactly once per run).

Batched runs can additionally *isolate lane failures*
(:attr:`TransientOptions.isolate_lanes`): a Monte-Carlo sample whose
Newton iteration diverges or whose Jacobian goes singular is frozen and
reported in :attr:`TransientResult.failed_lanes` instead of killing the
remaining lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConvergenceError, SingularMatrixError
from ..linalg import FactorizationCache, mark_singular_lanes
from ..waveform import WaveformSet
from .dcop import NewtonOptions, dc_operating_point
from .mna import CompiledCircuit, ParamState

Method = str  # "trap" | "be"


@dataclass
class TransientOptions:
    """Knobs for :func:`transient`."""

    method: Method = "trap"
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(
        max_step=1.0, max_iterations=50))
    #: Node names (or voltage-source names prefixed ``i:``) to record.
    #: ``None`` records every node voltage.
    record: list[str] | None = None
    #: Keep every ``stride``-th sample in the recorded signals.
    stride: int = 1
    #: Store the full unknown trajectory (needed by PSS; batchless only).
    record_states: bool = False
    #: On batched runs, freeze lanes whose Newton solve diverges or goes
    #: singular (recorded as NaN in their signals and flagged in
    #: :attr:`TransientResult.failed_lanes`) instead of raising and
    #: killing the healthy lanes.  Ignored on batchless runs.
    isolate_lanes: bool = False


@dataclass
class TransientResult:
    """Output of :func:`transient`.

    ``t`` has ``K+1`` entries (including the start point); recorded signals
    are arrays of shape ``(K+1, *batch)``.
    """

    compiled: CompiledCircuit
    state: ParamState
    t: np.ndarray
    signals: dict[str, np.ndarray]
    x_final_pad: np.ndarray
    states: np.ndarray | None = None
    #: Boolean mask of lanes frozen by :attr:`TransientOptions.isolate_lanes`
    #: (``None`` when isolation was off or the run was batchless).
    failed_lanes: np.ndarray | None = None

    def signal(self, name: str) -> np.ndarray:
        try:
            return self.signals[name]
        except KeyError:
            raise KeyError(
                f"'{name}' was not recorded; available: "
                f"{sorted(self.signals)}") from None

    def waveset(self) -> WaveformSet:
        """Recorded signals as a :class:`WaveformSet` (batchless runs)."""
        for v in self.signals.values():
            if v.ndim != 1:
                raise ValueError(
                    "waveset() is only available for batchless runs; "
                    "use .signal(name) for batched data")
        return WaveformSet(self.t, self.signals)


def _record_indices(compiled: CompiledCircuit,
                    record: list[str] | None) -> dict[str, int]:
    if record is None:
        return dict(compiled.node_index)
    out: dict[str, int] = {}
    for name in record:
        if name.startswith("i:"):
            out[name] = compiled.branch(name[2:])
        else:
            out[name] = compiled.idx(name)
            if out[name] == compiled.n:
                raise ValueError(f"cannot record ground node '{name}'")
    return out


class _LaneGuard:
    """Tracks and quarantines failed lanes of a batched Newton solve.

    A failed lane keeps its last accepted state during the rest of the
    run (so its residuals stay finite and its Jacobian rows are replaced
    by identity) and is NaN-ed out of the recorded signals at the end.
    """

    def __init__(self, batch_shape: tuple[int, ...], n: int):
        self.failed = np.zeros(batch_shape, dtype=bool)
        self.n = n

    @property
    def any(self) -> bool:
        return bool(self.failed.any())

    def scrub_rhs(self, rhs: np.ndarray) -> None:
        if self.any:
            rhs[self.failed] = 0.0

    def patch_jac(self, jac: np.ndarray) -> None:
        if self.any:
            jac[self.failed] = np.eye(self.n)

    def quarantine(self, mask: np.ndarray, x_pad: np.ndarray,
                   x_prev: np.ndarray) -> None:
        """Mark *mask* lanes failed and roll them back to ``x_prev``."""
        mask = mask & ~self.failed
        if mask.any():
            self.failed |= mask
            x_pad[mask] = x_prev[mask]

    def absorb_bad_delta(self, delta: np.ndarray, x_pad: np.ndarray,
                         x_prev: np.ndarray) -> None:
        """Quarantine lanes whose update is non-finite; zero their delta."""
        bad = ~np.all(np.isfinite(delta), axis=-1)
        if bad.any():
            self.quarantine(bad, x_pad, x_prev)
            delta[self.failed] = 0.0

    def worst(self, delta: np.ndarray) -> float:
        """Batch-max update norm over the healthy lanes."""
        per_lane = np.max(np.abs(delta), axis=-1)
        if self.any:
            per_lane = np.where(self.failed, 0.0, per_lane)
        return float(np.max(per_lane))


def _solve_isolated(solve, jac_builder, rhs: np.ndarray,
                    guard: _LaneGuard | None, t_k: float,
                    circuit_name: str) -> np.ndarray:
    """Run *solve* (rhs -> delta), isolating singular lanes on failure."""
    try:
        return solve(rhs)
    except np.linalg.LinAlgError as exc:
        if guard is None:
            raise SingularMatrixError(
                f"singular transient Jacobian at t={t_k:.4e} on "
                f"'{circuit_name}'") from exc
        jac = jac_builder()
        if mark_singular_lanes(jac, guard.failed) == 0:
            raise SingularMatrixError(
                f"singular transient Jacobian at t={t_k:.4e} on "
                f"'{circuit_name}' (no offending lane found)") from exc
        guard.patch_jac(jac)
        guard.scrub_rhs(rhs)
        return solve(rhs)


def transient(compiled: CompiledCircuit, t_stop: float, dt: float,
              state: ParamState | None = None,
              x0_pad: np.ndarray | None = None,
              t_start: float = 0.0,
              options: TransientOptions | None = None,
              batch_shape: tuple[int, ...] = ()) -> TransientResult:
    """Integrate the circuit from *t_start* to *t_stop* with step *dt*.

    Starting point, in order of precedence: *x0_pad* (padded state, e.g.
    the final state of a previous run), the circuit's ``ic`` dictionary
    (SPICE ``uic`` style, missing nodes start at 0), or - when no ICs are
    set at all - the DC operating point at *t_start*.

    Linear systems are solved by ``compiled.backend``; see
    :mod:`repro.linalg` for backend selection and the factorization
    reuse policy.

    Raises
    ------
    ConvergenceError
        When a Newton solve fails at some time step (unless the failure
        is confined to isolated lanes, see
        :attr:`TransientOptions.isolate_lanes`).
    """
    opts = options or TransientOptions()
    state = state or compiled.nominal
    if state.batched:
        batch_shape = state.batch_shape

    n = compiled.n
    n_steps = int(round((t_stop - t_start) / dt))
    if n_steps < 1:
        raise ValueError("t_stop must exceed t_start by at least one step")
    t_grid = t_start + dt * np.arange(n_steps + 1)

    if x0_pad is not None:
        x_pad = np.broadcast_to(
            x0_pad, batch_shape + (n + 1,)).copy()
        first_step_be = False
    elif compiled.circuit.ic:
        x_pad = compiled.initial_padded(batch_shape)
        first_step_be = True
    else:
        dc = dc_operating_point(compiled, state, t=t_start,
                                batch_shape=batch_shape)
        x_pad = compiled.pad(dc.x)
        first_step_be = False

    rec = _record_indices(compiled, opts.record)
    kept = range(0, n_steps + 1, opts.stride)
    n_kept = len(kept)
    sig_store = {name: np.empty((n_kept,) + batch_shape)
                 for name in rec}
    states = (np.empty((n_steps + 1, n)) if opts.record_states else None)
    if states is not None and batch_shape:
        raise ValueError("record_states requires a batchless run")

    theta_trap = np.append(compiled.theta_rows(state, opts.method), 1.0)
    theta_be = np.ones(compiled.n + 1)

    reuse = compiled.backend.policy.reuse
    cache = (FactorizationCache(compiled.backend,
                                jac_constant=not compiled.has_nonlinear)
             if reuse else None)
    guard = (_LaneGuard(batch_shape, n)
             if opts.isolate_lanes and batch_shape else None)

    # native-CSR path: batchless runs on a wants_csr backend assemble
    # straight onto the circuit's sparsity plan - residuals are CSR
    # mat-vecs and the dense (n+1)^2 buffers are never touched
    use_csr = (cache is not None and compiled.backend.wants_csr
               and not batch_shape)
    if use_csr:
        asm = compiled.csr_assembler(state)
        coh_data = asm.c_lin_data / dt
        g_pad = j_pad = c_over_h = None
        f_pad = np.zeros(n + 1)
    else:
        asm = coh_data = None
        _, g_pad, f_pad = compiled.buffers(batch_shape)
        j_pad = np.empty_like(g_pad)
        c_over_h = compiled.capacitance(state) / dt

    def store(k_idx: int, k: int) -> None:
        for name, idx in rec.items():
            sig_store[name][k_idx] = x_pad[..., idx]
        if states is not None:
            states[k] = x_pad[..., :n]

    kept_set = {k: i for i, k in enumerate(kept)}
    if 0 in kept_set:
        store(0, 0)

    # previous-step static residual, needed by trapezoidal
    if use_csr:
        asm.assemble(x_pad, float(t_grid[0]), f_pad, jacobian=False)
    else:
        compiled.assemble(state, x_pad, float(t_grid[0]), g_pad, f_pad,
                          jacobian=False)
    f_prev = f_pad.copy()
    x_prev = x_pad.copy()
    x_prev2 = x_pad.copy()      # one more step back, for the predictor

    last_theta: np.ndarray | None = None
    for k in range(1, n_steps + 1):
        t_k = float(t_grid[k])
        be_step = opts.method == "be" or (k == 1 and first_step_be)
        theta = theta_be if be_step else theta_trap
        if cache is not None:
            if theta is not last_theta:
                cache.invalidate()    # theta change => new step matrix
            if k >= 2:
                # linear extrapolation predictor: start Newton from
                # x_prev + (x_prev - x_prev2), cheap and second-order
                x_pad += x_prev
                x_pad -= x_prev2
                if guard is not None and guard.any:
                    x_pad[guard.failed] = x_prev[guard.failed]
            if use_csr:
                _newton_step_reuse_csr(compiled, asm, x_pad, x_prev,
                                       f_prev, t_k, theta, coh_data,
                                       f_pad, cache, opts.newton)
            else:
                _newton_step_reuse(compiled, state, x_pad, x_prev,
                                   f_prev, t_k, theta, c_over_h, g_pad,
                                   f_pad, cache, opts.newton, guard)
            # the reuse loop accepts with f_pad already assembled at the
            # accepted state - no refresh assembly needed
        else:
            _newton_step(compiled, state, x_pad, x_prev, f_prev, t_k,
                         theta, c_over_h, g_pad, f_pad, j_pad,
                         opts.newton, guard=guard)
            # refresh f_prev at the accepted point for the next trap
            # step (residual only - the Jacobian is rebuilt next step)
            compiled.assemble(state, x_pad, t_k, g_pad, f_pad,
                              jacobian=False)
        last_theta = theta
        np.copyto(f_prev, f_pad)
        np.copyto(x_prev2, x_prev)
        np.copyto(x_prev, x_pad)
        if k in kept_set:
            store(kept_set[k], k)
        elif states is not None:
            states[k] = x_pad[..., :n]

    failed = guard.failed if guard is not None else None
    x_final = x_pad.copy()
    if failed is not None and failed.any():
        for sig in sig_store.values():
            sig[:, failed] = np.nan
        x_final[failed] = np.nan
    return TransientResult(
        compiled=compiled, state=state, t=t_grid[::opts.stride][:n_kept],
        signals=sig_store, x_final_pad=x_final, states=states,
        failed_lanes=failed)


def _residual(x_pad, x_prev, f_pad, f_prev, theta, c_over_h):
    dx = x_pad - x_prev
    res = np.matmul(c_over_h, dx[..., None])[..., 0]
    res += theta * f_pad
    res += (1.0 - theta) * f_prev
    return res


def _newton_step(compiled: CompiledCircuit, state: ParamState,
                 x_pad: np.ndarray, x_prev: np.ndarray,
                 f_prev: np.ndarray, t_k: float, theta: np.ndarray,
                 c_over_h: np.ndarray, g_pad: np.ndarray,
                 f_pad: np.ndarray, j_pad: np.ndarray,
                 newton: NewtonOptions,
                 guard: _LaneGuard | None = None) -> None:
    """One implicit time step solved in place into ``x_pad``.

    Full Newton: the Jacobian is rebuilt and factored every iteration
    (the backend still provides the solver).  *theta* is the
    per-equation implicitness vector (padded length ``n+1``); see
    :meth:`CompiledCircuit.theta_rows`.
    """
    n = compiled.n
    backend = compiled.backend
    for _ in range(newton.max_iterations):
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        res = _residual(x_pad, x_prev, f_pad, f_prev, theta, c_over_h)
        np.multiply(g_pad, theta[..., :, None], out=j_pad)
        j_pad += c_over_h
        jac = j_pad[..., :n, :n]
        rhs = res[..., :n]
        if guard is not None:
            guard.patch_jac(jac)
            guard.scrub_rhs(rhs)
        delta = _solve_isolated(lambda b: backend.solve(jac, b),
                                lambda: jac, rhs, guard, t_k,
                                compiled.circuit.name)
        np.clip(delta, -newton.max_step, newton.max_step, out=delta)
        if guard is not None:
            guard.absorb_bad_delta(delta, x_pad, x_prev)
        x_pad[..., :n] -= delta
        worst = (guard.worst(delta) if guard is not None
                 else float(np.max(np.abs(delta))))
        if worst <= newton.vntol:
            return
    if guard is not None:
        guard.quarantine(np.max(np.abs(delta), axis=-1) > newton.vntol,
                         x_pad, x_prev)
        return
    raise ConvergenceError(
        f"transient Newton failed at t={t_k:.4e} on "
        f"'{compiled.circuit.name}'")


def _newton_step_reuse_csr(compiled: CompiledCircuit, asm, x_pad, x_prev,
                           f_prev, t_k: float, theta: np.ndarray,
                           coh_data, f_pad: np.ndarray,
                           cache: FactorizationCache,
                           newton: NewtonOptions) -> None:
    """One implicit time step on the native-CSR assembly path.

    Semantically identical to :func:`_newton_step_reuse` (modified
    Newton against the factorization cache, ``f_pad`` left at the last
    assembled iterate), but every residual is a CSR mat-vec over the
    circuit's sparsity plan and the step matrix is assembled by value
    scatter - no dense ``(n+1)^2`` buffer exists on this path.
    Batchless only (batched Monte-Carlo stacks keep the dense path),
    so no lane guard is threaded through.
    """
    n = compiled.n
    thn = theta[:n]
    one_minus = 1.0 - thn

    def jac():
        asm.assemble(x_pad, t_k, f_pad)
        return asm.step_matrix(theta, coh_data)

    cache.new_sequence()
    plan = asm.plan
    for _ in range(newton.max_iterations):
        asm.assemble(x_pad, t_k, f_pad, jacobian=False)
        rhs = plan.matvec(coh_data, x_pad[:n] - x_prev[:n])
        rhs += thn * f_pad[:n]
        rhs += one_minus * f_prev[:n]
        try:
            delta = cache.solve(rhs, jac)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular transient Jacobian at t={t_k:.4e} on "
                f"'{compiled.circuit.name}'") from exc
        delta.clip(-newton.max_step, newton.max_step, out=delta)
        x_pad[:n] -= delta
        if float(np.abs(delta).max()) <= newton.vntol:
            return
    raise ConvergenceError(
        f"transient Newton failed at t={t_k:.4e} on "
        f"'{compiled.circuit.name}'")


def _newton_step_reuse(compiled: CompiledCircuit, state: ParamState,
                       x_pad: np.ndarray, x_prev: np.ndarray,
                       f_prev: np.ndarray, t_k: float, theta: np.ndarray,
                       c_over_h: np.ndarray, g_pad: np.ndarray,
                       f_pad: np.ndarray, cache: FactorizationCache,
                       newton: NewtonOptions,
                       guard: _LaneGuard | None = None) -> None:
    """One implicit time step with modified-Newton factorization reuse.

    Differences from :func:`_newton_step`:

    * the step matrix is only materialised when the cache re-factors
      (policy in :mod:`repro.linalg`), every other iteration is a
      back-substitution against the cached factorization;
    * on acceptance ``f_pad`` is left at the last *assembled* iterate,
      which trails the accepted state by the final sub-``vntol``
      update.  The resulting ``f_prev`` error is O(G * vntol) - orders
      of magnitude below the Newton tolerance - and skipping the
      refresh assembly removes one full device evaluation per step,
      the single largest cost of batched Monte-Carlo transients.
    """
    n = compiled.n

    def jac() -> np.ndarray:
        # only called when the cache re-factors: one full assembly
        # (with device derivatives) at the current iterate
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        j = theta[:n, None] * g_pad[..., :n, :n] + c_over_h[..., :n, :n]
        if guard is not None:
            guard.patch_jac(j)
        return j

    cache.new_sequence()
    for _ in range(newton.max_iterations):
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad, jacobian=False)
        res = _residual(x_pad, x_prev, f_pad, f_prev, theta, c_over_h)
        rhs = res[..., :n]
        if guard is not None:
            guard.scrub_rhs(rhs)
        delta = _solve_isolated(lambda b: cache.solve(b, jac), jac, rhs,
                                guard, t_k, compiled.circuit.name)
        np.clip(delta, -newton.max_step, newton.max_step, out=delta)
        if guard is not None:
            guard.absorb_bad_delta(delta, x_pad, x_prev)
        x_pad[..., :n] -= delta
        worst = (guard.worst(delta) if guard is not None
                 else float(np.max(np.abs(delta))))
        if worst <= newton.vntol:
            return
    if guard is not None:
        guard.quarantine(np.max(np.abs(delta), axis=-1) > newton.vntol,
                         x_pad, x_prev)
        return
    raise ConvergenceError(
        f"transient Newton failed at t={t_k:.4e} on "
        f"'{compiled.circuit.name}'")
