"""Frequency-domain LPTV analysis (harmonic conversion matrices).

The ADS-style counterpart of the time-domain shooting engine in
:mod:`repro.analysis.lptv`.  Around a PSS orbit with fundamental ``f0``
the linearised circuit couples an input at offset ``f`` to outputs at all
sidebands ``k f0 + f``; expanding the periodic Jacobian ``G(t)`` in a
Fourier series and truncating at ``K`` harmonics yields the block
conversion matrix

.. math:: T_{km}(f) = \\hat G_{k-m}
          + j 2 \\pi (k f_0 + f)\\, C\\, \\delta_{km}

(``C`` is constant here because all charges are linear).  Solving
``T X = B`` gives the sideband responses; this is how RF simulators based
on harmonic balance compute PNOISE [13], [14], [17].

The engine is kept dense and is intended for small circuits and for
validating the shooting engine (the two must agree on smooth orbits);
the shooting engine remains the workhorse because it is exact on the
discretisation, free of Gibbs truncation error, and scales as
``O(N n^3)`` instead of ``O((n K)^3)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import TWO_PI
from ..errors import AnalysisError
from .mna import Injection, NoiseInjection
from .pss import PssResult


@dataclass
class SidebandResponse:
    """Complex response of every unknown at every kept sideband.

    ``x[k_index, :]`` is the phasor at frequency ``sidebands[k_index]*f0
    + f``.
    """

    sidebands: np.ndarray
    f_offset: float
    x: np.ndarray

    def at(self, sideband: int) -> np.ndarray:
        idx = np.nonzero(self.sidebands == sideband)[0]
        if idx.size == 0:
            raise AnalysisError(f"sideband {sideband} not in truncation")
        return self.x[idx[0]]


class HarmonicLptv:
    """Conversion-matrix LPTV operator built from a PSS orbit."""

    def __init__(self, pss_result: PssResult, n_harmonics: int = 16):
        self.pss = pss_result
        self.k = int(n_harmonics)
        self.compiled = pss_result.compiled
        n = self.compiled.n
        n_steps = pss_result.n_steps
        if 2 * self.k >= n_steps // 2:
            raise AnalysisError(
                "harmonic truncation too large for the orbit sampling "
                f"(K={self.k}, N={n_steps})")
        size = n * (2 * self.k + 1)
        if size > 6000:
            raise AnalysisError(
                f"conversion matrix would be {size}x{size}; the harmonic "
                "engine is meant for small circuits - use the shooting "
                "engine (repro.analysis.lptv) instead")

        # the orbit linearisation is built once per PSS result and
        # shared with shooting/LPTV (PssResult.linearization); this
        # engine is dense by nature and size-gated above, so the
        # sparse-engine linearisation densifies its per-step stack here
        lin = pss_result.linearization()
        # DFT of the periodic Jacobian, one period without the repeated
        # endpoint; g_hat[m] is the coefficient of exp(+j 2 pi m f0 t):
        # G_m = (1/N) sum_k G(t_k) exp(-j 2 pi m k / N), i.e. fft/N
        # (np.fft.ifft would produce the exp(-j...) convention instead).
        g_samples = lin.g_stack()[:-1]
        self._g_hat = np.fft.fft(g_samples, axis=0) / g_samples.shape[0]
        self._c = lin.c_dense()
        self._n_steps = n_steps
        self.sidebands = np.arange(-self.k, self.k + 1)

    def _g_coeff(self, m: int) -> np.ndarray:
        return self._g_hat[m % self._n_steps]

    def conversion_matrix(self, f_offset: float) -> np.ndarray:
        """Assemble ``T(f)`` for one offset frequency."""
        n = self.compiled.n
        nk = 2 * self.k + 1
        f0 = self.pss.f0
        t_mat = np.zeros((nk * n, nk * n), dtype=complex)
        for ki, k in enumerate(self.sidebands):
            for mi, m in enumerate(self.sidebands):
                blk = self._g_coeff(k - m).astype(complex)
                if ki == mi:
                    blk = blk + 1j * TWO_PI * (k * f0 + f_offset) * self._c
                t_mat[ki * n:(ki + 1) * n, mi * n:(mi + 1) * n] = blk
        return t_mat

    def _modulation_spectrum(self, b_t: np.ndarray) -> np.ndarray:
        """DFT coefficients (``exp(+j 2 pi m f0 t)`` convention) of a
        periodic modulation sampled on the orbit grid."""
        return np.fft.fft(b_t[:-1], axis=0) / (b_t.shape[0] - 1)

    def solve_injection(self, injection: Injection, f_offset: float,
                        t_lu: tuple | None = None,
                        harmonic_shift: int = 0) -> SidebandResponse:
        """Sideband response to ``delta p = exp(j 2 pi f t)`` through one
        pseudo-noise injection.

        ``harmonic_shift`` co-translates the source spectrum by
        ``k0 f0`` - the noise-folding path for sources with power at
        harmonic offsets.
        """
        n = self.compiled.n
        f0 = self.pss.f0
        di_hat = self._modulation_spectrum(injection.di_dp)
        dq_hat = (self._modulation_spectrum(injection.dq_dp)
                  if injection.dq_dp is not None else None)
        rhs = np.zeros(((2 * self.k + 1), n), dtype=complex)
        for ki, k in enumerate(self.sidebands):
            m = k - harmonic_shift
            blk = -di_hat[m % self._n_steps].astype(complex)
            if dq_hat is not None:
                blk = blk - (1j * TWO_PI * (k * f0 + f_offset)
                             * dq_hat[m % self._n_steps])
            rhs[ki] = blk
        x = self._solve(f_offset, rhs.reshape(-1), t_lu)
        return SidebandResponse(self.sidebands, f_offset,
                                x.reshape(2 * self.k + 1, n))

    def solve_noise_source(self, source: NoiseInjection, f_offset: float,
                           t_lu: tuple | None = None,
                           harmonic_shift: int = 0) -> SidebandResponse:
        """Sideband response to a unit-amplitude stimulus through one
        physical noise source's (cyclostationary) incidence."""
        n = self.compiled.n
        b_hat = self._modulation_spectrum(source.b)
        rhs = np.zeros(((2 * self.k + 1), n), dtype=complex)
        for ki, k in enumerate(self.sidebands):
            m = k - harmonic_shift
            rhs[ki] = b_hat[m % self._n_steps].astype(complex)
        x = self._solve(f_offset, rhs.reshape(-1), t_lu)
        return SidebandResponse(self.sidebands, f_offset,
                                x.reshape(2 * self.k + 1, n))

    def lu(self, f_offset: float):
        """Factor the conversion matrix once for reuse across sources."""
        from scipy.linalg import lu_factor
        return lu_factor(self.conversion_matrix(f_offset))

    def _solve(self, f_offset: float, rhs: np.ndarray,
               t_lu: tuple | None) -> np.ndarray:
        from scipy.linalg import lu_factor, lu_solve
        if t_lu is None:
            t_lu = lu_factor(self.conversion_matrix(f_offset))
        return lu_solve(t_lu, rhs)

    def time_domain_waveform(self, response: SidebandResponse,
                             node: str, neg: str | None = None
                             ) -> np.ndarray:
        """Reconstruct the quasi-DC (f->0) periodic response waveform on
        the orbit grid - comparable against the shooting engine's
        sensitivity waveforms."""
        c = self.compiled
        coeff = response.x[:, c.node_index[node]].copy()
        if neg is not None:
            coeff -= response.x[:, c.node_index[neg]]
        t = self.pss.t - self.pss.t[0]
        f0 = self.pss.f0
        wave = np.zeros(t.size, dtype=complex)
        for k, a in zip(self.sidebands, coeff):
            wave += a * np.exp(1j * TWO_PI * k * f0 * t)
        return wave.real
