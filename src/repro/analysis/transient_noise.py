"""Time-domain (transient) noise analysis - the paper's Fig. 5(a).

The paper contrasts two ways of simulating noise/pseudo-noise effects on
a transient response: brute-force *transient noise* integration [18],
which spends most of its effort on the settling phase, and the LPTV
analysis on the periodic steady state (Fig. 5(b)), which this package
implements as the primary engine.  This module provides the former, so
the cost/accuracy comparison can be reproduced
(``benchmarks/bench_ablation_engines.py``) and so physical-noise
ensembles can be sanity-checked (the kT/C test).

Method: every (white) noise source is sampled per time step as a
Gaussian current with variance ``S0 / (2 dt)`` (single-sided PSD folded
to the Nyquist band of the step), flicker sources are synthesised by
FFT spectral shaping, and the stochastic currents ride on a batched
transient - each ensemble member is one batch lane, so an M-run ensemble
costs one stacked integration.

Scope note: source modulations are evaluated on the *nominal* (noise-
free) trajectory, i.e. the analysis is exact for noise that is small
relative to the bias trajectory - the same small-signal regime the LPTV
analysis assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..circuit.elements import PsdShape
from .mna import CompiledCircuit, NoiseInjection, ParamState


@dataclass
class TransientNoiseResult:
    """Ensemble of noisy transients.

    ``signals[name]`` has shape ``(K+1, n_runs)``; :meth:`sigma_t` gives
    the ensemble standard deviation at every time point.
    """

    t: np.ndarray
    signals: dict[str, np.ndarray]
    n_runs: int

    def sigma_t(self, name: str) -> np.ndarray:
        return self.signals[name].std(axis=1, ddof=1)

    def mean_t(self, name: str) -> np.ndarray:
        return self.signals[name].mean(axis=1)

    def stationary_sigma(self, name: str,
                         settle_fraction: float = 0.5) -> float:
        """RMS of the ensemble deviation over the settled tail."""
        data = self.signals[name]
        k0 = int(settle_fraction * data.shape[0])
        dev = data[k0:] - data[k0:].mean(axis=1, keepdims=True)
        return float(np.sqrt(np.mean(dev ** 2)))


def _flicker_series(rng: np.random.Generator, n_steps: int, dt: float,
                    psd0: float, shape: tuple[int, ...]) -> np.ndarray:
    """Sample paths with single-sided PSD ``psd0 / f`` via FFT shaping."""
    freqs = np.fft.rfftfreq(n_steps, dt)
    mag = np.zeros_like(freqs)
    mag[1:] = np.sqrt(psd0 / freqs[1:] / (2.0 * dt * n_steps)) * n_steps
    phases = np.exp(2j * np.pi * rng.random((len(freqs),) + shape))
    spec = mag.reshape((-1,) + (1,) * len(shape)) * phases
    spec[0] = 0.0
    return np.fft.irfft(spec, n=n_steps, axis=0) * np.sqrt(2.0)


def transient_noise_analysis(compiled: CompiledCircuit, t_stop: float,
                             dt: float, n_runs: int,
                             record: list[str],
                             state: ParamState | None = None,
                             seed: int = 0,
                             injections: list[NoiseInjection] | None = None,
                             method: str = "trap"
                             ) -> TransientNoiseResult:
    """Monte-Carlo transient noise (paper Fig. 5(a), after [18]).

    Parameters
    ----------
    n_runs:
        Ensemble size; all runs integrate as one batched system.
    injections:
        Noise sources (default: the circuit's physical noise
        declarations, with modulations evaluated at the DC operating
        point).

    Returns
    -------
    TransientNoiseResult
    """
    state = state or compiled.nominal
    if state.batched:
        raise AnalysisError("transient noise builds its own batch")
    n_steps = int(round(t_stop / dt))
    rng = np.random.default_rng(seed)

    if injections is None:
        from .dcop import dc_operating_point
        dc = dc_operating_point(compiled, state)
        injections = compiled.noise_injections(state, dc.x[None, :])
    if not injections:
        raise AnalysisError("no noise sources to inject")

    # pre-sample the stochastic amplitude of every source at every step
    amp = np.zeros((n_steps + 1, len(injections), n_runs))
    for j, src in enumerate(injections):
        if src.shape is PsdShape.WHITE:
            sigma = np.sqrt(src.psd0 / (2.0 * dt))
            amp[:, j, :] = rng.normal(0.0, sigma, (n_steps + 1, n_runs))
        else:
            amp[1:, j, :] = _flicker_series(rng, n_steps, dt, src.psd0,
                                            (n_runs,))

    # incidence vectors (constant direction x DC modulation)
    b = np.stack([src.b[0] for src in injections], axis=0)   # (m, n)

    # wrap the noise into per-batch current sources by monkey-adding a
    # time-indexed injection to the source assembly: we reuse the
    # standard transient by registering a hook through ParamState's
    # source_values is not possible, so integrate manually here.
    from .dcop import NewtonOptions

    n = compiled.n
    batch = (n_runs,)
    x_pad = np.broadcast_to(compiled.initial_padded(()),
                            batch + (n + 1,)).copy()
    if not compiled.circuit.ic:
        from .dcop import dc_operating_point
        dc = dc_operating_point(compiled, state)
        x_pad = np.broadcast_to(compiled.pad(dc.x),
                                batch + (n + 1,)).copy()

    _, g_pad, f_pad = compiled.buffers(batch)
    j_pad = np.empty_like(g_pad)
    c_over_h = compiled.capacitance(state) / dt
    theta = np.append(compiled.theta_rows(state, method), 1.0)
    newton = NewtonOptions(max_step=1.0, max_iterations=50)

    rec_idx = {name: compiled.node_index[name] for name in record}
    store = {name: np.empty((n_steps + 1, n_runs)) for name in record}
    for name, idx in rec_idx.items():
        store[name][0] = x_pad[..., idx]

    def noise_rhs(k: int) -> np.ndarray:
        """Injected currents at step k: (n_runs, n+1), sign like f."""
        out = np.zeros(batch + (n + 1,))
        cur = amp[k]                       # (m, n_runs)
        out[..., :n] = np.einsum("mr,mn->rn", cur, b)
        return out

    compiled.assemble(state, x_pad, 0.0, g_pad, f_pad)
    f_prev = f_pad + noise_rhs(0)
    x_prev = x_pad.copy()

    for k in range(1, n_steps + 1):
        t_k = k * dt
        nk = noise_rhs(k)
        # Newton on the noisy residual: fold the injection into f via a
        # shifted previous residual and a post-assembly correction
        for _ in range(newton.max_iterations):
            compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
            f_pad += nk
            dx = x_pad - x_prev
            res = np.matmul(c_over_h, dx[..., None])[..., 0]
            res += theta * f_pad + (1.0 - theta) * f_prev
            np.multiply(g_pad, theta[..., :, None], out=j_pad)
            j_pad += c_over_h
            delta = np.linalg.solve(j_pad[..., :n, :n],
                                    res[..., :n, None])[..., 0]
            np.clip(delta, -newton.max_step, newton.max_step, out=delta)
            x_pad[..., :n] -= delta
            if float(np.max(np.abs(delta))) <= newton.vntol:
                break
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        f_prev = f_pad + nk
        np.copyto(x_prev, x_pad)
        for name, idx in rec_idx.items():
            store[name][k] = x_pad[..., idx]

    return TransientNoiseResult(t=dt * np.arange(n_steps + 1),
                                signals=store, n_runs=n_runs)
