"""Periodic steady-state (PSS) analysis.

The paper's method needs the circuit's periodic steady state before any
noise/sensitivity analysis can run (Section IV): the LPTV linearisation is
taken *around that orbit*.  Two engines are provided, mirroring practice
in RF simulators:

* ``shooting`` - Newton on the one-period map ``Phi(x0) - x0`` using the
  monodromy matrix assembled from the per-step integrator Jacobians
  (SpectreRF's approach, [16] in the paper).  For oscillators the period
  is an extra unknown closed by a phase-anchor condition.
* ``settle`` - brute-force integration until two consecutive periods
  agree.  Slower but useful as a robustness fallback and as an
  independent check of the shooting result.

A converged :class:`PssResult` stores the orbit on a uniform grid of
``n_steps`` points per period; everything downstream (LPTV sensitivities,
periodic noise, measurements) consumes that grid.

Matrix-free shooting and the dense fallback
-------------------------------------------
Shooting has two implementations behind one option
(:attr:`PssOptions.matrix_free`):

**Matrix-free / Krylov** (the default on ``wants_csr`` backends at or
above :data:`~repro.linalg.krylov.MATRIX_FREE_MIN_UNKNOWNS` unknowns).
The period is integrated through the native-CSR transient path (no
dense ``(n+1)^2`` buffer), the orbit linearisation is stored as
per-step CSR value arrays on the circuit's plan
(:class:`~repro.analysis.orbit.OrbitLinearization`,
O(n_steps * nnz)), and the Newton update solves ``(M - I) dx0 = -r``
(or the bordered oscillator system) by GMRES on the sweep operator
``v -> M v`` - the monodromy matrix is never formed.  This is what
makes 1k+-node PSS runnable at all; a stalled GMRES falls back to the
explicit monodromy with a warning.

**Dense** (small circuits, non-CSR backends, or ``matrix_free=False``).
The explicit monodromy is accumulated during integration and the update
solved directly - bit-identical to earlier releases.

The converged result shares its factored orbit linearisation through
:meth:`PssResult.linearization`, so LPTV sensitivities, the harmonic
noise engine and the monodromy utilities reuse one set of per-step
factorizations instead of each re-assembling the orbit.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError, ConvergenceError, MeasurementError
from ..linalg.krylov import GMRES_MAXITER, gmres_blocked, use_matrix_free
from ..waveform import Waveform, WaveformSet
from .dcop import NewtonOptions, dc_operating_point
from .mna import CompiledCircuit, ParamState
from .orbit import OrbitLinearization
from .transient import TransientOptions, _newton_step, transient


@dataclass
class PssOptions:
    """Knobs for :func:`pss` / :func:`pss_oscillator`."""

    n_steps: int = 400
    method: str = "trap"
    engine: str = "shooting"          # or "settle"
    settle_periods: int = 8           # pre-shooting settle length
    max_iterations: int = 40          # shooting Newton iterations
    tol: float = 1e-9                 # on max|x(T) - x(0)|
    settle_max_periods: int = 2000
    #: Force the matrix-free Krylov shooting engine (``True``) or the
    #: explicit dense monodromy engine (``False``); ``None`` selects by
    #: backend and circuit size (see the module docstring).
    matrix_free: bool | None = None
    #: Relative GMRES tolerance of the matrix-free shooting update.
    krylov_tol: float = 1e-11
    #: Run the pre-shooting settle phase on the adaptive LTE-controlled
    #: stepper instead of the fixed ``period / n_steps`` grid.  The
    #: settle inherits the transient breakpoint schedule
    #: (:func:`~repro.analysis.transient.source_breakpoints`), landing
    #: exactly on every clock edge instead of burning LTE rejections
    #: rediscovering them.  Only the *approach* to the orbit changes -
    #: the shooting iteration itself stays on the fixed grid and
    #: converges to the same steady state (within :attr:`tol`).
    settle_adaptive: bool = False
    #: Relative/absolute LTE targets of the adaptive settle phase.
    #: The defaults favour speed: the settle only needs to reach the
    #: orbit's basin of attraction - shooting Newton does the polishing.
    settle_rtol: float = 1e-3
    settle_atol: float = 1e-6
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(
        max_step=1.0, max_iterations=50))


def _validate(opts: PssOptions, period: "float | None") -> None:
    """Entry-point validation: clear errors instead of downstream shape
    errors (``n_steps=1`` breaks the predictor history, ``period<=0``
    produces empty/backwards grids)."""
    if opts.n_steps < 2:
        raise AnalysisError(
            f"PssOptions.n_steps must be >= 2, got {opts.n_steps}")
    if opts.max_iterations < 1:
        raise AnalysisError(
            "PssOptions.max_iterations must be >= 1, got "
            f"{opts.max_iterations}")
    if period is not None and not period > 0.0:
        raise AnalysisError(
            f"PSS period must be positive, got {period!r}")


@dataclass
class PssResult:
    """A converged periodic steady state.

    ``x`` holds ``n_steps + 1`` orbit samples (first and last nominally
    equal); ``t`` are the matching absolute times - absolute because the
    LPTV linearisation must evaluate time-dependent elements at the same
    source phase the orbit was computed with.
    """

    compiled: CompiledCircuit
    state: ParamState
    period: float
    t: np.ndarray
    x: np.ndarray
    method: str
    engine: str
    is_oscillator: bool = False
    anchor_index: int | None = None
    residual: float = 0.0
    #: Cached factored orbit linearisation (built once on first
    #: :meth:`linearization` call, shared by every periodic consumer).
    _lin: "OrbitLinearization | None" = field(
        default=None, repr=False, compare=False)

    @property
    def n_steps(self) -> int:
        return self.x.shape[0] - 1

    @property
    def f0(self) -> float:
        """Fundamental frequency [Hz]."""
        return 1.0 / self.period

    def linearization(self, matrix_free: "bool | None" = None
                      ) -> OrbitLinearization:
        """The factored LPTV operator along this orbit, built once.

        LPTV sensitivities, the harmonic/pnoise engines and the
        monodromy utilities all consume this shared object, so the
        orbit is linearised and its per-step ``A_k`` factored exactly
        once per PSS result.  *matrix_free* forces the sparse or dense
        engine (default: by backend and size); asking for the other
        engine than the cached one rebuilds and re-caches.
        """
        want = use_matrix_free(self.compiled.backend, self.compiled.n,
                               matrix_free)
        if self._lin is None or self._lin.sparse != want:
            self._lin = OrbitLinearization(
                self.compiled, self.state, self.x, self.t, self.period,
                self.method, matrix_free=want)
        return self._lin

    def clear_caches(self) -> "PssResult":
        """Drop the cached orbit linearisation (its per-step
        factorization list is the memory that matters); the orbit
        itself survives.  Returns ``self``."""
        if self._lin is not None:
            self._lin.clear_factors()
        self._lin = None
        return self

    def waveset(self) -> WaveformSet:
        signals = {name: self.x[:, i]
                   for name, i in self.compiled.node_index.items()}
        return WaveformSet(self.t, signals)

    def waveform(self, node: str) -> Waveform:
        return self.waveset()[node]

    def fundamental_amplitude(self, node: str) -> float:
        """Amplitude of the fundamental of *node*'s steady-state waveform
        (the carrier amplitude ``Ac`` in the paper's Eqs. 7-9)."""
        i = self.compiled.node_index[node]
        spectrum = np.fft.rfft(self.x[:-1, i]) / self.n_steps
        if spectrum.shape[0] < 2:
            raise AnalysisError("orbit too short for a fundamental")
        return float(2.0 * np.abs(spectrum[1]))


def integrate_period(compiled: CompiledCircuit, state: ParamState,
                     x0_pad: np.ndarray, t0: float, period: float,
                     n_steps: int, method: str,
                     newton: NewtonOptions,
                     want_monodromy: bool = False
                     ) -> tuple[np.ndarray, np.ndarray | None]:
    """Integrate exactly one period on a uniform grid (dense engine).

    Returns ``(orbit, monodromy)`` where *orbit* has shape
    ``(n_steps + 1, n)``; *monodromy* is ``dPhi/dx0`` or ``None``.

    The monodromy matrix is the product of the per-step linearised maps:
    for the theta scheme, ``A_k dx_k = B_k dx_{k-1}`` with
    ``A_k = C/h + theta G_k`` and ``B_k = C/h - (1-theta) G_{k-1}``.

    This is the *dense fallback* integrator: the explicit monodromy is
    structurally dense whatever the MNA sparsity, so it consumes the
    sparse-native parameter state through the dense escape hatch
    (:meth:`~repro.analysis.mna.ParamState.to_dense`).  Large circuits
    take the matrix-free path instead (:func:`_integrate_period_csr`),
    which never forms the monodromy.
    """
    n = compiled.n
    h = period / n_steps
    _, g_pad, f_pad = compiled.buffers(())
    j_pad = np.empty_like(g_pad)
    c_over_h = compiled.capacitance(state) / h

    orbit = np.empty((n_steps + 1, n))
    x_pad = x0_pad.copy()
    orbit[0] = x_pad[:-1]

    mono = np.eye(n) if want_monodromy else None
    theta = np.append(compiled.theta_rows(state, method), 1.0)
    th_n = theta[:n, None]

    compiled.assemble(state, x_pad, t0, g_pad, f_pad)
    f_prev = f_pad.copy()
    g_prev = g_pad.copy() if want_monodromy else None
    x_prev = x_pad.copy()

    for k in range(1, n_steps + 1):
        t_k = t0 + k * h
        _newton_step(compiled, state, x_pad, x_prev, f_prev, t_k, theta,
                     c_over_h, g_pad, f_pad, j_pad, newton)
        compiled.assemble(state, x_pad, t_k, g_pad, f_pad)
        if want_monodromy:
            a_k = c_over_h[:n, :n] + th_n * g_pad[:n, :n]
            b_k = c_over_h[:n, :n] - (1.0 - th_n) * g_prev[:n, :n]
            mono = compiled.backend.factor(a_k).solve(b_k @ mono)
            np.copyto(g_prev, g_pad)
        np.copyto(f_prev, f_pad)
        np.copyto(x_prev, x_pad)
        orbit[k] = x_pad[:-1]
    return orbit, mono


def _integrate_period_csr(compiled: CompiledCircuit, state: ParamState,
                          x0_pad: np.ndarray, t0: float, period: float,
                          n_steps: int, method: str,
                          newton: NewtonOptions) -> np.ndarray:
    """One period on the uniform grid through the transient stepper.

    The matrix-free engine's integrator: rides the backend seam of
    :func:`~repro.analysis.transient.transient` (native-CSR assembly
    and factorization reuse on ``wants_csr`` backends), so no dense
    ``(n+1)^2`` buffer exists during the integration.  Returns the
    ``(n_steps + 1, n)`` orbit; the linearisation is built separately
    from the stored states.
    """
    res = transient(
        compiled, t_stop=t0 + period, dt=period / n_steps, state=state,
        x0_pad=x0_pad, t_start=t0,
        options=TransientOptions(method=method, record=[],
                                 record_states=True, newton=newton))
    return res.states


def _shooting_linearization(compiled: CompiledCircuit, state: ParamState,
                            orbit: np.ndarray, t0: float, period: float,
                            method: str) -> OrbitLinearization:
    """Fresh sparse linearisation of the current shooting iterate.

    Built per Newton iteration by design: the transient stepper's
    modified-Newton loop does *not* hold an exact ``G`` at every
    accepted state (Jacobian assembly is skipped on reused
    factorizations), so the exact linearisation must re-assemble along
    the accepted orbit - and the per-step factors are taken at the
    *current* iterate, exactly as the dense engine re-factors its
    monodromy every iteration.
    """
    n_steps = orbit.shape[0] - 1
    t_grid = t0 + np.linspace(0.0, period, n_steps + 1)
    return OrbitLinearization(compiled, state, orbit, t_grid, period,
                              method, matrix_free=True)


def _krylov_or_dense(lin: OrbitLinearization, op, rhs: np.ndarray,
                     dense_solve, tol: float, circuit_name: str
                     ) -> np.ndarray:
    """Solve a shooting update by GMRES; fall back to the explicit
    monodromy (with a warning) if it stalls."""
    upd, _, ok = gmres_blocked(op, rhs, tol=tol, maxiter=GMRES_MAXITER)
    if ok:
        return upd
    warnings.warn(
        f"matrix-free shooting update on '{circuit_name}' did not "
        f"converge in {GMRES_MAXITER} GMRES iterations; falling back "
        "to the explicit monodromy solve", UserWarning, stacklevel=3)
    return dense_solve(lin.monodromy())


def _settle_start(compiled: CompiledCircuit, state: ParamState,
                  period: float, opts: PssOptions) -> np.ndarray:
    """Initial state after a few settling periods (padded)."""
    if compiled.circuit.ic:
        x_pad = compiled.initial_padded()
    else:
        dc = dc_operating_point(compiled, state, t=0.0)
        x_pad = compiled.pad(dc.x)
    if opts.settle_periods > 0:
        if opts.settle_adaptive:
            topts = TransientOptions(
                method=opts.method, record=[], newton=opts.newton,
                adaptive=True, rtol=opts.settle_rtol,
                atol=opts.settle_atol)
        else:
            topts = TransientOptions(method=opts.method, record=[],
                                     newton=opts.newton)
        res = transient(
            compiled, t_stop=opts.settle_periods * period,
            dt=period / opts.n_steps, state=state, x0_pad=x_pad,
            options=topts)
        x_pad = res.x_final_pad
    return x_pad


def pss(compiled: CompiledCircuit, period: float,
        state: ParamState | None = None,
        options: PssOptions | None = None) -> PssResult:
    """PSS of a *driven* circuit with known fundamental *period*.

    The testbench must be periodic with this period (all source periods
    dividing it); see the paper's Section IV examples for how to build
    such testbenches.
    """
    opts = options or PssOptions()
    _validate(opts, period)
    state = state or compiled.nominal
    if state.batched:
        raise AnalysisError("PSS analyses are batchless")
    mf = use_matrix_free(compiled.backend, compiled.n, opts.matrix_free)
    x_pad = _settle_start(compiled, state, period, opts)
    t0 = opts.settle_periods * period

    if opts.engine == "settle":
        return _pss_settle(compiled, state, period, x_pad, t0, opts, mf)

    scale = 1.0
    orbit = None
    for it in range(opts.max_iterations):
        if mf:
            orbit = _integrate_period_csr(
                compiled, state, x_pad, t0, period, opts.n_steps,
                opts.method, opts.newton)
            mono = None
        else:
            orbit, mono = integrate_period(
                compiled, state, x_pad, t0, period, opts.n_steps,
                opts.method, opts.newton, want_monodromy=True)
        res = orbit[-1] - orbit[0]
        scale = max(float(np.max(np.abs(orbit))), 1.0)
        worst = float(np.max(np.abs(res)))
        if worst <= opts.tol * scale:
            return PssResult(compiled, state, period,
                             t0 + np.linspace(0.0, period,
                                              opts.n_steps + 1),
                             orbit, opts.method, "shooting",
                             residual=worst)
        if mf:
            lin = _shooting_linearization(compiled, state, orbit, t0,
                                          period, opts.method)
            delta = _krylov_or_dense(
                lin, lambda v: lin.apply_monodromy(v) - v, -res,
                lambda mono: np.linalg.solve(
                    mono - np.eye(compiled.n), -res),
                opts.krylov_tol, compiled.circuit.name)
        else:
            # explicit dense update (small circuits, bit-identical to
            # the pre-Krylov engine)
            delta = np.linalg.solve(mono - np.eye(compiled.n), -res)
        x_pad[:-1] = orbit[0] + delta
    raise ConvergenceError(
        f"shooting PSS did not converge on '{compiled.circuit.name}' "
        f"after {opts.max_iterations} iterations "
        f"(residual {worst:.3e}, scale {scale:.3e})",
        iterations=opts.max_iterations, residual=float(worst),
        theta_fingerprint=state.theta_fingerprint())


def _pss_settle(compiled: CompiledCircuit, state: ParamState,
                period: float, x_pad: np.ndarray, t0: float,
                opts: PssOptions, mf: bool = False) -> PssResult:
    if opts.settle_max_periods < 1:
        raise AnalysisError(
            "PssOptions.settle_max_periods must be >= 1 for the settle "
            f"engine, got {opts.settle_max_periods}")
    prev = x_pad[:-1].copy()
    orbit = None
    for p in range(opts.settle_max_periods):
        if mf:
            orbit = _integrate_period_csr(
                compiled, state, x_pad, t0 + p * period, period,
                opts.n_steps, opts.method, opts.newton)
        else:
            orbit, _ = integrate_period(
                compiled, state, x_pad, t0 + p * period, period,
                opts.n_steps, opts.method, opts.newton)
        x_pad[:-1] = orbit[-1]
        worst = float(np.max(np.abs(orbit[-1] - prev)))
        scale = max(float(np.max(np.abs(orbit))), 1.0)
        if worst <= max(opts.tol * scale * 10.0, 1e-12):
            return PssResult(
                compiled, state, period,
                t0 + p * period + np.linspace(0.0, period,
                                              opts.n_steps + 1),
                orbit, opts.method, "settle", residual=worst)
        prev = orbit[-1].copy()
    raise ConvergenceError(
        f"settle PSS did not reach steady state on "
        f"'{compiled.circuit.name}' within {opts.settle_max_periods} "
        f"periods (residual {worst:.3e})",
        iterations=opts.settle_max_periods, residual=float(worst),
        theta_fingerprint=state.theta_fingerprint())


def pss_oscillator(compiled: CompiledCircuit, anchor: str,
                   t_settle: float, dt_settle: float,
                   state: ParamState | None = None,
                   options: PssOptions | None = None,
                   period_guess: float | None = None) -> PssResult:
    """PSS of an autonomous oscillator; the period is an unknown.

    Parameters
    ----------
    anchor:
        Node used for the phase condition (its ``t=0`` value is pinned) and
        for the initial period estimate.  Pick a swinging node.
    t_settle, dt_settle:
        Free-running transient used to reach the limit cycle and estimate
        the period from threshold crossings.
    period_guess:
        Skip the crossing-based estimate and use this guess instead
        (the settling transient still runs).
    """
    opts = options or PssOptions()
    _validate(opts, period_guess)
    state = state or compiled.nominal
    if state.batched:
        raise AnalysisError("PSS analyses are batchless")
    mf = use_matrix_free(compiled.backend, compiled.n, opts.matrix_free)

    settle = transient(
        compiled, t_stop=t_settle, dt=dt_settle, state=state,
        options=TransientOptions(method=opts.method, record=[anchor],
                                 newton=opts.newton))
    wave = Waveform(settle.t, settle.signal(anchor), anchor)
    if period_guess is None:
        try:
            mid_level = 0.5 * (wave.min() + wave.max())
            n_cross = len(wave.crossings(mid_level, "rise"))
            period = wave.period(skip=max(2, n_cross // 2))
        except MeasurementError as exc:
            raise AnalysisError(
                f"could not estimate the oscillation period from node "
                f"'{anchor}': {exc}") from exc
    else:
        period = period_guess

    # march to the next rising mid-level crossing so the anchor starts on
    # a steep part of the waveform (well-conditioned phase condition)
    mid = 0.5 * (wave.min() + wave.max())
    x_pad = settle.x_final_pad.copy()
    a_idx = compiled.node_index[anchor]
    t_cur = float(settle.t[-1])
    x_pad, t_cur = _advance_to_crossing(compiled, state, x_pad, t_cur,
                                        dt_settle, mid, a_idx, period,
                                        opts, anchor)

    n = compiled.n
    t0 = t_cur
    worst = np.inf
    for it in range(opts.max_iterations):
        if mf:
            orbit = _integrate_period_csr(
                compiled, state, x_pad, t0, period, opts.n_steps,
                opts.method, opts.newton)
            mono = None
        else:
            orbit, mono = integrate_period(
                compiled, state, x_pad, t0, period, opts.n_steps,
                opts.method, opts.newton, want_monodromy=True)
        res = orbit[-1] - orbit[0]
        scale = max(float(np.max(np.abs(orbit))), 1.0)
        worst = float(np.max(np.abs(res)))
        if worst <= opts.tol * scale:
            return PssResult(compiled, state, period,
                             t0 + np.linspace(0.0, period,
                                              opts.n_steps + 1),
                             orbit, opts.method, "shooting",
                             is_oscillator=True, anchor_index=a_idx,
                             residual=worst)
        h = period / opts.n_steps
        xdot_t = (orbit[-1] - orbit[-2]) / h
        rhs = np.concatenate([-res, [0.0]])
        if mf:
            lin = _shooting_linearization(compiled, state, orbit, t0,
                                          period, opts.method)
            # the period column is scaled by h (the unknown becomes
            # dT/h, a per-step voltage-sized quantity): the raw
            # bordered system mixes O(1) voltages with O(1/h) slopes
            # and its conditioning defeats GMRES
            xdh = xdot_t * h
            op = lin.bordered_op(xdh, a_idx)

            def dense_solve(mono: np.ndarray) -> np.ndarray:
                jac = _bordered_jacobian(mono, xdh, a_idx)
                return np.linalg.solve(jac, rhs)

            upd = _krylov_or_dense(lin, op, rhs, dense_solve,
                                   opts.krylov_tol,
                                   compiled.circuit.name)
            upd[n] *= h            # unscale dT/h -> dT
        else:
            jac = _bordered_jacobian(mono, xdot_t, a_idx)
            upd = np.linalg.solve(jac, rhs)
        dT = float(np.clip(upd[n], -0.2 * period, 0.2 * period))
        x_pad[:-1] = orbit[0] + upd[:n]
        period += dT
        if period <= 0.0:
            raise ConvergenceError("oscillator shooting drove T <= 0")
    raise ConvergenceError(
        f"oscillator shooting did not converge on "
        f"'{compiled.circuit.name}' after {opts.max_iterations} "
        f"iterations (residual {worst:.3e})",
        iterations=opts.max_iterations, residual=float(worst),
        theta_fingerprint=state.theta_fingerprint())


def _bordered_jacobian(mono: np.ndarray, xdot_t: np.ndarray,
                       a_idx: int) -> np.ndarray:
    """Oscillator shooting Jacobian: ``M - I`` bordered by the period
    column and the phase-anchor row."""
    n = mono.shape[0]
    jac = np.zeros((n + 1, n + 1))
    jac[:n, :n] = mono - np.eye(n)
    jac[:n, n] = xdot_t
    jac[n, a_idx] = 1.0
    return jac


def _advance_to_crossing(compiled, state, x_pad, t_cur, dt, level, a_idx,
                         period, opts: PssOptions, anchor: str = "?"):
    """Integrate until the anchor crosses *level* rising (max 2 periods)."""
    # a whole number of steps: the ~2.2-period horizon is a heuristic,
    # so round it up rather than have the integrator snap (and warn
    # about) a shortened final step on every oscillator PSS
    n_adv = max(1, int(np.ceil(2.2 * period / dt - 1e-9)))
    res = transient(compiled, t_stop=t_cur + n_adv * dt, dt=dt,
                    state=state, x0_pad=x_pad, t_start=t_cur,
                    options=TransientOptions(method=opts.method, record=[],
                                             newton=opts.newton,
                                             record_states=True))
    v = res.states[:, a_idx]
    for k in range(1, v.shape[0]):
        if v[k - 1] < level <= v[k] and v[k] > v[k - 1]:
            x_new = compiled.pad(res.states[k])
            return x_new, float(res.t[k])
    warnings.warn(
        f"no rising crossing of anchor node '{anchor}' through "
        f"{level:.4g} within ~2.2 estimated periods; falling back to "
        "the final settling state.  A non-swinging (or mis-chosen) "
        "phase anchor is the usual cause of oscillator shooting "
        "divergence - pick a node that oscillates, or pass a better "
        "period_guess", UserWarning, stacklevel=3)
    return res.x_final_pad, float(res.t[-1])
