"""Stationary (time-invariant) noise analysis - SPICE ``.NOISE``.

Solves the adjoint system once per frequency and sums
``|H_i(f)|^2 S_i(f)`` over all physical noise sources, with a per-source
breakdown.  Two roles in this package:

* baseline for the cyclostationary analysis (the LPTV engines must reduce
  to this when the steady state is DC), and
* the DC-match analysis of [8]/[9] is literally this computation with
  pseudo-noise sources at 1 Hz - see :func:`repro.core.dc_mismatch_analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import TWO_PI
from ..errors import AnalysisError
from .ac import _linearize_at_dc
from .dcop import DcResult, dc_operating_point
from .mna import CompiledCircuit, NoiseInjection, ParamState


@dataclass
class NoiseResult:
    """Output noise PSD over frequency with per-source contributions.

    ``psd`` is the total output PSD [V^2/Hz]; ``contributions`` maps
    source keys to their PSD share at each frequency.
    """

    compiled: CompiledCircuit
    freqs: np.ndarray
    psd: np.ndarray
    contributions: dict[tuple[str, str], np.ndarray]

    def total_rms(self) -> float:
        """Integrated RMS noise over the analysed band [V]."""
        return float(np.sqrt(np.trapezoid(self.psd, self.freqs)))

    def summary(self, at_freq: float | None = None, top: int = 10) -> str:
        idx = (0 if at_freq is None
               else int(np.argmin(np.abs(self.freqs - at_freq))))
        f = self.freqs[idx]
        rows = sorted(self.contributions.items(),
                      key=lambda kv: kv[1][idx], reverse=True)
        lines = [f"output noise at {f:.4g} Hz: "
                 f"{self.psd[idx]:.4e} V^2/Hz"]
        for key, vals in rows[:top]:
            share = vals[idx] / max(self.psd[idx], 1e-300)
            lines.append(f"  {key[0]}.{key[1]:<10s} {vals[idx]:.4e}  "
                         f"{share:6.1%}")
        return "\n".join(lines)


def noise_analysis(compiled: CompiledCircuit, output: str,
                   freqs: np.ndarray,
                   output_neg: str | None = None,
                   state: ParamState | None = None,
                   dc: DcResult | None = None,
                   injections: list[NoiseInjection] | None = None
                   ) -> NoiseResult:
    """Stationary output-referred noise of the circuit at its DC point.

    Parameters
    ----------
    output, output_neg:
        Observed (differential) node.
    injections:
        Noise sources to include; defaults to every physical noise
        declaration in the circuit.
    """
    state = state or compiled.nominal
    if state.batched:
        raise AnalysisError("noise analysis is batchless")
    freqs = np.atleast_1d(np.asarray(freqs, dtype=float))
    dc = dc or dc_operating_point(compiled, state)
    g, c = _linearize_at_dc(compiled, state, dc)
    n = compiled.n

    if injections is None:
        injections = compiled.noise_injections(state, dc.x[None, :])
    if not injections:
        raise AnalysisError("circuit declares no noise sources")

    c_vec = np.zeros(n)
    c_vec[compiled.node_index[output]] = 1.0
    if output_neg is not None:
        c_vec[compiled.node_index[output_neg]] -= 1.0

    psd = np.zeros(freqs.size)
    contributions = {inj.decl.key: np.zeros(freqs.size)
                     for inj in injections}
    for i, f in enumerate(freqs):
        a = g + 1j * TWO_PI * f * c
        # adjoint: one solve gives the transfer from every injection row
        lam = np.linalg.solve(a.T, c_vec.astype(complex))
        for inj in injections:
            h = lam @ inj.b[0]
            val = (abs(h) ** 2) * inj.psd(f)
            contributions[inj.decl.key][i] = val
            psd[i] += val
    return NoiseResult(compiled=compiled, freqs=freqs, psd=psd,
                       contributions=contributions)
