"""Compiled modified-nodal-analysis (MNA) system.

:func:`compile_circuit` turns a :class:`~repro.circuit.Circuit` into a
:class:`CompiledCircuit` that evaluates residuals and Jacobians for every
analysis.  Three design decisions shape this module:

**Unknowns and padding.**  The MNA unknown vector is
``x = [node voltages..., branch currents...]`` with ground eliminated.
Internally every gather/scatter runs against *padded* arrays with one extra
"ground slot" at index ``n``: reads from it give 0 V, writes to it are
discarded.  This removes all special-casing of grounded terminals from the
hot loops.

**Batching.**  Every evaluation accepts an optional leading batch axis on
``x``; device parameters may carry per-batch deltas.  A 1000-point
Monte-Carlo run therefore assembles and solves stacked ``(1000, n, n)``
systems with no Python-level per-sample loop, which keeps the paper's MC
baseline (Table II) honest.

**Linear/nonlinear split.**  All linear elements (R, C, L, sources,
controlled sources) are stamped once per parameter set into constant
conductance/capacitance templates; only MOSFETs and behavioral
transconductors are re-evaluated per Newton iteration.  All charges in the
bundled element set are linear (``q = C x``), so the reactive matrix is
constant throughout a run - transient steps and LPTV analyses exploit
this.

**Compile-time stamp plans.**  Every element family is lowered to flat
COO index/value arrays at construction (:mod:`repro.analysis.stamps`),
so template building and the per-iteration source/MOSFET/VCCS stamping
are vectorised gathers plus ``np.add.at`` scatters - no per-element
Python loops in any hot path.  On a ``wants_csr`` backend, batchless
runs go further and assemble natively on the circuit's sparsity
pattern (:class:`CsrAssembler`), never materialising a dense
``(n+1)^2`` buffer.

**Sparse-native parameter states.**  :meth:`CompiledCircuit.make_state`
builds the linear G/C templates as value arrays over the circuit's
:class:`~repro.linalg.sparsity.CsrPlan` pattern - O(nnz) memory per
state instead of O(n^2), which is what bounds netlist size when the
paper's method builds one linearized system per mismatch parameter.
Dense-path consumers (batched Monte-Carlo stacks, AC/LPTV/PSS) densify
lazily and explicitly through :meth:`ParamState.to_dense`; the native
CSR path consumes the sparse form directly and a 10k-node ladder state
never touches an ``(n+1)^2`` array.

The compiled circuit also builds the paper's central objects: for every
:class:`~repro.circuit.MismatchDecl` an equivalent *pseudo-noise injection*
(the exact parameter derivative ``di/dp`` and ``dq/dp`` evaluated along an
orbit - Section III of the paper), and for every physical noise source its
(cyclostationary) modulation waveform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.controlled import Vccs, Vcvs
from ..circuit.elements import (MismatchDecl, NoiseDecl, ParamKey,
                                PsdShape)
from ..circuit.mosfet import Mosfet, ekv_ids
from ..circuit.netlist import GROUND_NAMES, Circuit
from ..circuit.passives import Capacitor, Inductor, Resistor
from ..circuit.sources import CurrentSource, VoltageSource
from ..constants import BOLTZMANN, CMIN_DEFAULT, T_NOMINAL
from ..errors import NetlistError
from ..linalg import LinearSolverBackend, resolve_backend
from ..linalg.sparsity import CsrPlan
from .stamps import LinearStampPlan, NlVccsPlan, SourcePlan

Deltas = dict[ParamKey, "float | np.ndarray"]

#: Upper bound on cached per-batch-shape scatter-index columns
#: (:meth:`CompiledCircuit._bidx`): enough for steady Monte-Carlo
#: chunking (one full-size + one remainder shape) with slack for nested
#: sweeps, small enough that varying chunk shapes cannot grow memory
#: without bound.
_BIDX_CACHE_MAX = 8


# ---------------------------------------------------------------------------
# parameter state
# ---------------------------------------------------------------------------
@dataclass
class ParamState:
    """Effective parameter values for one run (nominal + deltas).

    The linear G/C templates are *sparse-native*: ``g_data``/``c_data``
    are value arrays over the circuit's fixed
    :class:`~repro.linalg.sparsity.CsrPlan` pattern (length
    ``nnz + 1`` - the extra trash slot absorbed ground stamps during
    construction and stays zero), with a leading batch axis when any
    linear-element delta is batched.  State construction therefore
    costs O(nnz) memory, which is what bounds netlist size when one
    linearized system per mismatch parameter is needed; nothing of
    shape ``(n+1)^2`` exists until a dense-path consumer explicitly
    calls the :meth:`to_dense` escape hatch.

    ``mos``, ``vccs`` hold per-group effective parameter arrays.
    ``source_values`` maps source names to overriding values (scalar or
    per-batch array) - used for example by the comparator bisection lanes.
    Overrides are consumed into a cached static source vector on the
    first assembly, so treat ``source_values`` as frozen once the state
    has been used; to sweep a source value, build a new state per value
    (or one batched state, as :func:`~repro.analysis.dcop.dc_sweep`
    does).
    """

    batch_shape: tuple[int, ...]
    #: Linear conductance template values over :attr:`plan`
    #: (``(*tbatch, nnz + 1)``; ``tbatch`` is empty unless a linear
    #: delta is batched).
    g_data: np.ndarray
    #: Linear capacitance template values over :attr:`plan`.
    c_data: np.ndarray
    #: The circuit's fixed sparsity pattern the templates live on.
    plan: CsrPlan = field(repr=False, compare=False)
    #: Padded system width ``n + 1`` (for :meth:`to_dense`).
    n1: int = 0
    mos: dict[str, np.ndarray] = field(default_factory=dict)
    vccs_gm: np.ndarray = field(default_factory=lambda: np.zeros(0))
    source_values: dict[str, "float | np.ndarray"] = field(
        default_factory=dict)
    #: Cached static (DC) source vector - see
    #: :class:`~repro.analysis.stamps.SourcePlan`.
    src_static: "np.ndarray | None" = field(
        default=None, repr=False, compare=False)
    #: Cached combined source vector ``(t, vector)`` for the last
    #: evaluated time point.
    src_cache: "tuple[float, np.ndarray] | None" = field(
        default=None, repr=False, compare=False)
    #: Lazily densified ``(g_lin, c_lin)`` pair (:meth:`to_dense`).
    _dense: "tuple[np.ndarray, np.ndarray] | None" = field(
        default=None, repr=False, compare=False)

    @property
    def batched(self) -> bool:
        return len(self.batch_shape) > 0

    def to_dense(self) -> tuple[np.ndarray, np.ndarray]:
        """Densify the linear templates - the explicit O(n^2) escape
        hatch for dense-path consumers.

        Returns the padded ``(g_lin, c_lin)`` pair of shape
        ``(*tbatch, n+1, n+1)`` (``tbatch`` non-empty only when a
        linear delta is batched).  Built lazily on first call and
        cached: the batched Monte-Carlo assembly densifies once per
        chunk, AC/LPTV/PSS once per analysis, and sparse-backend runs
        never call it at all.
        """
        if self._dense is None:
            plan, n1 = self.plan, self.n1
            tbatch = self.g_data.shape[:-1]
            g = np.zeros(tbatch + (n1, n1))
            c = np.zeros(tbatch + (n1, n1))
            g[..., plan.rows, plan.cols] = self.g_data[..., :plan.nnz]
            c[..., plan.rows, plan.cols] = self.c_data[..., :plan.nnz]
            self._dense = (g, c)
        return self._dense

    def clear_caches(self) -> "ParamState":
        """Drop the derived per-state caches (densified templates and
        source vectors); the sparse templates themselves survive.
        Returns ``self``."""
        self._dense = None
        self.src_static = None
        self.src_cache = None
        return self

    def theta_fingerprint(self) -> str:
        """Content hash of the effective parameter values ("theta").

        Identifies *which* parameter sample a state holds - attached to
        solver failures (:class:`~repro.errors.SolverError`) so a
        failure harvested from a worker process still names the exact
        sample set that diverged.  Derived arrays and caches are
        excluded: two states with equal parameters hash equally.
        """
        import hashlib
        h = hashlib.sha256()
        h.update(repr(self.batch_shape).encode())
        h.update(np.ascontiguousarray(self.g_data, dtype=float))
        h.update(np.ascontiguousarray(self.c_data, dtype=float))
        for name in sorted(self.mos):
            h.update(name.encode())
            h.update(np.ascontiguousarray(self.mos[name], dtype=float))
        h.update(np.ascontiguousarray(self.vccs_gm, dtype=float))
        for name in sorted(self.source_values):
            h.update(name.encode())
            h.update(np.ascontiguousarray(
                np.asarray(self.source_values[name], dtype=float)))
        return h.hexdigest()[:16]


def _delta_for(deltas: Deltas | None, key: ParamKey):
    if not deltas:
        return 0.0
    return deltas.get(key, 0.0)


def _broadcast_dev(nominal: np.ndarray, delta_list: list,
                   batch: tuple[int, ...]) -> np.ndarray:
    """Combine per-device nominals with (possibly batched) deltas.

    Returns shape ``(ndev,)`` when nothing is batched, else
    ``(*batch, ndev)``.
    """
    if not any(np.ndim(d) > 0 for d in delta_list) and not batch:
        return nominal + np.asarray(delta_list, dtype=float)
    out = np.broadcast_to(nominal, batch + nominal.shape).copy()
    for i, d in enumerate(delta_list):
        out[..., i] = nominal[i] + np.asarray(d, dtype=float)
    return out


# ---------------------------------------------------------------------------
# injections (the paper's pseudo-noise sources / noise modulations)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Injection:
    """Equivalent pseudo-noise injection of one mismatch parameter.

    For a parameter deviation ``delta p`` the circuit equations change by
    ``d/dt (dq_dp * delta p) + di_dp * delta p``; these arrays are the
    derivatives evaluated along the orbit the injection was built for.

    Attributes
    ----------
    decl:
        The mismatch declaration this injection realises.
    di_dp:
        Resistive injection, shape ``(N, n)`` (orbit samples x unknowns).
    dq_dp:
        Reactive injection, same shape, or ``None`` when absent.
    """

    decl: MismatchDecl
    di_dp: np.ndarray
    dq_dp: np.ndarray | None = None

    @property
    def key(self) -> ParamKey:
        return self.decl.key

    @property
    def sigma(self) -> float:
        return self.decl.sigma


@dataclass(frozen=True)
class NoiseInjection:
    """One physical noise source along an orbit.

    The output PSD contribution of this source through a transfer vector
    ``H`` is ``|H . b|^2 * psd0 * shape(f)`` where ``shape(f)`` is 1 for
    white sources and ``1/f`` for flicker sources.  ``b`` already contains
    the cyclostationary modulation (e.g. ``sqrt(gm(t))`` for MOS thermal
    noise).
    """

    decl: NoiseDecl
    b: np.ndarray
    psd0: float

    @property
    def shape(self) -> PsdShape:
        return self.decl.shape

    def psd(self, f: float) -> float:
        if self.decl.shape is PsdShape.FLICKER:
            return self.psd0 / f
        return self.psd0


# ---------------------------------------------------------------------------
# compiled circuit
# ---------------------------------------------------------------------------
class CompiledCircuit:
    """Numerical twin of a :class:`Circuit`.  Build via
    :func:`compile_circuit`."""

    def __init__(self, circuit: Circuit, cmin: float = CMIN_DEFAULT,
                 backend: "str | LinearSolverBackend | None" = None):
        circuit.validate()
        self.circuit = circuit
        self.cmin = cmin

        self.node_names: list[str] = circuit.nodes()
        self.node_index: dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)}
        self.n_nodes = len(self.node_names)

        # branch unknowns, in element order
        self.branch_index: dict[str, int] = {}
        nxt = self.n_nodes
        for el in circuit:
            if el.n_branch:
                self.branch_index[el.name] = nxt
                nxt += el.n_branch
        self.n = nxt                     #: system size
        self._ground = self.n            # padded ground slot

        # element partitions
        self.resistors = [e for e in circuit if isinstance(e, Resistor)]
        self.capacitors = [e for e in circuit if isinstance(e, Capacitor)]
        self.inductors = [e for e in circuit if isinstance(e, Inductor)]
        self.vsources = [e for e in circuit if isinstance(e, VoltageSource)]
        self.isources = [e for e in circuit if isinstance(e, CurrentSource)]
        self.vcvs = [e for e in circuit if isinstance(e, Vcvs)]
        all_vccs = [e for e in circuit if isinstance(e, Vccs)]
        self.linear_vccs = [e for e in all_vccs if e.is_linear]
        self.nl_vccs = [e for e in all_vccs if not e.is_linear]
        self.mosfets = [e for e in circuit if isinstance(e, Mosfet)]

        known = (set(map(id, self.resistors)) | set(map(id, self.capacitors))
                 | set(map(id, self.inductors)) | set(map(id, self.vsources))
                 | set(map(id, self.isources)) | set(map(id, self.vcvs))
                 | set(map(id, all_vccs)) | set(map(id, self.mosfets)))
        for el in circuit:
            if id(el) not in known:
                raise NetlistError(
                    f"element '{el.name}' of type {type(el).__name__} is not "
                    "supported by the MNA compiler")

        self._index_mosfets()

        # compile-time stamp plans (see :mod:`repro.analysis.stamps`):
        # every hot assembly loop below is a gather/scatter over these
        self._lin_plan = LinearStampPlan(self)
        self._src_plan = SourcePlan(self)
        self._nlv_plan = NlVccsPlan(self, self.nl_vccs)
        #: per-batch-shape flat scatter index columns (satellite of the
        #: stamp-plan work: rebuilt once per shape, not per assemble)
        self._bidx_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._csr_plan: "CsrPlan | None" = None
        self._mos_gpos: "np.ndarray | None" = None
        self._nlv_gpos: "np.ndarray | None" = None

        self._nominal_state: ParamState | None = None
        self._cache_key: str | None = None
        #: Linear-solver backend used by every analysis on this circuit
        #: (see :mod:`repro.linalg`); change it with :meth:`set_backend`.
        self.backend = resolve_backend(backend, self.n)

    def set_backend(self, backend: "str | LinearSolverBackend | None"
                    ) -> "CompiledCircuit":
        """Switch the linear-solver backend in place; returns ``self``."""
        self.backend = resolve_backend(backend, self.n)
        return self

    # ------------------------------------------------------------------
    # indexing helpers
    # ------------------------------------------------------------------
    def idx(self, node: str) -> int:
        """Padded index of *node* (ground maps to the discard slot)."""
        if node in GROUND_NAMES:
            return self._ground
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node '{node}'") from None

    def branch(self, element_name: str) -> int:
        return self.branch_index[element_name]

    def voltage(self, x: np.ndarray, node: str) -> np.ndarray:
        """Node voltage from an unknown vector (any batch shape)."""
        i = self.idx(node)
        if i == self._ground:
            return np.zeros(np.shape(x)[:-1])
        return np.asarray(x)[..., i]

    def _index_mosfets(self) -> None:
        m = self.mosfets
        self._mos_idx = np.array(
            [[self.idx(e.d), self.idx(e.g), self.idx(e.s), self.idx(e.b)]
             for e in m], dtype=int).reshape(len(m), 4)
        self._mos_sign = np.array([e.sign for e in m])
        self._mos_vt0 = np.array([e.params.vt0 for e in m])
        self._mos_beta = np.array([e.beta for e in m])
        self._mos_n = np.array([e.params.n for e in m])
        self._mos_lam = np.array([e.lam_eff for e in m])
        if m:
            # flattened (row, col) pairs for the 8 Jacobian stamps and the
            # 2 residual stamps of each device, padded system of width n+1
            d, g, s, b = (self._mos_idx[:, k] for k in range(4))
            rows = np.concatenate([d, d, d, d, s, s, s, s])
            cols = np.concatenate([d, g, s, b, d, g, s, b])
            self._mos_gflat = rows * (self.n + 1) + cols
            self._mos_frows = np.concatenate([d, s])

    def _bidx(self, batch: tuple[int, ...]) -> np.ndarray:
        """Flattened-batch scatter index column for ``np.add.at``.

        Cached per batch shape: Monte-Carlo chunks of a common size
        reuse one index array instead of rebuilding it per assemble.
        The cache is LRU-bounded (:data:`_BIDX_CACHE_MAX` shapes), so a
        long sweep over *varying* chunk shapes recycles slots instead
        of growing memory monotonically.
        """
        cache = self._bidx_cache
        b = cache.get(batch)
        if b is None:
            b = np.arange(int(np.prod(batch))).reshape(batch)[..., None]
            cache[batch] = b
            if len(cache) > _BIDX_CACHE_MAX:
                cache.pop(next(iter(cache)))
        else:
            # refresh recency (dicts preserve insertion order)
            cache.pop(batch)
            cache[batch] = b
        return b

    # ------------------------------------------------------------------
    # content-addressed identity
    # ------------------------------------------------------------------
    @property
    def cache_key(self) -> str:
        """Stable content hash of this compile (SHA-256 hex digest).

        Combines :meth:`Circuit.fingerprint` with the compile options
        that change the numerical system (``cmin``) and a format-version
        tag covering the stamp-plan layout.  Two independently compiled
        circuits with equal netlist content produce equal keys, which is
        what lets :class:`repro.service.AnalysisSession` share one
        compile between requests.  The linear-solver backend is *not*
        part of the key (it is a mutable execution strategy, not
        content); session caches append the backend spec themselves.
        """
        if self._cache_key is None:
            from ..circuit.netlist import content_digest
            self._cache_key = content_digest(
                "compiled-circuit-v1", self.circuit.fingerprint(),
                float(self.cmin))
        return self._cache_key

    def state_key(self, deltas: "Deltas | None" = None,
                  source_values: "dict[str, float | np.ndarray] | None"
                  = None,
                  batch_shape: tuple[int, ...] | None = None) -> str:
        """Content hash of the :class:`ParamState` that
        :meth:`make_state` would build from the same arguments.

        Derived from :attr:`cache_key`, so it is stable across processes
        and compiles of equal circuits.  Delta dictionaries hash
        order-independently; array-valued deltas and source overrides
        hash by value.
        """
        from ..circuit.netlist import content_digest
        return content_digest(
            "param-state-v1", self.cache_key,
            {k: v for k, v in (deltas or {}).items()},
            dict(source_values or {}),
            tuple(int(s) for s in (batch_shape or ())))

    def clear_caches(self) -> "CompiledCircuit":
        """Drop every derived cache this circuit accumulated.

        Releases the per-batch-shape scatter-index cache, the cached
        nominal parameter state (with its densified templates and
        source vectors) and the VCCS gate-value cache.  The structural
        compile products (stamp plans, the CSR sparsity plan) are
        *not* caches - they are size-bounded per circuit and rebuilding
        them would only cost time - so they survive.  Returns ``self``.
        """
        self._bidx_cache.clear()
        if self._nominal_state is not None:
            self._nominal_state.clear_caches()
        self._nominal_state = None
        self._nlv_plan.clear_cache()
        return self

    # ------------------------------------------------------------------
    # parameter state construction
    # ------------------------------------------------------------------
    def make_state(self, deltas: Deltas | None = None,
                   source_values: dict[str, "float | np.ndarray"]
                   | None = None,
                   batch_shape: tuple[int, ...] | None = None) -> ParamState:
        """Build the effective parameters for a run.

        Parameters
        ----------
        deltas:
            ``{(element, param): delta}``; values may be scalars or arrays
            of a common batch shape (one delta per Monte-Carlo sample).
        source_values:
            Overrides for source values by element name (scalar or batched).
        batch_shape:
            Forces the batch shape when no delta implies one.
        """
        deltas = deltas or {}
        source_values = dict(source_values or {})
        inferred: tuple[int, ...] = tuple(batch_shape or ())
        for v in list(deltas.values()) + list(source_values.values()):
            if np.ndim(v) > 0:
                shape = np.shape(v)
                if inferred not in ((), shape):
                    raise ValueError("inconsistent batch shapes in deltas")
                inferred = shape

        lin_batched = any(
            np.ndim(deltas.get((e.name, p), 0.0)) > 0
            for e, p in self._linear_param_iter())
        tshape = inferred if lin_batched else ()
        # sparse-native templates: O(nnz) value arrays on the circuit's
        # CSR pattern - no dense (n+1)^2 array is built here (dense
        # consumers go through ParamState.to_dense explicitly)
        g_data, c_data = self._lin_plan.build_data(
            deltas, tshape, self._bidx(tshape) if tshape else None,
            self.csr_plan)

        mos = {}
        if self.mosfets:
            mos["vt0"] = _broadcast_dev(
                self._mos_vt0,
                [_delta_for(deltas, (e.name, "vt0")) for e in self.mosfets],
                inferred)
            rel = _broadcast_dev(
                np.zeros(len(self.mosfets)),
                [_delta_for(deltas, (e.name, "beta_rel"))
                 for e in self.mosfets], inferred)
            mos["beta"] = self._mos_beta * (1.0 + rel)

        vccs_gm = np.array([e.gm for e in self.nl_vccs])
        return ParamState(batch_shape=inferred, g_data=g_data,
                          c_data=c_data, plan=self.csr_plan,
                          n1=self.n + 1, mos=mos, vccs_gm=vccs_gm,
                          source_values=source_values)

    @property
    def has_nonlinear(self) -> bool:
        """True when the Jacobian ``G`` depends on the state ``x``
        (MOSFETs or behavioral transconductors present)."""
        return bool(self.mosfets or self.nl_vccs)

    @property
    def nominal(self) -> ParamState:
        """Cached parameter state with no deltas."""
        if self._nominal_state is None:
            self._nominal_state = self.make_state()
        return self._nominal_state

    def _linear_param_iter(self):
        for e in self.resistors:
            yield e, "r"
        for e in self.capacitors:
            yield e, "c"
        for e in self.inductors:
            yield e, "l"

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def capacitance(self, state: ParamState) -> np.ndarray:
        """Constant (padded) capacitance matrix ``dq/dx`` for this state.

        Dense escape hatch (:meth:`ParamState.to_dense`): used by the
        dense integrator paths and the AC/LPTV/PSS engines, which are
        O(n^2) by nature; sparse-backend transients use
        :attr:`CsrAssembler.c_lin_data` instead and never densify.
        """
        return state.to_dense()[1]

    def assemble(self, state: ParamState, x_pad: np.ndarray, t: float,
                 g_pad: np.ndarray, f_pad: np.ndarray,
                 source_scale: float = 1.0, gmin: float = 0.0,
                 jacobian: bool = True) -> None:
        """Evaluate ``f = i(x, t)`` and ``G = di/dx`` into padded buffers.

        ``x_pad`` has shape ``(*batch, n+1)`` with the last entry 0;
        ``g_pad``/``f_pad`` are overwritten.  *source_scale* multiplies all
        independent sources (source-stepping homotopy) and *gmin* adds a
        conductance from every node to ground (gmin-stepping).

        With ``jacobian=False`` only the residual ``f`` is evaluated
        and ``g_pad`` is left untouched - modified-Newton iterations on
        a cached factorization (:mod:`repro.linalg`) skip the device
        derivative evaluation and Jacobian scatter entirely, which is
        most of the assembly cost.
        """
        batch = f_pad.shape[:-1]
        # dense-path consumers densify the sparse template once per
        # state (cached escape hatch); the CSR path never lands here
        g_lin = state.to_dense()[0]
        if jacobian:
            np.copyto(g_pad, g_lin)
            if gmin > 0.0:
                diag = np.einsum("...ii->...i", g_pad)
                diag[..., :self.n_nodes] += gmin
            np.matmul(g_pad, x_pad[..., None], out=f_pad[..., None])
        else:
            np.matmul(g_lin, x_pad[..., None], out=f_pad[..., None])
            if gmin > 0.0:
                f_pad[..., :self.n_nodes] += gmin * x_pad[..., :self.n_nodes]
        self._add_sources(state, t, f_pad, source_scale)
        gflat = (g_pad.reshape(batch + ((self.n + 1) ** 2,))
                 if jacobian else None)
        if self.mosfets:
            self._add_mosfets(state, x_pad, f_pad, jacobian,
                              gflat, self._mos_gflat, batch)
        if self.nl_vccs:
            self._add_nl_vccs(state, x_pad, t, f_pad, jacobian,
                              gflat, self._nlv_plan.g_idx, batch)
        f_pad[..., self._ground] = 0.0

    def _add_sources(self, state: ParamState, t: float, f_pad: np.ndarray,
                     source_scale: float = 1.0) -> None:
        """Add the (cached) combined source vector - no per-element loop;
        see :class:`~repro.analysis.stamps.SourcePlan`."""
        if self._src_plan.empty:
            return
        vec = self._src_plan.combined(state, t)
        if source_scale == 1.0:
            f_pad += vec
        else:
            f_pad += source_scale * vec

    def _mos_eval(self, state: ParamState, x_pad: np.ndarray,
                  derivatives: bool = True):
        """Vectorised EKV evaluation over all devices (and batch)."""
        idx = self._mos_idx
        sgn = self._mos_sign
        vd = sgn * x_pad[..., idx[:, 0]]
        vg = sgn * x_pad[..., idx[:, 1]]
        vs = sgn * x_pad[..., idx[:, 2]]
        vb = sgn * x_pad[..., idx[:, 3]]
        return ekv_ids(vd, vg, vs, vb, state.mos["vt0"], state.mos["beta"],
                       self._mos_n, self._mos_lam, derivatives=derivatives)

    def _add_mosfets(self, state: ParamState, x_pad: np.ndarray,
                     f_pad: np.ndarray, jacobian: bool,
                     gflat: "np.ndarray | None", gidx: np.ndarray,
                     batch: tuple[int, ...]) -> None:
        """Scatter all MOSFET stamps at once.

        *gflat* is the flat Jacobian target: the reshaped dense padded
        buffer (with *gidx* the precomputed flat positions) or a CSR
        data array (with *gidx* the plan-mapped slots).
        """
        ev = self._mos_eval(state, x_pad, derivatives=jacobian)
        ids_phys = self._mos_sign * ev.ids

        fvals = np.concatenate(
            np.broadcast_arrays(ids_phys, -ids_phys), axis=-1)
        if batch:
            bidx = self._bidx(batch)
            np.add.at(f_pad, (bidx, self._mos_frows), fvals)
        else:
            np.add.at(f_pad, self._mos_frows, fvals)
        if not jacobian:
            return

        gvals = np.concatenate(np.broadcast_arrays(
            ev.g_d, ev.g_g, ev.g_s, ev.g_b,
            -ev.g_d, -ev.g_g, -ev.g_s, -ev.g_b), axis=-1)
        if batch:
            np.add.at(gflat, (bidx, gidx), gvals)
        else:
            np.add.at(gflat, gidx, gvals)

    def _add_nl_vccs(self, state: ParamState, x_pad: np.ndarray, t: float,
                     f_pad: np.ndarray, jacobian: bool,
                     gflat: "np.ndarray | None", gidx: np.ndarray,
                     batch: tuple[int, ...]) -> None:
        """Scatter all behavioral-VCCS stamps at once (see
        :class:`~repro.analysis.stamps.NlVccsPlan` for the vectorised
        gate/limiter evaluation); *gflat*/*gidx* as in
        :meth:`_add_mosfets`."""
        plan = self._nlv_plan
        vc = x_pad[..., plan.cp] - x_pad[..., plan.cn]
        phi, dphi = plan.phi(vc)
        gg = plan.gate_values(t) * state.vccs_gm
        cur = gg * phi
        fvals = np.concatenate(np.broadcast_arrays(cur, -cur), axis=-1)
        if batch:
            bidx = self._bidx(batch)
            np.add.at(f_pad, (bidx, plan.f_idx), fvals)
        else:
            np.add.at(f_pad, plan.f_idx, fvals)
        if not jacobian:
            return
        gd = gg * dphi
        gvals = np.concatenate(
            np.broadcast_arrays(gd, -gd, -gd, gd), axis=-1)
        if batch:
            np.add.at(gflat, (bidx, gidx), gvals)
        else:
            np.add.at(gflat, gidx, gvals)

    # ------------------------------------------------------------------
    # operating-point quantities and injections
    # ------------------------------------------------------------------
    def mosfet_op(self, state: ParamState, x_pad: np.ndarray
                  ) -> dict[str, np.ndarray]:
        """Per-device operating-point arrays along an orbit.

        ``x_pad`` may be ``(N, n+1)`` (orbit) or ``(n+1,)``; returns
        ``ids`` (signed physical drain current) and ``gm`` with matching
        leading shape x device axis.
        """
        if not self.mosfets:
            return {"ids": np.zeros(0), "gm": np.zeros(0)}
        ev = self._mos_eval(state, x_pad)
        return {"ids": self._mos_sign * ev.ids, "gm": ev.gm,
                "ids_frame": ev.ids}

    def mismatch_injections(self, state: ParamState, x_orbit: np.ndarray,
                            decls: Sequence[MismatchDecl] | None = None
                            ) -> list[Injection]:
        """Build the pseudo-noise injection of every mismatch parameter.

        Parameters
        ----------
        x_orbit:
            Unpadded orbit samples, shape ``(N, n)`` (one row also works
            for DC analyses: pass shape ``(1, n)``).
        decls:
            Restrict to these declarations (default: all in the circuit).

        Returns
        -------
        list of :class:`Injection` in declaration order.
        """
        x_orbit = np.atleast_2d(np.asarray(x_orbit, dtype=float))
        n_t = x_orbit.shape[0]
        x_pad = np.concatenate(
            [x_orbit, np.zeros((n_t, 1))], axis=-1)
        if decls is None:
            decls = self.circuit.mismatch_decls()

        mos_by_name = {e.name: i for i, e in enumerate(self.mosfets)}
        mos_op = self.mosfet_op(state, x_pad) if self.mosfets else None

        out: list[Injection] = []
        for decl in decls:
            ename, pname = decl.key
            el = self.circuit[ename]
            di = np.zeros((n_t, self.n))
            dq = None
            if isinstance(el, Mosfet):
                k = mos_by_name[ename]
                d, s = self.idx(el.d), self.idx(el.s)
                if pname == "vt0":
                    coeff = -el.sign * mos_op["gm"][:, k]
                elif pname == "beta_rel":
                    coeff = mos_op["ids"][:, k]
                else:
                    raise NetlistError(
                        f"unknown mosfet mismatch param '{pname}'")
                self._accum(di, d, coeff)
                self._accum(di, s, -coeff)
            elif isinstance(el, Resistor) and pname == "r":
                p, q = self.idx(el.pos), self.idx(el.neg)
                v_pn = self._v_of(x_pad, p) - self._v_of(x_pad, q)
                coeff = -v_pn / (el.r * el.r)
                self._accum(di, p, coeff)
                self._accum(di, q, -coeff)
            elif isinstance(el, Capacitor) and pname == "c":
                p, q = self.idx(el.pos), self.idx(el.neg)
                v_pn = self._v_of(x_pad, p) - self._v_of(x_pad, q)
                dq = np.zeros((n_t, self.n))
                self._accum(dq, p, v_pn)
                self._accum(dq, q, -v_pn)
            elif isinstance(el, Inductor) and pname == "l":
                br = self.branch(ename)
                dq = np.zeros((n_t, self.n))
                dq[:, br] = x_orbit[:, br]
            else:
                raise NetlistError(
                    f"no pseudo-noise mapping for {decl.key}")
            out.append(Injection(decl=decl, di_dp=di, dq_dp=dq))
        return out

    def noise_injections(self, state: ParamState, x_orbit: np.ndarray
                         ) -> list[NoiseInjection]:
        """Physical (thermal/flicker) noise injections along an orbit."""
        x_orbit = np.atleast_2d(np.asarray(x_orbit, dtype=float))
        n_t = x_orbit.shape[0]
        x_pad = np.concatenate([x_orbit, np.zeros((n_t, 1))], axis=-1)
        mos_by_name = {e.name: i for i, e in enumerate(self.mosfets)}
        mos_op = self.mosfet_op(state, x_pad) if self.mosfets else None

        out: list[NoiseInjection] = []
        for decl in self.circuit.noise_decls():
            ename, sname = decl.key
            el = self.circuit[ename]
            b = np.zeros((n_t, self.n))
            if isinstance(el, Resistor) and sname == "thermal":
                p, q = self.idx(el.pos), self.idx(el.neg)
                self._accum(b, p, np.ones(n_t))
                self._accum(b, q, -np.ones(n_t))
                psd0 = 4.0 * BOLTZMANN * T_NOMINAL / el.r
            elif isinstance(el, Mosfet):
                k = mos_by_name[ename]
                gm = np.maximum(mos_op["gm"][:, k], 0.0)
                d, s = self.idx(el.d), self.idx(el.s)
                if sname == "thermal":
                    mod = np.sqrt(gm)
                    psd0 = el.thermal_psd_coeff
                elif sname == "flicker":
                    mod = gm
                    psd0 = el.flicker_coeff
                else:
                    raise NetlistError(f"unknown noise source {decl.key}")
                self._accum(b, d, mod)
                self._accum(b, s, -mod)
            else:
                raise NetlistError(f"unknown noise source {decl.key}")
            out.append(NoiseInjection(decl=decl, b=b, psd0=psd0))
        return out

    def _v_of(self, x_pad: np.ndarray, idx: int) -> np.ndarray:
        return x_pad[..., idx]

    def _accum(self, arr: np.ndarray, idx: int, vals: np.ndarray) -> None:
        if idx != self._ground:
            arr[:, idx] += vals

    def theta_rows(self, state: ParamState, method: str) -> np.ndarray:
        """Per-equation implicitness ``theta`` for the one-step scheme.

        Trapezoidal averaging of equations that carry no real dynamics
        creates parasitic alternating error modes (one-period multiplier
        ``(-1)^N``), which make the shooting matrix ``M - I`` exactly
        singular for even step counts and pollute branch currents with
        +/- zigzag.  Those equations are therefore *collocated*
        (``theta = 1``, i.e. enforced at the step endpoint):

        * rows with no physical charge term (voltage-source/VCVS
          constraint rows and KCL of purely resistive nodes) - these are
          instantaneous constraints, so collocation is exact, and
        * KCL rows that contain an *algebraic branch current* (the
          current through a voltage source or VCVS has no defining
          charge equation of its own; collocating the KCL that computes
          it removes its zigzag mode without touching any differential
          variable).

        The artificial ``cmin`` node capacitors are excluded from the
        "physical charge" test - they exist for DAE-index safety, not as
        dynamics worth trapezoidal treatment.
        """
        n = self.n
        if method == "be":
            return np.ones(n)
        # sparse-native: the row/column occupancy tests run over the
        # O(nnz) template values on the pattern - no densified matrix
        plan = state.plan
        nnz = plan.nnz
        c_data = state.c_data
        if c_data.ndim > 1:
            c_data = c_data[(0,) * (c_data.ndim - 1)]
        c_vals = c_data[:nnz]
        if self.cmin > 0.0:
            c_vals = c_vals.copy()
            c_vals[plan.diag_pos[:self.n_nodes]] -= self.cmin
        c_nz = np.abs(c_vals) > 1e-30
        differential_row = np.zeros(n, dtype=bool)
        differential_row[plan.rows[c_nz]] = True
        charge_col = np.zeros(n, dtype=bool)
        charge_col[plan.cols[c_nz]] = True
        branch_cols = np.arange(self.n_nodes, n)
        bad_branch = branch_cols[~charge_col[branch_cols]]
        g_data = state.g_data
        if g_data.ndim > 1:
            g_data = g_data[(0,) * (g_data.ndim - 1)]
        touches_bad = np.zeros(n, dtype=bool)
        if bad_branch.size:
            is_bad_col = np.zeros(n, dtype=bool)
            is_bad_col[bad_branch] = True
            g_nz = (np.abs(g_data[:nnz]) > 0.0) & is_bad_col[plan.cols]
            touches_bad[plan.rows[g_nz]] = True
        collocate = (~differential_row) | touches_bad
        return np.where(collocate, 1.0, 0.5)

    # ------------------------------------------------------------------
    # native CSR assembly
    # ------------------------------------------------------------------
    @property
    def csr_plan(self) -> CsrPlan:
        """Fixed sparsity pattern of this circuit's MNA system.

        Built lazily on first use - every :meth:`make_state` needs it
        (sparse-native templates live on this pattern) - from the
        union of every stamp-plan COO entry - linear G and C stamps,
        MOSFET Jacobian stamps, behavioral-VCCS Jacobian stamps - plus
        the full main diagonal (gmin stepping, pivot safety).
        """
        if self._csr_plan is None:
            g_idx, c_idx = self._lin_plan.coo_indices()
            entries = [g_idx, c_idx]
            if self.mosfets:
                entries.append(self._mos_gflat)
            if self.nl_vccs:
                entries.append(self._nlv_plan.g_idx)
            plan = CsrPlan(self.n, self.n + 1, np.concatenate(entries))
            self._csr_plan = plan
            if self.mosfets:
                self._mos_gpos = plan.pos_of(self._mos_gflat)
            if self.nl_vccs:
                self._nlv_gpos = plan.pos_of(self._nlv_plan.g_idx)
        return self._csr_plan

    def csr_assembler(self, state: ParamState) -> "CsrAssembler":
        """Native-CSR assembly workspace for a batchless run on
        *state* (see :class:`CsrAssembler`)."""
        return CsrAssembler(self, state)

    def orbit_csr_jacobians(self, state: ParamState, x_orbit: np.ndarray,
                            t_orbit: np.ndarray) -> np.ndarray:
        """Jacobian value arrays ``G(t_k)`` along an orbit, on the plan.

        Returns ``(N, nnz)`` - one CSR value row per orbit sample, the
        sparse-native equivalent of the dense ``(N, n, n)`` stack the
        periodic engines used to build.  This is the O(n_steps * nnz)
        storage of the orbit linearisation
        (:class:`~repro.analysis.orbit.OrbitLinearization`); nothing of
        shape ``(n, n)`` is materialised.

        ``x_orbit`` is unpadded ``(N, n)``; ``t_orbit`` the matching
        absolute times (time-dependent elements must be evaluated at
        the same source phase the orbit was computed with).
        """
        x_orbit = np.asarray(x_orbit, dtype=float)
        asm = self.csr_assembler(state)
        nnz = asm.plan.nnz
        out = np.empty((x_orbit.shape[0], nnz))
        f_pad = np.zeros(self.n + 1)
        x_pad = np.zeros(self.n + 1)
        for k in range(x_orbit.shape[0]):
            x_pad[:self.n] = x_orbit[k]
            asm.assemble(x_pad, float(t_orbit[k]), f_pad)
            out[k] = asm.g_data[:nnz]
        return out

    # ------------------------------------------------------------------
    # buffers
    # ------------------------------------------------------------------
    def buffers(self, batch_shape: tuple[int, ...] = ()
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Allocate padded ``(x_pad, g_pad, f_pad)`` work buffers."""
        n1 = self.n + 1
        x_pad = np.zeros(batch_shape + (n1,))
        g_pad = np.zeros(batch_shape + (n1, n1))
        f_pad = np.zeros(batch_shape + (n1,))
        return x_pad, g_pad, f_pad

    def pad(self, x: np.ndarray) -> np.ndarray:
        """Append the ground slot to an unpadded vector."""
        x = np.asarray(x, dtype=float)
        return np.concatenate([x, np.zeros(x.shape[:-1] + (1,))], axis=-1)

    def initial_padded(self, batch_shape: tuple[int, ...] = ()
                       ) -> np.ndarray:
        """Padded start vector honouring the circuit's ``ic`` entries."""
        x_pad = np.zeros(batch_shape + (self.n + 1,))
        for node, v in self.circuit.ic.items():
            i = self.idx(node)
            if i != self._ground:
                x_pad[..., i] = v
        return x_pad

    def __repr__(self) -> str:
        return (f"CompiledCircuit({self.circuit.name!r}, n={self.n}, "
                f"nodes={self.n_nodes}, mosfets={len(self.mosfets)})")


class CsrAssembler:
    """Native-CSR assembly workspace for one batchless run.

    Parameter states are sparse-native, so the per-state linear G/C
    templates *are already* value arrays over the circuit's
    :class:`~repro.linalg.sparsity.CsrPlan` - the assembler consumes
    :attr:`ParamState.g_data`/:attr:`~ParamState.c_data` directly
    (read-only), every residual is a CSR mat-vec and every Jacobian a
    device-value scatter over the fixed pattern.  No dense ``(n+1)^2``
    buffer exists anywhere between ``make_state`` and ``splu``.

    Used by the transient integrator and the DC Newton solver whenever
    the circuit's backend sets
    :attr:`~repro.linalg.LinearSolverBackend.wants_csr` and the run is
    batchless; batched Monte-Carlo stacks keep the dense batched path
    (densified once per chunk through :meth:`ParamState.to_dense`).
    """

    def __init__(self, compiled: CompiledCircuit, state: ParamState):
        if state.batched:
            raise ValueError("native CSR assembly requires a batchless "
                             "parameter state")
        self.compiled = compiled
        self.state = state
        self.plan = compiled.csr_plan
        if not state.plan.same_pattern(self.plan):
            raise ValueError(
                "parameter state was built for a different circuit")
        #: Linear-template value arrays over the pattern (+ trash
        #: slot), shared read-only with the state.
        self.g_lin_data = state.g_data
        self.c_lin_data = state.c_data
        #: Scratch for the assembled Jacobian values.
        self.g_data = self.g_lin_data.copy()
        # keyed by id(theta) *and* holding the key array alive, so a
        # freed theta whose address is reused can never alias a stale
        # entry
        self._theta_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def assemble(self, x_pad: np.ndarray, t: float, f_pad: np.ndarray,
                 source_scale: float = 1.0, gmin: float = 0.0,
                 jacobian: bool = True) -> None:
        """CSR-native equivalent of :meth:`CompiledCircuit.assemble`.

        Fills ``f_pad`` with the static residual; with *jacobian* the
        current ``G`` values are left in :attr:`g_data` (retrieve an
        operand via :meth:`jac_matrix` / :meth:`step_matrix`).
        """
        c = self.compiled
        n = c.n
        self.plan.matvec(self.g_lin_data, x_pad[:n], f_pad[:n])
        if gmin > 0.0:
            f_pad[:c.n_nodes] += gmin * x_pad[:c.n_nodes]
        f_pad[n] = 0.0
        c._add_sources(self.state, t, f_pad, source_scale)
        if jacobian:
            np.copyto(self.g_data, self.g_lin_data)
            if gmin > 0.0:
                self.g_data[self.plan.diag_pos[:c.n_nodes]] += gmin
        gflat = self.g_data if jacobian else None
        if c.mosfets:
            c._add_mosfets(self.state, x_pad, f_pad, jacobian,
                           gflat, c._mos_gpos, ())
        if c.nl_vccs:
            c._add_nl_vccs(self.state, x_pad, t, f_pad, jacobian,
                           gflat, c._nlv_gpos, ())
        f_pad[n] = 0.0

    def jac_matrix(self):
        """Factorable CSC matrix of the assembled ``G`` (DC Newton)."""
        return self.plan.csc_matrix(self.g_data)

    def c_over_h_data(self, h: float,
                      out: "np.ndarray | None" = None) -> np.ndarray:
        """``C / h`` value array over the plan (+ trash slot).

        The capacitance template never changes during a run, so a step
        size change on the CSR path costs exactly this O(nnz) vector
        rescale - the cheap per-step hook adaptive time stepping relies
        on (the factorization cache re-keys on ``(theta, h)`` and
        re-factors, but nothing is re-gathered or densified).
        """
        if out is None:
            out = np.empty_like(self.c_lin_data)
        np.multiply(self.c_lin_data, 1.0 / h, out=out)
        return out

    def theta_data(self, theta: np.ndarray) -> np.ndarray:
        """Per-data-slot row implicitness, cached per theta vector."""
        hit = self._theta_cache.get(id(theta))
        if hit is not None and hit[0] is theta:
            return hit[1]
        td = np.ascontiguousarray(theta[self.plan.rows])
        self._theta_cache[id(theta)] = (theta, td)
        return td

    def step_matrix(self, theta: np.ndarray, coh_data: np.ndarray):
        """Factorable CSC of ``diag(theta) @ G + C/h`` over the plan."""
        nnz = self.plan.nnz
        jd = self.theta_data(theta) * self.g_data[:nnz] + coh_data[:nnz]
        return self.plan.csc_matrix(jd)


def compile_circuit(circuit: Circuit, cmin: float = CMIN_DEFAULT,
                    backend: "str | LinearSolverBackend | None" = None
                    ) -> CompiledCircuit:
    """Compile *circuit* into a :class:`CompiledCircuit`.

    *backend* selects the linear-solver backend (``"dense"``,
    ``"cached"``, ``"sparse"`` or an instance); the default ``"auto"``
    picks by circuit size - see :mod:`repro.linalg`.
    """
    return CompiledCircuit(circuit, cmin=cmin, backend=backend)
