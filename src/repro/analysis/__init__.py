"""Numerical analyses: MNA compilation, DC, transient, AC, noise, PSS,
LPTV sensitivity and periodic noise."""

from .ac import AcResult, ac_analysis
from .dcop import (DcResult, NewtonOptions, dc_operating_point, dc_sweep,
                   newton_solve)
from .harmonic import HarmonicLptv, SidebandResponse
from .lptv import (PeriodicLinearization, SensitivitySolution,
                   periodic_sensitivities)
from .mna import (CompiledCircuit, Deltas, Injection, NoiseInjection,
                  ParamState, compile_circuit)
from .noise_ac import NoiseResult, noise_analysis
from .orbit import OrbitLinearization
from .pnoise import PNoiseResult, pnoise
from .pss import (PssOptions, PssResult, integrate_period, pss,
                  pss_oscillator)
from .transient import TransientOptions, TransientResult, transient
from .transient_noise import (TransientNoiseResult,
                              transient_noise_analysis)

__all__ = [
    "compile_circuit", "CompiledCircuit", "ParamState", "Deltas",
    "Injection", "NoiseInjection",
    "dc_operating_point", "dc_sweep", "newton_solve", "DcResult",
    "NewtonOptions",
    "transient", "TransientOptions", "TransientResult",
    "ac_analysis", "AcResult",
    "noise_analysis", "NoiseResult",
    "pss", "pss_oscillator", "PssOptions", "PssResult", "integrate_period",
    "PeriodicLinearization", "SensitivitySolution",
    "periodic_sensitivities", "OrbitLinearization",
    "HarmonicLptv", "SidebandResponse",
    "pnoise", "PNoiseResult",
    "transient_noise_analysis", "TransientNoiseResult",
]
