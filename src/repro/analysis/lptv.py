"""LPTV small-signal analysis around a periodic steady state.

This is the time-domain ("shooting") realisation of the paper's LPTV
noise/sensitivity analysis - the same structure SpectreRF's PNOISE uses
([12]-[17] in the paper).  Around a converged PSS orbit the circuit is
linear and periodically time-varying:

.. math:: C \\dot{\\delta x} + G(t)\\, \\delta x
          = -\\Big( \\frac{d}{dt}\\frac{\\partial q}{\\partial p}
          + \\frac{\\partial i}{\\partial p} \\Big)\\, \\delta p

The right-hand side is exactly the *pseudo-noise injection* of a mismatch
parameter (paper Section III); its quasi-DC (1 Hz) limit is the periodic
solution of the equation above with a constant ``delta p``, which this
module computes exactly on the PSS discretisation:

1. along the orbit, factor the per-step integrator matrices
   ``A_k = C/h + theta G_k``, ``B_k = C/h - (1 - theta) G_{k-1}``;
2. propagate the one-period particular response ``P_N = dPhi/dp`` and the
   monodromy matrix ``M = dPhi/dx0`` (one pass, shared solves);
3. close the periodicity condition: driven circuits solve
   ``(I - M) dx0 = P_N``; oscillators solve the bordered system that adds
   the period unknown ``dT`` and the phase-anchor row - ``dT/dp`` *is*
   the oscillator's frequency sensitivity (the discrete equivalent of the
   PPV projection of [15]);
4. a second pass stores the full periodic sensitivity waveform
   ``w_i(t_k) = dx_pss(t_k)/dp_i`` for every parameter at once.

Cost: one orbit linearisation plus two block-triangular sweeps -
independent of the number of mismatch parameters beyond cheap matrix
multiplies.  This is the "no additional simulation cost" property the
paper stresses for contributions, correlations and design sensitivities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .mna import CompiledCircuit, Injection
from .pss import PssResult


@dataclass
class SensitivitySolution:
    """Periodic sensitivity waveforms of one LPTV solve.

    Attributes
    ----------
    pss:
        The orbit the linearisation was taken around.
    injections:
        The parameter injections, order matching the last axis of
        ``waveforms``.
    waveforms:
        ``(N+1, n, m)``: ``waveforms[k, :, i]`` is the periodic
        steady-state shift per unit of parameter ``i`` at orbit sample
        ``k``.  For oscillators this is the orbit-shape sensitivity at
        fixed phase (the period shift is reported separately).
    dT_dp:
        ``(m,)`` period sensitivities [s/unit]; ``None`` for driven
        circuits.
    """

    pss: PssResult
    injections: list[Injection]
    waveforms: np.ndarray
    dT_dp: np.ndarray | None = None

    @property
    def n_params(self) -> int:
        return len(self.injections)

    @property
    def sigmas(self) -> np.ndarray:
        """Mismatch sigma of every injection, in injection order."""
        return np.array([inj.sigma for inj in self.injections])

    @property
    def keys(self) -> list[tuple[str, str]]:
        return [inj.key for inj in self.injections]

    def node_waveforms(self, node: str, neg: str | None = None
                       ) -> np.ndarray:
        """``(N+1, m)`` sensitivity waveforms of a (differential) node."""
        c = self.pss.compiled
        out = self.waveforms[:, c.node_index[node], :]
        if neg is not None:
            out = out - self.waveforms[:, c.node_index[neg], :]
        return out

    def df_dp(self) -> np.ndarray:
        """Oscillator frequency sensitivities ``df/dp = -dT/dp / T^2``."""
        if self.dT_dp is None:
            raise AnalysisError(
                "frequency sensitivities require an oscillator PSS")
        return -self.dT_dp / self.pss.period ** 2


class PeriodicLinearization:
    """The factored LPTV operator along one PSS orbit.

    Builds ``G(t_k)`` by re-assembling the Jacobian at every orbit sample
    (charges are linear so ``C`` is constant), then factors the step
    matrices ``A_k`` once through the circuit's linear-solver backend
    (:mod:`repro.linalg` - dense LU or sparse splu).  Reused by the
    sensitivity solve, the harmonic-domain noise engine and the
    monodromy/Floquet utilities.

    This engine is dense by construction (the ``g_t`` stack and the
    monodromy products are O(n^2) regardless of the MNA pattern), so it
    takes the sparse-native parameter state through the explicit
    :meth:`~repro.analysis.mna.ParamState.to_dense` escape hatch - via
    :meth:`~repro.analysis.mna.CompiledCircuit.capacitance` and the
    dense ``assemble`` - rather than pretending to be sparse.
    """

    def __init__(self, pss_result: PssResult):
        self.pss = pss_result
        compiled = pss_result.compiled
        state = pss_result.state
        n = compiled.n
        n_steps = pss_result.n_steps
        self.h = pss_result.period / n_steps
        self.theta = compiled.theta_rows(state, pss_result.method)[:, None]

        _, g_pad, f_pad = compiled.buffers(())
        self.g_t = np.empty((n_steps + 1, n, n))
        for k in range(n_steps + 1):
            x_pad = compiled.pad(pss_result.x[k])
            compiled.assemble(state, x_pad, float(pss_result.t[k]),
                              g_pad, f_pad)
            self.g_t[k] = g_pad[:n, :n]

        self.c = compiled.capacitance(state)[:n, :n]
        self.c_over_h = self.c / self.h
        self._lu = [compiled.backend.factor(
            self.c_over_h + self.theta * self.g_t[k])
            for k in range(1, n_steps + 1)]

    @property
    def compiled(self) -> CompiledCircuit:
        return self.pss.compiled

    @property
    def n_steps(self) -> int:
        return self.pss.n_steps

    def _b_mat(self, k: int) -> np.ndarray:
        """``B_k`` uses the Jacobian at the *previous* sample."""
        return self.c_over_h - (1.0 - self.theta) * self.g_t[k - 1]

    def monodromy(self) -> np.ndarray:
        """State-transition matrix over one period, ``dPhi/dx0``."""
        n = self.c.shape[0]
        z = np.eye(n)
        for k in range(1, self.n_steps + 1):
            z = self._lu[k - 1].solve(self._b_mat(k) @ z)
        return z

    def _rho(self, di: np.ndarray, dq: np.ndarray, k: int) -> np.ndarray:
        """Step injection ``rho_k`` for the per-row theta scheme,
        shape ``(n, m)``."""
        return (self.theta * di[k] + (1.0 - self.theta) * di[k - 1]
                + (dq[k] - dq[k - 1]) / self.h)

    def solve(self, injections: list[Injection]) -> SensitivitySolution:
        """Periodic response to a unit constant deviation of every
        parameter (the 1-Hz pseudo-noise limit)."""
        if not injections:
            raise AnalysisError("no injections to solve for")
        n = self.c.shape[0]
        m = len(injections)
        n_steps = self.n_steps

        di = np.stack([inj.di_dp for inj in injections], axis=-1)
        dq = np.zeros_like(di)
        for i, inj in enumerate(injections):
            if inj.dq_dp is not None:
                dq[:, :, i] = inj.dq_dp
        if di.shape[0] != n_steps + 1:
            raise AnalysisError(
                "injections were not built on this PSS orbit "
                f"({di.shape[0]} samples vs {n_steps + 1})")

        # pass 1: monodromy and particular solution together
        z = np.zeros((n, n + m))
        z[:, :n] = np.eye(n)
        for k in range(1, n_steps + 1):
            rhs = self._b_mat(k) @ z
            rhs[:, n:] -= self._rho(di, dq, k)
            z = self._lu[k - 1].solve(rhs)
        mono = z[:, :n]
        p_n = z[:, n:]

        # close the periodic boundary condition
        dT_dp = None
        if self.pss.is_oscillator:
            a_idx = self.pss.anchor_index
            big = np.zeros((n + 1, n + 1))
            big[:n, :n] = np.eye(n) - mono
            xdot_t = (self.pss.x[-1] - self.pss.x[-2]) / self.h
            big[:n, n] = -xdot_t
            big[n, a_idx] = 1.0
            rhs = np.concatenate([p_n, np.zeros((1, m))], axis=0)
            sol = np.linalg.solve(big, rhs)
            dx0 = sol[:n]
            dT_dp = sol[n]
        else:
            dx0 = np.linalg.solve(np.eye(n) - mono, p_n)

        # pass 2: store the full periodic sensitivity waveforms
        d = np.empty((n_steps + 1, n, m))
        d[0] = dx0
        cur = dx0
        for k in range(1, n_steps + 1):
            rhs = self._b_mat(k) @ cur - self._rho(di, dq, k)
            cur = self._lu[k - 1].solve(rhs)
            d[k] = cur
        return SensitivitySolution(pss=self.pss, injections=list(injections),
                                   waveforms=d, dT_dp=dT_dp)


def periodic_sensitivities(pss_result: PssResult,
                           injections: list[Injection] | None = None
                           ) -> SensitivitySolution:
    """One-call helper: linearise the orbit and solve all mismatch
    injections of the circuit."""
    if injections is None:
        compiled = pss_result.compiled
        injections = compiled.mismatch_injections(pss_result.state,
                                                  pss_result.x)
    lin = PeriodicLinearization(pss_result)
    return lin.solve(injections)
