"""LPTV small-signal analysis around a periodic steady state.

This is the time-domain ("shooting") realisation of the paper's LPTV
noise/sensitivity analysis - the same structure SpectreRF's PNOISE uses
([12]-[17] in the paper).  Around a converged PSS orbit the circuit is
linear and periodically time-varying:

.. math:: C \\dot{\\delta x} + G(t)\\, \\delta x
          = -\\Big( \\frac{d}{dt}\\frac{\\partial q}{\\partial p}
          + \\frac{\\partial i}{\\partial p} \\Big)\\, \\delta p

The right-hand side is exactly the *pseudo-noise injection* of a mismatch
parameter (paper Section III); its quasi-DC (1 Hz) limit is the periodic
solution of the equation above with a constant ``delta p``, which this
module computes exactly on the PSS discretisation:

1. along the orbit, factor the per-step integrator matrices
   ``A_k = C/h + theta G_k``, ``B_k = C/h - (1 - theta) G_{k-1}``
   (once, shared with shooting and the harmonic/pnoise consumers -
   :class:`~repro.analysis.orbit.OrbitLinearization`);
2. propagate the one-period particular response ``P_N = dPhi/dp`` for
   *all* parameters as one blocked right-hand side;
3. close the periodicity condition: driven circuits solve
   ``(I - M) dx0 = P_N``; oscillators solve the bordered system that adds
   the period unknown ``dT`` and the phase-anchor row - ``dT/dp`` *is*
   the oscillator's frequency sensitivity (the discrete equivalent of the
   PPV projection of [15]);
4. a second pass stores the full periodic sensitivity waveform
   ``w_i(t_k) = dx_pss(t_k)/dp_i`` for every parameter at once.

Cost: one orbit linearisation plus two block-triangular sweeps -
independent of the number of mismatch parameters beyond cheap matrix
multiplies.  This is the "no additional simulation cost" property the
paper stresses for contributions, correlations and design sensitivities.

Engine selection (the Krylov path and its dense fallback)
---------------------------------------------------------
On a ``wants_csr`` backend at or above
:data:`~repro.linalg.krylov.MATRIX_FREE_MIN_UNKNOWNS` unknowns the
solve runs *matrix-free*: the orbit linearisation is stored as per-step
CSR value arrays on the circuit's plan (O(n_steps * nnz) instead of the
O(n_steps * n^2) dense stack), the monodromy matrix is never formed,
and the periodicity closure is solved by blocked GMRES on the sweep
operator ``v -> M v`` (:mod:`repro.linalg.krylov`) - all injections
ride through the two sweeps and the closure as one blocked RHS, so the
cost stays parameter-count independent.  Below the threshold (or on
dense backends) the explicit dense monodromy path runs instead,
bit-identical to earlier releases; ``matrix_free=`` on
:class:`PeriodicLinearization` / :func:`periodic_sensitivities` forces
either engine (the parity suite does).  A closure that fails to
converge in GMRES falls back to the explicit monodromy with a warning.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..linalg.krylov import GMRES_MAXITER, GMRES_TOL, solve_blocked
from .mna import CompiledCircuit, Injection
from .orbit import OrbitLinearization
from .pss import PssResult


@dataclass
class SensitivitySolution:
    """Periodic sensitivity waveforms of one LPTV solve.

    Attributes
    ----------
    pss:
        The orbit the linearisation was taken around.
    injections:
        The parameter injections, order matching the last axis of
        ``waveforms``.
    waveforms:
        ``(N+1, n, m)``: ``waveforms[k, :, i]`` is the periodic
        steady-state shift per unit of parameter ``i`` at orbit sample
        ``k``.  For oscillators this is the orbit-shape sensitivity at
        fixed phase (the period shift is reported separately).
    dT_dp:
        ``(m,)`` period sensitivities [s/unit]; ``None`` for driven
        circuits.
    """

    pss: PssResult
    injections: list[Injection]
    waveforms: np.ndarray
    dT_dp: np.ndarray | None = None

    @property
    def n_params(self) -> int:
        return len(self.injections)

    @property
    def sigmas(self) -> np.ndarray:
        """Mismatch sigma of every injection, in injection order."""
        return np.array([inj.sigma for inj in self.injections])

    @property
    def keys(self) -> list[tuple[str, str]]:
        return [inj.key for inj in self.injections]

    def node_waveforms(self, node: str, neg: str | None = None
                       ) -> np.ndarray:
        """``(N+1, m)`` sensitivity waveforms of a (differential) node."""
        c = self.pss.compiled
        out = self.waveforms[:, c.node_index[node], :]
        if neg is not None:
            out = out - self.waveforms[:, c.node_index[neg], :]
        return out

    def df_dp(self) -> np.ndarray:
        """Oscillator frequency sensitivities ``df/dp = -dT/dp / T^2``."""
        if self.dT_dp is None:
            raise AnalysisError(
                "frequency sensitivities require an oscillator PSS")
        return -self.dT_dp / self.pss.period ** 2


class PeriodicLinearization:
    """The factored LPTV operator along one PSS orbit.

    A thin sensitivity-solver over the shared
    :class:`~repro.analysis.orbit.OrbitLinearization` (obtained from
    :meth:`~repro.analysis.pss.PssResult.linearization`, so shooting,
    LPTV, the harmonic noise engine and the monodromy utilities all
    reuse one set of per-step ``A_k`` factorizations instead of each
    re-assembling and re-factoring the orbit).

    On the sparse engine the linearisation lives on the circuit's
    :class:`~repro.linalg.sparsity.CsrPlan` (O(n_steps * nnz)) and the
    periodicity closure runs matrix-free through blocked GMRES; on the
    dense engine (small circuits, non-CSR backends) the explicit
    monodromy path of earlier releases runs bit-identically.  See the
    module docstring for when each engages.
    """

    def __init__(self, pss_result: PssResult,
                 matrix_free: "bool | None" = None):
        self.pss = pss_result
        self.lin = pss_result.linearization(matrix_free)
        self.h = self.lin.h
        self.theta = self.lin.theta

    @property
    def compiled(self) -> CompiledCircuit:
        return self.pss.compiled

    @property
    def n_steps(self) -> int:
        return self.pss.n_steps

    @property
    def g_t(self) -> np.ndarray:
        """Dense per-step Jacobian stack (dense engine; the sparse
        engine densifies on demand - harmonic-engine sized only)."""
        return self.lin.g_stack()

    @property
    def c(self) -> np.ndarray:
        return self.lin.c_dense()

    def clear_caches(self) -> "PeriodicLinearization":
        """Drop the per-step factorization list (rebuilt lazily on the
        next solve) - the analogue of the other engines'
        ``clear_caches`` for long sweeps that linearise many orbits.
        Returns ``self``."""
        self.lin.clear_factors()
        return self

    def monodromy(self) -> np.ndarray:
        """State-transition matrix over one period, ``dPhi/dx0``."""
        return self.lin.monodromy()

    def _rho(self, di: np.ndarray, dq: np.ndarray, k: int) -> np.ndarray:
        """Step injection ``rho_k`` for the per-row theta scheme,
        shape ``(n, m)``."""
        return (self.theta * di[k] + (1.0 - self.theta) * di[k - 1]
                + (dq[k] - dq[k - 1]) / self.h)

    def solve(self, injections: list[Injection]) -> SensitivitySolution:
        """Periodic response to a unit constant deviation of every
        parameter (the 1-Hz pseudo-noise limit)."""
        if not injections:
            raise AnalysisError("no injections to solve for")
        n = self.compiled.n
        n_steps = self.n_steps

        di = np.stack([inj.di_dp for inj in injections], axis=-1)
        dq = np.zeros_like(di)
        for i, inj in enumerate(injections):
            if inj.dq_dp is not None:
                dq[:, :, i] = inj.dq_dp
        if di.shape[0] != n_steps + 1:
            raise AnalysisError(
                "injections were not built on this PSS orbit "
                f"({di.shape[0]} samples vs {n_steps + 1})")

        if self.lin.sparse:
            dx0, dT_dp = self._close_matrix_free(di, dq)
        else:
            dx0, dT_dp = self._close_dense(di, dq)

        # pass 2: store the full periodic sensitivity waveforms
        m = di.shape[-1]
        d = np.empty((n_steps + 1, n, m))
        d[0] = dx0
        cur = dx0
        for k in range(1, n_steps + 1):
            cur = self.lin.step_map(k, cur, self._rho(di, dq, k))
            d[k] = cur
        return SensitivitySolution(pss=self.pss, injections=list(injections),
                                   waveforms=d, dT_dp=dT_dp)

    # ------------------------------------------------------------------
    # periodicity closures
    # ------------------------------------------------------------------
    def _close_dense(self, di: np.ndarray, dq: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray | None]:
        """Explicit monodromy closure (the legacy bit-identical path):
        pass 1 carries the identity columns alongside the injections,
        so one sweep yields ``M`` and ``P_N`` together."""
        n = self.compiled.n
        m = di.shape[-1]
        z = np.zeros((n, n + m))
        z[:, :n] = np.eye(n)
        for k in range(1, self.n_steps + 1):
            rhs = self.lin.b_mat(k) @ z
            rhs[:, n:] -= self._rho(di, dq, k)
            z = self.lin.step_solve(k, rhs)
        return self._close_explicit(z[:, :n], z[:, n:])

    def _close_explicit(self, mono: np.ndarray, p_n: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray | None]:
        """Close the periodicity condition against an explicit
        monodromy matrix - the dense engine's closure and the
        matrix-free engine's GMRES-stall fallback."""
        n = self.compiled.n
        if self.pss.is_oscillator:
            a_idx = self.pss.anchor_index
            big = np.zeros((n + 1, n + 1))
            big[:n, :n] = np.eye(n) - mono
            xdot_t = (self.pss.x[-1] - self.pss.x[-2]) / self.h
            big[:n, n] = -xdot_t
            big[n, a_idx] = 1.0
            rhs = np.concatenate([p_n, np.zeros((1, p_n.shape[1]))],
                                 axis=0)
            sol = np.linalg.solve(big, rhs)
            return sol[:n], sol[n]
        return np.linalg.solve(np.eye(n) - mono, p_n), None

    def _close_matrix_free(self, di: np.ndarray, dq: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray | None]:
        """Matrix-free closure: one blocked particular sweep for
        ``P_N`` (no identity columns), then blocked GMRES on the sweep
        operator.  Falls back to the explicit monodromy - with a
        warning - if GMRES stalls."""
        lin = self.lin
        n = self.compiled.n
        m = di.shape[-1]

        # pass 1: particular solution only - the monodromy never rides
        p = np.zeros((n, m))
        for k in range(1, self.n_steps + 1):
            p = lin.step_map(k, p, self._rho(di, dq, k))

        if self.pss.is_oscillator:
            a_idx = self.pss.anchor_index
            xdot_t = (self.pss.x[-1] - self.pss.x[-2]) / self.h
            # h-scaled period column (see OrbitLinearization.
            # bordered_op); sign=-1 gives this closure's I - M
            # convention
            op = lin.bordered_op(xdot_t * self.h, a_idx, sign=-1.0)
            rhs = np.concatenate([p, np.zeros((1, m))], axis=0)
            sol, _, ok = solve_blocked(op, rhs, tol=GMRES_TOL,
                                       maxiter=GMRES_MAXITER)
            if ok:
                return sol[:n], sol[n] * self.h
        else:
            def op(v: np.ndarray) -> np.ndarray:
                return v - lin.apply_monodromy(v)

            sol, _, ok = solve_blocked(op, p, tol=GMRES_TOL,
                                       maxiter=GMRES_MAXITER)
            if ok:
                return sol, None

        warnings.warn(
            f"LPTV periodicity closure on '{self.compiled.circuit.name}' "
            f"did not converge in {GMRES_MAXITER} GMRES iterations; "
            "falling back to the explicit monodromy solve",
            UserWarning, stacklevel=4)
        return self._close_explicit(lin.monodromy(), p)


def periodic_sensitivities(pss_result: PssResult,
                           injections: list[Injection] | None = None,
                           matrix_free: "bool | None" = None
                           ) -> SensitivitySolution:
    """One-call helper: linearise the orbit and solve all mismatch
    injections of the circuit.

    *matrix_free* forces the sparse Krylov engine (``True``) or the
    dense explicit-monodromy engine (``False``); the default ``None``
    selects by backend and circuit size.
    """
    if injections is None:
        compiled = pss_result.compiled
        injections = compiled.mismatch_injections(pss_result.state,
                                                  pss_result.x)
    lin = PeriodicLinearization(pss_result, matrix_free=matrix_free)
    return lin.solve(injections)


__all__ = ["PeriodicLinearization", "SensitivitySolution",
           "periodic_sensitivities", "OrbitLinearization"]
