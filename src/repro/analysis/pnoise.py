"""Periodic (cyclostationary) noise analysis - PNOISE.

Combines the harmonic-domain LPTV engine with the circuit's noise and
pseudo-noise sources to report output noise PSDs per sideband, the way
RF simulators present cyclostationary noise (paper Section V): a
collection of stationary PSDs, one per harmonic ``N f0``, evaluated at
offset frequencies from the harmonic.

Reading rules (paper Table of Section V):

* baseband sideband ``N = 0`` at 1 Hz -> variance of DC-like metrics,
* first sideband ``N = 1`` at 1 Hz -> phase-type variations; convert to
  delay/frequency sigma with :mod:`repro.core.interpret`.

Noise folding is implemented for white physical sources (power at
``k f0 +/- f`` converting into the reading); pseudo-noise sources are
1/f-shaped precisely so their folded contributions are negligible
(Section III), and the folding terms are therefore skipped for them -
:func:`repro.core.pseudo_noise.folding_safety_ratio` quantifies the
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.elements import PsdShape
from ..constants import PSEUDO_NOISE_FREQUENCY
from ..errors import AnalysisError
from .harmonic import HarmonicLptv
from .mna import Injection, NoiseInjection
from .pss import PssResult


@dataclass
class PNoiseResult:
    """Output noise PSDs per sideband with per-source breakdowns.

    ``psd[sideband]`` is the total output PSD at ``sideband * f0 +
    f_offset`` [V^2/Hz]; ``contributions[sideband][key]`` the per-source
    split.
    """

    output: str
    f_offset: float
    f0: float
    psd: dict[int, float] = field(default_factory=dict)
    contributions: dict[int, dict[tuple[str, str], float]] = field(
        default_factory=dict)

    def sideband_psd(self, sideband: int) -> float:
        try:
            return self.psd[sideband]
        except KeyError:
            raise AnalysisError(
                f"sideband {sideband} was not analysed; available: "
                f"{sorted(self.psd)}") from None

    def summary(self, top: int = 8) -> str:
        lines = [f"periodic noise at node '{self.output}' "
                 f"(offset {self.f_offset:g} Hz from each harmonic)"]
        for sb in sorted(self.psd):
            lines.append(f"  sideband N={sb:+d} ({sb * self.f0:.4g} Hz): "
                         f"{self.psd[sb]:.4e} V^2/Hz")
            rows = sorted(self.contributions[sb].items(),
                          key=lambda kv: kv[1], reverse=True)
            for key, val in rows[:top]:
                share = val / max(self.psd[sb], 1e-300)
                lines.append(f"      {key[0]}.{key[1]:<12s} {val:.4e} "
                             f"{share:6.1%}")
        return "\n".join(lines)


def pnoise(pss_result: PssResult, output: str,
           output_neg: str | None = None,
           sidebands: tuple[int, ...] = (0, 1),
           f_offset: float = PSEUDO_NOISE_FREQUENCY,
           include_pseudo: bool = True,
           include_physical: bool = False,
           n_harmonics: int | None = None,
           folding_harmonics: int = 4,
           pseudo_injections: list[Injection] | None = None,
           physical_injections: list[NoiseInjection] | None = None,
           engine: HarmonicLptv | None = None
           ) -> PNoiseResult:
    """Cyclostationary noise PSD of *output* around each harmonic.

    Parameters
    ----------
    include_pseudo:
        Include the mismatch pseudo-noise sources (PSD ``sigma^2`` at
        1 Hz, 1/f shape) - the paper's mismatch reading.
    include_physical:
        Include thermal/flicker device noise.  The per-source breakdown
        keeps pseudo and physical contributions separate, which is how
        the paper proposes distinguishing them (Section V footnote).
    folding_harmonics:
        White-noise power at ``k f0 + f`` for ``|k| <=`` this folds into
        the readings.
    n_harmonics:
        Harmonic truncation of the conversion matrix (default 16).
        With *engine* given, leave it ``None`` - the engine's own
        truncation is used, and an explicit conflicting value raises.
    engine:
        Reuse a prebuilt :class:`~repro.analysis.harmonic.HarmonicLptv`
        across calls (sweeps over outputs/offsets); it must have been
        built on this *pss_result* (checked).  The default builds one
        from *pss_result* - which itself shares the PSS result's
        cached orbit linearisation, so nothing is re-factored either
        way.

    Returns
    -------
    PNoiseResult
    """
    compiled = pss_result.compiled
    if engine is None:
        engine = HarmonicLptv(
            pss_result,
            n_harmonics=16 if n_harmonics is None else n_harmonics)
    elif engine.pss is not pss_result:
        raise AnalysisError(
            "pnoise(engine=) was built on a different PSS result; "
            "rebuild the HarmonicLptv for this orbit")
    elif n_harmonics is not None and n_harmonics != engine.k:
        raise AnalysisError(
            f"pnoise(engine=) carries n_harmonics={engine.k} but "
            f"n_harmonics={n_harmonics} was requested; pass one or "
            "the other")
    t_lu = engine.lu(f_offset)

    result = PNoiseResult(output=output, f_offset=f_offset,
                          f0=pss_result.f0)
    for sb in sidebands:
        result.psd[sb] = 0.0
        result.contributions[sb] = {}

    def out_mag2(resp, sb: int) -> float:
        x = resp.at(sb)
        val = x[compiled.node_index[output]]
        if output_neg is not None:
            val = val - x[compiled.node_index[output_neg]]
        return float(np.abs(val) ** 2)

    if include_pseudo:
        if pseudo_injections is None:
            pseudo_injections = compiled.mismatch_injections(
                pss_result.state, pss_result.x)
        for inj in pseudo_injections:
            resp = engine.solve_injection(inj, f_offset, t_lu)
            for sb in sidebands:
                val = out_mag2(resp, sb) * inj.sigma ** 2
                result.contributions[sb][inj.key] = val
                result.psd[sb] += val

    if include_physical:
        if physical_injections is None:
            physical_injections = compiled.noise_injections(
                pss_result.state, pss_result.x)
        f0 = pss_result.f0
        for src in physical_injections:
            shifts = (range(-folding_harmonics, folding_harmonics + 1)
                      if src.shape is PsdShape.WHITE else (0,))
            total = {sb: 0.0 for sb in sidebands}
            for k0 in shifts:
                source_freq = abs(k0 * f0 + f_offset)
                resp = engine.solve_noise_source(src, f_offset, t_lu,
                                                 harmonic_shift=k0)
                for sb in sidebands:
                    total[sb] += out_mag2(resp, sb) * src.psd(
                        max(source_freq, f_offset))
            for sb in sidebands:
                result.contributions[sb][src.decl.key] = total[sb]
                result.psd[sb] += total[sb]

    return result
