"""Compile-time stamp plans: COO lowering of the MNA assembly.

The seed assembler walked a Python loop over every resistor, source and
behavioral transconductor on *every Newton iteration*.  This module
lowers each element family once, at :class:`~repro.analysis.mna.
CompiledCircuit` construction, into flat COO index/value arrays so that
the hot paths become a handful of vectorized gathers and
``np.add.at`` scatters:

:class:`LinearStampPlan`
    All linear elements (R, C, L, independent/controlled sources,
    MOSFET capacitors, ``cmin``).  Template construction for a
    parameter set - the per-``make_state`` cost of a Monte-Carlo chunk -
    is a handful of O(nnz) value scatters onto the circuit's
    :class:`~repro.linalg.sparsity.CsrPlan` pattern (one constant
    block, one delta-dependent block per element family) instead of a
    per-element loop; no dense ``(n+1)^2`` template is materialised
    (states densify lazily through
    :meth:`~repro.analysis.mna.ParamState.to_dense`).
:class:`SourcePlan`
    Independent sources split into a *static* part (DC waves, including
    per-state overrides) evaluated once per parameter state, and a
    *time-varying* part re-evaluated once per distinct time point.  The
    combined padded source vector is cached per ``(state, t)``, so a
    Newton iteration at a fixed time step adds one precomputed vector.
:class:`NlVccsPlan`
    Behavioral transconductors (``tanh`` limiters, clock gates)
    evaluated for all devices at once; gate waveforms are cached per
    time point (they do not depend on the state or the batch).

All index arrays address the *padded* system (one discard slot for
ground at index ``n``), flattened row-major over ``(n+1, n+1)`` for
matrix stamps, matching the layout
:meth:`~repro.analysis.mna.CompiledCircuit.assemble` scatters into.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.controlled import Vccs
from ..circuit.elements import ParamKey
from ..circuit.sources import Dc, smoothstep
from ..errors import NetlistError

Deltas = "dict[ParamKey, float | np.ndarray]"


def scatter_add(flat: np.ndarray, idx: np.ndarray, vals: np.ndarray,
                bidx: np.ndarray | None = None) -> None:
    """``flat[..., idx] += vals`` with duplicate indices accumulated.

    *flat* is ``(*batch, m)``; *bidx* is the cached flattened-batch
    index column (``(*batch, 1)``) required whenever *flat* is batched.
    """
    if flat.ndim == 1:
        np.add.at(flat, idx, vals)
    else:
        np.add.at(flat, (bidx, idx), vals)


def _device_values(nominal: np.ndarray, keys: tuple[ParamKey, ...],
                   deltas, batch: tuple[int, ...]) -> np.ndarray:
    """Effective per-device parameter values (nominal + deltas).

    Returns ``(ndev,)`` when no delta is batched (it broadcasts over
    any batch in the scatter), else ``(*batch, ndev)``.
    """
    if not deltas:
        return nominal
    dv = [deltas.get(k, 0.0) for k in keys]
    if not any(np.ndim(d) > 0 for d in dv):
        return nominal + np.asarray(dv, dtype=float)
    out = np.broadcast_to(nominal, batch + nominal.shape).copy()
    for i, d in enumerate(dv):
        out[..., i] = nominal[i] + np.asarray(d, dtype=float)
    return out


@dataclass(frozen=True)
class ConstBlock:
    """Stamps whose values never change: ``flat[idx] += val``."""

    idx: np.ndarray
    val: np.ndarray


@dataclass(frozen=True)
class DeviceBlock:
    """Stamps driven by one per-device parameter.

    Slot values are ``sign * f(param)[gather]`` where ``f`` is the
    identity (capacitors, inductors) or the reciprocal (resistors:
    conductance from resistance).
    """

    idx: np.ndarray                    # (k,) flat stamp positions
    sign: np.ndarray                   # (k,) +/-1 per stamp slot
    gather: np.ndarray                 # (k,) device index per slot
    nominal: np.ndarray                # (ndev,) nominal parameter
    keys: tuple[ParamKey, ...]         # (ndev,) delta lookup keys
    reciprocal: bool = False

    def slot_values(self, deltas, batch: tuple[int, ...]) -> np.ndarray:
        dev = _device_values(self.nominal, self.keys, deltas, batch)
        if self.reciprocal:
            dev = 1.0 / dev
        return self.sign * dev[..., self.gather]


def _four_point(p: np.ndarray, q: np.ndarray, n1: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Standard two-terminal stamp: +(p,p) +(q,q) -(p,q) -(q,p)."""
    idx = np.concatenate([p * n1 + p, q * n1 + q, p * n1 + q, q * n1 + p])
    k = p.size
    sign = np.concatenate([np.ones(2 * k), -np.ones(2 * k)])
    return idx, sign


class LinearStampPlan:
    """COO lowering of every linear element of one compiled circuit."""

    def __init__(self, compiled):
        n1 = compiled.n + 1
        self.n1 = n1
        self.ground = compiled.n

        def pairs(elements):
            p = np.array([compiled.idx(e.pos) for e in elements], dtype=int)
            q = np.array([compiled.idx(e.neg) for e in elements], dtype=int)
            return p, q

        # --- delta-dependent blocks (kept in seed stamping order) ----
        res = compiled.resistors
        p, q = pairs(res)
        idx, sign = _four_point(p, q, n1)
        self.res = DeviceBlock(
            idx=idx, sign=sign, gather=np.tile(np.arange(len(res)), 4),
            nominal=np.array([e.r for e in res], dtype=float),
            keys=tuple((e.name, "r") for e in res), reciprocal=True)

        cap = compiled.capacitors
        p, q = pairs(cap)
        idx, sign = _four_point(p, q, n1)
        self.cap = DeviceBlock(
            idx=idx, sign=sign, gather=np.tile(np.arange(len(cap)), 4),
            nominal=np.array([e.c for e in cap], dtype=float),
            keys=tuple((e.name, "c") for e in cap))

        ind = compiled.inductors
        br = np.array([compiled.branch(e.name) for e in ind], dtype=int)
        self.ind = DeviceBlock(
            idx=br * n1 + br, sign=np.ones(len(ind)),
            gather=np.arange(len(ind)),
            nominal=np.array([e.l for e in ind], dtype=float),
            keys=tuple((e.name, "l") for e in ind))

        # --- constant blocks ----------------------------------------
        g_idx: list[int] = []
        g_val: list[float] = []

        def stamp_g(row, col, val):
            g_idx.append(row * n1 + col)
            g_val.append(val)

        for e in ind:
            p, q = compiled.idx(e.pos), compiled.idx(e.neg)
            b = compiled.branch(e.name)
            stamp_g(p, b, 1.0), stamp_g(q, b, -1.0)
            stamp_g(b, p, -1.0), stamp_g(b, q, 1.0)
        for e in compiled.vsources:
            p, q = compiled.idx(e.pos), compiled.idx(e.neg)
            b = compiled.branch(e.name)
            stamp_g(p, b, 1.0), stamp_g(q, b, -1.0)
            stamp_g(b, p, 1.0), stamp_g(b, q, -1.0)
        for e in compiled.vcvs:
            p, q = compiled.idx(e.pos), compiled.idx(e.neg)
            cp, cn = compiled.idx(e.ctrl_pos), compiled.idx(e.ctrl_neg)
            b = compiled.branch(e.name)
            stamp_g(p, b, 1.0), stamp_g(q, b, -1.0)
            stamp_g(b, p, 1.0), stamp_g(b, q, -1.0)
            stamp_g(b, cp, -e.gain), stamp_g(b, cn, e.gain)
        for e in compiled.linear_vccs:
            p, q = compiled.idx(e.pos), compiled.idx(e.neg)
            cp, cn = compiled.idx(e.ctrl_pos), compiled.idx(e.ctrl_neg)
            stamp_g(p, cp, e.gm), stamp_g(p, cn, -e.gm)
            stamp_g(q, cp, -e.gm), stamp_g(q, cn, e.gm)
        self.g_const = ConstBlock(np.asarray(g_idx, dtype=int),
                                  np.asarray(g_val, dtype=float))

        c_idx: list[int] = []
        c_val: list[float] = []
        for e in compiled.mosfets:
            d, g, s, b = (compiled.idx(e.d), compiled.idx(e.g),
                          compiled.idx(e.s), compiled.idx(e.b))
            for (a, c, val) in ((g, s, e.c_gs), (g, d, e.c_gd),
                                (d, b, e.c_db), (s, b, e.c_sb)):
                if val > 0.0:
                    c_idx += [a * n1 + a, c * n1 + c]
                    c_val += [val, val]
                    c_idx += [a * n1 + c, c * n1 + a]
                    c_val += [-val, -val]
        if compiled.cmin > 0.0:
            for i in range(compiled.n_nodes):
                c_idx.append(i * n1 + i)
                c_val.append(compiled.cmin)
        self.c_const = ConstBlock(np.asarray(c_idx, dtype=int),
                                  np.asarray(c_val, dtype=float))

    def coo_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat padded indices of every potential G / C entry."""
        g = np.concatenate([self.res.idx, self.g_const.idx])
        c = np.concatenate([self.cap.idx, self.ind.idx, self.c_const.idx])
        return g.astype(int), c.astype(int)

    def _slot_positions(self, plan) -> None:
        """Map every stamp block's padded flat indices to data slots of
        *plan* (ground stamps land on the trash slot).  Computed once -
        the plan is a per-circuit constant."""
        if getattr(self, "_pos_plan", None) is plan:
            return
        self._res_pos = plan.pos_of(self.res.idx)
        self._gconst_pos = plan.pos_of(self.g_const.idx)
        self._cap_pos = plan.pos_of(self.cap.idx)
        self._ind_pos = plan.pos_of(self.ind.idx)
        self._cconst_pos = plan.pos_of(self.c_const.idx)
        self._pos_plan = plan

    def build_data(self, deltas, batch: tuple[int, ...],
                   bidx: np.ndarray | None, plan
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Sparse-native templates ``(g_data, c_data)`` for a parameter
        set: value arrays of length ``nnz + 1`` over *plan* (the extra
        trash slot absorbs ground stamps and is scrubbed to zero).

        The scatter order matches the historical dense build block for
        block, so a lazily densified template
        (:meth:`~repro.analysis.mna.ParamState.to_dense`) is
        bit-identical to what the dense builder produced.

        *batch* is the template batch shape (empty unless some linear
        delta is batched); *bidx* the cached flat batch index column.
        """
        self._slot_positions(plan)
        g = np.zeros(batch + (plan.nnz + 1,))
        c = np.zeros(batch + (plan.nnz + 1,))
        if self.res.idx.size:
            scatter_add(g, self._res_pos,
                        self.res.slot_values(deltas, batch), bidx)
        if self.g_const.idx.size:
            scatter_add(g, self._gconst_pos, self.g_const.val, bidx)
        if self.cap.idx.size:
            scatter_add(c, self._cap_pos,
                        self.cap.slot_values(deltas, batch), bidx)
        if self.ind.idx.size:
            scatter_add(c, self._ind_pos,
                        self.ind.slot_values(deltas, batch), bidx)
        if self.c_const.idx.size:
            scatter_add(c, self._cconst_pos, self.c_const.val, bidx)
        g[..., plan.nnz] = 0.0
        c[..., plan.nnz] = 0.0
        return g, c


class SourcePlan:
    """Independent sources lowered to a cached padded vector.

    The vector obeys the MNA sign conventions of the seed assembler:
    a voltage source subtracts its value from its branch equation, a
    current source adds at ``pos`` and subtracts at ``neg`` (ground
    accumulations land on the discard slot and are scrubbed by
    ``assemble``).
    """

    def __init__(self, compiled):
        self.n1 = compiled.n + 1
        static_names: list[str] = []
        static_slots: list[list[tuple[int, float]]] = []
        tv_idx: list[int] = []
        tv_sign: list[float] = []
        tv_gather: list[int] = []
        tv_waves: list = []
        tv_names: list[str] = []

        def add(el, slots):
            if isinstance(el.wave, Dc):
                static_names.append(el.name)
                static_slots.append(slots)
            else:
                j = len(tv_waves)
                tv_waves.append(el.wave)
                tv_names.append(el.name)
                for i, s in slots:
                    tv_idx.append(i)
                    tv_sign.append(s)
                    tv_gather.append(j)

        for e in compiled.vsources:
            add(e, [(compiled.branch(e.name), -1.0)])
        for e in compiled.isources:
            add(e, [(compiled.idx(e.pos), 1.0),
                    (compiled.idx(e.neg), -1.0)])
        self.static_names = static_names
        self.static_slots = static_slots
        self.tv_idx = np.asarray(tv_idx, dtype=int)
        self.tv_sign = np.asarray(tv_sign, dtype=float)
        self.tv_gather = np.asarray(tv_gather, dtype=int)
        self.tv_waves = tv_waves
        self.tv_names = set(tv_names)
        # nominal DC values, looked up once
        by_name = {e.name: e for e in compiled.vsources + compiled.isources}
        self.static_nominal = [by_name[n].wave.value for n in static_names]
        self.empty = not (static_names or tv_waves)

    def static_vector(self, state) -> np.ndarray:
        """Padded source vector of all DC sources (honouring overrides).

        Cached on *state* - ``state.source_values`` is consumed here on
        the first assembly and must not be mutated afterwards (build a
        new state per override set instead).  May carry a batch axis
        when any DC value or override is batched.
        """
        if state.src_static is not None:
            return state.src_static
        for name in state.source_values:
            if name in self.tv_names:
                raise NetlistError(
                    f"source override on non-DC source '{name}'")
        vals = [state.source_values.get(name, nom)
                for name, nom in zip(self.static_names, self.static_nominal)]
        batch: tuple[int, ...] = ()
        for v in vals:
            if np.ndim(v) > 0:
                batch = np.shape(v)
        vec = np.zeros(batch + (self.n1,))
        for slots, v in zip(self.static_slots, vals):
            for i, s in slots:
                vec[..., i] += s * np.asarray(v, dtype=float)
        state.src_static = vec
        return vec

    def combined(self, state, t: float) -> np.ndarray:
        """Padded source vector at time *t* (static + time-varying).

        Cached per ``(state, t)``: Newton iterations at a fixed time
        step pay a single vector add, and the time-varying waves are
        re-evaluated only when *t* changes.
        """
        cache = state.src_cache
        if cache is not None and cache[0] == t:
            return cache[1]
        vec = self.static_vector(state)
        if self.tv_waves:
            vals = [w(t) for w in self.tv_waves]
            if any(np.ndim(v) > 0 for v in vals):
                # unusual: a time function returning batched values
                vec = vec + np.zeros(np.broadcast_shapes(
                    *(np.shape(v) for v in vals)) + (self.n1,))
                for i, s, j in zip(self.tv_idx, self.tv_sign,
                                   self.tv_gather):
                    vec[..., i] += s * np.asarray(vals[j], dtype=float)
            else:
                vec = vec.copy()
                tvv = np.asarray(vals, dtype=float)
                np.add.at(vec, self.tv_idx,
                          self.tv_sign * tvv[self.tv_gather])
        state.src_cache = (t, vec)
        return vec


class NlVccsPlan:
    """Vectorized evaluation of all nonlinear transconductors."""

    def __init__(self, compiled, nl_vccs: list[Vccs]):
        n1 = compiled.n + 1
        self.n = len(nl_vccs)
        idx = np.array(
            [[compiled.idx(e.pos), compiled.idx(e.neg),
              compiled.idx(e.ctrl_pos), compiled.idx(e.ctrl_neg)]
             for e in nl_vccs], dtype=int).reshape(self.n, 4)
        p, q, cp, cn = (idx[:, k] for k in range(4))
        self.cp, self.cn = cp, cn
        #: residual scatter: +i at pos, -i at neg
        self.f_idx = np.concatenate([p, q])
        #: Jacobian scatter: +(p,cp) -(p,cn) -(q,cp) +(q,cn)
        self.g_idx = np.concatenate(
            [p * n1 + cp, p * n1 + cn, q * n1 + cp, q * n1 + cn])

        vlim = np.array([e.vlimit if e.vlimit is not None else 1.0
                         for e in nl_vccs], dtype=float)
        self.has_limit = np.array([e.vlimit is not None for e in nl_vccs])
        self.vlim = vlim
        self.any_limit = bool(self.has_limit.any())

        self.has_gate = np.array([e.gate is not None for e in nl_vccs])
        self.any_gate = bool(self.has_gate.any())
        self.gate_t_on = np.array(
            [e.gate.t_on if e.gate else 0.0 for e in nl_vccs])
        self.gate_t_off = np.array(
            [e.gate.t_off if e.gate else 1.0 for e in nl_vccs])
        self.gate_period = np.array(
            [e.gate.period if e.gate else 1.0 for e in nl_vccs])
        self.gate_tau = np.array(
            [e.gate.tau if e.gate else 1.0 for e in nl_vccs])
        self._ones = np.ones(self.n)
        self._gate_cache: tuple[float, np.ndarray] | None = None

    def clear_cache(self) -> None:
        """Drop the cached per-time-point gate values (invoked by
        :meth:`~repro.analysis.mna.CompiledCircuit.clear_caches`)."""
        self._gate_cache = None

    def gate_values(self, t: float) -> np.ndarray:
        """Per-device gate at *t* (cached: gates depend on time only)."""
        cache = self._gate_cache
        if cache is not None and cache[0] == t:
            return cache[1]
        if not self.any_gate:
            g = self._ones
        else:
            ph = np.mod(float(t), self.gate_period)
            g = (smoothstep((ph - self.gate_t_on) / self.gate_tau)
                 - smoothstep((ph - self.gate_t_off) / self.gate_tau))
            g = np.where(self.has_gate, g, 1.0)
        self._gate_cache = (t, g)
        return g

    def phi(self, vc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Control law and derivative for every device at once."""
        if not self.any_limit:
            return vc, np.ones_like(vc)
        th = np.tanh(vc / self.vlim)
        phi = np.where(self.has_limit, self.vlim * th, vc)
        dphi = np.where(self.has_limit, 1.0 - th * th, 1.0)
        return phi, dphi
