"""Small-signal AC analysis around the DC operating point.

Linearises the circuit at DC and solves ``(G + j w C) X = B`` over a
frequency grid.  Used directly for transfer functions and as the
degenerate (time-invariant) case the LPTV machinery must reduce to -
``tests/test_lptv_vs_ac.py`` checks exactly that.

Parameter states are sparse-native, and AC consumes them both ways: on
a ``wants_csr`` backend the linearisation stays on the circuit's
:class:`~repro.linalg.sparsity.CsrPlan` (the per-frequency system is a
complex-valued CSC factorization over the fixed pattern - no dense
``(n+1)^2`` array anywhere); dense backends take the explicit
:meth:`~repro.analysis.mna.ParamState.to_dense` escape hatch through
the standard dense assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import TWO_PI
from ..errors import AnalysisError
from .dcop import DcResult, dc_operating_point
from .mna import CompiledCircuit, ParamState


@dataclass
class AcResult:
    """Complex node responses over a frequency grid.

    ``x`` has shape ``(n_freq, n)``; :meth:`transfer` returns the
    response of one (differential) node.
    """

    compiled: CompiledCircuit
    state: ParamState
    freqs: np.ndarray
    x: np.ndarray
    dc: DcResult

    def transfer(self, node: str, neg: str | None = None) -> np.ndarray:
        c = self.compiled
        out = self.x[:, c.node_index[node]]
        if neg is not None:
            out = out - self.x[:, c.node_index[neg]]
        return out


def _linearize_at_dc(compiled: CompiledCircuit, state: ParamState,
                     dc: DcResult) -> tuple[np.ndarray, np.ndarray]:
    """Dense ``(G, C)`` at the DC point - the ``to_dense`` escape-hatch
    path used by non-CSR backends."""
    n = compiled.n
    _, g_pad, f_pad = compiled.buffers(())
    compiled.assemble(state, compiled.pad(dc.x), 0.0, g_pad, f_pad)
    g = g_pad[:n, :n].copy()
    c = compiled.capacitance(state)[:n, :n]
    return g, c


def _solve_sweep_csr(compiled: CompiledCircuit, state: ParamState,
                     dc: DcResult, freqs: np.ndarray, b: np.ndarray
                     ) -> np.ndarray:
    """Sparse-native sweep: Jacobian values scattered on the circuit's
    CSR plan at the DC point, then one complex CSC factorization per
    frequency over the fixed pattern - O(nnz) memory end to end."""
    import scipy.sparse.linalg

    asm = compiled.csr_assembler(state)
    f_pad = np.zeros(compiled.n + 1)
    asm.assemble(compiled.pad(dc.x), 0.0, f_pad)
    nnz = asm.plan.nnz
    g_data = asm.g_data[:nnz]
    c_data = asm.c_lin_data[:nnz]
    x = np.empty((freqs.size, compiled.n), dtype=complex)
    data = np.empty(nnz + 1, dtype=complex)
    bc = b.astype(complex)
    for i, f in enumerate(freqs):
        data[:nnz] = g_data + 1j * TWO_PI * f * c_data
        lu = scipy.sparse.linalg.splu(asm.plan.csc_matrix(data))
        x[i] = lu.solve(bc)
    return x


def _solve_sweep_dense(g: np.ndarray, c: np.ndarray, freqs: np.ndarray,
                       b: np.ndarray) -> np.ndarray:
    x = np.empty((freqs.size, g.shape[0]), dtype=complex)
    for i, f in enumerate(freqs):
        a = g + 1j * TWO_PI * f * c
        x[i] = np.linalg.solve(a, b)
    return x


def ac_analysis(compiled: CompiledCircuit, source_name: str,
                freqs: np.ndarray, state: ParamState | None = None,
                amplitude: float = 1.0,
                dc: DcResult | None = None) -> AcResult:
    """AC sweep with a unit (or *amplitude*) stimulus on one source.

    The stimulus replaces the small-signal value of the named voltage or
    current source; all other independent sources are AC grounds, as in
    SPICE ``.AC``.
    """
    state = state or compiled.nominal
    if state.batched:
        raise AnalysisError("AC analysis is batchless")
    freqs = np.atleast_1d(np.asarray(freqs, dtype=float))
    dc = dc or dc_operating_point(compiled, state)
    n = compiled.n

    b = np.zeros(n)
    el = compiled.circuit[source_name]
    from ..circuit.sources import CurrentSource, VoltageSource
    if isinstance(el, VoltageSource):
        b[compiled.branch(source_name)] = amplitude
    elif isinstance(el, CurrentSource):
        p, q = compiled.idx(el.pos), compiled.idx(el.neg)
        if p < n:
            b[p] -= amplitude
        if q < n:
            b[q] += amplitude
    else:
        raise AnalysisError(f"'{source_name}' is not an independent source")

    if compiled.backend.wants_csr:
        x = _solve_sweep_csr(compiled, state, dc, freqs, b)
    else:
        g, c = _linearize_at_dc(compiled, state, dc)
        x = _solve_sweep_dense(g, c, freqs, b)
    return AcResult(compiled=compiled, state=state, freqs=freqs, x=x, dc=dc)
