"""DC operating point and DC sweeps.

Newton-Raphson with step limiting, backed by two homotopies when plain
Newton fails: gmin stepping (a conductance from every node to ground that
is relaxed to :data:`~repro.constants.GMIN_DEFAULT`) and source stepping
(independent sources ramped from zero).  Everything is batched: a DC sweep
over 1000 source values is a single stacked Newton solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (ABSTOL_DEFAULT, GMIN_DEFAULT,
                         MAX_NEWTON_ITERATIONS, VNTOL_DEFAULT)
from ..errors import ConvergenceError, SingularMatrixError
from ..linalg import FactorizationCache
from .mna import CompiledCircuit, ParamState


@dataclass
class NewtonOptions:
    """Tolerances and limits for Newton solves.

    ``abstol`` bounds the KCL residual [A]; the default is loose relative
    to :data:`~repro.constants.ABSTOL_DEFAULT` because the final accept
    test also requires the Newton update itself to be below ``vntol``.
    """

    abstol: float = max(ABSTOL_DEFAULT, 1e-9)
    vntol: float = VNTOL_DEFAULT
    max_iterations: int = MAX_NEWTON_ITERATIONS
    #: Per-iteration cap on any unknown's update magnitude [V or A].
    max_step: float = 0.5


@dataclass
class DcResult:
    """Converged DC solution.

    ``x`` is the unpadded unknown vector (``(*batch, n)``).  Use
    :meth:`voltage` / :meth:`current` for named access.
    """

    compiled: CompiledCircuit
    state: ParamState
    x: np.ndarray

    def voltage(self, pos: str, neg: str = "0") -> np.ndarray | float:
        v = (self.compiled.voltage(self.compiled.pad(self.x), pos)
             - self.compiled.voltage(self.compiled.pad(self.x), neg))
        return float(v) if np.ndim(v) == 0 else v

    def current(self, element_name: str) -> np.ndarray | float:
        i = self.x[..., self.compiled.branch(element_name)]
        return float(i) if np.ndim(i) == 0 else i


def newton_solve(compiled: CompiledCircuit, state: ParamState,
                 x_pad: np.ndarray, t: float,
                 options: NewtonOptions | None = None,
                 source_scale: float = 1.0,
                 gmin: float = GMIN_DEFAULT) -> np.ndarray:
    """Run Newton on the static system ``i(x, t) = 0``; returns ``x_pad``.

    *x_pad* is used as the initial guess and modified in place.  Linear
    solves run on ``compiled.backend``; backends with a reuse policy
    keep one Jacobian factorization across iterations (modified Newton,
    see :mod:`repro.linalg`) - the final ``abstol`` residual check below
    is what guarantees this cannot degrade the accepted solution.

    Raises
    ------
    ConvergenceError
        If the iteration does not meet tolerance.
    """
    opts = options or NewtonOptions()
    n = compiled.n
    batch = x_pad.shape[:-1]
    backend = compiled.backend
    cache = (FactorizationCache(backend,
                                jac_constant=not compiled.has_nonlinear)
             if backend.policy.reuse else None)

    # native-CSR path: batchless solves on a wants_csr backend stamp
    # the sparse-native state values straight onto the circuit's
    # sparsity plan - no dense template or buffer is ever materialised
    use_csr = (cache is not None and backend.wants_csr and not batch
               and not state.batched)
    if use_csr:
        asm = compiled.csr_assembler(state)
        f_pad = np.zeros(n + 1)
        jac = None

        def assemble(jacobian: bool) -> None:
            asm.assemble(x_pad, t, f_pad, source_scale=source_scale,
                         gmin=gmin, jacobian=jacobian)

        def jac_fresh():
            assemble(True)
            return asm.jac_matrix()
    else:
        _, g_pad, f_pad = compiled.buffers(batch)
        jac = g_pad[..., :n, :n]

        def assemble(jacobian: bool) -> None:
            compiled.assemble(state, x_pad, t, g_pad, f_pad,
                              source_scale=source_scale, gmin=gmin,
                              jacobian=jacobian)

        def jac_fresh():
            # cache re-factor: assemble at the current iterate
            assemble(True)
            return jac

    for it in range(opts.max_iterations):
        assemble(cache is None)
        res = f_pad[..., :n]
        try:
            if cache is not None:
                delta = cache.solve(res, jac_fresh)
            else:
                delta = backend.solve(jac, res)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"singular DC Jacobian for '{compiled.circuit.name}' "
                f"(floating node or voltage-source loop?): {exc}",
                iterations=it,
                theta_fingerprint=state.theta_fingerprint()) from exc
        np.clip(delta, -opts.max_step, opts.max_step, out=delta)
        x_pad[..., :n] -= delta
        worst = float(np.max(np.abs(delta))) if delta.size else 0.0
        if worst <= opts.vntol:
            assemble(False)
            worst_f = float(np.max(np.abs(f_pad[..., :n])))
            if worst_f <= opts.abstol:
                return x_pad
    raise ConvergenceError(
        f"Newton failed on '{compiled.circuit.name}' after "
        f"{opts.max_iterations} iterations",
        iterations=opts.max_iterations,
        residual=float(np.max(np.abs(f_pad[..., :n]))),
        theta_fingerprint=state.theta_fingerprint())


def dc_operating_point(compiled: CompiledCircuit,
                       state: ParamState | None = None,
                       t: float = 0.0,
                       x_guess: np.ndarray | None = None,
                       batch_shape: tuple[int, ...] = (),
                       options: NewtonOptions | None = None) -> DcResult:
    """Find the DC operating point (sources evaluated at time *t*).

    Tries plain Newton from the initial-condition guess, then gmin
    stepping, then source stepping.
    """
    state = state or compiled.nominal
    if state.batched:
        batch_shape = state.batch_shape
    if x_guess is not None:
        x_pad = compiled.pad(np.broadcast_to(
            x_guess, batch_shape + (compiled.n,)).copy())
    else:
        x_pad = compiled.initial_padded(batch_shape)

    start = x_pad.copy()
    try:
        newton_solve(compiled, state, x_pad, t, options)
        return DcResult(compiled, state, x_pad[..., :-1].copy())
    except ConvergenceError:
        pass

    # gmin stepping
    x_pad = start.copy()
    try:
        for gmin in np.geomspace(1e-2, GMIN_DEFAULT, 12):
            newton_solve(compiled, state, x_pad, t, options, gmin=gmin)
        return DcResult(compiled, state, x_pad[..., :-1].copy())
    except ConvergenceError:
        pass

    # source stepping
    x_pad = start.copy()
    last_error: ConvergenceError | None = None
    try:
        for scale in np.linspace(0.05, 1.0, 20):
            newton_solve(compiled, state, x_pad, t, options,
                         source_scale=float(scale))
        return DcResult(compiled, state, x_pad[..., :-1].copy())
    except ConvergenceError as exc:
        last_error = exc
    raise ConvergenceError(
        f"no DC operating point found for '{compiled.circuit.name}' "
        f"(Newton, gmin stepping and source stepping all failed): "
        f"{last_error}",
        iterations=(last_error.iterations
                    if last_error is not None else None),
        residual=(last_error.residual
                  if last_error is not None else None),
        theta_fingerprint=state.theta_fingerprint())


def dc_sweep(compiled: CompiledCircuit, source_name: str,
             values: np.ndarray, state: ParamState | None = None,
             options: NewtonOptions | None = None) -> DcResult:
    """Sweep the DC value of one source over *values* (batched solve).

    Returns a :class:`DcResult` whose ``x`` has the sweep as batch axis.
    """
    values = np.asarray(values, dtype=float)
    base = state or compiled.nominal
    swept = compiled.make_state(
        deltas=None, source_values={**base.source_values,
                                    source_name: values},
        batch_shape=values.shape)
    return dc_operating_point(compiled, swept, batch_shape=values.shape,
                              options=options)
