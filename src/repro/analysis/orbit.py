"""The factored LPTV operator along one periodic orbit.

:class:`OrbitLinearization` is the shared engine under every periodic
analysis: shooting PSS Newton updates, the LPTV sensitivity solve
(:mod:`repro.analysis.lptv`), the monodromy/Floquet utilities and the
harmonic/pnoise consumers all reduce to sweeps of the per-step maps

.. math:: A_k \\, \\delta x_k = B_k \\, \\delta x_{k-1} - \\rho_k,
          \\qquad A_k = C/h + \\theta G_k,
          \\quad B_k = C/h - (1 - \\theta) G_{k-1}

along a converged orbit.  Building those maps once - and *storing them
sparsely* - is what this class owns; the consumers only differ in the
right-hand sides they push through.

Two storage engines, selected through the backend seam
(:func:`repro.linalg.krylov.use_matrix_free`):

**Sparse-native** (``wants_csr`` backends at or above the matrix-free
threshold, or forced).  The per-step Jacobians are value arrays over
the circuit's fixed :class:`~repro.linalg.sparsity.CsrPlan` -
``O(n_steps * nnz)`` memory instead of the dense ``(n_steps, n, n)``
stack (3.2 GB for a 1k-node circuit at 400 steps) - and every ``A_k``
is factored once through :meth:`~repro.linalg.LinearSolverBackend.
factor_csc`.  The monodromy matrix is never formed: :meth:`
apply_monodromy` is one block-triangular sweep of cached solves, the
operator the Krylov closures consume.  Time-invariant linearisations
(no MOSFETs / behavioral VCCS: ``G_k`` constant) go further - one
assembled Jacobian row broadcast across the orbit and a single shared
factorization, O(nnz) total.

**Dense** (everything else).  The legacy explicit path, bit-identical
to earlier releases: dense ``g_t`` stack, per-step dense factors from
``backend.factor``.

The factorization list is a *derived cache*: :meth:`clear_factors`
drops it (and the sparse ``B_k`` value block) so long sweeps that
linearise many orbits do not accumulate SuperLU objects; the first
sweep after a clear rebuilds lazily.
"""

from __future__ import annotations

import numpy as np

from ..linalg.krylov import use_matrix_free
from .mna import CompiledCircuit, ParamState


class OrbitLinearization:
    """Per-step linearised maps ``(A_k, B_k)`` of one orbit, factored.

    Parameters
    ----------
    compiled, state:
        The circuit and the parameter state the orbit was integrated
        with.
    x, t:
        Orbit samples ``(n_steps + 1, n)`` (first and last nominally
        equal) and the matching absolute times.
    period:
        Orbit period; the uniform step is ``period / n_steps``.
    method:
        One-step scheme (``"trap"`` / ``"be"``) - sets the per-row
        implicitness via :meth:`~repro.analysis.mna.CompiledCircuit.
        theta_rows`.
    matrix_free:
        Force the sparse (``True``) or dense (``False``) engine;
        ``None`` selects by backend and size (:func:`~repro.linalg.
        krylov.use_matrix_free`).
    """

    def __init__(self, compiled: CompiledCircuit, state: ParamState,
                 x: np.ndarray, t: np.ndarray, period: float,
                 method: str, matrix_free: "bool | None" = None):
        self.compiled = compiled
        self.state = state
        self.n = compiled.n
        self.n_steps = int(x.shape[0]) - 1
        self.h = period / self.n_steps
        self.method = method
        self.theta = compiled.theta_rows(state, method)[:, None]
        self.sparse = use_matrix_free(compiled.backend, compiled.n,
                                      matrix_free)
        #: ``G_k`` is the same at every sample (no state-dependent
        #: devices): one factorization serves all steps.
        self.time_invariant = not compiled.has_nonlinear
        self._factors: "list | None" = None
        if self.sparse:
            self.plan = compiled.csr_plan
            #: Per-step Jacobian values over the plan, ``(N+1, nnz)``.
            #: Time-invariant circuits assemble one row and broadcast
            #: it - their linearisation stores O(nnz), not
            #: O(n_steps * nnz).
            if self.time_invariant:
                row = compiled.orbit_csr_jacobians(state, x[:1], t[:1])
                self.g_data_t = np.broadcast_to(
                    row[0], (self.n_steps + 1, row.shape[1]))
            else:
                self.g_data_t = compiled.orbit_csr_jacobians(state, x, t)
            # the assembler supplies the shared step-matrix helpers
            # (theta_data gather, theta*G + C/h composition) so the
            # conventions live in one place (CsrAssembler)
            self._asm = compiled.csr_assembler(state)
            self._coh_data = self._asm.c_over_h_data(self.h)
            self._theta1 = np.ascontiguousarray(self.theta[:, 0])
            self._b_data_t: "np.ndarray | None" = None
            self.g_t = None
        else:
            n = compiled.n
            _, g_pad, f_pad = compiled.buffers(())
            #: Dense per-step Jacobian stack ``(N+1, n, n)``.
            self.g_t = np.empty((self.n_steps + 1, n, n))
            for k in range(self.n_steps + 1):
                x_pad = compiled.pad(x[k])
                compiled.assemble(state, x_pad, float(t[k]), g_pad, f_pad)
                self.g_t[k] = g_pad[:n, :n]
            self.c = compiled.capacitance(state)[:n, :n]
            self.c_over_h = self.c / self.h

    # ------------------------------------------------------------------
    # factorizations (lazy, clearable)
    # ------------------------------------------------------------------
    def factors(self) -> list:
        """Per-step ``A_k`` factorizations, ``k = 1 .. n_steps``
        (index ``k - 1``).  Built once, lazily; dropped by
        :meth:`clear_factors`."""
        if self._factors is None:
            backend = self.compiled.backend
            if self.sparse:
                if self.time_invariant:
                    f = backend.factor_csc(self._a_csc(1))
                    self._factors = [f] * self.n_steps
                else:
                    self._factors = [backend.factor_csc(self._a_csc(k))
                                     for k in range(1, self.n_steps + 1)]
            else:
                self._factors = [backend.factor(
                    self.c_over_h + self.theta * self.g_t[k])
                    for k in range(1, self.n_steps + 1)]
        return self._factors

    def _a_csc(self, k: int):
        """Factorable CSC of ``A_k`` over the plan (sparse engine) -
        composed by :meth:`~repro.analysis.mna.CsrAssembler.
        step_matrix` so the theta/G/C convention has one owner."""
        self._asm.g_data[:self.plan.nnz] = self.g_data_t[k]
        return self._asm.step_matrix(self._theta1, self._coh_data)

    def clear_factors(self) -> "OrbitLinearization":
        """Drop the factorization list (and the derived ``B_k`` value
        block) so repeated orbit linearisations in long sweeps do not
        accumulate factorizations; the stored linearisation itself
        (``g_data_t`` / ``g_t``) survives and the next sweep rebuilds
        lazily.  Returns ``self``."""
        self._factors = None
        if self.sparse:
            self._b_data_t = None
        return self

    # ------------------------------------------------------------------
    # the per-step maps
    # ------------------------------------------------------------------
    def _b_block(self) -> np.ndarray:
        """``B_k`` value rows over the plan, ``(N, nnz)`` (sparse;
        one broadcast row when time-invariant)."""
        if self._b_data_t is None:
            nnz = self.plan.nnz
            coh = self._coh_data[:nnz]
            one_minus = 1.0 - self._asm.theta_data(self._theta1)
            if self.time_invariant:
                row = coh - one_minus * self.g_data_t[0]
                self._b_data_t = np.broadcast_to(
                    row, (self.n_steps, nnz))
            else:
                self._b_data_t = (coh[None, :]
                                  - one_minus * self.g_data_t[:-1])
        return self._b_data_t

    def b_mat(self, k: int):
        """``B_k`` as a multipliable operand (CSR matrix on the sparse
        engine, dense array otherwise); uses the Jacobian at the
        *previous* sample."""
        if self.sparse:
            return self.plan.csr_view(self._b_block()[k - 1])
        return self.c_over_h - (1.0 - self.theta) * self.g_t[k - 1]

    def step_solve(self, k: int, rhs: np.ndarray) -> np.ndarray:
        """``A_k^{-1} rhs`` for ``(n,)`` or blocked ``(n, m)`` *rhs*."""
        return self.factors()[k - 1].solve(rhs)

    def step_map(self, k: int, v: np.ndarray,
                 rho: "np.ndarray | None" = None) -> np.ndarray:
        """One step of the homogeneous/particular recurrence:
        ``A_k^{-1} (B_k v - rho)``."""
        rhs = self.b_mat(k) @ v
        if rho is not None:
            rhs -= rho
        return self.step_solve(k, rhs)

    def apply_monodromy(self, v: np.ndarray) -> np.ndarray:
        """``M v = dPhi/dx0 . v`` - one block-triangular sweep of the
        cached per-step solves; *v* may be ``(n,)`` or a blocked
        ``(n, m)``.  This is the matrix-free operator the Krylov
        shooting update and the LPTV periodicity closure consume."""
        z = v
        for k in range(1, self.n_steps + 1):
            z = self.step_map(k, z)
        return z

    def bordered_op(self, xdh: np.ndarray, a_idx: int,
                    sign: float = 1.0):
        """Matrix-free bordered oscillator operator for the Krylov
        closures: ``(v, w) -> (sign * ((M - I) v + xdh w), v[a_idx])``
        on ``(n+1, m)`` blocks.

        *xdh* must be the *h-scaled* period column (``xdot(T) * h`` -
        the period unknown becomes the per-step voltage-sized ``dT/h``,
        which is what keeps the operator well conditioned; callers
        unscale the solution's last row by ``h``).  Shooting uses
        ``sign=+1`` (``M - I`` convention), the LPTV periodicity
        closure ``sign=-1`` (``I - M``).  This is the single owner of
        the bordered convention; the dense fallbacks mirror it.
        """
        n = self.n

        def op(vw: np.ndarray) -> np.ndarray:
            v, w = vw[:n], vw[n:]
            top = self.apply_monodromy(v) - v + xdh[:, None] * w
            if sign < 0.0:
                top = -top
            return np.concatenate([top, v[a_idx:a_idx + 1]], axis=0)

        return op

    def monodromy(self) -> np.ndarray:
        """Explicit state-transition matrix over one period.

        Dense engine: the legacy product sweep.  Sparse engine: one
        blocked identity sweep - O(n) columns through the cached
        factorizations, for diagnostics/Floquet use and as the
        fallback when a Krylov closure fails to converge.
        """
        eye = np.eye(self.n)
        if self.sparse:
            return self.apply_monodromy(eye)
        z = eye
        for k in range(1, self.n_steps + 1):
            z = self.step_solve(k, self.b_mat(k) @ z)
        return z

    # ------------------------------------------------------------------
    # dense views for the (small-circuit) harmonic engine
    # ------------------------------------------------------------------
    def g_dense(self, k: int) -> np.ndarray:
        """Dense ``(n, n)`` Jacobian at orbit sample *k*."""
        if self.sparse:
            return self.plan.densify(self.g_data_t[k])
        return self.g_t[k]

    def g_stack(self) -> np.ndarray:
        """Dense ``(N+1, n, n)`` Jacobian stack.

        Only for consumers that are dense by nature and size-gated
        (the harmonic conversion-matrix engine); the shooting/LPTV
        paths never call this.
        """
        if self.sparse:
            return np.stack([self.plan.densify(row)
                             for row in self.g_data_t])
        return self.g_t

    def c_dense(self) -> np.ndarray:
        """Dense ``(n, n)`` capacitance matrix of the linearisation."""
        if self.sparse:
            c_data = self.state.c_data
            if c_data.ndim > 1:
                c_data = c_data[(0,) * (c_data.ndim - 1)]
            return self.plan.densify(c_data)
        return self.c

    def __repr__(self) -> str:
        engine = "sparse" if self.sparse else "dense"
        return (f"OrbitLinearization(n={self.n}, n_steps={self.n_steps}, "
                f"engine={engine})")
