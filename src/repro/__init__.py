"""repro: reproduction of "Fast, Non-Monte-Carlo Estimation of Transient
Performance Variation Due to Device Mismatch" (Kim, Jones, Horowitz;
DAC 2007 / IEEE TCAS-I 2010).

Quick start::

    from repro import (default_technology, ring_oscillator,
                       transient_mismatch_analysis, Frequency)

    tech = default_technology()
    osc = ring_oscillator(tech)
    result = transient_mismatch_analysis(
        osc, [Frequency("f_osc", node="osc1")],
        oscillator_anchor="osc1", t_settle=8e-9, dt_settle=2e-12)
    print(result.report())
"""

from .circuit import (Circuit, Technology, default_technology,
                      Dc, Sine, SmoothPulse, Pwl, GateWindow)
from .analysis import (compile_circuit, dc_operating_point, dc_sweep,
                       transient)
from .linalg import (LinearSolverBackend, DenseBackend,
                     CachedDenseBackend, SparseBackend,
                     available_backends, resolve_backend)
from .analysis.pss import PssOptions, pss, pss_oscillator
from .analysis.lptv import periodic_sensitivities
from .core import (transient_mismatch_analysis, dc_mismatch_analysis,
                   DcLevel, EdgeDelay, Frequency,
                   monte_carlo_transient, monte_carlo_dc,
                   statistical_waveform, width_sensitivities,
                   width_sensitivity_report)
from .circuits import (ring_oscillator, strongarm_offset_testbench,
                       logic_path_testbench, inverter_chain,
                       five_transistor_ota, resistor_string_dac)
from .variation import (CorrelationGroup, ParameterVariation,
                        VariationSpec, spec_for_circuit)
from .service import (AnalysisRequest, AnalysisResult, AnalysisSession,
                      JobQueue, default_session, register_engine,
                      registered_kinds)

__version__ = "1.0.0"

__all__ = [
    "Circuit", "Technology", "default_technology",
    "Dc", "Sine", "SmoothPulse", "Pwl", "GateWindow",
    "compile_circuit", "dc_operating_point", "dc_sweep", "transient",
    "LinearSolverBackend", "DenseBackend", "CachedDenseBackend",
    "SparseBackend", "available_backends", "resolve_backend",
    "pss", "pss_oscillator", "PssOptions", "periodic_sensitivities",
    "transient_mismatch_analysis", "dc_mismatch_analysis",
    "DcLevel", "EdgeDelay", "Frequency",
    "monte_carlo_transient", "monte_carlo_dc",
    "statistical_waveform", "width_sensitivities",
    "width_sensitivity_report",
    "ring_oscillator", "strongarm_offset_testbench",
    "logic_path_testbench", "inverter_chain", "five_transistor_ota",
    "resistor_string_dac",
    "CorrelationGroup", "ParameterVariation", "VariationSpec",
    "spec_for_circuit",
    "AnalysisRequest", "AnalysisResult", "AnalysisSession", "JobQueue",
    "default_session", "register_engine", "registered_kinds",
    "__version__",
]
