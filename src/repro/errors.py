"""Exception hierarchy for the repro package.

Solver failures (:class:`ConvergenceError`, :class:`SingularMatrixError`)
carry structured context - iteration count, final residual, and the
content fingerprint of the parameter state ("theta") that failed - so a
failure harvested from a worker process still identifies *which* sample
of *which* workload diverged.  :class:`FailureRecord` is the
JSON-serializable form of one such failure as it appears on degraded
analysis results (see :mod:`repro.service.shards`).
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for every error raised by this package."""


class NetlistError(ReproError):
    """Raised for malformed circuits: duplicate names, unknown nodes, ..."""


class SolverError(ReproError):
    """Base of numerical-solver failures, with uniform context.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Norm of the final residual, when meaningful.
    theta_fingerprint:
        Content fingerprint of the parameter state under which the
        solve failed (see
        :meth:`~repro.analysis.mna.ParamState.theta_fingerprint`), when
        one was in scope at the raise site.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None,
                 theta_fingerprint: str | None = None):
        super().__init__(message)
        self.message = message
        self.iterations = iterations
        self.residual = residual
        self.theta_fingerprint = theta_fingerprint

    def context(self) -> dict:
        """The non-``None`` context fields as a plain dict."""
        out = {}
        if self.iterations is not None:
            out["iterations"] = self.iterations
        if self.residual is not None:
            out["residual"] = self.residual
        if self.theta_fingerprint is not None:
            out["theta_fingerprint"] = self.theta_fingerprint
        return out

    def __str__(self) -> str:
        parts = []
        if self.iterations is not None:
            parts.append(f"iterations={self.iterations}")
        if self.residual is not None:
            parts.append(f"residual={self.residual:.3e}")
        if self.theta_fingerprint is not None:
            parts.append(f"theta={self.theta_fingerprint[:12]}")
        if not parts:
            return self.message
        return f"{self.message} [{', '.join(parts)}]"

    def __reduce__(self):
        # default Exception pickling only keeps ``args``; solver errors
        # cross process boundaries (pool workers), so the context must
        # survive the round trip
        return (type(self), (self.message, self.iterations,
                             self.residual, self.theta_fingerprint))


class ConvergenceError(SolverError):
    """Raised when an iterative solver fails to converge."""


class SingularMatrixError(SolverError):
    """Raised when an MNA matrix is singular (floating node, V-loop, ...)."""


class AnalysisError(ReproError):
    """Raised when an analysis is asked something it cannot provide."""


class MeasurementError(ReproError):
    """Raised when a waveform measurement cannot be taken
    (missing crossing, no oscillation, ...)."""


class JobTimeoutError(ReproError):
    """Raised (internally, by the job supervisor) when one attempt of a
    supervised job overruns its :class:`~repro.service.jobs.RetryPolicy`
    deadline.  The attempt is abandoned and re-dispatched; the error
    surfaces only on a :class:`FailureRecord` once retries are
    exhausted."""


class WorkerCrashError(ReproError):
    """Raised when a worker process died mid-job (the supervised form
    of :class:`concurrent.futures.process.BrokenProcessPool`), or by the
    fault-injection harness simulating such a crash in-process."""


class TransportError(ReproError):
    """Raised by the network client (:mod:`repro.service.client`) when a
    call never produced an HTTP response: connection refused/reset, DNS
    failure, socket timeout - the daemon may not even have seen the
    request.  Wraps the raw :class:`urllib.error.URLError` /
    :class:`OSError`, naming the endpoint and method so a multi-daemon
    scatter can say *which* worker dropped.  Maps to HTTP 502 should a
    relay ever re-serve it."""

    def __init__(self, message: str, endpoint: str | None = None,
                 method: str | None = None):
        super().__init__(message)
        self.message = message
        self.endpoint = endpoint
        self.method = method

    def __reduce__(self):
        return (type(self), (self.message, self.endpoint, self.method))


class DrainingError(ReproError):
    """Raised by a daemon that is gracefully draining
    (``POST /admin/drain``): new ``/run``/``/shard``/``/jobs`` work is
    refused with HTTP 503 while in-flight jobs finish.  ``retry_after``
    carries the server's retry hint [s]; a
    :class:`~repro.service.resilience.WorkerPool` reroutes to another
    endpoint instead of waiting."""

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.message = message
        self.retry_after = retry_after

    def __reduce__(self):
        return (type(self), (self.message, self.retry_after))


class AuthenticationError(ReproError):
    """Raised by the network front-end (:mod:`repro.service.net`) when a
    request carries no tenant token, or an unknown one.  Maps to HTTP
    401 on the wire."""


class QuotaExceededError(ReproError):
    """Raised by the network front-end when a tenant exceeds one of its
    :class:`~repro.service.net.TenantConfig` quotas (e.g. pending
    asynchronous jobs).  Maps to HTTP 429 on the wire."""


#: Error classes a supervised job retry can plausibly fix: numerical
#: failures (possibly transient - a marginal sample, a perturbed
#: start), infrastructure failures (crashed worker, overrun deadline,
#: dropped connection).  Deterministic request errors (AnalysisError,
#: NetlistError) are deliberately absent - retrying a malformed request
#: cannot succeed.
RETRYABLE_ERRORS = (ConvergenceError, SingularMatrixError,
                    MeasurementError, JobTimeoutError, WorkerCrashError,
                    TransportError)


@dataclass(frozen=True)
class FailureRecord:
    """One supervised-job failure as a structured, serializable value.

    Attached to degraded :class:`~repro.service.shards.ShardResult` /
    :class:`~repro.service.requests.AnalysisResult` values (and summed
    into ``n_failed``); round-trips through
    :mod:`repro.service.serialize`.
    """

    #: Exception class name from this module's taxonomy
    #: (``"ConvergenceError"``, ``"JobTimeoutError"``, ...).
    error: str
    message: str
    #: Supervision site: ``"shard"`` / ``"request"`` for server-side
    #: execution failures, ``"transport"`` for a shard that exhausted
    #: every endpoint of a :class:`~repro.service.resilience.WorkerPool`
    #: without ever getting a response.
    site: str
    #: Attempts performed before giving up.
    attempts: int
    #: Owned sample span ``[start, stop)`` for shard failures.
    start: int | None = None
    stop: int | None = None
    #: Solver context, when the terminal error carried it.
    iterations: int | None = None
    residual: float | None = None
    theta_fingerprint: str | None = None

    @classmethod
    def from_exception(cls, exc: BaseException, site: str, attempts: int,
                       start: int | None = None,
                       stop: int | None = None) -> "FailureRecord":
        ctx = exc.context() if isinstance(exc, SolverError) else {}
        message = (exc.message if isinstance(exc, SolverError)
                   else str(exc))
        return cls(error=type(exc).__name__, message=message, site=site,
                   attempts=attempts, start=start, stop=stop,
                   iterations=ctx.get("iterations"),
                   residual=ctx.get("residual"),
                   theta_fingerprint=ctx.get("theta_fingerprint"))

    @property
    def n_lanes(self) -> int:
        """Lanes lost to this failure (0 for non-shard failures)."""
        if self.start is None or self.stop is None:
            return 0
        return self.stop - self.start
