"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class NetlistError(ReproError):
    """Raised for malformed circuits: duplicate names, unknown nodes, ..."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Norm of the final residual, when meaningful.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SingularMatrixError(ReproError):
    """Raised when an MNA matrix is singular (floating node, V-loop, ...)."""


class AnalysisError(ReproError):
    """Raised when an analysis is asked something it cannot provide."""


class MeasurementError(ReproError):
    """Raised when a waveform measurement cannot be taken
    (missing crossing, no oscillation, ...)."""
