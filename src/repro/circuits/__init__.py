"""Benchmark circuits and testbenches from the paper's evaluation.

* :mod:`~repro.circuits.comparator` - StrongARM clocked comparator and the
  Fig. 6 offset-measurement feedback testbench,
* :mod:`~repro.circuits.logic` - CMOS gates and the Fig. 7 logic path,
* :mod:`~repro.circuits.oscillator` - the 5-stage ring oscillator,
* :mod:`~repro.circuits.amplifiers` - five-transistor OTA (DC-match
  validation),
* :mod:`~repro.circuits.dac` - resistor-string DAC for the Eq. 13 DNL
  example,
* :mod:`~repro.circuits.ladders` - synthetic RC ladders for the
  sparse-scaling benchmarks and memory-regression tests.
"""

from .amplifiers import five_transistor_ota
from .comparator import (ComparatorTestbench, strongarm_comparator,
                         strongarm_offset_testbench)
from .dac import resistor_string_dac
from .ladders import rc_ladder
from .logic import (LogicPathTestbench, add_inverter, add_nand2,
                    inverter_chain, logic_path_testbench)
from .oscillator import ring_oscillator

__all__ = [
    "strongarm_comparator", "strongarm_offset_testbench",
    "ComparatorTestbench",
    "add_inverter", "add_nand2", "inverter_chain",
    "logic_path_testbench", "LogicPathTestbench",
    "ring_oscillator",
    "five_transistor_ota",
    "resistor_string_dac",
    "rc_ladder",
]
