"""Resistor-string DAC - the Eq. 13 DNL example.

Section V-D of the paper shows how the covariance between two measured
variations turns into the variance of a *derived* metric: the DAC
differential nonlinearity ``DNL_N = (V_{N+1} - V_N) - LSB`` obeys

.. math:: \\sigma_{\\Delta N}^2 = \\sigma_{N+1}^2 + \\sigma_N^2
          - 2\\,\\sigma_{N+1,N}

(Eq. 13).  Adjacent taps of a resistor string share most of their
resistors, so their variations are strongly correlated and the DNL sigma
is far smaller than an uncorrelated estimate would suggest - precisely
the effect the correlation machinery must capture.
"""

from __future__ import annotations

from ..circuit import Circuit, Technology


def resistor_string_dac(tech: Technology, n_bits: int = 3,
                        r_unit: float = 1e3, sigma_rel: float = 0.01,
                        name: str = "resistor_string_dac") -> Circuit:
    """Build a ``2**n_bits``-level resistor-string DAC.

    The string runs from ``vdd`` down to ground through ``2**n_bits``
    nominally equal resistors; tap ``tap1 ... tap(2^n - 1)`` sits above
    resistor ``i``.  All taps are observed simultaneously, so a single
    DC mismatch analysis yields every code voltage's variation *and* all
    cross-correlations.
    """
    n_levels = 2 ** n_bits
    ckt = Circuit(name)
    ckt.add_vsource("VREF", "vdd", "0", dc=tech.vdd)
    top = "vdd"
    for i in range(n_levels - 1, 0, -1):
        node = f"tap{i}"
        ckt.add_resistor(f"R{i + 1}", top, node, r_unit,
                         sigma_rel=sigma_rel)
        top = node
    ckt.add_resistor("R1", top, "0", r_unit, sigma_rel=sigma_rel)
    return ckt


def dac_tap_names(n_bits: int = 3) -> list[str]:
    """Tap node names from code 1 upward (code 0 is ground)."""
    return [f"tap{i}" for i in range(1, 2 ** n_bits)]
