"""Synthetic RC-ladder netlists for scaling benchmarks and tests.

A chain of ``n_sections`` identical RC sections behind a driven input
node: near-tridiagonal MNA structure, so ``nnz`` grows linearly with
the node count while a dense template grows quadratically.  This is
the shared workload of the sparse-backend benchmark
(``benchmarks/bench_backends.py``), the large-state memory benchmark
(``benchmarks/bench_large_state.py``) and the O(nnz) state-memory
regression test (``tests/test_sparse_state.py``) - one definition, so
the benchmark and the tests that gate it always measure the same
circuit.
"""

from __future__ import annotations

from ..circuit import Circuit, Sine, TimeFunction


def rc_ladder(n_sections: int, r: float = 100.0, c: float = 1e-12,
              wave: "TimeFunction | None" = None) -> Circuit:
    """``n_sections``-section RC ladder (``n_sections + 1`` nodes
    ``n0 ... nN``) driven by a voltage source at ``n0``.

    The default drive is the 5 MHz sine the backend benchmarks have
    always used; pass *wave* to override.
    """
    if wave is None:
        wave = Sine(amplitude=0.5, freq=5e6, offset=0.5)
    ckt = Circuit(f"ladder{n_sections}")
    ckt.add_vsource("VIN", "n0", "0", wave=wave)
    for k in range(1, n_sections + 1):
        ckt.add_resistor(f"R{k}", f"n{k - 1}", f"n{k}", r)
        ckt.add_capacitor(f"C{k}", f"n{k}", "0", c)
    return ckt
