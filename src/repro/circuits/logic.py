"""CMOS gates and the paper's Fig. 7 logic path.

The logic-path benchmark measures the delays from the rising edges of two
inputs ``X`` and ``Y`` to the falling edges of two NAND outputs ``A`` and
``B``, and - the point of Table I - the *correlation* between the two
delay variations:

* when ``X`` arrives last, both outputs are triggered through the shared
  buffer gates ``ga``/``gb``, so their delay variations are strongly
  correlated;
* when ``Y`` arrives last, ``A`` and ``B`` are triggered through disjoint
  buffer chains and the correlation collapses.

Setting up the periodic steady state is exactly the paper's recipe
(Section IV-B): all inputs are periodic pulses with a common period long
enough for the signals to settle between edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit import Circuit, SmoothPulse, Technology


def add_inverter(ckt: Circuit, name: str, inp: str, out: str,
                 tech: Technology, wn: float = 0.6e-6, wp: float = 1.2e-6,
                 l: float | None = None, vdd_node: str = "vdd") -> None:
    """Add a static CMOS inverter built from two MOSFETs."""
    l = l or tech.l_min
    ckt.add_mosfet(f"{name}_MN", out, inp, "0", "0", wn, l, tech,
                   polarity="n")
    ckt.add_mosfet(f"{name}_MP", out, inp, vdd_node, vdd_node, wp, l, tech,
                   polarity="p")


def add_nand2(ckt: Circuit, name: str, in_a: str, in_b: str, out: str,
              tech: Technology, wn: float = 1.2e-6, wp: float = 1.2e-6,
              l: float | None = None, vdd_node: str = "vdd") -> None:
    """Add a two-input NAND gate (series nMOS stack, parallel pMOS)."""
    l = l or tech.l_min
    mid = f"{name}_x"
    ckt.add_mosfet(f"{name}_MNA", out, in_a, mid, "0", wn, l, tech,
                   polarity="n")
    ckt.add_mosfet(f"{name}_MNB", mid, in_b, "0", "0", wn, l, tech,
                   polarity="n")
    ckt.add_mosfet(f"{name}_MPA", out, in_a, vdd_node, vdd_node, wp, l,
                   tech, polarity="p")
    ckt.add_mosfet(f"{name}_MPB", out, in_b, vdd_node, vdd_node, wp, l,
                   tech, polarity="p")


def inverter_chain(tech: Technology, n_stages: int = 4,
                   period: float = 4e-9, t_edge: float = 50e-12,
                   c_load: float = 2e-15,
                   name: str = "inverter_chain") -> Circuit:
    """A driven inverter chain ``in -> n1 -> ... -> nN`` (delay testbench).

    The input pulse rises at ``0.25 * period`` and falls at
    ``0.625 * period``, leaving room for the chain to settle within each
    half-period.
    """
    ckt = Circuit(name)
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VIN", "in", "0", wave=SmoothPulse(
        v0=0.0, v1=tech.vdd, delay=0.25 * period, t_rise=t_edge,
        t_high=0.375 * period - t_edge, t_fall=t_edge, t_period=period))
    prev = "in"
    for i in range(1, n_stages + 1):
        out = f"n{i}"
        add_inverter(ckt, f"g{i}", prev, out, tech)
        if c_load > 0.0:
            ckt.add_capacitor(f"CL{i}", out, "0", c_load)
        prev = out
    return ckt


@dataclass(frozen=True)
class LogicPathTestbench:
    """The Fig. 7 logic path plus its measurement metadata.

    Attributes
    ----------
    circuit:
        The netlist (periodic pulse sources included).
    period:
        Fundamental period of the testbench [s].
    t_trigger:
        Rise instant of the *late* input within the period [s].
    vth:
        Logic threshold used for all delay measurements [V].
    late_input:
        ``"X"`` or ``"Y"`` - which input arrives last (selects which
        gates lie on the critical paths to ``A`` and ``B``).
    """

    circuit: Circuit
    period: float
    t_trigger: float
    vth: float
    late_input: str


def logic_path_testbench(tech: Technology, late_input: str = "X",
                         period: float = 8e-9, t_edge: float = 60e-12,
                         c_wire: float = 2e-15) -> LogicPathTestbench:
    """Build the Fig. 7 logic path with a chosen input arrival order.

    Topology::

        X  - ga - gb ----------+-- NAND_A --> A
                               |
        Y  - gc - gd ----------+   (A inputs: gb out, gd out)
        Y  - ge - gf ----------+-- NAND_B --> B
                               |
        (B inputs: gb out, gf out)

    Both NAND outputs fall when their *latest* input rises.  With ``X``
    late the critical paths to A and B share ``ga`` and ``gb`` (paper
    Table I, first row); with ``Y`` late they run through the disjoint
    chains ``gc/gd`` and ``ge/gf`` (second row).
    """
    if late_input not in ("X", "Y"):
        raise ValueError("late_input must be 'X' or 'Y'")
    ckt = Circuit(f"logic_path_{late_input}_late")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)

    t_early = 0.15 * period
    t_late = 0.40 * period
    t_x = t_late if late_input == "X" else t_early
    t_y = t_early if late_input == "X" else t_late
    high = 0.30 * period

    def pulse(delay: float) -> SmoothPulse:
        return SmoothPulse(v0=0.0, v1=tech.vdd, delay=delay, t_rise=t_edge,
                           t_high=high, t_fall=t_edge, t_period=period)

    ckt.add_vsource("VX", "X", "0", wave=pulse(t_x))
    ckt.add_vsource("VY", "Y", "0", wave=pulse(t_y))

    # shared X buffer: ga, gb (non-inverting buffer = two inverters)
    add_inverter(ckt, "ga", "X", "xa", tech)
    add_inverter(ckt, "gb", "xa", "xb", tech)
    # two disjoint Y buffers
    add_inverter(ckt, "gc", "Y", "ya1", tech)
    add_inverter(ckt, "gd", "ya1", "ya", tech)
    add_inverter(ckt, "ge", "Y", "yb1", tech)
    add_inverter(ckt, "gf", "yb1", "yb", tech)
    # output NAND gates
    add_nand2(ckt, "gA", "xb", "ya", "A", tech)
    add_nand2(ckt, "gB", "xb", "yb", "B", tech)

    for node in ("xa", "xb", "ya1", "ya", "yb1", "yb", "A", "B"):
        ckt.add_capacitor(f"CW_{node}", node, "0", c_wire)

    return LogicPathTestbench(circuit=ckt, period=period,
                              t_trigger=t_late + t_edge,
                              vth=0.5 * tech.vdd, late_input=late_input)
