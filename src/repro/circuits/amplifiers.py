"""Five-transistor OTA - the DC-match validation vehicle.

The paper presents its method as the transient-domain extension of the DC
sensitivity-based mismatch analysis of Oehm & Schumacher [8] and the
commercial ``dcmatch`` analyses [9], whose canonical demo is the input
offset of a differential amplifier.  This circuit exercises that prior
art inside this package: ``repro.core.dc_mismatch_analysis`` on the OTA
must agree with Monte-Carlo, which validates the shared
injection/sensitivity machinery at DC before the LPTV machinery builds
on it.

By default the OTA is wired as a unity-gain buffer (output fed back to
the inverting input) so the offset appears *input-referred* at the
output: ``V_os = v(out) - v(inp)``.  This is the well-conditioned way to
measure amplifier offset - the open-loop output of a high-gain stage
rails for microvolt-level input offsets, which makes a linear estimate
(and indeed the measurement itself) meaningless there.
"""

from __future__ import annotations

from ..circuit import Circuit, Technology


def five_transistor_ota(tech: Technology, w_in: float = 4.0e-6,
                        w_load: float = 2.0e-6, w_tail: float = 4.0e-6,
                        l: float | None = None, v_cm: float = 0.8,
                        v_bias: float = 0.55,
                        unity_gain: bool = True,
                        name: str = "five_transistor_ota") -> Circuit:
    """Build a 5T OTA: nMOS diff pair, pMOS mirror load, nMOS tail.

    Nodes: non-inverting input ``inp`` (source ``VIP``), inverting input
    ``inn``, output ``out``, mirror node ``mir``, tail node ``tail``.
    With ``unity_gain=True`` (default) the output drives ``inn`` and
    ``v(out) - v(inp)`` is the input-referred offset; otherwise ``inn``
    is driven by a source ``VIN`` at the common mode.
    """
    l = l or 2.0 * tech.l_min   # analog devices: longer channel
    ckt = Circuit(name)
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VIP", "inp", "0", dc=v_cm)
    ckt.add_vsource("VB", "bias", "0", dc=v_bias)
    inn = "out" if unity_gain else "inn"
    if not unity_gain:
        ckt.add_vsource("VIN", "inn", "0", dc=v_cm)

    ckt.add_mosfet("MT", "tail", "bias", "0", "0", w_tail, l, tech, "n")
    # MI1 (mirror/diode side) carries the non-inverting input; MI2
    # (output side) is inverting - raising its gate pulls ``out`` down -
    # so the unity-gain feedback goes to MI2's gate
    ckt.add_mosfet("MI1", "mir", "inp", "tail", "0", w_in, l, tech, "n")
    ckt.add_mosfet("MI2", "out", inn, "tail", "0", w_in, l, tech, "n")
    ckt.add_mosfet("ML1", "mir", "mir", "vdd", "vdd", w_load, l, tech, "p")
    ckt.add_mosfet("ML2", "out", "mir", "vdd", "vdd", w_load, l, tech, "p")
    ckt.add_capacitor("CL", "out", "0", 50e-15)
    ckt.set_ic(vdd=tech.vdd, inp=v_cm, out=v_cm, mir=tech.vdd - 0.4,
               bias=v_bias, tail=0.2)
    return ckt
