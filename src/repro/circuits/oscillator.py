"""Ring oscillator benchmark (paper Sections IV-C, VI, VIII).

A five-stage CMOS inverter ring.  The oscillator is autonomous: its
fundamental frequency is unknown a priori and shifts with mismatch, which
is exactly the variation the paper measures (Figs. 11-12 study the
linear-model error as the mismatch grows).
"""

from __future__ import annotations

from ..circuit import Circuit, Technology

#: Node-name prefix of the ring stages: ``osc1 ... oscN``.
STAGE_PREFIX = "osc"


def ring_oscillator(tech: Technology, n_stages: int = 5,
                    wn: float = 1.0e-6, wp: float = 2.0e-6,
                    l: float | None = None,
                    c_load: float = 5e-15,
                    name: str = "ring_oscillator") -> Circuit:
    """Build an *n_stages* inverter ring (odd stage count required).

    Parameters
    ----------
    tech:
        Process technology (supplies, device params, Pelgrom constants).
    wn, wp, l:
        Inverter device sizes; *l* defaults to the minimum length.
    c_load:
        Extra load capacitance per stage [F] - slows the ring into a
        cleaner relaxation regime and represents wiring load.

    Returns
    -------
    Circuit
        Stage outputs are ``osc1 ... oscN``; supply node is ``vdd``.
        Initial conditions kick the ring off its unstable symmetric
        equilibrium.
    """
    if n_stages % 2 == 0 or n_stages < 3:
        raise ValueError("a ring oscillator needs an odd stage count >= 3")
    l = l or tech.l_min
    ckt = Circuit(name)
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    nodes = [f"{STAGE_PREFIX}{i + 1}" for i in range(n_stages)]
    for i in range(n_stages):
        inp = nodes[i - 1] if i > 0 else nodes[-1]
        out = nodes[i]
        ckt.add_mosfet(f"MN{i + 1}", out, inp, "0", "0", wn, l, tech,
                       polarity="n")
        ckt.add_mosfet(f"MP{i + 1}", out, inp, "vdd", "vdd", wp, l, tech,
                       polarity="p")
        if c_load > 0.0:
            ckt.add_capacitor(f"CL{i + 1}", out, "0", c_load)
    # asymmetric start: alternate high/low so the ring leaves the
    # metastable all-equal state immediately
    ckt.set_ic(vdd=tech.vdd)
    for i, node in enumerate(nodes):
        ckt.set_ic(**{node: 0.0 if i % 2 == 0 else tech.vdd})
    return ckt
