"""StrongARM clocked comparator and the paper's Fig. 6 offset testbench.

The comparator (paper Fig. 10(a), after [19]) is a clocked regenerative
latch: during the low clock phase all internal nodes precharge to VDD;
when the clock rises, the tail turns on, the input pair discharges the
intermediate nodes proportionally to the differential input, and the
cross-coupled pairs regenerate the imbalance to full rail.

Its *input-referred offset* cannot be measured by a DC analysis - the
paper's Section IV-A explains why - so the Fig. 6 testbench turns the
offset search into a periodic steady state:

* a clocked sampler (gated saturating transconductor) senses the output
  difference during a window early in the evaluation phase, while the
  regeneration gain is still moderate;
* an ideal integrator accumulates the sampled error onto the ``vos``
  node;
* ``vos`` is applied differentially back to the comparator input.

At the periodic steady state the sampled output difference is zero: the
comparator sits at its metastable point and ``v(vos)`` *is* the
input-referred offset.  Mismatch analysis then reads the variation of
``vos`` at baseband (paper Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit import Circuit, GateWindow, SmoothPulse, Technology

#: Transistor names of the comparator core, keyed by function.  These are
#: the devices whose width sensitivities the paper's Fig. 10(b) ranks.
CORE_DEVICES = {
    "M1": "tail",
    "M2": "input+",
    "M3": "input-",
    "M4": "nmos latch",
    "M5": "nmos latch",
    "M6": "pmos latch",
    "M7": "pmos latch",
    "M8": "precharge out-",
    "M9": "precharge out+",
    "M10": "precharge mid+",
    "M11": "precharge mid-",
}


def strongarm_comparator(ckt: Circuit, tech: Technology,
                         inp: str = "inp", inn: str = "inn",
                         clk: str = "clk", outp: str = "outp",
                         outn: str = "outn", vdd_node: str = "vdd",
                         w_tail: float = 4.0e-6, w_in: float = 2.0e-6,
                         w_nlatch: float = 1.6e-6, w_platch: float = 1.2e-6,
                         w_pre: float = 0.6e-6,
                         l: float | None = None) -> None:
    """Add the 11-transistor StrongARM latch to *ckt*.

    Internal nodes: ``tail`` (common source of the input pair), ``midp`` /
    ``midn`` (input-pair drains, sources of the nMOS latch).
    """
    l = l or tech.l_min
    ckt.add_mosfet("M1", "tail", clk, "0", "0", w_tail, l, tech, "n")
    ckt.add_mosfet("M2", "midp", inp, "tail", "0", w_in, l, tech, "n")
    ckt.add_mosfet("M3", "midn", inn, "tail", "0", w_in, l, tech, "n")
    # cross-coupled nMOS: M4 discharges outn when outp stays high, ...
    ckt.add_mosfet("M4", "outn", outp, "midp", "0", w_nlatch, l, tech, "n")
    ckt.add_mosfet("M5", "outp", outn, "midn", "0", w_nlatch, l, tech, "n")
    # cross-coupled pMOS
    ckt.add_mosfet("M6", "outn", outp, vdd_node, vdd_node, w_platch, l,
                   tech, "p")
    ckt.add_mosfet("M7", "outp", outn, vdd_node, vdd_node, w_platch, l,
                   tech, "p")
    # precharge switches (active while clk is low)
    ckt.add_mosfet("M8", "outn", clk, vdd_node, vdd_node, w_pre, l,
                   tech, "p")
    ckt.add_mosfet("M9", "outp", clk, vdd_node, vdd_node, w_pre, l,
                   tech, "p")
    ckt.add_mosfet("M10", "midp", clk, vdd_node, vdd_node, w_pre, l,
                   tech, "p")
    ckt.add_mosfet("M11", "midn", clk, vdd_node, vdd_node, w_pre, l,
                   tech, "p")


@dataclass(frozen=True)
class ComparatorTestbench:
    """The Fig. 6 feedback testbench around the StrongARM latch.

    Attributes
    ----------
    circuit:
        Complete netlist (comparator + clock + feedback loop).
    period:
        Clock period [s] - the PSS fundamental.
    vos_node:
        Node whose steady-state value is the input-referred offset.
    settle_cycles:
        Clock cycles the feedback loop needs to converge from a cold
        start (used by both the PSS settle phase and the Monte-Carlo
        baseline - this is what makes the comparator the paper's most
        expensive MC benchmark).
    """

    circuit: Circuit
    period: float
    vos_node: str = "vos"
    settle_cycles: int = 60


def strongarm_offset_testbench(tech: Technology,
                               period: float = 2e-9,
                               v_cm: float = 0.9,
                               c_int: float = 0.5e-12,
                               loop_gm: float = 600e-6,
                               v_limit: float = 0.4,
                               settle_cycles: int = 60,
                               **sizes) -> ComparatorTestbench:
    """Build the offset-measurement testbench (paper Fig. 6).

    Parameters
    ----------
    period:
        Clock period; precharge occupies the first half of the cycle,
        evaluation the second.
    v_cm:
        Input common mode [V].
    c_int, loop_gm, v_limit:
        Integrator capacitor, sampler transconductance and sampler soft
        clamp.

    Notes
    -----
    The sampler window sits *early in the evaluation phase*
    (``[0.555, 0.585] x period``), while the latch is still amplifying
    linearly (window gain ~8 for the default sizing) and before
    regeneration saturates the outputs.  Two reasons:

    * the feedback then has a *smooth* metastable fixed point - sampling
      after full regeneration turns the loop into a bang-bang limit
      cycle that never reaches a period-1 steady state;
    * the loop gain ``A * gm * t_window / c_int`` is ~0.6 with the
      defaults, so the loop converges geometrically (factor ~0.4 per
      cycle) from tens of millivolts down to sub-nanovolt, which is what
      both the PSS settle phase and the Monte-Carlo lanes rely on.

    The measured ``vos`` is the input that nulls the window-averaged
    early differential output - to exponential accuracy the same input
    that leaves the latch metastable, i.e. the paper's offset
    definition.

    Other parameters
    ----------------
    sizes:
        Forwarded to :func:`strongarm_comparator` (``w_tail=...`` etc.).
    """
    ckt = Circuit("strongarm_offset_tb")
    ckt.add_vsource("VDD", "vdd", "0", dc=tech.vdd)
    ckt.add_vsource("VCM", "vcm", "0", dc=v_cm)

    # Clock: precharge while low, evaluate while high.  The evaluation
    # pulse is kept short - just beyond the sampler window - so that the
    # regenerative gain accumulated within one cycle stays bounded
    # (~1e3-1e4).  At the metastable steady state the latch imbalance is
    # zero, but the *linearised* one-period map amplifies perturbations
    # by the full regeneration gain; with a rail-to-rail evaluation
    # phase that gain is e^(T_eval/tau) ~ 1e30+, which no shooting/LPTV
    # solver can represent in double precision.  Bounding it keeps the
    # monodromy well conditioned while leaving the offset definition
    # (null of the window-averaged early differential) untouched.
    t_edge = 0.05 * period
    ckt.add_vsource("VCLK", "clk", "0", wave=SmoothPulse(
        v0=0.0, v1=tech.vdd, delay=0.5 * period, t_rise=t_edge,
        t_high=0.08 * period, t_fall=t_edge, t_period=period))

    # differential application of the feedback offset: in+ = vcm + vos/2
    ckt.add_vcvs("EIP", "inp", "vcm", "vos", "0", gain=0.5)
    ckt.add_vcvs("EIN", "inn", "vcm", "vos", "0", gain=-0.5)

    strongarm_comparator(ckt, tech, **sizes)

    # sampler + integrator: sense (outp - outn) in a window early in the
    # evaluation phase, integrate onto vos with negative feedback sign
    t_on = 0.555 * period
    t_off = 0.585 * period
    gate = GateWindow(t_on=t_on, t_off=t_off, period=period,
                      tau=0.01 * period)
    ckt.add_vccs("GSAMP", "vos", "0", "outp", "outn", gm=loop_gm,
                 vlimit=v_limit, gate=gate)
    ckt.add_capacitor("CINT", "vos", "0", c_int)

    # cold-start initial conditions: precharged internal nodes, zero vos
    ckt.set_ic(vdd=tech.vdd, vcm=v_cm, inp=v_cm, inn=v_cm, vos=0.0,
               outp=tech.vdd, outn=tech.vdd, midp=tech.vdd, midn=tech.vdd,
               tail=0.0, clk=0.0)
    return ComparatorTestbench(circuit=ckt, period=period,
                               settle_cycles=settle_cycles)
