"""Matrix-free Krylov solvers for the periodic (PSS/LPTV) engines.

The shooting update and the LPTV periodicity closure both solve systems
in the monodromy matrix ``M = dPhi/dx0`` - the one structurally *dense*
object of the periodic pipeline.  Forming ``M`` explicitly costs
``O(n_steps * n^3)`` dense work and ``O(n^2)`` memory, which is what
kept the periodic analyses from scaling with the circuit's sparsity.

This module removes the explicit matrix: ``M v`` is one block-triangular
sweep of cached per-step solves (``v_k = A_k^{-1} B_k v_{k-1}``, see
:class:`~repro.analysis.orbit.OrbitLinearization`), and the outer
systems ``(I - M) x = b`` (periodicity closure), ``(M - I) dx = -r``
(shooting Newton) and their bordered oscillator variants are solved
with GMRES on that operator.  GMRES converges in a handful of sweeps
here because the spectrum of ``I - M`` is clustered around 1 for any
stable orbit (the Floquet multipliers live inside the unit disk).

:func:`gmres_blocked` batches *many right-hand sides through one Arnoldi
process per column with a shared operator application*: each iteration
applies the sweep to all columns at once (one blocked back-substitution
per orbit step), which is what keeps the LPTV closure's cost independent
of the mismatch-parameter count beyond cheap vector work -
:func:`solve_blocked` adds column chunking so the Krylov basis stays
within a fixed memory budget for large injection sets.

Engine selection (:func:`use_matrix_free`) follows the backend seam:
matrix-free engages on ``wants_csr`` backends at or above
:data:`MATRIX_FREE_MIN_UNKNOWNS` unknowns; below the threshold (or on
dense backends) the periodic engines keep the explicit dense monodromy
path bit-identical to earlier releases.  Callers may force either
engine (parity tests do).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .backends import LinearSolverBackend

#: ``"auto"`` engages the matrix-free periodic engines at this many MNA
#: unknowns (on a ``wants_csr`` backend).  Below it the dense monodromy
#: path is both fast and the bit-identical reference, so small circuits
#: keep it.  Matches the backend auto-selection crossover.
MATRIX_FREE_MIN_UNKNOWNS = 128

#: Default relative GMRES tolerance.  One to two orders below the
#: shooting/LPTV acceptance tolerances, so the Krylov error never
#: limits the outer Newton.
GMRES_TOL = 1e-11

#: Default cap on Arnoldi iterations (full-memory GMRES, no restart:
#: the periodic operators converge in far fewer sweeps or not at all).
GMRES_MAXITER = 200

#: Default column-chunk bound for :func:`solve_blocked`: bounds the
#: Krylov basis memory at ``(maxiter + 1) * n * max_cols`` floats.
GMRES_MAX_BLOCK_COLS = 64


def use_matrix_free(backend: LinearSolverBackend, n: int,
                    override: "bool | None" = None) -> bool:
    """Should the periodic engines run matrix-free for *n* unknowns?

    ``override`` (when not ``None``) wins - parity tests force either
    engine.  Otherwise matrix-free engages exactly when the backend
    prefers CSR operands *and* the system is at or above
    :data:`MATRIX_FREE_MIN_UNKNOWNS`; everything else takes the dense
    fallback, keeping small circuits bit-identical to the explicit
    monodromy path.
    """
    if override is not None:
        return bool(override)
    return backend.wants_csr and n >= MATRIX_FREE_MIN_UNKNOWNS


def gmres_blocked(apply_op: Callable[[np.ndarray], np.ndarray],
                  b: np.ndarray, tol: float = GMRES_TOL,
                  maxiter: int = GMRES_MAXITER
                  ) -> tuple[np.ndarray, int, bool]:
    """Full-memory GMRES on one operator for many right-hand sides.

    Parameters
    ----------
    apply_op:
        The linear operator; receives a ``(n, m)`` block and must apply
        the *same* operator to every column (one blocked orbit sweep).
    b:
        Right-hand sides, ``(n,)`` or ``(n, m)``.
    tol:
        Per-column relative residual target (``|r| <= tol * |b|``;
        zero columns are solved exactly by ``x = 0``).
    maxiter:
        Arnoldi iteration cap (additionally capped at ``n``).

    Returns
    -------
    ``(x, n_iter, converged)`` - the solution block (same shape as
    *b*), the Arnoldi iterations spent, and whether every column met
    its target.  On non-convergence the least-squares-optimal iterate
    is still returned; callers decide whether to fall back (the
    periodic engines warn and rebuild the dense monodromy).

    Notes
    -----
    Each column runs its own Arnoldi recurrence (same operator,
    different Krylov space), vectorised over the column axis: one
    operator application per iteration serves every column, the
    Hessenberg bookkeeping is ``O(m j)`` per iteration via Givens
    rotations.  No restarting - the periodic operators either converge
    quickly (clustered spectrum) or need the dense fallback anyway.
    """
    b = np.asarray(b, dtype=float)
    vec = b.ndim == 1
    bb = b[:, None] if vec else b
    n, m = bb.shape
    maxiter = max(1, min(int(maxiter), n))

    x = np.zeros_like(bb)
    beta = np.linalg.norm(bb, axis=0)
    target = tol * beta
    if not np.any(beta > 0.0):
        return (x[:, 0] if vec else x), 0, True

    # everything grows with the iteration count (the basis as a list
    # of (n, m) blocks, the Hessenberg/Givens bookkeeping by capacity
    # doubling), so memory tracks the sweeps actually needed instead
    # of the maxiter worst case
    v_basis = [bb / np.where(beta > 0.0, beta, 1.0)]
    cap = min(maxiter, 32)
    h = np.zeros((cap + 1, cap, m))
    cs = np.empty((cap, m))
    sn = np.empty((cap, m))
    g = np.zeros((cap + 1, m))
    g[0] = beta

    n_iter = 0
    converged = False
    for j in range(maxiter):
        n_iter = j + 1
        if j >= cap:
            new_cap = min(maxiter, 2 * cap)
            h_new = np.zeros((new_cap + 1, new_cap, m))
            h_new[:cap + 1, :cap] = h
            g_new = np.zeros((new_cap + 1, m))
            g_new[:cap + 1] = g
            cs_new = np.empty((new_cap, m))
            cs_new[:cap] = cs
            sn_new = np.empty((new_cap, m))
            sn_new[:cap] = sn
            h, g, cs, sn, cap = h_new, g_new, cs_new, sn_new, new_cap
        w = apply_op(v_basis[j])
        # modified Gram-Schmidt, vectorised over the column axis
        for i in range(j + 1):
            hij = np.einsum("nm,nm->m", v_basis[i], w)
            h[i, j] = hij
            w -= hij * v_basis[i]
        hnext = np.linalg.norm(w, axis=0)
        h[j + 1, j] = hnext
        v_basis.append(w / np.where(hnext > 0.0, hnext, 1.0))

        # fold the new column into the QR factorization (per column)
        for i in range(j):
            hi = cs[i] * h[i, j] + sn[i] * h[i + 1, j]
            h[i + 1, j] = -sn[i] * h[i, j] + cs[i] * h[i + 1, j]
            h[i, j] = hi
        denom = np.hypot(h[j, j], h[j + 1, j])
        safe = np.where(denom > 0.0, denom, 1.0)
        cs[j] = np.where(denom > 0.0, h[j, j] / safe, 1.0)
        sn[j] = np.where(denom > 0.0, h[j + 1, j] / safe, 0.0)
        h[j, j] = denom
        h[j + 1, j] = 0.0
        g[j + 1] = -sn[j] * g[j]
        g[j] = cs[j] * g[j]

        if np.all(np.abs(g[j + 1]) <= target):
            converged = True
            break

    # back-substitute the triangular per-column systems and assemble x
    k = n_iter
    y = np.zeros((k, m))
    for i in range(k - 1, -1, -1):
        acc = g[i].copy()
        if i + 1 < k:
            acc -= np.einsum("km,km->m", h[i, i + 1:k], y[i + 1:k])
        nonzero = np.abs(h[i, i]) > 0.0
        y[i] = np.where(nonzero, acc / np.where(nonzero, h[i, i], 1.0), 0.0)
    for i in range(k):
        x += v_basis[i] * y[i]
    return (x[:, 0] if vec else x), n_iter, converged


def solve_blocked(apply_op: Callable[[np.ndarray], np.ndarray],
                  b: np.ndarray, tol: float = GMRES_TOL,
                  maxiter: int = GMRES_MAXITER,
                  max_cols: int = GMRES_MAX_BLOCK_COLS
                  ) -> tuple[np.ndarray, int, bool]:
    """Chunked :func:`gmres_blocked` for wide right-hand-side blocks.

    Splits the columns of *b* into chunks of at most *max_cols* so the
    Krylov basis memory stays bounded at
    ``(iterations + 1) * n * max_cols`` floats regardless of how many
    mismatch parameters ride through the closure.  Returns
    ``(x, total_iterations, all_converged)``.
    """
    b = np.asarray(b, dtype=float)
    if b.ndim == 1 or b.shape[1] <= max_cols:
        return gmres_blocked(apply_op, b, tol=tol, maxiter=maxiter)
    x = np.empty_like(b)
    total = 0
    ok = True
    for lo in range(0, b.shape[1], max_cols):
        sol, it, conv = gmres_blocked(apply_op, b[:, lo:lo + max_cols],
                                      tol=tol, maxiter=maxiter)
        x[:, lo:lo + max_cols] = sol
        total += it
        ok = ok and conv
    return x, total, ok
