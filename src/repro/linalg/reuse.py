"""Factorization reuse (modified Newton) and lane-failure isolation.

The policy implemented by :class:`FactorizationCache` is documented in
the :mod:`repro.linalg` package docstring.  The cache is deliberately
ignorant of circuits: it sees right-hand sides and a ``jac_builder``
callback that produces the *current* Jacobian on demand, so the caller
never assembles or multiplies matrices that a reused factorization
makes unnecessary.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .backends import Factorization, LinearSolverBackend


def _update_norm(delta: np.ndarray) -> float:
    """Max-abs norm over all lanes, ignoring non-finite entries
    (failed lanes are handled by the caller, not the policy)."""
    mag = np.abs(delta)
    mag = mag[np.isfinite(mag)]
    return float(mag.max()) if mag.size else 0.0


class FactorizationCache:
    """One cached factorization driven by the modified-Newton policy.

    Use one cache per Newton *context* (a transient run, one
    ``newton_solve`` call); call :meth:`new_sequence` at the start of
    every Newton sequence (each time step) and :meth:`solve` once per
    iteration.  :meth:`invalidate` drops the factorization when the
    system structurally changes; callers whose step matrix depends on
    external knobs (the transient integrator's theta row weights and
    time step) should instead declare those knobs through
    :meth:`set_key`, which invalidates exactly when the knobs change.
    """

    def __init__(self, backend: LinearSolverBackend,
                 jac_constant: bool = False):
        self.backend = backend
        self.policy = backend.policy
        #: The caller guarantees the Jacobian never changes between
        #: :meth:`invalidate` calls (linear circuits): reuse
        #: unconditionally, the contraction heuristics cannot help.
        self.jac_constant = jac_constant
        self._fact: Factorization | None = None
        self._key: object = None
        self._age = 0            # solves since the last factorization
        self._seq_it = 0         # iterations in the current sequence
        self._prev_norm = np.inf
        #: Factorizations performed (telemetry for tests/benchmarks).
        self.n_factor = 0
        #: Solves answered from a stale factorization.
        self.n_reused = 0

    def invalidate(self) -> None:
        self._fact = None

    def set_key(self, key: object) -> None:
        """Declare the step-matrix ingredients the Jacobian builder will
        use next; invalidate when they changed since the last call.

        The transient integrator passes ``(theta.tobytes(), dt)`` - a
        *content* fingerprint, not an array identity.  Identity checks
        miss equal-content arrays (spurious re-factors) and, far worse,
        cannot see a ``dt`` change at all: the step matrix
        ``theta*G + C/dt`` changes with every adaptive step even though
        the theta vector is the same object, and a stale LU must never
        answer for it.
        """
        if key != self._key:
            self.invalidate()
            self._key = key

    def new_sequence(self) -> None:
        """Start a new Newton sequence (e.g. a new time step)."""
        self._prev_norm = np.inf
        self._seq_it = 0

    def _refactor(self, jac_builder: Callable[[], np.ndarray]) -> None:
        self._fact = self.backend.factor(jac_builder())
        self.n_factor += 1
        self._age = 0

    def solve(self, rhs: np.ndarray,
              jac_builder: Callable[[], np.ndarray]) -> np.ndarray:
        """One Newton linear solve, re-factoring per the policy.

        Raises :class:`numpy.linalg.LinAlgError` when the current
        Jacobian is singular; the cache is left invalidated so the
        caller may repair the system (lane isolation) and retry.
        """
        self._seq_it += 1
        if self._fact is None:
            self._refactor(jac_builder)
        elif not self.jac_constant and self._age >= self.policy.max_age:
            # hard staleness bound: sequences that accept on their
            # first iteration never exercise the contraction test
            try:
                self._refactor(jac_builder)
            except np.linalg.LinAlgError:
                self.invalidate()
                raise
        try:
            delta = self._fact.solve(rhs)
        except np.linalg.LinAlgError:
            self.invalidate()
            raise
        if self.jac_constant:
            self.n_reused += self._age > 0
            self._age += 1
            return delta
        if self._age > 0:
            self.n_reused += 1
            norm = _update_norm(delta)
            stale_too_long = (self._seq_it
                              >= self.policy.stale_iteration_limit
                              and self._age >= self._seq_it)
            if norm > self.policy.rho_refactor * self._prev_norm \
                    or stale_too_long:
                try:
                    self._refactor(jac_builder)
                    delta = self._fact.solve(rhs)
                except np.linalg.LinAlgError:
                    # also covers singularity surfacing at solve time
                    # (lazy batched inversion): never leave a singular
                    # factorization cached for the isolation retry
                    self.invalidate()
                    raise
                norm = _update_norm(delta)
        else:
            norm = _update_norm(delta)
        self._age += 1
        self._prev_norm = norm
        return delta


def mark_singular_lanes(jac: np.ndarray, failed: np.ndarray) -> int:
    """Probe each lane of a batched Jacobian; flag the singular ones.

    *jac* is ``(*batch, n, n)`` dense, *failed* a matching boolean mask
    updated in place.  Returns how many new lanes were flagged.  Used
    by lane-isolated Monte-Carlo transients after a batched solve
    raised: the healthy lanes must not die with the broken ones.
    """
    n = jac.shape[-1]
    probe = np.ones(n)
    newly = 0
    for idx in np.ndindex(*jac.shape[:-2]):
        if failed[idx]:
            continue
        lane = jac[idx]
        if not np.all(np.isfinite(lane)):
            failed[idx] = True
            newly += 1
            continue
        try:
            np.linalg.solve(lane, probe)
        except np.linalg.LinAlgError:
            failed[idx] = True
            newly += 1
    return newly
