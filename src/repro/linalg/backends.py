"""Linear-solver backends: dense, cached dense LU and sparse splu.

See the :mod:`repro.linalg` package docstring for the selection rules
and the modified-Newton re-factor policy.  All backends normalise
singular systems to :class:`numpy.linalg.LinAlgError` so call sites
handle one exception type regardless of the underlying library.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

#: ``"auto"`` switches from the cached dense backend to the sparse
#: backend at this many MNA unknowns.  Dense LU is O(n^3) per factor
#: while SuperLU on circuit matrices is close to O(nnz^1.5); on the
#: bundled workloads the crossover sits near a hundred unknowns.
SPARSE_AUTO_THRESHOLD = 128


@dataclass
class NewtonPolicy:
    """How Newton loops may reuse this backend's factorizations.

    ``reuse=False`` reproduces the seed behaviour exactly: every
    iteration factors from scratch.  With ``reuse=True`` the policy
    knobs below drive :class:`~repro.linalg.reuse.FactorizationCache`.
    """

    reuse: bool = False
    #: Re-factor when a stale update contracts slower than this.
    rho_refactor: float = 0.5
    #: Force a re-factor when a Newton sequence runs this many
    #: iterations on a factorization older than the sequence.
    stale_iteration_limit: int = 5
    #: Hard bound on solves per factorization (unless the caller
    #: declared the Jacobian constant).  One-iteration sequences never
    #: trip the contraction test, so without this a slowly drifting
    #: Jacobian could be reused for an entire run.
    max_age: int = 64


class Factorization(ABC):
    """A factored linear system ``A x = b`` ready for repeated solves."""

    @abstractmethod
    def solve(self, rhs: np.ndarray, trans: bool = False) -> np.ndarray:
        """Solve against *rhs* (``A^T x = b`` when *trans*).

        For batchless factorizations *rhs* may be ``(n,)`` or ``(n, k)``;
        batched factorizations accept ``(*batch, n)`` or
        ``(*batch, n, k)``.
        """


class DenseLuFactorization(Factorization):
    """``scipy.linalg.lu_factor`` of one 2-D system."""

    def __init__(self, a: np.ndarray):
        if not np.all(np.isfinite(a)):
            raise np.linalg.LinAlgError("non-finite matrix entries")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
            self._lu_piv = scipy.linalg.lu_factor(a)
        if not np.all(np.diagonal(self._lu_piv[0]) != 0.0):
            raise np.linalg.LinAlgError("singular matrix")

    def solve(self, rhs: np.ndarray, trans: bool = False) -> np.ndarray:
        return scipy.linalg.lu_solve(self._lu_piv, rhs,
                                     trans=1 if trans else 0)


class BatchedInverseFactorization(Factorization):
    """Inverted stack of systems: each reuse is one batched matmul.

    For the small (n ~ tens) matrices of batched Monte-Carlo lanes the
    O(n^3) inversion is paid once and every reuse costs O(n^2) per
    lane, which is what makes cross-step factorization reuse profitable
    even though LAPACK has no batched ``getrs``.  The inversion costs
    about three batched solves, so it is computed *lazily* on the third
    solve: short Newton sequences (a linear circuit's DC solve
    converges in two) never pay more than the plain dense path, long
    ones amortise the inversion within a handful of reuses.
    """

    _INVERT_AFTER = 2

    def __init__(self, a: np.ndarray):
        if not np.all(np.isfinite(a)):
            raise np.linalg.LinAlgError("non-finite matrix entries")
        self._a: np.ndarray | None = a.copy()   # caller's buffer mutates
        self._inv: np.ndarray | None = None
        self._direct_solves = 0

    def solve(self, rhs: np.ndarray, trans: bool = False) -> np.ndarray:
        if self._inv is None:
            if self._direct_solves < self._INVERT_AFTER:
                self._direct_solves += 1
                a = np.swapaxes(self._a, -1, -2) if trans else self._a
                vector = rhs.ndim == a.ndim - 1
                out = np.linalg.solve(a, rhs[..., None] if vector else rhs)
                return out[..., 0] if vector else out
            self._inv = np.linalg.inv(self._a)
            self._a = None
        inv = np.swapaxes(self._inv, -1, -2) if trans else self._inv
        if rhs.ndim == inv.ndim:                      # (*batch, n, k)
            return np.matmul(inv, rhs)
        return np.matmul(inv, rhs[..., None])[..., 0]


class SparseLuFactorization(Factorization):
    """``scipy.sparse.linalg.splu`` of one 2-D system in CSR/CSC form."""

    def __init__(self, a):
        if scipy.sparse.issparse(a):
            if not np.all(np.isfinite(a.data)):
                raise np.linalg.LinAlgError("non-finite matrix entries")
            mat = a if a.format == "csc" else a.tocsc()
        else:
            a = np.asarray(a)
            if not np.all(np.isfinite(a)):
                raise np.linalg.LinAlgError("non-finite matrix entries")
            mat = scipy.sparse.csr_matrix(a).tocsc()
        try:
            self._lu = scipy.sparse.linalg.splu(mat)
        except RuntimeError as exc:   # "Factor is exactly singular"
            raise np.linalg.LinAlgError(str(exc)) from exc

    def solve(self, rhs: np.ndarray, trans: bool = False) -> np.ndarray:
        out = self._lu.solve(np.asarray(rhs, dtype=float),
                             trans="T" if trans else "N")
        if not np.isfinite(out).all():
            raise np.linalg.LinAlgError("singular matrix")
        return out


class BatchedSparseLuFactorization(Factorization):
    """Per-lane ``splu`` factors of a batched stack."""

    def __init__(self, a: np.ndarray):
        self._batch = a.shape[:-2]
        self._lanes = [SparseLuFactorization(a[idx])
                       for idx in np.ndindex(*self._batch)]

    def solve(self, rhs: np.ndarray, trans: bool = False) -> np.ndarray:
        out = np.empty_like(np.asarray(rhs, dtype=float))
        for lane, idx in zip(self._lanes, np.ndindex(*self._batch)):
            out[idx] = lane.solve(rhs[idx], trans=trans)
        return out


class LinearSolverBackend(ABC):
    """Factor/solve provider used by every analysis hot loop."""

    name: str = "?"
    policy: NewtonPolicy
    #: True when the backend prefers operands assembled natively on a
    #: precomputed CSR pattern (:class:`~repro.linalg.sparsity.CsrPlan`)
    #: instead of dense ``(n, n)`` buffers.  Batchless Newton loops
    #: switch to the no-densify assembly path when set.
    wants_csr: bool = False

    @abstractmethod
    def factor(self, a: np.ndarray) -> Factorization:
        """Factor ``a`` (``(n, n)`` or ``(*batch, n, n)``).

        Raises :class:`numpy.linalg.LinAlgError` when singular.
        """

    def factor_csc(self, a) -> Factorization:
        """Factor a ``scipy.sparse`` CSC/CSR matrix.

        The seam the sparse-native periodic engines use for their
        per-step ``A_k`` factorizations
        (:class:`~repro.analysis.orbit.OrbitLinearization`): the
        operand is assembled on the circuit's
        :class:`~repro.linalg.sparsity.CsrPlan` and never densified.
        Default is SuperLU for every backend - a dense backend forced
        onto the matrix-free path (parity tests) still factors
        sparsely; :class:`SparseBackend` routes through its own
        :meth:`factor` so policy hooks stay in one place.
        """
        return SparseLuFactorization(a)

    def solve(self, a: np.ndarray, rhs: np.ndarray,
              trans: bool = False) -> np.ndarray:
        """One-shot factor-and-solve."""
        return self.factor(a).solve(rhs, trans=trans)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class DenseBackend(LinearSolverBackend):
    """Seed-equivalent dense solves, no factorization reuse."""

    name = "dense"

    def __init__(self):
        self.policy = NewtonPolicy(reuse=False)

    def factor(self, a: np.ndarray) -> Factorization:
        if a.ndim == 2:
            return DenseLuFactorization(a)
        return BatchedInverseFactorization(a)

    def solve(self, a: np.ndarray, rhs: np.ndarray,
              trans: bool = False) -> np.ndarray:
        if trans:
            a = np.swapaxes(a, -1, -2)
        vector = rhs.ndim == a.ndim - 1
        out = np.linalg.solve(a, rhs[..., None] if vector else rhs)
        return out[..., 0] if vector else out


class CachedDenseBackend(LinearSolverBackend):
    """Dense LU with modified-Newton factorization reuse."""

    name = "cached"

    def __init__(self, policy: NewtonPolicy | None = None):
        self.policy = policy or NewtonPolicy(reuse=True)

    def factor(self, a: np.ndarray) -> Factorization:
        if a.ndim == 2:
            return DenseLuFactorization(a)
        return BatchedInverseFactorization(a)


class SparseBackend(LinearSolverBackend):
    """CSR assembly + SuperLU, with factorization reuse.

    Batchless Newton loops assemble natively on the circuit's
    :class:`~repro.linalg.sparsity.CsrPlan` (``wants_csr``): values are
    scattered straight into the fixed pattern and no dense ``(n+1)^2``
    buffer is materialised between assembly and factorization.  Dense
    and batched operands are still accepted (PSS monodromy products,
    lane-by-lane Monte-Carlo factors).
    """

    name = "sparse"
    wants_csr = True

    def __init__(self, policy: NewtonPolicy | None = None):
        self.policy = policy or NewtonPolicy(reuse=True)

    def factor(self, a: np.ndarray) -> Factorization:
        if scipy.sparse.issparse(a) or a.ndim == 2:
            return SparseLuFactorization(a)
        return BatchedSparseLuFactorization(a)

    def factor_csc(self, a) -> Factorization:
        return self.factor(a)


_BACKENDS = {
    DenseBackend.name: DenseBackend,
    CachedDenseBackend.name: CachedDenseBackend,
    SparseBackend.name: SparseBackend,
}


def available_backends() -> list[str]:
    """Registered backend names (plus the ``"auto"`` selector)."""
    return ["auto", *sorted(_BACKENDS)]


def resolve_backend(spec: "str | LinearSolverBackend | None",
                    n: int) -> LinearSolverBackend:
    """Turn a backend spec into an instance for an *n*-unknown system.

    ``None`` and ``"auto"`` pick the cached dense backend below
    :data:`SPARSE_AUTO_THRESHOLD` unknowns and the sparse backend at or
    above it.  Instances pass through unchanged.
    """
    if isinstance(spec, LinearSolverBackend):
        return spec
    if spec is None or spec == "auto":
        spec = "cached" if n < SPARSE_AUTO_THRESHOLD else "sparse"
    try:
        return _BACKENDS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown linear-solver backend '{spec}'; available: "
            f"{available_backends()}") from None
