"""Pluggable linear-solver backends for the MNA solver stack.

Every inner loop of the reproduction - transient Newton steps, DC
homotopy, PSS shooting, the LPTV per-step factorizations - reduces to
"factor an MNA-structured matrix, then solve against one or many
right-hand sides".  This subpackage makes that operation pluggable and,
crucially, *reusable*: the dominant cost of both the paper's LPTV method
and the Monte-Carlo baseline it is benchmarked against (Table II) is
re-factoring near-identical Jacobians thousands of times.

Backend selection
-----------------
Three backends are registered (:func:`available_backends`):

``"dense"``
    Plain dense solves: every request factors from scratch
    (``numpy.linalg.solve`` semantics).  This is the seed behaviour and
    the reference implementation the parity tests compare against.
``"cached"``
    Dense LU with factorization reuse.  Batchless systems are factored
    with :func:`scipy.linalg.lu_factor` and solved with ``lu_solve``;
    batched Monte-Carlo stacks pre-invert once (``numpy.linalg.inv``)
    so every subsequent solve is a single batched mat-vec.  The modified
    Newton policy below decides when to re-factor.
``"sparse"``
    Native CSR + ``scipy.sparse.linalg.splu``.  Batchless Newton loops
    assemble straight onto the circuit's precomputed sparsity pattern
    (``wants_csr``, see below) and solve through SuperLU; dense and
    batched operands are still accepted (PSS monodromy products factor
    densely, batched Monte-Carlo stacks lane-by-lane).  This is the
    right choice beyond a few hundred unknowns, where dense LU's
    O(n^3) dominates.

Pass a backend (name or instance) to
:func:`repro.analysis.mna.compile_circuit`, or leave the default
``"auto"``: circuits with fewer than
:data:`~repro.linalg.backends.SPARSE_AUTO_THRESHOLD` unknowns get the
cached dense backend, larger ones the sparse backend.

Performance architecture
------------------------
Three layers cooperate to keep the hot loops off Python bytecode and
off O(n^2) scratch memory; each is independently pluggable:

**Compile-time stamp plans** (:mod:`repro.analysis.stamps`).  At
:class:`~repro.analysis.mna.CompiledCircuit` construction every element
family is lowered to flat COO index/value arrays.  Template
construction (`make_state`), source evaluation, MOSFET stamping and
behavioral-VCCS stamping are all vectorised gathers plus ``np.add.at``
scatters - the per-iteration assembly does no per-element Python work.
Static (DC) source vectors are cached per parameter state and combined
source vectors per time point, so a Newton iteration at a fixed step
adds one precomputed vector.

**Native CSR assembly** (:class:`~repro.linalg.sparsity.CsrPlan` +
:class:`~repro.analysis.mna.CsrAssembler`).  A backend that sets
:attr:`LinearSolverBackend.wants_csr` receives operands assembled
directly on the circuit's fixed sparsity pattern: residuals are CSR
mat-vecs, Jacobians are value scatters onto precomputed data slots,
and factorizations consume a CSC view produced by a precomputed
permutation.  Parameter states themselves are sparse-native (their
linear G/C templates are value arrays over the same plan, built by
``make_state`` in O(nnz) memory; dense consumers densify explicitly
via ``ParamState.to_dense``), so no dense ``(n+1)^2`` array exists
anywhere between state construction and ``splu`` - large netlists
scale with ``nnz`` instead of ``n^2`` per state *and* per iteration.

**Matrix-free Krylov periodic engines** (:mod:`repro.linalg.krylov` +
:class:`~repro.analysis.orbit.OrbitLinearization`).  The periodic
analyses (shooting PSS, LPTV sensitivities) used to be the last dense
holdouts: an ``(n_steps, n, n)`` Jacobian stack and an explicitly
formed monodromy matrix.  On ``wants_csr`` backends at or above
``MATRIX_FREE_MIN_UNKNOWNS`` unknowns the orbit linearisation is now
stored as per-step value arrays on the circuit's ``CsrPlan``
(O(n_steps * nnz)), each ``A_k`` is factored once through the
``factor_csc`` backend hook, and the shooting update / periodicity
closure are solved by blocked GMRES on the sweep operator ``v -> M v``
- the monodromy never exists as a matrix.  Below the threshold the
explicit dense path runs bit-identically, and a stalled GMRES falls
back to it with a warning.

**Process-parallel Monte-Carlo sharding**
(:func:`repro.core.montecarlo.monte_carlo_transient` /
``monte_carlo_dc`` with ``n_workers``).  Monte-Carlo chunks are
independent stacked solves with purely local solver state, so they fan
out over a :class:`~concurrent.futures.ProcessPoolExecutor`.  All
mismatch deltas are drawn up front from the single seeded generator
and sliced per chunk; shards are merged in chunk order, making the
parallel ``samples``/``n_failed`` bit-for-bit identical to the serial
run at the same chunk size.

Modified-Newton re-factor policy
--------------------------------
:class:`FactorizationCache` implements the reuse policy shared by the
transient integrator and the DC solver:

* the first solve after a (re-)factorization is a *true* Newton step
  and is always trusted;
* subsequent solves reuse the stale factorization (a "modified Newton"
  or chord step) as long as the update norm keeps contracting by at
  least ``rho_refactor`` (default 0.5) per iteration.  A stale step
  that fails the contraction test triggers an immediate re-factor *and
  re-solve in the same iteration*, so the iteration count never
  degrades below classical Newton by more than the one trial solve;
* a Newton sequence that runs long on a stale factorization
  (``stale_iteration_limit``) forces a re-factor, and every
  factorization is retired after ``max_age`` solves outright (unless
  the caller declared the Jacobian constant) - sequences that accept
  on their first iteration never exercise the contraction test, so
  staleness must also be bounded by age;
* a singular factorization (``numpy.linalg.LinAlgError``, raised
  uniformly by all backends) invalidates the cache; callers either
  re-raise as :class:`~repro.errors.SingularMatrixError` or - in
  lane-isolated Monte-Carlo transients - disable the offending lanes
  and re-factor the remainder.

Because the accepted update must still pass the caller's ``vntol``
test, and a stale acceptance beyond the first iteration of a sequence
requires a contraction factor below 0.5 (with the age bound limiting
how stale that first-iteration trust can get), the converged state
differs from full Newton by O(vntol) - the same order of guarantee the
seed solver documented.

Caching across *time steps* falls out of the same policy: the transient
integrator simply keeps one cache for the whole run and lets the
contraction test decide when the Jacobian has drifted too far.  For
linear circuits this collapses the entire run to a single
factorization.

The contraction test cannot see changes the *caller* makes to the step
matrix, so those are declared explicitly through
:meth:`FactorizationCache.set_key`: the transient integrator keys the
cache on the content pair ``(theta, dt)``, which is what lets adaptive
time stepping reuse factorizations across runs of equal-``dt`` steps
while guaranteeing a changed step size (or a trapezoidal/backward-Euler
switch) always re-factors.  For linear circuits under adaptive stepping
this degrades gracefully to one factorization per *distinct step size*
rather than one per run.
"""

from __future__ import annotations

from .backends import (SPARSE_AUTO_THRESHOLD, CachedDenseBackend,
                       DenseBackend, Factorization, LinearSolverBackend,
                       NewtonPolicy, SparseBackend, available_backends,
                       resolve_backend)
from .krylov import (GMRES_MAXITER, GMRES_TOL, MATRIX_FREE_MIN_UNKNOWNS,
                     gmres_blocked, solve_blocked, use_matrix_free)
from .reuse import FactorizationCache, mark_singular_lanes
from .sparsity import CsrPlan

__all__ = [
    "LinearSolverBackend", "Factorization", "NewtonPolicy",
    "DenseBackend", "CachedDenseBackend", "SparseBackend",
    "resolve_backend", "available_backends", "SPARSE_AUTO_THRESHOLD",
    "FactorizationCache", "mark_singular_lanes", "CsrPlan",
    "gmres_blocked", "solve_blocked", "use_matrix_free",
    "MATRIX_FREE_MIN_UNKNOWNS", "GMRES_TOL", "GMRES_MAXITER",
]
