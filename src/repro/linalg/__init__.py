"""Pluggable linear-solver backends for the MNA solver stack.

Every inner loop of the reproduction - transient Newton steps, DC
homotopy, PSS shooting, the LPTV per-step factorizations - reduces to
"factor an MNA-structured matrix, then solve against one or many
right-hand sides".  This subpackage makes that operation pluggable and,
crucially, *reusable*: the dominant cost of both the paper's LPTV method
and the Monte-Carlo baseline it is benchmarked against (Table II) is
re-factoring near-identical Jacobians thousands of times.

Backend selection
-----------------
Three backends are registered (:func:`available_backends`):

``"dense"``
    Plain dense solves: every request factors from scratch
    (``numpy.linalg.solve`` semantics).  This is the seed behaviour and
    the reference implementation the parity tests compare against.
``"cached"``
    Dense LU with factorization reuse.  Batchless systems are factored
    with :func:`scipy.linalg.lu_factor` and solved with ``lu_solve``;
    batched Monte-Carlo stacks pre-invert once (``numpy.linalg.inv``)
    so every subsequent solve is a single batched mat-vec.  The modified
    Newton policy below decides when to re-factor.
``"sparse"``
    CSR + ``scipy.sparse.linalg.splu``.  The MNA Jacobian is converted
    to CSR on factorization and solved through SuperLU; batched systems
    factor lane-by-lane.  This is the right choice beyond a few hundred
    unknowns, where dense LU's O(n^3) dominates.

Pass a backend (name or instance) to
:func:`repro.analysis.mna.compile_circuit`, or leave the default
``"auto"``: circuits with fewer than
:data:`~repro.linalg.backends.SPARSE_AUTO_THRESHOLD` unknowns get the
cached dense backend, larger ones the sparse backend.

Modified-Newton re-factor policy
--------------------------------
:class:`FactorizationCache` implements the reuse policy shared by the
transient integrator and the DC solver:

* the first solve after a (re-)factorization is a *true* Newton step
  and is always trusted;
* subsequent solves reuse the stale factorization (a "modified Newton"
  or chord step) as long as the update norm keeps contracting by at
  least ``rho_refactor`` (default 0.5) per iteration.  A stale step
  that fails the contraction test triggers an immediate re-factor *and
  re-solve in the same iteration*, so the iteration count never
  degrades below classical Newton by more than the one trial solve;
* a Newton sequence that runs long on a stale factorization
  (``stale_iteration_limit``) forces a re-factor, and every
  factorization is retired after ``max_age`` solves outright (unless
  the caller declared the Jacobian constant) - sequences that accept
  on their first iteration never exercise the contraction test, so
  staleness must also be bounded by age;
* a singular factorization (``numpy.linalg.LinAlgError``, raised
  uniformly by all backends) invalidates the cache; callers either
  re-raise as :class:`~repro.errors.SingularMatrixError` or - in
  lane-isolated Monte-Carlo transients - disable the offending lanes
  and re-factor the remainder.

Because the accepted update must still pass the caller's ``vntol``
test, and a stale acceptance beyond the first iteration of a sequence
requires a contraction factor below 0.5 (with the age bound limiting
how stale that first-iteration trust can get), the converged state
differs from full Newton by O(vntol) - the same order of guarantee the
seed solver documented.

Caching across *time steps* falls out of the same policy: the transient
integrator simply keeps one cache for the whole run and lets the
contraction test decide when the Jacobian has drifted too far.  For
linear circuits this collapses the entire run to a single
factorization.
"""

from __future__ import annotations

from .backends import (SPARSE_AUTO_THRESHOLD, CachedDenseBackend,
                       DenseBackend, Factorization, LinearSolverBackend,
                       NewtonPolicy, SparseBackend, available_backends,
                       resolve_backend)
from .reuse import FactorizationCache, mark_singular_lanes

__all__ = [
    "LinearSolverBackend", "Factorization", "NewtonPolicy",
    "DenseBackend", "CachedDenseBackend", "SparseBackend",
    "resolve_backend", "available_backends", "SPARSE_AUTO_THRESHOLD",
    "FactorizationCache", "mark_singular_lanes",
]
