"""Precomputed CSR sparsity patterns for native sparse assembly.

The seed sparse backend densified a padded ``(n+1)^2`` buffer on every
factorization and converted it to CSR from scratch.  A :class:`CsrPlan`
removes both costs: the union pattern of the conductance, capacitance
and device-Jacobian stamps is computed once per compiled circuit, and
every subsequent assembly is a value scatter into a flat ``data`` array
over that fixed structure.

Layout
------
The plan covers the *unpadded* ``n x n`` system in CSR order (row
major, ascending columns).  Stamp positions are resolved through
:meth:`CsrPlan.pos_of`, which maps padded flat indices (including
ground-slot stamps) to data-array slots; ground entries map to a
*trash slot* at index ``nnz`` so scatters need no masking - callers
allocate value arrays of length ``nnz + 1`` and the matrix views use
``data[:nnz]`` only.

The full main diagonal is always part of the pattern: gmin-stepping
scatters straight onto precomputed diagonal slots and SuperLU never
sees a structurally empty pivot.

``splu`` in SciPy cannot reuse a symbolic factorization, but the
structure work that *can* be hoisted is: the CSR and CSC index arrays
and the CSR->CSC data permutation are all precomputed, so producing a
factorable matrix from fresh values is a single take + two shared
index arrays.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse

try:  # fast path: SciPy's CSR mat-vec kernel without dispatch overhead
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
except ImportError:  # pragma: no cover - SciPy layout change
    _csr_matvec = None


class CsrPlan:
    """Fixed sparsity pattern of one circuit's ``n x n`` MNA system."""

    def __init__(self, n: int, n1: int, padded_flat: np.ndarray):
        """Build the pattern from padded flat stamp indices.

        Parameters
        ----------
        n:
            Unpadded system size.
        n1:
            Padded width (``n + 1``); *padded_flat* entries are
            ``row * n1 + col`` over the padded system.
        padded_flat:
            Every potential stamp position (duplicates welcome).
        """
        self.n = n
        self.n1 = n1
        padded_flat = np.asarray(padded_flat, dtype=np.intp)
        r = padded_flat // n1
        c = padded_flat % n1
        inside = (r < n) & (c < n)
        flat = r[inside] * n + c[inside]
        diag = np.arange(n, dtype=np.intp) * (n + 1)
        self._flat = np.unique(np.concatenate([flat, diag]))
        self.nnz = int(self._flat.size)
        self.rows = (self._flat // n).astype(np.intp)
        self.cols = (self._flat % n).astype(np.intp)
        self.indices = self.cols.astype(np.int32)
        self.indptr = np.searchsorted(
            self.rows, np.arange(n + 1)).astype(np.int32)
        #: data slot of each diagonal entry (``gmin`` scatters here)
        self.diag_pos = self.pos_of(
            np.arange(n, dtype=np.intp) * n1 + np.arange(n, dtype=np.intp))
        # CSR -> CSC: sort slots by (col, row); csc data = data[perm]
        order = np.lexsort((self.rows, self.cols))
        self._csc_perm = order
        self._csc_indices = self.rows[order].astype(np.int32)
        self._csc_indptr = np.searchsorted(
            self.cols[order], np.arange(n + 1)).astype(np.int32)

    def pos_of(self, padded_flat: np.ndarray) -> np.ndarray:
        """Data slots of padded flat stamp indices (ground -> trash).

        Raises :class:`ValueError` for an in-system position missing
        from the pattern - a plan/stamp mismatch is a programming
        error, not a numerical condition.
        """
        padded_flat = np.asarray(padded_flat, dtype=np.intp)
        r = padded_flat // self.n1
        c = padded_flat % self.n1
        inside = (r < self.n) & (c < self.n)
        out = np.full(padded_flat.shape, self.nnz, dtype=np.intp)
        flat = r[inside] * self.n + c[inside]
        pos = np.searchsorted(self._flat, flat)
        if flat.size and not np.array_equal(self._flat[pos], flat):
            raise ValueError("stamp position outside the CSR pattern")
        out[inside] = pos
        return out

    def matvec(self, data: np.ndarray, x: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
        """``out = A @ x`` for value array *data* over the pattern.

        Calls the CSR kernel directly - in a Newton inner loop the
        ``scipy.sparse`` operator dispatch costs several times the
        mat-vec itself.  *out* (length ``n``) is overwritten.
        """
        if out is None:
            out = np.zeros(self.n)
        else:
            out[:self.n] = 0.0
        if _csr_matvec is not None:
            _csr_matvec(self.n, self.n, self.indptr, self.indices,
                        data[:self.nnz], x, out[:self.n])
        else:  # pragma: no cover - exercised only without the kernel
            np.add.at(out, self.rows, data[:self.nnz] * x[self.cols])
        return out

    def csr_view(self, data: np.ndarray) -> scipy.sparse.csr_matrix:
        """CSR matrix *sharing* ``data[:nnz]`` - mutate data, reuse it."""
        return scipy.sparse.csr_matrix(
            (data[:self.nnz], self.indices, self.indptr),
            shape=(self.n, self.n))

    def csc_matrix(self, data: np.ndarray) -> scipy.sparse.csc_matrix:
        """Factorable CSC matrix from a value array (data is copied by
        the permutation gather, so the caller may keep mutating)."""
        return scipy.sparse.csc_matrix(
            (data[:self.nnz][self._csc_perm], self._csc_indices,
             self._csc_indptr), shape=(self.n, self.n))

    def same_pattern(self, other: "CsrPlan") -> bool:
        """True when *other* indexes the identical sparsity structure
        (so value arrays built on one plan are valid on the other)."""
        return (self is other
                or (self.n == other.n and self.n1 == other.n1
                    and self.nnz == other.nnz
                    and np.array_equal(self._flat, other._flat)))

    def densify(self, data: np.ndarray) -> np.ndarray:
        """Dense ``(n, n)`` image of a value array (tests/diagnostics)."""
        out = np.zeros((self.n, self.n))
        out[self.rows, self.cols] = data[:self.nnz]
        return out

    def __repr__(self) -> str:
        return (f"CsrPlan(n={self.n}, nnz={self.nnz}, "
                f"fill={self.nnz / max(self.n * self.n, 1):.3%})")
