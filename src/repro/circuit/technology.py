"""Process technology description.

The paper's benchmarks assume a 0.13-um CMOS process with Pelgrom matching
constants ``AVT = 6.5 mV.um`` and ``A_beta = 3.25 %.um`` (Section VI).  The
authors used a foundry BSIM model; we substitute a smooth EKV-style compact
model (see :mod:`repro.circuit.mosfet`) whose parameters are representative
of a 0.13-um node.  The calibration point the paper quotes -- the 3-sigma
drain-current variation of a 8.32 um / 0.13 um nMOS at VGS = 1.0 V is about
14 % -- is recomputed for this model by ``tests/test_technology.py`` and
recorded in EXPERIMENTS.md.

Mismatch scaling for the paper's Fig. 11/12 sweeps is supported through
:meth:`Technology.scaled`, which multiplies both matching constants by a
common factor (this scales the 3-sigma drain-current variation by the same
factor, as in the paper's sweep of the ring-oscillator example).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..constants import PHI_T


@dataclass(frozen=True)
class MosParams:
    """EKV-style model parameters for one device polarity.

    Attributes
    ----------
    vt0:
        Threshold voltage magnitude [V] (positive for both polarities).
    kp:
        Transconductance factor ``mu * Cox`` [A/V^2].
    n:
        Subthreshold slope factor (dimensionless, > 1).
    lam:
        Channel-length modulation coefficient [1/V] at the reference
        length; scaled as ``lam * l_ref / L`` for a drawn length ``L``.
    l_ref:
        Reference length for the ``lam`` scaling [m].
    cox:
        Gate-oxide capacitance per area [F/m^2].
    c_overlap:
        Gate overlap capacitance per width [F/m].
    c_junction:
        Source/drain junction capacitance per area [F/m^2].
    l_diff:
        Source/drain diffusion extent [m] used for junction area.
    gamma_noise:
        Thermal-noise excess factor (2/3 long channel; larger short-channel).
    kf:
        Flicker-noise coefficient for the gate-referred PSD
        ``Svg = kf / (cox * W * L * f)`` [F.V^2, i.e. C.V].
    """

    vt0: float
    kp: float
    n: float
    lam: float
    l_ref: float
    cox: float
    c_overlap: float
    c_junction: float
    l_diff: float
    gamma_noise: float
    kf: float


@dataclass(frozen=True)
class Technology:
    """A CMOS process: supply, device parameters and matching constants."""

    name: str
    vdd: float
    l_min: float
    nmos: MosParams
    pmos: MosParams
    #: Pelgrom threshold-mismatch constant [V.m] (paper: 6.5 mV.um).
    avt: float
    #: Pelgrom relative current-factor mismatch constant [m]
    #: (paper: 3.25 %.um, i.e. 0.0325 um = 3.25e-8 m).
    abeta: float

    # ------------------------------------------------------------------
    # Pelgrom model (paper Eqs. 4-5)
    # ------------------------------------------------------------------
    def sigma_vt(self, w: float, l: float) -> float:
        """Threshold-voltage mismatch sigma [V]: ``AVT / sqrt(W L)``."""
        return self.avt / math.sqrt(w * l)

    def sigma_beta_rel(self, w: float, l: float) -> float:
        """Relative current-factor mismatch sigma: ``Abeta / sqrt(W L)``."""
        return self.abeta / math.sqrt(w * l)

    def sigma_id_rel(self, w: float, l: float, vgs: float,
                     polarity: str = "nmos") -> float:
        """Relative drain-current mismatch sigma in saturation.

        First-order propagation of the Pelgrom sigmas through the drain
        current: ``(sigma_Id/Id)^2 = (gm/Id)^2 sigma_VT^2 + sigma_beta^2``
        with the square-law ``gm/Id = 2/(VGS - VT0)``.  This is the quantity
        the paper calibrates at 14 % (3-sigma) for an 8.32/0.13 um nMOS at
        VGS = 1 V.  The exact model-based value is measured in the tests.
        """
        params = self.nmos if polarity == "nmos" else self.pmos
        vov = max(vgs - params.vt0, 4.0 * PHI_T)
        gm_over_id = 2.0 / vov
        s_vt = self.sigma_vt(w, l)
        s_b = self.sigma_beta_rel(w, l)
        return math.sqrt((gm_over_id * s_vt) ** 2 + s_b ** 2)

    def scaled(self, factor: float) -> "Technology":
        """Return a copy with both matching constants scaled by *factor*.

        Used for the paper's Section VIII sweep (Fig. 11), where the
        transistor current mismatch is increased well beyond its nominal
        value to probe the linear-model breakdown.
        """
        return replace(self, avt=self.avt * factor,
                       abeta=self.abeta * factor)

    def variation_spec(self, circuit, distribution: str = "gaussian",
                       scale: float = 1.0):
        """A declarative :class:`~repro.variation.VariationSpec`
        covering every mismatch declaration of *circuit* (whose
        elements were sized against this technology) at the declared
        Pelgrom sigmas.

        *distribution* / *scale* are the declarative form of
        tolerance-class selection and the :meth:`scaled` Fig.-11 sweep:
        ``tech.variation_spec(ckt, scale=4.0)`` lowers to the same
        covariance that rebuilding the circuit against
        ``tech.scaled(4.0)`` declares.
        """
        from ..variation import spec_for_circuit
        return spec_for_circuit(circuit, distribution=distribution,
                                scale=scale)


def default_technology() -> Technology:
    """The 0.13-um CMOS process used by every bundled benchmark.

    Matching constants are the paper's published values; the electrical
    parameters are representative textbook values for the node.
    """
    nmos = MosParams(
        vt0=0.38, kp=350e-6, n=1.25, lam=0.15, l_ref=0.13e-6,
        cox=1.55e-2, c_overlap=3.0e-10, c_junction=1.0e-3,
        l_diff=0.32e-6, gamma_noise=1.0, kf=2.5e-25,
    )
    pmos = MosParams(
        vt0=0.40, kp=120e-6, n=1.30, lam=0.20, l_ref=0.13e-6,
        cox=1.55e-2, c_overlap=3.0e-10, c_junction=1.1e-3,
        l_diff=0.32e-6, gamma_noise=1.0, kf=1.0e-25,
    )
    return Technology(
        name="cmos130",
        vdd=1.2,
        l_min=0.13e-6,
        nmos=nmos,
        pmos=pmos,
        avt=6.5e-3 * 1e-6,      # 6.5 mV.um
        abeta=0.0325 * 1e-6,    # 3.25 %.um
    )
