"""The :class:`Circuit` container: a named collection of elements.

A circuit is pure description - compiling it into a numerical MNA system
happens in :mod:`repro.analysis.mna`.  Node names are free-form strings;
``"0"`` and ``"gnd"`` denote ground.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields as _dataclass_fields
from dataclasses import is_dataclass as _is_dataclass
from typing import Iterable, Iterator

import numpy as np

from ..errors import NetlistError
from .controlled import GateWindow, Vccs, Vcvs
from .elements import Element, MismatchDecl, NoiseDecl
from .mosfet import Mosfet
from .passives import Capacitor, Inductor, Resistor
from .sources import (CurrentSource, Dc, Pwl, Sine, SmoothPulse,
                      TimeFunction, VoltageSource)
from .technology import Technology

#: Node names treated as the ground/reference node.
GROUND_NAMES = frozenset({"0", "gnd"})

#: Dataclass field names that hold node references on the bundled
#: elements.  Fingerprinting replaces their values with canonical node
#: ids so that renaming nodes does not change the hash.
_NODE_FIELDS = frozenset({"pos", "neg", "ctrl_pos", "ctrl_neg",
                          "d", "g", "s", "b"})

#: Canonical token for the ground node inside fingerprints.
_GROUND_TOKEN = "=gnd="


def _hash_update(h, obj) -> None:
    """Feed *obj* into hash *h* using a type-tagged canonical encoding.

    Supports the value types that appear in circuit descriptions and
    analysis options: scalars, strings, bytes, numpy arrays, lists,
    tuples, dicts (order-independent) and nested dataclasses.  The
    encoding is injective per type (length-prefixed strings, tagged
    scalars) so structurally different objects never collide by
    concatenation.
    """
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):
        h.update(b"T;" if obj else b"f;")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I%d;" % int(obj))
    elif isinstance(obj, (float, np.floating)):
        h.update(("F%r;" % float(obj)).encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"S%d:" % len(raw))
        h.update(raw)
        h.update(b";")
    elif isinstance(obj, bytes):
        h.update(b"Y%d:" % len(obj))
        h.update(obj)
        h.update(b";")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(("A%s%r:" % (arr.dtype.str, arr.shape)).encode())
        h.update(arr.tobytes())
        h.update(b";")
    elif isinstance(obj, (list, tuple)):
        h.update(b"L%d:" % len(obj))
        for item in obj:
            _hash_update(h, item)
        h.update(b";")
    elif isinstance(obj, dict):
        h.update(b"D%d:" % len(obj))
        for key in sorted(obj):
            _hash_update(h, key)
            _hash_update(h, obj[key])
        h.update(b";")
    elif _is_dataclass(obj) and not isinstance(obj, type):
        h.update(("C%s:" % type(obj).__name__).encode())
        for f in _dataclass_fields(obj):
            _hash_update(h, f.name)
            _hash_update(h, getattr(obj, f.name))
        h.update(b";")
    else:
        raise TypeError(
            f"cannot fingerprint a value of type {type(obj).__name__}")


def content_digest(*parts) -> str:
    """SHA-256 hex digest of *parts* under the canonical encoding.

    This is the hashing primitive behind :meth:`Circuit.fingerprint`,
    ``CompiledCircuit.cache_key`` and the :class:`repro.service`
    content-addressed caches.
    """
    h = hashlib.sha256()
    for part in parts:
        _hash_update(h, part)
    return h.hexdigest()


class Circuit:
    """A netlist: elements, nodes and optional initial conditions.

    Parameters
    ----------
    name:
        Label used in diagnostics.

    Examples
    --------
    >>> ckt = Circuit("divider")
    >>> ckt.add_vsource("VIN", "in", "0", dc=1.0)
    >>> ckt.add_resistor("R1", "in", "out", 1e3)
    >>> ckt.add_resistor("R2", "out", "0", 1e3)
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._elements: dict[str, Element] = {}
        #: Initial node voltages for ``transient(..., use_ic=True)`` [V].
        self.ic: dict[str, float] = {}

    # ------------------------------------------------------------------
    # element management
    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add *element*; names must be unique within the circuit."""
        if not element.name:
            raise NetlistError("elements must be named")
        if element.name in self._elements:
            raise NetlistError(
                f"duplicate element name '{element.name}' in '{self.name}'")
        for node in element.nodes():
            if not isinstance(node, str) or not node:
                raise NetlistError(
                    f"element '{element.name}' has an invalid node {node!r}")
        self._elements[element.name] = element
        return element

    def __getitem__(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(
                f"no element named '{name}' in '{self.name}'") from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def elements(self) -> list[Element]:
        return list(self._elements.values())

    def nodes(self) -> list[str]:
        """All non-ground node names, in first-use order."""
        seen: dict[str, None] = {}
        for el in self._elements.values():
            for node in el.nodes():
                if node not in GROUND_NAMES:
                    seen.setdefault(node)
        return list(seen)

    def fingerprint(self) -> str:
        """Stable content hash of the netlist (SHA-256 hex digest).

        The hash covers topology, element parameter values and the
        mismatch/tolerance declarations implied by them, and the stored
        initial conditions.  It is *invariant* to

        * element insertion order (elements are hashed in name order),
        * renaming non-ground nodes (node names are replaced by
          canonical first-use indices over the name-sorted elements),
        * the circuit's display :attr:`name` (diagnostics only).

        Any change to element names, connectivity or parameter values
        produces a different digest.  This is the domain-layer identity
        used by ``CompiledCircuit.cache_key`` and the content-addressed
        caches in :class:`repro.service.AnalysisSession`.
        """
        elements = sorted(self._elements.values(), key=lambda el: el.name)
        canon: dict[str, str] = {}

        def node_id(node: str) -> str:
            if node in GROUND_NAMES:
                return _GROUND_TOKEN
            tag = canon.get(node)
            if tag is None:
                tag = canon[node] = f"#{len(canon)}"
            return tag

        records = []
        for el in elements:
            fields_rec: dict[str, object] = {}
            for f in _dataclass_fields(el):
                value = getattr(el, f.name)
                if f.name in _NODE_FIELDS and isinstance(value, str):
                    value = node_id(value)
                fields_rec[f.name] = value
            records.append((type(el).__name__, fields_rec))
        # Initial conditions on nodes no element references cannot affect
        # a simulation; keep them under their raw names for determinism.
        ic_rec = sorted(
            (node_id(node) if (node in canon or node in GROUND_NAMES)
             else "?" + node, float(v))
            for node, v in self.ic.items())
        return content_digest("circuit-fingerprint-v1", records, ic_rec)

    def validate(self) -> None:
        """Check structural sanity; raises :class:`NetlistError`.

        Every element must reference ground somewhere in the circuit and
        each node should connect at least two element terminals (a single
        connection means a dangling branch that makes the MNA matrix
        singular, except for intentionally open control terminals).
        """
        if not self._elements:
            raise NetlistError(f"circuit '{self.name}' is empty")
        touches_ground = any(
            node in GROUND_NAMES
            for el in self._elements.values() for node in el.nodes())
        if not touches_ground:
            raise NetlistError(
                f"circuit '{self.name}' never references ground ('0')")

    # ------------------------------------------------------------------
    # aggregated declarations
    # ------------------------------------------------------------------
    def mismatch_decls(self) -> list[MismatchDecl]:
        """Every mismatch parameter declared by any element."""
        out: list[MismatchDecl] = []
        for el in self._elements.values():
            out.extend(el.mismatch_decls())
        return out

    def noise_decls(self) -> list[NoiseDecl]:
        """Every physical noise source declared by any element."""
        out: list[NoiseDecl] = []
        for el in self._elements.values():
            out.extend(el.noise_decls())
        return out

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    def add_resistor(self, name: str, pos: str, neg: str, r: float,
                     sigma_rel: float = 0.0, noisy: bool = True) -> Resistor:
        return self.add(Resistor(name=name, pos=pos, neg=neg, r=r,
                                 sigma_rel=sigma_rel, noisy=noisy))

    def add_capacitor(self, name: str, pos: str, neg: str, c: float,
                      sigma_rel: float = 0.0) -> Capacitor:
        return self.add(Capacitor(name=name, pos=pos, neg=neg, c=c,
                                  sigma_rel=sigma_rel))

    def add_inductor(self, name: str, pos: str, neg: str, l: float,
                     sigma_rel: float = 0.0) -> Inductor:
        return self.add(Inductor(name=name, pos=pos, neg=neg, l=l,
                                 sigma_rel=sigma_rel))

    def add_vsource(self, name: str, pos: str, neg: str,
                    dc: float | None = None,
                    wave: TimeFunction | None = None) -> VoltageSource:
        if (dc is None) == (wave is None):
            raise NetlistError(f"vsource {name}: give exactly one of dc/wave")
        if wave is None:
            wave = Dc(dc)
        return self.add(VoltageSource(name=name, pos=pos, neg=neg, wave=wave))

    def add_isource(self, name: str, pos: str, neg: str,
                    dc: float | None = None,
                    wave: TimeFunction | None = None) -> CurrentSource:
        if (dc is None) == (wave is None):
            raise NetlistError(f"isource {name}: give exactly one of dc/wave")
        if wave is None:
            wave = Dc(dc)
        return self.add(CurrentSource(name=name, pos=pos, neg=neg, wave=wave))

    def add_vccs(self, name: str, pos: str, neg: str, ctrl_pos: str,
                 ctrl_neg: str, gm: float, vlimit: float | None = None,
                 gate: GateWindow | None = None) -> Vccs:
        return self.add(Vccs(name=name, pos=pos, neg=neg, ctrl_pos=ctrl_pos,
                             ctrl_neg=ctrl_neg, gm=gm, vlimit=vlimit,
                             gate=gate))

    def add_vcvs(self, name: str, pos: str, neg: str, ctrl_pos: str,
                 ctrl_neg: str, gain: float) -> Vcvs:
        return self.add(Vcvs(name=name, pos=pos, neg=neg, ctrl_pos=ctrl_pos,
                             ctrl_neg=ctrl_neg, gain=gain))

    def add_mosfet(self, name: str, d: str, g: str, s: str, b: str,
                   w: float, l: float, tech: Technology,
                   polarity: str = "n", m: float = 1.0,
                   noisy: bool = True) -> Mosfet:
        return self.add(Mosfet.from_tech(name, d, g, s, b, w, l, tech,
                                         polarity=polarity, m=m, noisy=noisy))

    def set_ic(self, assignments: dict[str, float] | None = None,
               **nodes: float) -> None:
        """Set initial node voltages for ``use_ic`` transients."""
        if assignments:
            self.ic.update(assignments)
        self.ic.update(nodes)

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, {len(self._elements)} elements, "
                f"{len(self.nodes())} nodes)")


__all__ = [
    "Circuit", "GROUND_NAMES", "content_digest",
    "Resistor", "Capacitor", "Inductor",
    "VoltageSource", "CurrentSource",
    "Vccs", "Vcvs", "GateWindow",
    "Mosfet", "Technology",
    "Dc", "Sine", "SmoothPulse", "Pwl",
]


def merge(name: str, circuits: Iterable[Circuit]) -> Circuit:
    """Combine several circuits into one (names must not collide)."""
    out = Circuit(name)
    for ckt in circuits:
        for el in ckt:
            out.add(el)
        out.ic.update(ckt.ic)
    return out
