"""Controlled sources and behavioral (Verilog-A substitute) elements.

The paper builds its comparator offset testbench (Fig. 6) from ideal
behavioral blocks written in Verilog-A: a clocked sampler that senses the
output difference and an integrator that feeds the accumulated error back
to the input.  Here the same testbench is composed from:

* :class:`Vccs` with a smooth clock *gate* - the sampler (a transconductor
  that is only active during a window of each clock period), optionally
  with a ``tanh`` soft limit so that the feedback loop converges
  monotonically from any starting point, and
* a :class:`Vccs` into a grounded capacitor - the ideal integrator.

Both are ordinary MNA elements, so the PSS and LPTV analyses treat the
testbench exactly like the rest of the circuit, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .elements import Element
from .sources import smoothstep


@dataclass
class GateWindow:
    """Smooth periodic gate: 1 inside ``[t_on, t_off]``, 0 outside.

    Transitions take *tau* seconds (cubic smoothstep).  The window must fit
    within one period, transitions included.
    """

    t_on: float
    t_off: float
    period: float
    tau: float = 1e-12

    def __post_init__(self):
        if not (0.0 <= self.t_on < self.t_off <= self.period):
            raise ValueError("gate window must satisfy 0 <= on < off <= T")
        if self.t_off + self.tau > self.period:
            raise ValueError("gate falling transition exceeds the period")

    def __call__(self, t):
        ph = np.mod(np.asarray(t, dtype=float), self.period)
        g = smoothstep((ph - self.t_on) / self.tau) \
            - smoothstep((ph - self.t_off) / self.tau)
        return g if g.ndim else float(g)

    def breakpoints(self, t0: float, t1: float) -> np.ndarray:
        """Window transition corners inside ``(t0, t1)`` (see
        :meth:`repro.circuit.sources.TimeFunction.breakpoints`)."""
        from .sources import periodic_breakpoints
        offsets = [self.t_on, self.t_on + self.tau,
                   self.t_off, self.t_off + self.tau]
        return periodic_breakpoints(offsets, 0.0, self.period, t0, t1)


@dataclass
class Vccs(Element):
    """Voltage-controlled current source ``i = gate(t) gm phi(v_c)``.

    Current flows from *pos* through the source to *neg* (so a positive
    control voltage with positive *gm* pulls current out of *pos* into
    *neg*).  ``phi`` is the identity, or ``vlimit * tanh(v / vlimit)``
    when *vlimit* is set (smooth saturating transconductor).
    """

    pos: str = "0"
    neg: str = "0"
    ctrl_pos: str = "0"
    ctrl_neg: str = "0"
    gm: float = 1e-3
    vlimit: float | None = None
    gate: GateWindow | None = None

    def nodes(self):
        return (self.pos, self.neg, self.ctrl_pos, self.ctrl_neg)

    @property
    def is_linear(self) -> bool:
        return self.vlimit is None and self.gate is None

    def gate_value(self, t):
        if self.gate is None:
            return 1.0 if np.ndim(t) == 0 else np.ones_like(
                np.asarray(t, dtype=float))
        return self.gate(t)

    def phi(self, v):
        """Saturating control law and its derivative ``(phi, dphi/dv)``."""
        if self.vlimit is None:
            return v, np.ones_like(np.asarray(v, dtype=float))
        th = np.tanh(np.asarray(v, dtype=float) / self.vlimit)
        return self.vlimit * th, 1.0 - th * th


@dataclass
class Vcvs(Element):
    """Voltage-controlled voltage source ``v(pos,neg) = gain * v_c``
    (``n_branch=1``)."""

    pos: str = "0"
    neg: str = "0"
    ctrl_pos: str = "0"
    ctrl_neg: str = "0"
    gain: float = 1.0

    def __post_init__(self):
        self.n_branch = 1

    def nodes(self):
        return (self.pos, self.neg, self.ctrl_pos, self.ctrl_neg)
