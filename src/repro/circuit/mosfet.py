"""EKV-style MOSFET compact model with Pelgrom mismatch.

The paper's benchmarks used foundry BSIM models; those are proprietary, so
this module implements a smooth, symmetric, all-region compact model in the
EKV spirit:

.. math::

    I_D = 2 n \\beta \\phi_t^2 \\left[ F\\!\\left(\\frac{V_P - V_{SB}}
          {\\phi_t}\\right) - F\\!\\left(\\frac{V_P - V_{DB}}{\\phi_t}\\right)
          \\right] \\cdot M(V_{DS}),
    \\qquad F(u) = \\ln^2(1 + e^{u/2})

with pinch-off voltage ``V_P = (V_{GB} - V_{T0})/n`` and a smooth
channel-length-modulation factor ``M = 1 + lambda_eff * abs_s(V_DS)``
(``abs_s`` is an infinitely differentiable absolute value).  The model is

* continuous through weak/moderate/strong inversion (softplus-squared
  interpolation),
* symmetric in drain/source (forward minus reverse current), which matters
  for pass devices and the comparator's cross-coupled pairs,
* analytically differentiable - Newton, sensitivity and noise analyses all
  consume exact derivatives, never finite differences.

Mismatch follows the Pelgrom model the paper uses (Eqs. 4-5): threshold
sigma ``AVT/sqrt(WL)`` and relative current-factor sigma
``Abeta/sqrt(WL)``.  The equivalent pseudo-noise modulations of Fig. 4 are
``-gm(t)`` (threshold) and ``I_DS(t)`` (relative beta); both come out of
the exact parameter derivatives implemented here.

All model math is vectorised: every argument may carry arbitrary leading
batch/device axes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..constants import BOLTZMANN, PHI_T, T_NOMINAL
from .elements import Element, MismatchDecl, NoiseDecl, PsdShape
from .technology import MosParams, Technology

_LN2 = math.log(2.0)


def _softplus(x: np.ndarray) -> np.ndarray:
    """Overflow-safe ``ln(1 + e^x)``."""
    return np.logaddexp(0.0, x)


def _logistic(x: np.ndarray) -> np.ndarray:
    """Overflow-safe ``1 / (1 + e^-x)``."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _interp_f(u: np.ndarray, derivative: bool = True
              ) -> tuple[np.ndarray, np.ndarray | None]:
    """EKV interpolation ``F(u) = ln^2(1+e^{u/2})`` and its derivative."""
    sp = _softplus(0.5 * u)
    return sp * sp, sp * _logistic(0.5 * u) if derivative else None


def _smooth_abs(v: np.ndarray, phi_t: float, derivative: bool = True
                ) -> tuple[np.ndarray, np.ndarray | None]:
    """Smooth ``|v|`` (zero at v=0) and its derivative ``tanh(v/2 phi_t)``."""
    a = phi_t * (_softplus(v / phi_t) + _softplus(-v / phi_t) - 2.0 * _LN2)
    return a, np.tanh(0.5 * v / phi_t) if derivative else None


@dataclass(frozen=True)
class MosEval:
    """Result of one vectorised model evaluation (all NMOS-frame).

    ``ids`` is the drain-to-source channel current; the ``g*`` entries are
    its partial derivatives with respect to the *primed* (NMOS-frame)
    terminal voltages (``None`` for current-only evaluations, see
    :func:`ekv_ids`).  ``gm`` additionally serves as the threshold
    pseudo-noise modulation (``dIds/dVT0 = -gm``) and ``ids`` as the
    relative-beta modulation (paper Fig. 4).
    """

    ids: np.ndarray
    g_d: np.ndarray | None
    g_g: np.ndarray | None
    g_s: np.ndarray | None
    g_b: np.ndarray | None

    @property
    def gm(self) -> np.ndarray:
        return self.g_g


def ekv_ids(vd, vg, vs, vb, vt0, beta, n, lam_eff,
            phi_t: float = PHI_T, derivatives: bool = True) -> MosEval:
    """Evaluate the EKV-style drain current and its terminal derivatives.

    All voltage arguments are NMOS-frame node voltages (PMOS callers negate
    voltages first and the sign of the current afterwards).  Parameters
    broadcast against the voltages.  With ``derivatives=False`` only
    ``ids`` is computed (the ``g*`` fields are ``None``) - used by
    residual-only assemblies when a Newton loop reuses a cached Jacobian
    factorization.
    """
    vd, vg, vs, vb = (np.asarray(a, dtype=float) for a in (vd, vg, vs, vb))
    vp = (vg - vb - vt0) / n
    f_f, df_f = _interp_f((vp - (vs - vb)) / phi_t, derivatives)
    f_r, df_r = _interp_f((vp - (vd - vb)) / phi_t, derivatives)

    i_core = 2.0 * n * beta * phi_t * phi_t * (f_f - f_r)
    vds = vd - vs
    sabs, dsabs = _smooth_abs(vds, phi_t, derivatives)
    m = 1.0 + lam_eff * sabs

    ids = i_core * m
    if not derivatives:
        return MosEval(ids=ids, g_d=None, g_g=None, g_s=None, g_b=None)
    dm = lam_eff * dsabs
    gm = 2.0 * beta * phi_t * (df_f - df_r) * m
    g_d = 2.0 * n * beta * phi_t * df_r * m + i_core * dm
    g_s = -2.0 * n * beta * phi_t * df_f * m - i_core * dm
    g_b = (n - 1.0) * gm
    return MosEval(ids=ids, g_d=g_d, g_g=gm, g_s=g_s, g_b=g_b)


@dataclass
class Mosfet(Element):
    """Four-terminal MOSFET.

    Attributes
    ----------
    d, g, s, b:
        Drain, gate, source, bulk node names.
    w, l:
        Drawn width/length [m].
    polarity:
        ``"n"`` or ``"p"``.
    params:
        Compact-model parameters (usually from a :class:`Technology`).
    sigma_vt, sigma_beta_rel:
        Pelgrom mismatch sigmas.  When constructed through
        :meth:`from_tech` they default to ``AVT/sqrt(WL)`` and
        ``Abeta/sqrt(WL)`` (paper Eqs. 4-5); explicit values override.
    m:
        Parallel-device multiplier: multiplies current and capacitance,
        divides mismatch sigmas by ``sqrt(m)``.
    noisy:
        Include thermal/flicker noise in physical-noise analyses.
    """

    d: str = "0"
    g: str = "0"
    s: str = "0"
    b: str = "0"
    w: float = 1e-6
    l: float = 0.13e-6
    polarity: str = "n"
    params: MosParams | None = None
    sigma_vt: float = 0.0
    sigma_beta_rel: float = 0.0
    m: float = 1.0
    noisy: bool = True
    temperature: float = field(default=T_NOMINAL, repr=False)

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ValueError(f"mosfet {self.name}: polarity must be n or p")
        if self.params is None:
            raise ValueError(f"mosfet {self.name}: params are required")
        if self.w <= 0 or self.l <= 0 or self.m <= 0:
            raise ValueError(f"mosfet {self.name}: W, L, m must be positive")

    @classmethod
    def from_tech(cls, name: str, d: str, g: str, s: str, b: str,
                  w: float, l: float, tech: Technology,
                  polarity: str = "n", m: float = 1.0,
                  noisy: bool = True) -> "Mosfet":
        """Build a device with Pelgrom sigmas derived from *tech*."""
        params = tech.nmos if polarity == "n" else tech.pmos
        return cls(
            name=name, d=d, g=g, s=s, b=b, w=w, l=l, polarity=polarity,
            params=params, m=m, noisy=noisy,
            sigma_vt=tech.sigma_vt(w, l) / math.sqrt(m),
            sigma_beta_rel=tech.sigma_beta_rel(w, l) / math.sqrt(m),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (node-voltage frame mapping)."""
        return 1.0 if self.polarity == "n" else -1.0

    @property
    def beta(self) -> float:
        """Current factor ``m * KP * W / L`` [A/V^2]."""
        return self.m * self.params.kp * self.w / self.l

    @property
    def lam_eff(self) -> float:
        """Length-scaled channel-length-modulation coefficient [1/V]."""
        return self.params.lam * self.params.l_ref / self.l

    @property
    def c_gs(self) -> float:
        return self.m * (0.5 * self.params.cox * self.w * self.l
                         + self.params.c_overlap * self.w)

    @property
    def c_gd(self) -> float:
        return self.c_gs

    @property
    def c_db(self) -> float:
        return self.m * self.params.c_junction * self.w * self.params.l_diff

    @property
    def c_sb(self) -> float:
        return self.c_db

    @property
    def thermal_psd_coeff(self) -> float:
        """``4 k T gamma``; multiply by ``gm(t)`` for the drain-current PSD."""
        return 4.0 * BOLTZMANN * self.temperature * self.params.gamma_noise

    @property
    def flicker_coeff(self) -> float:
        """``KF / (Cox W L)``; gate-referred 1/f PSD is this over ``f``."""
        return self.params.kf / (self.params.cox * self.w * self.l * self.m)

    def nodes(self):
        return (self.d, self.g, self.s, self.b)

    def mismatch_decls(self):
        decls = []
        if self.sigma_vt > 0.0:
            decls.append(MismatchDecl((self.name, "vt0"), self.sigma_vt))
        if self.sigma_beta_rel > 0.0:
            decls.append(MismatchDecl((self.name, "beta_rel"),
                                      self.sigma_beta_rel))
        return decls

    def noise_decls(self):
        if not self.noisy:
            return []
        return [NoiseDecl((self.name, "thermal"), PsdShape.WHITE),
                NoiseDecl((self.name, "flicker"), PsdShape.FLICKER)]
