"""Circuit description layer: elements, netlists, technology.

This subpackage is pure description; the numerical engines live in
:mod:`repro.analysis`.
"""

from .controlled import GateWindow, Vccs, Vcvs
from .elements import Element, MismatchDecl, NoiseDecl, ParamKey, PsdShape
from .mosfet import Mosfet, MosEval, ekv_ids
from .netlist import GROUND_NAMES, Circuit, content_digest, merge
from .passives import Capacitor, Inductor, Resistor
from .sources import (CurrentSource, Dc, Pwl, Sine, SmoothPulse,
                      TimeFunction, VoltageSource, smoothstep)
from .technology import MosParams, Technology, default_technology

__all__ = [
    "Circuit", "merge", "GROUND_NAMES", "content_digest",
    "Element", "MismatchDecl", "NoiseDecl", "ParamKey", "PsdShape",
    "Resistor", "Capacitor", "Inductor",
    "VoltageSource", "CurrentSource",
    "Dc", "Sine", "SmoothPulse", "Pwl", "TimeFunction", "smoothstep",
    "Vccs", "Vcvs", "GateWindow",
    "Mosfet", "MosEval", "ekv_ids",
    "Technology", "MosParams", "default_technology",
]
