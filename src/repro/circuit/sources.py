"""Independent sources and their time functions.

Time functions are pure descriptions evaluated by the compiled circuit.
Pulse-type sources use *smoothstep* edges (C1-continuous) instead of the
SPICE piecewise-linear ramps: fixed-grid integrators and Fourier-based
LPTV analyses both behave much better without slope discontinuities, and
every bundled testbench is built from periodic smooth pulses so that the
circuit has an exact periodic steady state (paper Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .elements import Element


class TimeFunction:
    """Base class: a time-dependent scalar value ``v(t)``."""

    def __call__(self, t):
        raise NotImplementedError

    @property
    def period(self) -> float | None:
        """Fundamental period [s], or ``None`` for aperiodic functions."""
        return None

    def breakpoints(self, t0: float, t1: float) -> np.ndarray:
        """Slope-corner times of the waveform inside ``(t0, t1)``.

        Adaptive integrators register these as exact landing points so
        the LTE controller does not burn rejection bursts rediscovering
        each edge (see :mod:`repro.analysis.transient`).  Smooth
        waveforms (DC, sine) have none.
        """
        return np.empty(0)


@dataclass
class Dc(TimeFunction):
    """Constant value.  *value* may be an array for batched sweeps
    (every Monte-Carlo sample / bisection lane sees its own level)."""

    value: float | np.ndarray = 0.0

    def __call__(self, t):
        t = np.asarray(t)
        if t.ndim == 0:
            return self.value
        return np.multiply.outer(np.ones_like(t, dtype=float), self.value)

    @property
    def period(self) -> float | None:
        return None


@dataclass
class Sine(TimeFunction):
    """``offset + amplitude * sin(2 pi freq (t - delay))``."""

    offset: float = 0.0
    amplitude: float = 1.0
    freq: float = 1.0
    delay: float = 0.0

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        return self.offset + self.amplitude * np.sin(
            2.0 * np.pi * self.freq * (t - self.delay))

    @property
    def period(self) -> float | None:
        return 1.0 / self.freq


def smoothstep(u):
    """Cubic smoothstep ``3u^2 - 2u^3`` clamped to [0, 1]."""
    u = np.clip(u, 0.0, 1.0)
    return u * u * (3.0 - 2.0 * u)


def periodic_breakpoints(offsets: Sequence[float], base: float,
                         period: float, t0: float, t1: float) -> np.ndarray:
    """Expand per-period corner *offsets* (relative to *base*, repeating
    every *period*) into the open interval ``(t0, t1)``.

    Returns an empty array when the expansion would exceed one million
    points (a pathological span/period ratio where per-edge landing is
    hopeless anyway).
    """
    offs = np.asarray(offsets, dtype=float)
    if t1 <= t0 or offs.size == 0 or period <= 0.0:
        return np.empty(0)
    k0 = int(np.floor((t0 - base) / period)) - 1
    k1 = int(np.ceil((t1 - base) / period)) + 1
    if (k1 - k0 + 1) * offs.size > 1_000_000:
        return np.empty(0)
    ks = np.arange(k0, k1 + 1, dtype=float)
    pts = (base + ks[:, None] * period + offs[None, :]).ravel()
    return pts[(pts > t0) & (pts < t1)]


@dataclass
class SmoothPulse(TimeFunction):
    """Periodic pulse with smoothstep edges.

    One period, starting at ``t = delay`` (phase wraps before it):
    rise from *v0* to *v1* over *t_rise*, hold *v1* for *t_high*, fall
    over *t_fall*, hold *v0* for the remainder of *t_period*.
    """

    v0: float = 0.0
    v1: float = 1.0
    delay: float = 0.0
    t_rise: float = 1e-12
    t_high: float = 0.0
    t_fall: float = 1e-12
    t_period: float = 1.0

    def __post_init__(self):
        active = self.t_rise + self.t_high + self.t_fall
        if active > self.t_period:
            raise ValueError("pulse edges/high time exceed the period")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        ph = np.mod(t - self.delay, self.t_period)
        v = np.full_like(ph, float(self.v0))
        # rising edge
        u = ph / self.t_rise
        rising = ph < self.t_rise
        v = np.where(rising, self.v0 + (self.v1 - self.v0) * smoothstep(u), v)
        # high plateau
        t1 = self.t_rise + self.t_high
        v = np.where((ph >= self.t_rise) & (ph < t1), self.v1, v)
        # falling edge
        u2 = (ph - t1) / self.t_fall
        falling = (ph >= t1) & (ph < t1 + self.t_fall)
        v = np.where(falling,
                     self.v1 + (self.v0 - self.v1) * smoothstep(u2), v)
        return v if v.ndim else float(v)

    @property
    def period(self) -> float | None:
        return self.t_period

    def breakpoints(self, t0: float, t1: float) -> np.ndarray:
        t_r = self.t_rise
        t_f1 = t_r + self.t_high
        offsets = [0.0, t_r, t_f1, t_f1 + self.t_fall]
        return periodic_breakpoints(offsets, self.delay, self.t_period,
                                    t0, t1)


@dataclass
class Pwl(TimeFunction):
    """Piecewise-linear waveform through ``(times, values)``; optionally
    repeated with period *t_period* (points must then span one period)."""

    times: Sequence[float] = field(default_factory=list)
    values: Sequence[float] = field(default_factory=list)
    t_period: float | None = None

    def __post_init__(self):
        self._t = np.asarray(self.times, dtype=float)
        self._v = np.asarray(self.values, dtype=float)
        if self._t.size != self._v.size or self._t.size < 2:
            raise ValueError("PWL needs matching times/values, >= 2 points")
        if np.any(np.diff(self._t) <= 0):
            raise ValueError("PWL times must be strictly increasing")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        if self.t_period is not None:
            t = self._t[0] + np.mod(t - self._t[0], self.t_period)
        out = np.interp(t, self._t, self._v)
        return out if out.ndim else float(out)

    @property
    def period(self) -> float | None:
        return self.t_period

    def breakpoints(self, t0: float, t1: float) -> np.ndarray:
        if self.t_period is None:
            pts = self._t
            return pts[(pts > t0) & (pts < t1)]
        return periodic_breakpoints(self._t - self._t[0], self._t[0],
                                    self.t_period, t0, t1)


@dataclass
class VoltageSource(Element):
    """Independent voltage source between *pos* and *neg* (``n_branch=1``).

    The branch current unknown flows from *pos* through the source to
    *neg* (SPICE convention).
    """

    pos: str = "0"
    neg: str = "0"
    wave: TimeFunction = field(default_factory=Dc)

    def __post_init__(self):
        self.n_branch = 1

    def nodes(self):
        return (self.pos, self.neg)


@dataclass
class CurrentSource(Element):
    """Independent current source; positive current flows from *pos*
    through the source into *neg* (SPICE convention)."""

    pos: str = "0"
    neg: str = "0"
    wave: TimeFunction = field(default_factory=Dc)

    def nodes(self):
        return (self.pos, self.neg)
