"""Element base classes and the mismatch/noise declaration records.

An element is a lightweight description object: it stores its name, node
names and parameters.  All numerical work happens in the compiled device
groups (:mod:`repro.analysis.mna`), which stack the parameters of all
elements of one type into arrays so that model evaluation is vectorised
over devices *and* over Monte-Carlo samples.

Two declaration records connect elements to the paper's machinery:

* :class:`MismatchDecl` - one scalar random mismatch parameter with its
  standard deviation.  The compiled circuit turns each declaration into an
  equivalent *pseudo-noise injection* (paper Section III) for the
  sensitivity-based analysis, and into a sampled parameter delta for the
  Monte-Carlo baseline.
* :class:`NoiseDecl` - one physical noise source (thermal/flicker), used by
  the stationary and periodic noise analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence


#: Type alias for the key that identifies one scalar parameter of one
#: element, e.g. ``("M2", "vt0")``.
ParamKey = tuple[str, str]


class PsdShape(Enum):
    """Frequency shape of a noise source's power spectral density."""

    #: Flat PSD (thermal noise).
    WHITE = "white"
    #: ``1/f`` PSD, specified by its value at 1 Hz.  The paper models DC
    #: mismatch as exactly this shape so that the high-frequency content
    #: (and therefore noise folding) is negligible (Section III).
    FLICKER = "flicker"


@dataclass(frozen=True)
class MismatchDecl:
    """One random mismatch parameter of one element.

    Attributes
    ----------
    key:
        ``(element_name, parameter_name)``.
    sigma:
        Standard deviation of the parameter's distribution, in the
        parameter's own unit (V for ``vt0``, relative for ``beta_rel``,
        ohm for ``r``, ...).
    """

    key: ParamKey
    sigma: float

    @property
    def element(self) -> str:
        return self.key[0]

    @property
    def param(self) -> str:
        return self.key[1]


@dataclass(frozen=True)
class NoiseDecl:
    """One physical noise source of one element.

    Attributes
    ----------
    key:
        ``(element_name, source_name)``, e.g. ``("M2", "thermal")``.
    shape:
        PSD shape (white or flicker).
    """

    key: ParamKey
    shape: PsdShape


@dataclass
class Element:
    """Base class for all circuit elements."""

    name: str

    #: Number of auxiliary branch-current unknowns this element adds to the
    #: MNA system (voltage sources, inductors, VCVS: 1; others: 0).
    n_branch: int = field(default=0, init=False, repr=False)

    def nodes(self) -> Sequence[str]:
        """Names of the nodes this element connects to."""
        raise NotImplementedError

    def mismatch_decls(self) -> list[MismatchDecl]:
        """Random mismatch parameters of this element (default: none)."""
        return []

    def noise_decls(self) -> list[NoiseDecl]:
        """Physical noise sources of this element (default: none)."""
        return []
