"""Passive elements: resistor, capacitor, inductor.

Each passive carries an optional *relative* mismatch sigma.  The paper's
Fig. 3 gives the equivalent pseudo-noise representation of passive
mismatch; in this implementation the equivalence is realised exactly as a
parameter-derivative injection (see ``repro.core.pseudo_noise`` for the
mapping table and the proof of equivalence):

* resistor ``delta R``: KCL injection ``-I_R(t)/R`` (the paper's series EMF
  ``I_R * deltaR`` converted to its Norton equivalent),
* capacitor ``delta C``: reactive injection with charge derivative
  ``v_C(t)`` (the paper's ``i = d(deltaC v)/dt``),
* inductor ``delta L``: branch-voltage injection with flux derivative
  ``i_L(t)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .elements import Element, MismatchDecl, NoiseDecl, PsdShape


@dataclass
class Resistor(Element):
    """Linear resistor between *pos* and *neg*.

    Attributes
    ----------
    r:
        Nominal resistance [ohm].
    sigma_rel:
        Relative mismatch sigma (``sigma_R = sigma_rel * r``); 0 disables.
    noisy:
        Include the 4kT/R thermal noise source in noise analyses.
    """

    pos: str = "0"
    neg: str = "0"
    r: float = 1e3
    sigma_rel: float = 0.0
    noisy: bool = True

    def __post_init__(self):
        if self.r <= 0.0:
            raise ValueError(f"resistor {self.name}: r must be positive")

    def nodes(self):
        return (self.pos, self.neg)

    def mismatch_decls(self):
        if self.sigma_rel <= 0.0:
            return []
        return [MismatchDecl((self.name, "r"), self.sigma_rel * self.r)]

    def noise_decls(self):
        if not self.noisy:
            return []
        return [NoiseDecl((self.name, "thermal"), PsdShape.WHITE)]


@dataclass
class Capacitor(Element):
    """Linear capacitor between *pos* and *neg*."""

    pos: str = "0"
    neg: str = "0"
    c: float = 1e-12
    sigma_rel: float = 0.0

    def __post_init__(self):
        if self.c <= 0.0:
            raise ValueError(f"capacitor {self.name}: c must be positive")

    def nodes(self):
        return (self.pos, self.neg)

    def mismatch_decls(self):
        if self.sigma_rel <= 0.0:
            return []
        return [MismatchDecl((self.name, "c"), self.sigma_rel * self.c)]


@dataclass
class Inductor(Element):
    """Linear inductor between *pos* and *neg* (``n_branch=1``).

    The branch unknown is the inductor current flowing *pos* -> *neg*.
    """

    pos: str = "0"
    neg: str = "0"
    l: float = 1e-9
    sigma_rel: float = 0.0

    def __post_init__(self):
        if self.l <= 0.0:
            raise ValueError(f"inductor {self.name}: l must be positive")
        self.n_branch = 1

    def nodes(self):
        return (self.pos, self.neg)

    def mismatch_decls(self):
        if self.sigma_rel <= 0.0:
            return []
        return [MismatchDecl((self.name, "l"), self.sigma_rel * self.l)]
