"""``python -m repro.service``: run one analysis worker daemon.

Announces its URL on stdout before serving (see
:func:`repro.service.net._main`), which is how the chaos suite and the
worker-kill example spawn real OS-process daemons on ephemeral ports -
and then SIGKILL them to prove the :class:`~repro.service.resilience.
WorkerPool` fails over.
"""

from .net import _main

if __name__ == "__main__":
    raise SystemExit(_main())
