"""Job-oriented analysis requests and results (application layer).

An :class:`AnalysisRequest` describes one unit of analysis work as a
plain value: a serialized circuit, a kind tag, measures/outputs and an
options dict - all JSON types after :meth:`~AnalysisRequest.to_dict`.
Requests therefore have a stable content hash (:meth:`AnalysisRequest.
key`), which is what :class:`~repro.service.session.AnalysisSession`
memoizes results on, and they cross process boundaries unchanged, which
is what :class:`~repro.service.jobs.JobQueue` fans out.

:class:`AnalysisResult` is the matching value-shaped answer: a
``summary`` dict of plain numbers that serializes and memoizes, plus an
optional live ``detail`` object (the engine's rich result - contribution
tables, waveforms) that exists only in-process and never crosses a
boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..circuit.netlist import Circuit, content_digest
from ..errors import AnalysisError
from .serialize import circuit_to_dict, from_jsonable, to_jsonable

REQUEST_FORMAT_VERSION = 1

#: The kinds :class:`~repro.service.session.AnalysisSession` executes.
REQUEST_KINDS = ("transient_mismatch", "dc_mismatch",
                 "mc_transient", "mc_dc")


def _clean(options: dict) -> dict:
    """Drop ``None`` entries so that 'omitted' and 'default' hash
    identically - requests built with and without explicit defaults
    would otherwise miss each other's cached results."""
    return {k: v for k, v in options.items() if v is not None}


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis job as a JSON-serializable value.

    Build instances through the classmethod constructors
    (:meth:`transient_mismatch`, :meth:`dc_mismatch`,
    :meth:`monte_carlo_transient`, :meth:`monte_carlo_dc`) - they
    serialize the circuit and options into canonical form so that equal
    workloads get equal :meth:`key` values.
    """

    kind: str
    circuit: dict
    measures: tuple = ()
    outputs: tuple = ()
    options: dict = field(default_factory=dict)
    version: int = REQUEST_FORMAT_VERSION

    def __post_init__(self):
        if self.kind not in REQUEST_KINDS:
            raise AnalysisError(
                f"unknown request kind '{self.kind}'; expected one of "
                f"{REQUEST_KINDS}")

    # -- constructors --------------------------------------------------
    @classmethod
    def transient_mismatch(cls, circuit, measures,
                           period: float | None = None,
                           oscillator_anchor: str | None = None,
                           t_settle: float | None = None,
                           dt_settle: float | None = None,
                           pss_options=None, param_covariance=None,
                           cmin: float | None = None,
                           backend: str | None = None) -> "AnalysisRequest":
        """The paper's sensitivity analysis (:func:`~repro.core.analysis.
        transient_mismatch_analysis`) as a request."""
        options = _clean({
            "period": period, "oscillator_anchor": oscillator_anchor,
            "t_settle": t_settle, "dt_settle": dt_settle,
            "pss_options": to_jsonable(pss_options),
            "param_covariance": _cov(param_covariance),
            "cmin": cmin, "backend": backend,
        })
        return cls(kind="transient_mismatch", circuit=_record(circuit),
                   measures=tuple(to_jsonable(list(measures))),
                   options=options)

    @classmethod
    def dc_mismatch(cls, circuit, outputs: dict,
                    param_covariance=None, cmin: float | None = None,
                    backend: str | None = None) -> "AnalysisRequest":
        """DC mismatch (dcmatch) analysis as a request."""
        options = _clean({"param_covariance": _cov(param_covariance),
                          "cmin": cmin, "backend": backend})
        return cls(kind="dc_mismatch", circuit=_record(circuit),
                   outputs=_outputs(outputs), options=options)

    @classmethod
    def monte_carlo_transient(cls, circuit, measures, n: int,
                              t_stop: float, dt: float,
                              window: tuple | None = None, seed: int = 0,
                              sigma_scale: float = 1.0,
                              param_covariance=None,
                              chunk_size: int = 250,
                              method: str = "trap",
                              extra_record: list | None = None,
                              adaptive: bool = False, rtol: float = 1e-3,
                              atol: float = 1e-6,
                              dt_min: float | None = None,
                              dt_max: float | None = None,
                              n_workers: int | None = None,
                              cmin: float | None = None,
                              backend: str | None = None,
                              retry=None) -> "AnalysisRequest":
        """Transient Monte-Carlo (:func:`~repro.core.montecarlo.
        monte_carlo_transient`) as a request.

        *retry* (a :class:`~repro.service.jobs.RetryPolicy` or its
        ``to_dict()`` form) puts the run's shards under supervision.
        """
        options = _clean({
            "n": int(n), "t_stop": float(t_stop), "dt": float(dt),
            "window": list(window) if window is not None else None,
            "seed": int(seed), "sigma_scale": float(sigma_scale),
            "param_covariance": _cov(param_covariance),
            "chunk_size": int(chunk_size), "method": method,
            "extra_record": list(extra_record) if extra_record else None,
            "adaptive": adaptive or None, "rtol": rtol, "atol": atol,
            "dt_min": dt_min, "dt_max": dt_max, "n_workers": n_workers,
            "cmin": cmin, "backend": backend, "retry": _retry(retry),
        })
        return cls(kind="mc_transient", circuit=_record(circuit),
                   measures=tuple(to_jsonable(list(measures))),
                   options=options)

    @classmethod
    def monte_carlo_dc(cls, circuit, outputs: dict, n: int,
                       seed: int = 0, sigma_scale: float = 1.0,
                       param_covariance=None,
                       chunk_size: int | None = None,
                       n_workers: int | None = None,
                       cmin: float | None = None,
                       backend: str | None = None,
                       retry=None) -> "AnalysisRequest":
        """DC Monte-Carlo as a request (*retry* as in
        :meth:`monte_carlo_transient`)."""
        options = _clean({
            "n": int(n), "seed": int(seed),
            "sigma_scale": float(sigma_scale),
            "param_covariance": _cov(param_covariance),
            "chunk_size": chunk_size, "n_workers": n_workers,
            "cmin": cmin, "backend": backend, "retry": _retry(retry),
        })
        return cls(kind="mc_dc", circuit=_record(circuit),
                   outputs=_outputs(outputs), options=options)

    # -- identity ------------------------------------------------------
    def key(self) -> str:
        """Content hash of the full request - the memoization key."""
        return content_digest(
            "analysis-request-v1", self.version, self.kind, self.circuit,
            list(self.measures), list(self.outputs), self.options)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"version": self.version, "kind": self.kind,
                "circuit": self.circuit,
                "measures": list(self.measures),
                "outputs": list(self.outputs),
                "options": self.options}

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisRequest":
        version = data.get("version")
        if version != REQUEST_FORMAT_VERSION:
            raise AnalysisError(
                f"request format version {version!r} is not supported "
                f"(this build speaks {REQUEST_FORMAT_VERSION})")
        return cls(kind=data["kind"], circuit=data["circuit"],
                   measures=tuple(
                       tuple(m) if isinstance(m, list) else m
                       for m in data.get("measures", ())),
                   outputs=tuple(tuple(o) for o in data.get("outputs", ())),
                   options=data.get("options", {}), version=version)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        return cls.from_dict(json.loads(text))


@dataclass
class AnalysisResult:
    """The value-shaped answer to an :class:`AnalysisRequest`.

    ``summary`` holds plain-number statistics per metric
    (``{"metrics": {name: {"nominal"/"mean": ..., "sigma": ...}}}`` plus
    kind-specific extras); it is what serializes, memoizes and crosses
    process boundaries.  ``detail`` is the engine's rich in-process
    result (:class:`~repro.core.analysis.MismatchAnalysisResult` or
    :class:`~repro.core.montecarlo.MonteCarloResult`) - dropped by
    :meth:`to_dict`, absent on results from worker processes and on
    deserialized results.
    """

    kind: str
    request_key: str
    summary: dict
    runtime_seconds: float = 0.0
    from_cache: bool = False
    #: Structured :class:`~repro.errors.FailureRecord` values for every
    #: degraded span of a supervised run (empty on clean runs);
    #: round-trips through :meth:`to_dict`.
    failures: list = field(default_factory=list)
    detail: object = field(default=None, repr=False, compare=False)
    version: int = REQUEST_FORMAT_VERSION

    def sigma(self, metric: str) -> float:
        return float(self._metric(metric)["sigma"])

    def mean(self, metric: str) -> float:
        m = self._metric(metric)
        return float(m.get("mean", m.get("nominal")))

    def _metric(self, metric: str) -> dict:
        try:
            return self.summary["metrics"][metric]
        except KeyError:
            raise AnalysisError(
                f"no metric named '{metric}'; available: "
                f"{sorted(self.summary.get('metrics', {}))}") from None

    def to_dict(self) -> dict:
        return {"version": self.version, "kind": self.kind,
                "request_key": self.request_key, "summary": self.summary,
                "runtime_seconds": self.runtime_seconds,
                "from_cache": self.from_cache,
                "failures": [to_jsonable(f) for f in self.failures]}

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisResult":
        version = data.get("version")
        if version != REQUEST_FORMAT_VERSION:
            raise AnalysisError(
                f"result format version {version!r} is not supported "
                f"(this build speaks {REQUEST_FORMAT_VERSION})")
        return cls(kind=data["kind"], request_key=data["request_key"],
                   summary=data["summary"],
                   runtime_seconds=data.get("runtime_seconds", 0.0),
                   from_cache=data.get("from_cache", False),
                   failures=[from_jsonable(f)
                             for f in data.get("failures", [])],
                   version=version)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        return cls.from_dict(json.loads(text))

    def as_cached(self) -> "AnalysisResult":
        return replace(self, from_cache=True)


# ---------------------------------------------------------------------------
# constructor helpers
# ---------------------------------------------------------------------------
def _record(circuit) -> dict:
    if isinstance(circuit, dict):
        return circuit
    if isinstance(circuit, Circuit):
        return circuit_to_dict(circuit)
    # CompiledCircuit and friends expose .circuit
    inner = getattr(circuit, "circuit", None)
    if isinstance(inner, Circuit):
        return circuit_to_dict(inner)
    raise TypeError("expected a Circuit, CompiledCircuit or circuit dict")


def _outputs(outputs: dict) -> tuple:
    """Canonicalise the dcmatch output map into sorted (name, pos, neg)
    triples - a hashable, JSON-stable shape."""
    rows = []
    for name, spec in outputs.items():
        pos, neg = (spec if isinstance(spec, (tuple, list))
                    else (spec, None))
        rows.append((str(name), str(pos),
                     None if neg is None else str(neg)))
    return tuple(sorted(rows))


def _cov(param_covariance) -> list | None:
    if param_covariance is None:
        return None
    import numpy as np
    return np.asarray(param_covariance, dtype=float).tolist()


def _retry(retry) -> dict | None:
    """Canonicalise a retry policy (or its dict form) for the options
    map; duck-typed so this module need not import the jobs layer."""
    if retry is None:
        return None
    if isinstance(retry, dict):
        return dict(retry)
    return retry.to_dict()
