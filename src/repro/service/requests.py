"""Job-oriented analysis requests and results (application layer).

An :class:`AnalysisRequest` describes one unit of analysis work as a
plain value: a serialized circuit, a kind tag, measures/outputs and an
options dict - all JSON types after :meth:`~AnalysisRequest.to_dict`.
Requests therefore have a stable content hash (:meth:`AnalysisRequest.
key`), which is what :class:`~repro.service.session.AnalysisSession`
memoizes results on, and they cross process boundaries unchanged, which
is what :class:`~repro.service.jobs.JobQueue` fans out.

:class:`AnalysisResult` is the matching value-shaped answer: a
``summary`` dict of plain numbers that serializes and memoizes, plus an
optional live ``detail`` object (the engine's rich result - contribution
tables, waveforms) that exists only in-process and never crosses a
boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..circuit.netlist import content_digest
from ..errors import AnalysisError
from .engines import engine_for
from .serialize import (circuit_record, from_jsonable, output_triples,
                        to_jsonable)

REQUEST_FORMAT_VERSION = 1


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis job as a JSON-serializable value.

    Build instances through :meth:`build` (any registered kind - see
    :func:`~repro.service.engines.registered_kinds`) or the named
    classmethod constructors (:meth:`transient_mismatch`,
    :meth:`dc_mismatch`, :meth:`monte_carlo_transient`,
    :meth:`monte_carlo_dc`, :meth:`pss`, :meth:`ac`, :meth:`sweep`) -
    they serialize the circuit and options into canonical form through
    the kind's registered engine so that equal workloads get equal
    :meth:`key` values.

    Every constructor accepts *variations* - a declarative
    :class:`~repro.variation.VariationSpec` - as an alternative to a
    raw *param_covariance* matrix; the spec rides the request as a
    tagged JSON payload and is lowered onto the circuit's declaration
    order at execution time, bit-identical to the equivalent hand-built
    matrix.
    """

    kind: str
    circuit: dict
    measures: tuple = ()
    outputs: tuple = ()
    options: dict = field(default_factory=dict)
    version: int = REQUEST_FORMAT_VERSION

    def __post_init__(self):
        # raises AnalysisError listing the registered kinds
        engine_for(self.kind)

    # -- constructors --------------------------------------------------
    @classmethod
    def build(cls, kind: str, circuit=None, measures=(), outputs=None,
              **kwargs) -> "AnalysisRequest":
        """Build a request of any registered *kind*.

        The kind's engine canonicalizes *kwargs* into the JSON-stable
        options dict; *measures* / *outputs* are consumed according to
        the engine's payload slot.  This is the generic form behind
        every named constructor - a newly registered engine is
        constructible here with no further plumbing.
        """
        engine = engine_for(kind)
        options = engine.canonicalize(**kwargs)
        measures_t: tuple = ()
        outputs_t: tuple = ()
        if engine.payload == "measures":
            measures_t = tuple(to_jsonable(list(measures)))
        elif engine.payload == "outputs":
            outputs_t = output_triples(
                outputs if outputs is not None else {})
        record = (circuit_record(circuit)
                  if circuit is not None else {})
        return cls(kind=kind, circuit=record, measures=measures_t,
                   outputs=outputs_t, options=options)

    @classmethod
    def transient_mismatch(cls, circuit, measures,
                           period: float | None = None,
                           oscillator_anchor: str | None = None,
                           t_settle: float | None = None,
                           dt_settle: float | None = None,
                           pss_options=None, param_covariance=None,
                           cmin: float | None = None,
                           backend: str | None = None,
                           variations=None, retry=None,
                           n_workers: int | None = None
                           ) -> "AnalysisRequest":
        """The paper's sensitivity analysis (:func:`~repro.core.analysis.
        transient_mismatch_analysis`) as a request.

        *retry* / *n_workers* are accepted for keyword uniformity with
        the Monte-Carlo constructors; a single deterministic solve has
        nothing to fan out or retry, so they are validated and dropped
        from the canonical options.
        """
        return cls.build(
            "transient_mismatch", circuit, measures=measures,
            period=period, oscillator_anchor=oscillator_anchor,
            t_settle=t_settle, dt_settle=dt_settle,
            pss_options=pss_options, param_covariance=param_covariance,
            variations=variations, cmin=cmin, backend=backend,
            retry=retry, n_workers=n_workers)

    @classmethod
    def dc_mismatch(cls, circuit, outputs: dict,
                    param_covariance=None, cmin: float | None = None,
                    backend: str | None = None,
                    variations=None, retry=None,
                    n_workers: int | None = None) -> "AnalysisRequest":
        """DC mismatch (dcmatch) analysis as a request.

        *retry* / *n_workers* are accepted for keyword uniformity with
        the Monte-Carlo constructors; validated, then dropped from the
        canonical options.
        """
        return cls.build(
            "dc_mismatch", circuit, outputs=outputs,
            param_covariance=param_covariance, variations=variations,
            cmin=cmin, backend=backend, retry=retry,
            n_workers=n_workers)

    @classmethod
    def monte_carlo_transient(cls, circuit, measures, n: int,
                              t_stop: float, dt: float,
                              window: tuple | None = None, seed: int = 0,
                              sigma_scale: float = 1.0,
                              param_covariance=None,
                              chunk_size: int = 250,
                              method: str = "trap",
                              extra_record: list | None = None,
                              adaptive: bool = False, rtol: float = 1e-3,
                              atol: float = 1e-6,
                              dt_min: float | None = None,
                              dt_max: float | None = None,
                              n_workers: int | None = None,
                              cmin: float | None = None,
                              backend: str | None = None,
                              retry=None,
                              variations=None) -> "AnalysisRequest":
        """Transient Monte-Carlo (:func:`~repro.core.montecarlo.
        monte_carlo_transient`) as a request.

        *retry* (a :class:`~repro.service.jobs.RetryPolicy` or its
        ``to_dict()`` form) puts the run's shards under supervision.
        """
        return cls.build(
            "mc_transient", circuit, measures=measures, n=n,
            t_stop=t_stop, dt=dt, window=window, seed=seed,
            sigma_scale=sigma_scale, param_covariance=param_covariance,
            variations=variations, chunk_size=chunk_size, method=method,
            extra_record=extra_record, adaptive=adaptive, rtol=rtol,
            atol=atol, dt_min=dt_min, dt_max=dt_max,
            n_workers=n_workers, cmin=cmin, backend=backend,
            retry=retry)

    @classmethod
    def monte_carlo_dc(cls, circuit, outputs: dict, n: int,
                       seed: int = 0, sigma_scale: float = 1.0,
                       param_covariance=None,
                       chunk_size: int | None = None,
                       n_workers: int | None = None,
                       cmin: float | None = None,
                       backend: str | None = None,
                       retry=None, variations=None) -> "AnalysisRequest":
        """DC Monte-Carlo as a request (*retry* as in
        :meth:`monte_carlo_transient`)."""
        return cls.build(
            "mc_dc", circuit, outputs=outputs, n=n, seed=seed,
            sigma_scale=sigma_scale, param_covariance=param_covariance,
            variations=variations, chunk_size=chunk_size,
            n_workers=n_workers, cmin=cmin, backend=backend,
            retry=retry)

    @classmethod
    def pss(cls, circuit, measures=(), period: float | None = None,
            oscillator_anchor: str | None = None,
            t_settle: float | None = None,
            dt_settle: float | None = None, pss_options=None,
            cmin: float | None = None,
            backend: str | None = None) -> "AnalysisRequest":
        """Periodic steady state (:func:`~repro.analysis.pss.pss` /
        :func:`~repro.analysis.pss.pss_oscillator`) as a cacheable
        request; *measures* (optional) report nominal orbit metrics in
        the summary."""
        return cls.build(
            "pss", circuit, measures=measures, period=period,
            oscillator_anchor=oscillator_anchor, t_settle=t_settle,
            dt_settle=dt_settle, pss_options=pss_options, cmin=cmin,
            backend=backend)

    @classmethod
    def ac(cls, circuit, outputs: dict, source: str, freqs,
           amplitude: float = 1.0, cmin: float | None = None,
           backend: str | None = None) -> "AnalysisRequest":
        """Small-signal AC sweep (:func:`~repro.analysis.ac.
        ac_analysis`) as a request; *outputs* maps metric names to
        (differential) response nodes."""
        return cls.build(
            "ac", circuit, outputs=outputs, source=source, freqs=freqs,
            amplitude=amplitude, cmin=cmin, backend=backend)

    @classmethod
    def sweep(cls, requests, labels=None) -> "AnalysisRequest":
        """A batch of sub-requests (live or ``to_dict()`` form) as one
        request; each case memoizes individually *and* the sweep as a
        whole memoizes on its content."""
        return cls.build("sweep", None, requests=list(requests),
                         labels=labels)

    # -- identity ------------------------------------------------------
    def key(self) -> str:
        """Content hash of the full request - the memoization key."""
        return content_digest(
            "analysis-request-v1", self.version, self.kind, self.circuit,
            list(self.measures), list(self.outputs), self.options)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"version": self.version, "kind": self.kind,
                "circuit": self.circuit,
                "measures": list(self.measures),
                "outputs": list(self.outputs),
                "options": self.options}

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisRequest":
        version = data.get("version")
        if version != REQUEST_FORMAT_VERSION:
            raise AnalysisError(
                f"request format version {version!r} is not supported "
                f"(this build speaks {REQUEST_FORMAT_VERSION})")
        return cls(kind=data["kind"], circuit=data["circuit"],
                   measures=tuple(
                       tuple(m) if isinstance(m, list) else m
                       for m in data.get("measures", ())),
                   outputs=tuple(tuple(o) for o in data.get("outputs", ())),
                   options=data.get("options", {}), version=version)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        return cls.from_dict(json.loads(text))


@dataclass
class AnalysisResult:
    """The value-shaped answer to an :class:`AnalysisRequest`.

    ``summary`` holds plain-number statistics per metric
    (``{"metrics": {name: {"nominal"/"mean": ..., "sigma": ...}}}`` plus
    kind-specific extras); it is what serializes, memoizes and crosses
    process boundaries.  ``detail`` is the engine's rich in-process
    result (:class:`~repro.core.analysis.MismatchAnalysisResult` or
    :class:`~repro.core.montecarlo.MonteCarloResult`) - dropped by
    :meth:`to_dict`, absent on results from worker processes and on
    deserialized results.
    """

    kind: str
    request_key: str
    summary: dict
    runtime_seconds: float = 0.0
    from_cache: bool = False
    #: Structured :class:`~repro.errors.FailureRecord` values for every
    #: degraded span of a supervised run (empty on clean runs);
    #: round-trips through :meth:`to_dict`.
    failures: list = field(default_factory=list)
    detail: object = field(default=None, repr=False, compare=False)
    version: int = REQUEST_FORMAT_VERSION

    def sigma(self, metric: str) -> float:
        return float(self._metric(metric)["sigma"])

    def mean(self, metric: str) -> float:
        m = self._metric(metric)
        return float(m.get("mean", m.get("nominal")))

    def _metric(self, metric: str) -> dict:
        try:
            return self.summary["metrics"][metric]
        except KeyError:
            raise AnalysisError(
                f"no metric named '{metric}'; available: "
                f"{sorted(self.summary.get('metrics', {}))}") from None

    def to_dict(self) -> dict:
        return {"version": self.version, "kind": self.kind,
                "request_key": self.request_key, "summary": self.summary,
                "runtime_seconds": self.runtime_seconds,
                "from_cache": self.from_cache,
                "failures": [to_jsonable(f) for f in self.failures]}

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisResult":
        version = data.get("version")
        if version != REQUEST_FORMAT_VERSION:
            raise AnalysisError(
                f"result format version {version!r} is not supported "
                f"(this build speaks {REQUEST_FORMAT_VERSION})")
        return cls(kind=data["kind"], request_key=data["request_key"],
                   summary=data["summary"],
                   runtime_seconds=data.get("runtime_seconds", 0.0),
                   from_cache=data.get("from_cache", False),
                   failures=[from_jsonable(f)
                             for f in data.get("failures", [])],
                   version=version)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        return cls.from_dict(json.loads(text))

    def as_cached(self) -> "AnalysisResult":
        return replace(self, from_cache=True)
