"""The analysis session: bounded, content-addressed caches + execution.

:class:`AnalysisSession` is the application-layer entry point.  It owns
four bounded LRU stores, all keyed on content hashes from the domain
layer (:meth:`Circuit.fingerprint` / ``CompiledCircuit.cache_key`` /
``CompiledCircuit.state_key``):

* **compiled** - :class:`~repro.analysis.mna.CompiledCircuit` by
  (fingerprint, cmin, backend spec);
* **states** - :class:`~repro.analysis.mna.ParamState` by state key;
* **pss** - :class:`~repro.analysis.pss.PssResult` orbits (and with
  them the lazily built orbit linearizations) by (cache key, backend,
  drive spec, options);
* **results** - memoized :class:`~repro.service.requests.AnalysisResult`
  values by request key.

Eviction and :meth:`AnalysisSession.clear` cascade through the evicted
objects' own ``clear_caches()`` so that bounded store size means bounded
memory, not just a bounded entry count.

Execution is registry-driven: :meth:`AnalysisSession.run` looks the
request kind up in :mod:`repro.service.engines` and runs the registered
engine - this module owns the stores and the memoization only, and
never imports :mod:`repro.core` or :mod:`repro.analysis` itself (CI
enforces that split, so a new engine registers without touching the
session).  The free functions in :mod:`repro.core`
(``transient_mismatch_analysis`` and friends) are thin wrappers over
the process-default session (:func:`default_session`), so plain
functional callers share these caches without knowing they exist.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from .requests import AnalysisRequest, AnalysisResult


class _LruStore:
    """A bounded mapping with LRU eviction and an eviction callback.

    Individual operations are thread-safe (one lock per store), which
    is what lets a :class:`AnalysisSession` be shared by the concurrent
    handler threads of the network front-end
    (:mod:`repro.service.net`).  Two threads missing on the same key
    simply both compute - content addressing makes the double ``put``
    harmless.
    """

    def __init__(self, capacity: int,
                 on_evict: "Callable | None" = None):
        if capacity < 1:
            raise ValueError("store capacity must be >= 1")
        self.capacity = capacity
        self.on_evict = on_evict
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        evicted = []
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                _, old = self._data.popitem(last=False)
                evicted.append(old)
        if self.on_evict is not None:
            for old in evicted:
                self.on_evict(old)

    def pop(self, key):
        """Remove *key* (cascading through the eviction callback) and
        return its value, or ``None`` when absent."""
        with self._lock:
            value = self._data.pop(key, None)
        if value is not None and self.on_evict is not None:
            self.on_evict(value)
        return value

    def clear(self) -> None:
        with self._lock:
            values = list(self._data.values())
            self._data.clear()
        if self.on_evict is not None:
            for value in values:
                self.on_evict(value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> dict:
        with self._lock:
            return {"size": len(self._data), "capacity": self.capacity,
                    "hits": self.hits, "misses": self.misses}


def _clear_detail_caches(result: AnalysisResult) -> None:
    detail = getattr(result, "detail", None)
    for attr in ("compiled", "pss"):
        obj = getattr(detail, attr, None)
        if obj is not None and hasattr(obj, "clear_caches"):
            obj.clear_caches()


class AnalysisSession:
    """Synchronous executor of analysis work over shared bounded caches.

    Parameters
    ----------
    backend:
        Default linear-solver backend spec (name string) for compiles
        that do not override it.
    compiled_capacity, state_capacity, pss_capacity, result_capacity:
        LRU bounds of the four stores.
    """

    def __init__(self, backend: str | None = None,
                 compiled_capacity: int = 8, state_capacity: int = 32,
                 pss_capacity: int = 8, result_capacity: int = 64):
        self.backend = backend
        self.compiled = _LruStore(
            compiled_capacity, on_evict=lambda c: c.clear_caches())
        self.states = _LruStore(
            state_capacity, on_evict=lambda s: s.clear_caches())
        self.pss_store = _LruStore(
            pss_capacity, on_evict=lambda p: p.clear_caches())
        self.results = _LruStore(result_capacity,
                                 on_evict=_clear_detail_caches)

    # -- domain-object caches ------------------------------------------
    def compile(self, circuit, cmin: float | None = None,
                backend=None):
        """Compile *circuit* through the session cache (see
        :func:`~repro.service.engines.compile_cached`)."""
        from .engines import compile_cached
        return compile_cached(self, circuit, cmin=cmin, backend=backend)

    def state(self, compiled, deltas=None, source_values=None,
              batch_shape=None):
        """Parameter state through the session cache (see
        :meth:`~repro.analysis.mna.CompiledCircuit.make_state`)."""
        key = compiled.state_key(deltas=deltas,
                                 source_values=source_values,
                                 batch_shape=batch_shape)
        hit = self.states.get(key)
        if hit is not None:
            return hit
        state = compiled.make_state(deltas=deltas,
                                    source_values=source_values,
                                    batch_shape=batch_shape)
        self.states.put(key, state)
        return state

    def pss(self, compiled, period: float | None = None,
            state=None, options=None,
            oscillator_anchor: str | None = None,
            t_settle: float | None = None,
            dt_settle: float | None = None):
        """Periodic steady state through the session cache (see
        :func:`~repro.service.engines.pss_cached`)."""
        from .engines import pss_cached
        return pss_cached(self, compiled, period=period, state=state,
                          options=options,
                          oscillator_anchor=oscillator_anchor,
                          t_settle=t_settle, dt_settle=dt_settle)

    # -- analysis flows ------------------------------------------------
    def transient_mismatch(self, circuit, measures, **kwargs):
        """The paper's sensitivity analysis through the session caches.

        Same contract as :func:`~repro.core.analysis.
        transient_mismatch_analysis` (which delegates here); repeated
        calls on an unchanged circuit reuse the compiled system and the
        PSS orbit.
        """
        from .engines import transient_mismatch_flow
        return transient_mismatch_flow(self, circuit, measures,
                                       **kwargs)

    def dc_mismatch(self, circuit, outputs: dict, **kwargs):
        """DC mismatch analysis through the session compile cache."""
        from .engines import dc_mismatch_flow
        return dc_mismatch_flow(self, circuit, outputs, **kwargs)

    def monte_carlo_transient(self, circuit, measures, **kwargs):
        """Transient Monte-Carlo with the compile shared through the
        session cache (sampling/merge semantics unchanged - see
        :func:`~repro.core.montecarlo.monte_carlo_transient`)."""
        from .engines import mc_transient_flow
        return mc_transient_flow(self, circuit, measures, **kwargs)

    def monte_carlo_dc(self, circuit, outputs: dict, n: int, **kwargs):
        """DC Monte-Carlo with the compile shared through the session
        cache."""
        from .engines import mc_dc_flow
        return mc_dc_flow(self, circuit, outputs, n, **kwargs)

    # -- request execution ---------------------------------------------
    def run(self, request: AnalysisRequest) -> AnalysisResult:
        """Execute *request* through its registered engine, memoized on
        the request's content key.

        A repeat of an identical request (same circuit content, same
        options - however it was built) returns the stored result with
        ``from_cache=True`` without touching the engines.  Unknown
        kinds raise an :class:`~repro.errors.AnalysisError` listing
        the registered kinds.
        """
        from .engines import execute
        key = request.key()
        hit = self.results.get(key)
        if hit is not None:
            return hit.as_cached()
        result = execute(self, request, key)
        self.results.put(key, result)
        return result

    def evict_result(self, key: str) -> bool:
        """Drop one memoized result by request key (cascading through
        its detail caches); returns whether the key was present.

        This is the seam the network front-end's per-tenant quotas use:
        a tenant over its result budget evicts *its own* oldest keys
        without disturbing the session-wide LRU order of the rest.
        """
        return self.results.pop(key) is not None

    # -- hygiene -------------------------------------------------------
    def clear(self) -> None:
        """Drop every store, cascading through the cached objects' own
        ``clear_caches()`` (compiled circuits, parameter states, orbit
        linearizations) so the memory actually comes back."""
        self.results.clear()
        self.pss_store.clear()
        self.states.clear()
        self.compiled.clear()

    def stats(self) -> dict:
        """Per-store size/capacity/hit/miss counters."""
        return {"compiled": self.compiled.stats(),
                "states": self.states.stats(),
                "pss": self.pss_store.stats(),
                "results": self.results.stats()}


_DEFAULT_SESSION: AnalysisSession | None = None


def default_session() -> AnalysisSession:
    """The process-wide session behind the :mod:`repro.core` free
    functions.  Create dedicated :class:`AnalysisSession` instances for
    isolated cache lifetimes."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = AnalysisSession()
    return _DEFAULT_SESSION
