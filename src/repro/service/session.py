"""The analysis session: bounded, content-addressed caches + execution.

:class:`AnalysisSession` is the application-layer entry point.  It owns
four bounded LRU stores, all keyed on content hashes from the domain
layer (:meth:`Circuit.fingerprint` / ``CompiledCircuit.cache_key`` /
``CompiledCircuit.state_key``):

* **compiled** - :class:`~repro.analysis.mna.CompiledCircuit` by
  (fingerprint, cmin, backend spec);
* **states** - :class:`~repro.analysis.mna.ParamState` by state key;
* **pss** - :class:`~repro.analysis.pss.PssResult` orbits (and with
  them the lazily built orbit linearizations) by (cache key, backend,
  drive spec, options);
* **results** - memoized :class:`~repro.service.requests.AnalysisResult`
  values by request key.

Eviction and :meth:`AnalysisSession.clear` cascade through the evicted
objects' own ``clear_caches()`` so that bounded store size means bounded
memory, not just a bounded entry count.

The free functions in :mod:`repro.core` (``transient_mismatch_analysis``
and friends) are thin wrappers over the process-default session
(:func:`default_session`), so plain functional callers share these
caches without knowing they exist.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from ..circuit.netlist import Circuit, content_digest
from ..errors import AnalysisError
from .requests import AnalysisRequest, AnalysisResult
from .serialize import circuit_from_dict, from_jsonable


class _LruStore:
    """A bounded mapping with LRU eviction and an eviction callback."""

    def __init__(self, capacity: int,
                 on_evict: "Callable | None" = None):
        if capacity < 1:
            raise ValueError("store capacity must be >= 1")
        self.capacity = capacity
        self.on_evict = on_evict
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            _, evicted = self._data.popitem(last=False)
            if self.on_evict is not None:
                self.on_evict(evicted)

    def clear(self) -> None:
        if self.on_evict is not None:
            for value in self._data.values():
                self.on_evict(value)
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def stats(self) -> dict:
        return {"size": len(self._data), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses}


def _clear_detail_caches(result: AnalysisResult) -> None:
    detail = getattr(result, "detail", None)
    for attr in ("compiled", "pss"):
        obj = getattr(detail, attr, None)
        if obj is not None and hasattr(obj, "clear_caches"):
            obj.clear_caches()


class AnalysisSession:
    """Synchronous executor of analysis work over shared bounded caches.

    Parameters
    ----------
    backend:
        Default linear-solver backend spec (name string) for compiles
        that do not override it.
    compiled_capacity, state_capacity, pss_capacity, result_capacity:
        LRU bounds of the four stores.
    """

    def __init__(self, backend: str | None = None,
                 compiled_capacity: int = 8, state_capacity: int = 32,
                 pss_capacity: int = 8, result_capacity: int = 64):
        self.backend = backend
        self.compiled = _LruStore(
            compiled_capacity, on_evict=lambda c: c.clear_caches())
        self.states = _LruStore(
            state_capacity, on_evict=lambda s: s.clear_caches())
        self.pss_store = _LruStore(
            pss_capacity, on_evict=lambda p: p.clear_caches())
        self.results = _LruStore(result_capacity,
                                 on_evict=_clear_detail_caches)

    # -- domain-object caches ------------------------------------------
    def compile(self, circuit, cmin: float | None = None,
                backend=None):
        """Compile *circuit* through the session cache.

        An already-compiled circuit passes straight through (with the
        same copy-on-backend-override semantics as the functional API).
        Backend *instances* bypass the cache - they are mutable solver
        state, not a describable configuration.
        """
        from ..core.analysis import _as_compiled
        if not isinstance(circuit, Circuit):
            return _as_compiled(circuit, backend=backend)
        from ..analysis.mna import compile_circuit
        from ..constants import CMIN_DEFAULT
        backend = backend if backend is not None else self.backend
        cmin_eff = CMIN_DEFAULT if cmin is None else cmin
        if backend is not None and not isinstance(backend, str):
            return compile_circuit(circuit, cmin=cmin_eff,
                                   backend=backend)
        key = content_digest("session-compile-v1", circuit.fingerprint(),
                             float(cmin_eff), backend)
        hit = self.compiled.get(key)
        if hit is not None:
            return hit
        compiled = compile_circuit(circuit, cmin=cmin_eff,
                                   backend=backend)
        self.compiled.put(key, compiled)
        return compiled

    def state(self, compiled, deltas=None, source_values=None,
              batch_shape=None):
        """Parameter state through the session cache (see
        :meth:`~repro.analysis.mna.CompiledCircuit.make_state`)."""
        key = compiled.state_key(deltas=deltas,
                                 source_values=source_values,
                                 batch_shape=batch_shape)
        hit = self.states.get(key)
        if hit is not None:
            return hit
        state = compiled.make_state(deltas=deltas,
                                    source_values=source_values,
                                    batch_shape=batch_shape)
        self.states.put(key, state)
        return state

    def pss(self, compiled, period: float | None = None,
            state=None, options=None,
            oscillator_anchor: str | None = None,
            t_settle: float | None = None,
            dt_settle: float | None = None):
        """Periodic steady state through the session cache.

        Only nominal orbits (``state is None``) are cached: a custom
        :class:`ParamState` is mutable engine state without a content
        identity, so those calls always execute.
        """
        from ..analysis.pss import pss, pss_oscillator

        def run():
            if oscillator_anchor is not None:
                if t_settle is None or dt_settle is None:
                    raise AnalysisError(
                        "oscillator analyses need t_settle and dt_settle")
                return pss_oscillator(compiled, oscillator_anchor,
                                      t_settle, dt_settle, state=state,
                                      options=options)
            if period is None:
                raise AnalysisError(
                    "give period= or oscillator_anchor=")
            return pss(compiled, period, state=state, options=options)

        if state is not None:
            return run()
        # The backend tag is part of the key: the orbit is backend-
        # independent but its cached linearization's factorizations are
        # not, and cache_key deliberately excludes the backend.
        key = content_digest(
            "session-pss-v1", compiled.cache_key,
            type(compiled.backend).__name__, period, oscillator_anchor,
            t_settle, dt_settle, options)
        hit = self.pss_store.get(key)
        if hit is not None:
            return hit
        result = run()
        self.pss_store.put(key, result)
        return result

    # -- analysis flows ------------------------------------------------
    def transient_mismatch(self, circuit, measures,
                           period: float | None = None,
                           oscillator_anchor: str | None = None,
                           t_settle: float | None = None,
                           dt_settle: float | None = None,
                           state=None, pss_options=None,
                           injections=None, param_covariance=None,
                           precomputed_pss=None, backend=None,
                           cmin: float | None = None):
        """The paper's sensitivity analysis through the session caches.

        Same contract as :func:`~repro.core.analysis.
        transient_mismatch_analysis` (which delegates here); repeated
        calls on an unchanged circuit reuse the compiled system and the
        PSS orbit.
        """
        from ..core.analysis import run_transient_mismatch
        t_begin = time.perf_counter()
        compiled = self.compile(circuit, cmin=cmin, backend=backend)
        if precomputed_pss is None:
            if period is None and oscillator_anchor is None:
                raise AnalysisError("give period=, oscillator_anchor=, "
                                    "or precomputed_pss=")
            pss_result = self.pss(compiled, period=period, state=state,
                                  options=pss_options,
                                  oscillator_anchor=oscillator_anchor,
                                  t_settle=t_settle, dt_settle=dt_settle)
        else:
            pss_result = precomputed_pss
        t_pss = time.perf_counter()
        result = run_transient_mismatch(
            compiled, measures, pss_result,
            injections=injections, param_covariance=param_covariance)
        # the engine only saw the precomputed orbit; restore the true
        # wall-clock split including the (possibly cached) PSS
        result.runtime_breakdown["pss"] = t_pss - t_begin
        result.runtime_seconds = time.perf_counter() - t_begin
        return result

    def dc_mismatch(self, circuit, outputs: dict, state=None,
                    param_covariance=None, backend=None,
                    cmin: float | None = None):
        """DC mismatch analysis through the session compile cache."""
        from ..core.analysis import run_dc_mismatch
        compiled = self.compile(circuit, cmin=cmin, backend=backend)
        return run_dc_mismatch(compiled, outputs, state=state,
                               param_covariance=param_covariance)

    def monte_carlo_transient(self, circuit, measures, **kwargs):
        """Transient Monte-Carlo with the compile shared through the
        session cache (sampling/merge semantics unchanged - see
        :func:`~repro.core.montecarlo.monte_carlo_transient`)."""
        from ..core.montecarlo import monte_carlo_transient
        compiled = self.compile(circuit, cmin=kwargs.pop("cmin", None),
                                backend=kwargs.pop("backend", None))
        return monte_carlo_transient(compiled, measures, **kwargs)

    def monte_carlo_dc(self, circuit, outputs: dict, n: int, **kwargs):
        """DC Monte-Carlo with the compile shared through the session
        cache."""
        from ..core.montecarlo import monte_carlo_dc
        compiled = self.compile(circuit, cmin=kwargs.pop("cmin", None),
                                backend=kwargs.pop("backend", None))
        return monte_carlo_dc(compiled, outputs, n, **kwargs)

    # -- request execution ---------------------------------------------
    def run(self, request: AnalysisRequest) -> AnalysisResult:
        """Execute *request*, memoized on its content key.

        A repeat of an identical request (same circuit content, same
        options - however it was built) returns the stored result with
        ``from_cache=True`` without touching the engines.
        """
        key = request.key()
        hit = self.results.get(key)
        if hit is not None:
            return hit.as_cached()
        result = self._execute(request, key)
        self.results.put(key, result)
        return result

    def _execute(self, request: AnalysisRequest,
                 key: str) -> AnalysisResult:
        import numpy as np
        t_begin = time.perf_counter()
        circuit = circuit_from_dict(request.circuit)
        o = dict(request.options)
        cov = o.pop("param_covariance", None)
        cov = np.asarray(cov, dtype=float) if cov is not None else None
        kind = request.kind

        if kind == "transient_mismatch":
            measures = [from_jsonable(m) for m in request.measures]
            detail = self.transient_mismatch(
                circuit, measures, period=o.get("period"),
                oscillator_anchor=o.get("oscillator_anchor"),
                t_settle=o.get("t_settle"), dt_settle=o.get("dt_settle"),
                pss_options=from_jsonable(o.get("pss_options")),
                param_covariance=cov, backend=o.get("backend"),
                cmin=o.get("cmin"))
            summary = {
                "metrics": {m.name: {"nominal": detail.nominal[m.name],
                                     "sigma": detail.sigma(m.name)}
                            for m in measures},
                "n_params": len(detail.keys),
                "f0": detail.pss.f0,
                "runtime_breakdown": dict(detail.runtime_breakdown),
            }
        elif kind == "dc_mismatch":
            outputs = _output_map(request.outputs)
            detail = self.dc_mismatch(circuit, outputs,
                                      param_covariance=cov,
                                      backend=o.get("backend"),
                                      cmin=o.get("cmin"))
            summary = {
                "metrics": {name: {"nominal": detail.nominal[name],
                                   "sigma": detail.sigma(name)}
                            for name in outputs},
                "n_params": len(detail.keys),
            }
        elif kind == "mc_transient":
            measures = [from_jsonable(m) for m in request.measures]
            window = o.get("window")
            detail = self.monte_carlo_transient(
                circuit, measures, n=o["n"], t_stop=o["t_stop"],
                dt=o["dt"],
                window=tuple(window) if window is not None else None,
                seed=o.get("seed", 0),
                sigma_scale=o.get("sigma_scale", 1.0),
                param_covariance=cov,
                chunk_size=o.get("chunk_size", 250),
                method=o.get("method", "trap"),
                extra_record=o.get("extra_record"),
                backend=o.get("backend"),
                n_workers=o.get("n_workers"),
                adaptive=o.get("adaptive", False),
                rtol=o.get("rtol", 1e-3), atol=o.get("atol", 1e-6),
                dt_min=o.get("dt_min"), dt_max=o.get("dt_max"),
                cmin=o.get("cmin"), retry=_retry_policy(o))
            summary = _mc_summary(detail)
        elif kind == "mc_dc":
            outputs = _output_map(request.outputs)
            detail = self.monte_carlo_dc(
                circuit, outputs, n=o["n"], seed=o.get("seed", 0),
                sigma_scale=o.get("sigma_scale", 1.0),
                param_covariance=cov,
                chunk_size=o.get("chunk_size"),
                n_workers=o.get("n_workers"),
                backend=o.get("backend"), cmin=o.get("cmin"),
                retry=_retry_policy(o))
            summary = _mc_summary(detail)
        else:  # pragma: no cover - __post_init__ rejects unknown kinds
            raise AnalysisError(f"unknown request kind '{kind}'")

        return AnalysisResult(
            kind=kind, request_key=key, summary=summary,
            runtime_seconds=time.perf_counter() - t_begin,
            failures=list(getattr(detail, "failures", []) or []),
            detail=detail)

    # -- hygiene -------------------------------------------------------
    def clear(self) -> None:
        """Drop every store, cascading through the cached objects' own
        ``clear_caches()`` (compiled circuits, parameter states, orbit
        linearizations) so the memory actually comes back."""
        self.results.clear()
        self.pss_store.clear()
        self.states.clear()
        self.compiled.clear()

    def stats(self) -> dict:
        """Per-store size/capacity/hit/miss counters."""
        return {"compiled": self.compiled.stats(),
                "states": self.states.stats(),
                "pss": self.pss_store.stats(),
                "results": self.results.stats()}


def _output_map(outputs: tuple) -> dict:
    return {name: (pos if neg is None else (pos, neg))
            for name, pos, neg in outputs}


def _retry_policy(options: dict):
    """Decode a request's ``retry`` option (a plain dict) back into a
    live :class:`~repro.service.jobs.RetryPolicy`."""
    spec = options.get("retry")
    if spec is None:
        return None
    from .jobs import RetryPolicy
    return RetryPolicy.from_dict(spec)


def _mc_summary(detail) -> dict:
    return {
        "metrics": {name: {"mean": st.mean, "sigma": st.std,
                           "std_ci_low": st.std_ci_low,
                           "std_ci_high": st.std_ci_high}
                    for name, st in detail.stats.items()},
        "n": detail.n,
        "n_failed": detail.n_failed,
    }


_DEFAULT_SESSION: AnalysisSession | None = None


def default_session() -> AnalysisSession:
    """The process-wide session behind the :mod:`repro.core` free
    functions.  Create dedicated :class:`AnalysisSession` instances for
    isolated cache lifetimes."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = AnalysisSession()
    return _DEFAULT_SESSION
