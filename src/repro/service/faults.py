"""Deterministic fault injection for the job-execution layer.

The supervision machinery in :mod:`repro.service.jobs` exists for
failure modes that are miserable to reproduce on demand: a worker
process dying mid-shard, a shard hanging past its deadline, a sample
that fails to converge once and succeeds on retry.  This module makes
all of them reproducible:

* :class:`FaultRule` - one injected fault: a *site* (``"run_shard"`` /
  ``"run_request"`` on the execution side; ``"transport"`` on the
  network client, where a ``"crash"`` is a seeded connection drop and a
  ``"hang"`` a slow response), a *kind* (``"crash"`` / ``"hang"`` /
  ``"convergence"``), an optional span-start match, an optional
  ``fail_attempts`` bound (fault fires only while ``attempt <
  fail_attempts`` - the "transient-then-succeed" shape), and an
  optional seeded probability.
* :class:`FaultPlan` - an ordered rule set with a seed, serializable to
  JSON.  :meth:`FaultPlan.active` exports the plan through the
  ``REPRO_FAULT_PLAN`` environment variable, which worker processes
  inherit - so one plan drives faults on both sides of the process
  boundary, deterministically.
* :func:`maybe_inject` - the hook the execution sites call.  With no
  plan in the environment it is a dictionary lookup and a return; the
  clean path stays clean.

Determinism: a probabilistic rule decides via a stable hash of
``(seed, rule index, site, key, attempt)``, never via process-local RNG
state - the same plan over the same workload injects the same faults
regardless of which worker executes which shard, or how often the run
is repeated, and distinct rules draw independently even when they match
the same decision coordinates.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass

from ..errors import ConvergenceError, WorkerCrashError

#: Environment variable carrying the active plan (JSON); inherited by
#: spawned worker processes, which is what lets one plan cross the
#: process boundary.
FAULTS_ENV = "REPRO_FAULT_PLAN"

FAULT_SITES = ("run_shard", "run_request", "transport")
FAULT_KINDS = ("crash", "hang", "convergence")


@dataclass(frozen=True)
class FaultRule:
    """One injected fault (see the module docstring)."""

    site: str
    kind: str
    #: Match only the shard whose span starts here (``None``: any).
    start: int | None = None
    #: Fire only while ``attempt < fail_attempts`` (``None``: always).
    #: ``fail_attempts=1`` is the classic transient fault: the first
    #: attempt fails, the retry succeeds.
    fail_attempts: int | None = None
    #: Seeded firing probability in ``[0, 1]`` (1.0: deterministic).
    probability: float = 1.0
    #: Sleep length of a ``"hang"`` fault.  Keep it a few multiples of
    #: the supervisor deadline under test: the sleeping worker is
    #: abandoned, not interrupted, and occupies its pool slot until the
    #: sleep ends.
    hang_seconds: float = 2.0

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site '{self.site}'; "
                             f"expected one of {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind '{self.kind}'; "
                             f"expected one of {FAULT_KINDS}")

    def matches(self, site: str, key, attempt: int) -> bool:
        if site != self.site:
            return False
        if self.start is not None and key != self.start:
            return False
        if self.fail_attempts is not None \
                and attempt >= self.fail_attempts:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of :class:`FaultRule` injections."""

    rules: tuple = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(
            r if isinstance(r, FaultRule) else FaultRule(**r)
            for r in self.rules))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "rules": [asdict(r) for r in self.rules]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(rules=tuple(FaultRule(**r)
                               for r in data.get("rules", ())),
                   seed=data.get("seed", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- activation ----------------------------------------------------
    def activate(self) -> None:
        """Export the plan through :data:`FAULTS_ENV`; worker processes
        spawned afterwards inherit it."""
        os.environ[FAULTS_ENV] = self.to_json()

    @staticmethod
    def deactivate() -> None:
        os.environ.pop(FAULTS_ENV, None)

    @contextmanager
    def active(self):
        """``with plan.active():`` - activate for the block, restore
        the previous plan (or none) afterwards."""
        previous = os.environ.get(FAULTS_ENV)
        self.activate()
        try:
            yield self
        finally:
            if previous is None:
                self.deactivate()
            else:
                os.environ[FAULTS_ENV] = previous

    # -- decision ------------------------------------------------------
    def should_fire(self, rule: FaultRule, site: str, key,
                    attempt: int, index: int | None = None) -> bool:
        if not rule.matches(site, key, attempt):
            return False
        if rule.probability >= 1.0:
            return True
        if index is None:
            index = self.rules.index(rule)
        return _stable_unit(self.seed, index, site, key,
                            attempt) < rule.probability


def _stable_unit(seed: int, rule_index: int, site: str, key,
                 attempt: int) -> float:
    """A deterministic pseudo-uniform in ``[0, 1)`` from the decision
    coordinates - identical in every process, unlike RNG state.  The
    rule index is part of the token so rules matching the same
    ``(site, key, attempt)`` draw independently instead of firing in
    lockstep."""
    token = f"{seed}:{rule_index}:{site}:{key!r}:{attempt}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


# ---------------------------------------------------------------------------
# the injection hook
# ---------------------------------------------------------------------------
#: Parsed-plan cache keyed on the raw env string (workers parse once,
#: not per shard).
_CACHED: tuple[str | None, FaultPlan | None] = (None, None)


def current_plan() -> FaultPlan | None:
    """The plan exported via :data:`FAULTS_ENV`, or ``None``."""
    global _CACHED
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    if _CACHED[0] != text:
        _CACHED = (text, FaultPlan.from_json(text))
    return _CACHED[1]


def maybe_inject(site: str, key=None, attempt: int = 0) -> None:
    """Fire the first matching fault of the active plan, if any.

    Called by the execution sites in :mod:`repro.service.jobs`
    (``_run_shard`` / ``_run_request``) with *key* identifying the unit
    of work (a shard's span start; ``None`` for requests) and the
    supervisor's *attempt* counter - which is what lets
    ``fail_attempts`` faults heal across retries even though a crash
    destroys all worker-local state.
    """
    plan = current_plan()
    if plan is None:
        return
    for index, rule in enumerate(plan.rules):
        if plan.should_fire(rule, site, key, attempt, index):
            _fire(rule, site, key, attempt)
            return


def _fire(rule: FaultRule, site: str, key, attempt: int) -> None:
    if site == "transport":
        # client-side network faults: the hook sits in
        # RemoteSession._call, *before* the socket is touched.  A
        # "crash" is a connection drop (the raw URLError the client's
        # transport-error handling must absorb); a "hang" is a slow
        # response (the shape hedged dispatch exists for).
        if rule.kind == "crash":
            import urllib.error
            raise urllib.error.URLError(
                f"injected connection drop (key={key!r}, "
                f"attempt {attempt})")
        if rule.kind == "hang":
            time.sleep(rule.hang_seconds)
            return
    if rule.kind == "crash":
        # in a pool worker: die the way a real crash does (no cleanup,
        # no exception crosses the pipe - the parent sees
        # BrokenProcessPool).  In the parent process the simulated
        # crash must not take the interpreter down, so it raises the
        # supervised equivalent instead.
        if multiprocessing.parent_process() is not None:
            os._exit(41)
        raise WorkerCrashError(
            f"injected worker crash at {site} (key={key!r}, "
            f"attempt {attempt})")
    if rule.kind == "hang":
        # sleep, then proceed normally: a hung-then-slow shard.  The
        # supervisor's deadline abandons the attempt; the stale result
        # (if the sleep ever ends) is discarded by generation checks.
        time.sleep(rule.hang_seconds)
        return
    if rule.kind == "convergence":
        raise ConvergenceError(
            f"injected convergence failure at {site} (key={key!r}, "
            f"attempt {attempt})", iterations=0)
    raise AssertionError(f"unreachable fault kind {rule.kind!r}")
