"""Fault-tolerant cross-host execution: worker pools over N daemons.

PR 7 taught the in-process :class:`~repro.service.jobs.JobQueue` to
survive its own chaos - retries with backoff, deadlines, pool-crash
recovery, deterministic degradation.  This module extends the same
guarantees across the wire, where the failure modes are a daemon
SIGKILLed mid-shard, a connection reset, a slow straggler, or a host
draining for a rolling restart:

* :class:`CircuitBreaker` - one endpoint's health automaton: *closed*
  (traffic flows) -> *open* after ``failure_threshold`` consecutive
  transport/5xx failures (traffic stops) -> *half-open* after
  ``cooldown`` seconds (exactly one probe request is let through;
  success closes the breaker, failure re-opens it).  Breakers stop a
  dead endpoint from charging every shard a connection timeout before
  the pool routes around it.
* :class:`ScatterPolicy` - the client-side supervision parameters:
  per-shard attempt budget with exponential backoff, breaker
  thresholds, optional hedged dispatch, degrade-vs-raise.
* :class:`WorkerPool` - N endpoints behind one ``scatter``: shards are
  dispatched dynamically to the least-loaded healthy endpoint (not
  round-robin, so a lost endpoint's share redistributes), a shard whose
  endpoint fails is retried with backoff on the next healthy endpoint
  (safe because :class:`~repro.service.shards.ShardSpec` is generative
  and idempotent - re-execution is bit-identical), a draining endpoint
  (tagged 503) is rerouted without tripping its breaker, and a shard
  that exhausts every endpoint degrades into NaN-frozen lanes carrying
  a :class:`~repro.errors.FailureRecord` with ``site="transport"`` -
  mirroring the PR 7 degrade contract instead of aborting the run.
  Optional *hedging* duplicates a shard that outlives the observed
  latency percentile onto a second endpoint; the first result wins and
  the straggler is discarded before the merge (results are taken once
  per span, so a late loser can never double-merge).

Because every shard redraws its samples from the seed, none of this
perturbs the numbers: a scatter that survived a killed daemon, a
drained daemon and a hedged straggler merges bit-identical to the
fault-free in-process :func:`~repro.core.montecarlo.
monte_carlo_transient` run.  ``tests/test_resilience.py`` proves it on
loopback; ``benchmarks/bench_scatter_chaos.py`` gates the clean-path
overhead (<= 5%).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass

from ..errors import DrainingError, TransportError
from .client import RemoteSession, annotate_shard_failure
from .shards import ShardResult, ShardSpec, degraded_shard_result

#: Circuit-breaker states (see :class:`CircuitBreaker`).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


def is_infrastructure_failure(exc: BaseException) -> bool:
    """Whether *exc* indicts the *endpoint* rather than the workload:
    transport failures (no HTTP response at all) and 5xx responses.
    These count against the circuit breaker and reroute the shard;
    everything else (4xx, solver errors) is the workload's own problem
    and propagates."""
    if isinstance(exc, DrainingError):
        return False  # drain is deliberate, not a failure
    if isinstance(exc, TransportError):
        return True
    return getattr(exc, "http_status", 0) >= 500


@dataclass(frozen=True)
class ScatterPolicy:
    """Client-side supervision of one :class:`WorkerPool` (the
    cross-host sibling of :class:`~repro.service.jobs.RetryPolicy`).

    ``delay(k)`` after the *k*-th failed attempt is
    ``base_delay * backoff**(k-1)`` - the same exponential-backoff
    shape the job supervisor uses.
    """

    #: Dispatch attempts per shard across the pool (first + retries;
    #: each attempt prefers an endpoint the shard has not just failed
    #: on).
    max_attempts: int = 3
    #: Backoff before the first re-dispatch [s]; 0 disables sleeping.
    base_delay: float = 0.05
    #: Backoff growth factor per further re-dispatch.
    backoff: float = 2.0
    #: Degrade a shard that exhausts every endpoint into NaN-frozen
    #: lanes with a ``site="transport"`` :class:`~repro.errors.
    #: FailureRecord` instead of raising.
    degrade: bool = True
    #: Consecutive infrastructure failures that open an endpoint's
    #: breaker.
    failure_threshold: int = 3
    #: Seconds an open breaker waits before letting one half-open
    #: probe through.
    cooldown: float = 1.0
    #: Hedge stragglers: once a shard outlives the pool's observed
    #: latency percentile, dispatch a duplicate on another endpoint
    #: and take whichever result lands first.
    hedge: bool = False
    #: Latency percentile (of recent clean calls) after which a shard
    #: counts as a straggler.
    hedge_percentile: float = 95.0
    #: Clean calls observed before hedging arms (a percentile of two
    #: points is noise).
    hedge_min_samples: int = 3
    #: Hedge no earlier than this many seconds regardless of the
    #: percentile - guards against hedging everything when the
    #: workload itself is fast and jittery.
    hedge_floor: float = 0.05

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("ScatterPolicy.max_attempts must be >= 1")
        if self.failure_threshold < 1:
            raise ValueError(
                "ScatterPolicy.failure_threshold must be >= 1")
        if self.cooldown < 0.0:
            raise ValueError("ScatterPolicy.cooldown must be >= 0")
        if not 0.0 < self.hedge_percentile <= 100.0:
            raise ValueError(
                "ScatterPolicy.hedge_percentile must be in (0, 100]")
        if self.hedge_min_samples < 1:
            raise ValueError(
                "ScatterPolicy.hedge_min_samples must be >= 1")

    def delay(self, failed_attempts: int) -> float:
        """Backoff [s] after *failed_attempts* failures (>= 1)."""
        if self.base_delay <= 0.0:
            return 0.0
        return self.base_delay * self.backoff ** (failed_attempts - 1)

    def to_dict(self) -> dict:
        return {"max_attempts": self.max_attempts,
                "base_delay": self.base_delay, "backoff": self.backoff,
                "degrade": self.degrade,
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown, "hedge": self.hedge,
                "hedge_percentile": self.hedge_percentile,
                "hedge_min_samples": self.hedge_min_samples,
                "hedge_floor": self.hedge_floor}

    @classmethod
    def from_dict(cls, data: dict) -> "ScatterPolicy":
        return cls(**data)


class CircuitBreaker:
    """Per-endpoint failure automaton: closed -> open -> half-open.

    Thread-safe; *clock* is injectable for tests.  ``allow()`` is the
    gate a dispatcher asks before sending traffic - it owns the
    open -> half-open transition and hands out exactly one probe slot,
    so however many shard threads ask at once, a recovering endpoint
    sees one trial request, not a thundering herd.
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown: float = 1.0, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # caller holds the lock
        if (self._state == BREAKER_OPEN
                and self._clock() - self._opened_at >= self.cooldown):
            self._state = BREAKER_HALF_OPEN
            self._probing = False

    def allow(self) -> bool:
        """May a request go to this endpoint right now?  In half-open,
        the first caller claims the single probe slot; the rest are
        refused until the probe resolves."""
        with self._lock:
            self._maybe_half_open()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = BREAKER_CLOSED
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if (self._state == BREAKER_HALF_OPEN
                    or self._failures >= self.failure_threshold):
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._probing = False

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._failures})")


class _Endpoint:
    """One worker daemon inside the pool: session + breaker + flags."""

    def __init__(self, session: RemoteSession, policy: ScatterPolicy):
        self.session = session
        self.breaker = CircuitBreaker(
            failure_threshold=policy.failure_threshold,
            cooldown=policy.cooldown)
        self.draining = False
        self.in_flight = 0
        self.dispatched = 0
        self.failures = 0

    @property
    def url(self) -> str:
        return self.session.base_url

    def stats(self) -> dict:
        return {"url": self.url, "breaker": self.breaker.state,
                "draining": self.draining,
                "dispatched": self.dispatched,
                "failures": self.failures,
                "in_flight": self.in_flight}


class WorkerPool:
    """N worker daemons behind one fault-tolerant ``scatter``.

    Parameters
    ----------
    workers:
        Endpoint URLs or :class:`~repro.service.client.RemoteSession`
        objects.
    policy:
        A :class:`ScatterPolicy`; default :class:`ScatterPolicy()`.
    probe_interval:
        When set, a background daemon thread probes every endpoint's
        ``GET /health`` this often [s]: a healthy probe closes the
        breaker and refreshes the ``draining`` flag, a failed probe
        counts like a failed request.  ``None`` (default) relies on
        request traffic and half-open probes alone; :meth:`probe` runs
        one sweep on demand either way.

    Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, workers, policy: ScatterPolicy | None = None,
                 probe_interval: float | None = None):
        from .client import _as_sessions
        self.policy = policy if policy is not None else ScatterPolicy()
        self._endpoints = [_Endpoint(s, self.policy)
                           for s in _as_sessions(workers)]
        self._lock = threading.Lock()
        self._rr = 0
        self._latencies: deque = deque(maxlen=128)
        self._hedges = 0
        self._hedge_wins = 0
        n = len(self._endpoints)
        coordinators = max(4, 2 * n)
        self._coord = ThreadPoolExecutor(
            max_workers=coordinators, thread_name_prefix="repro-scatter")
        # every coordinator may hold a primary plus a hedge in flight;
        # sizing the call executor at 2x keeps that deadlock-free
        self._calls = ThreadPoolExecutor(
            max_workers=2 * coordinators, thread_name_prefix="repro-call")
        self._probe_stop = threading.Event()
        self._probe_thread: threading.Thread | None = None
        if probe_interval is not None:
            self._probe_thread = threading.Thread(
                target=self._probe_loop, args=(probe_interval,),
                name="repro-pool-probe", daemon=True)
            self._probe_thread.start()

    # -- endpoint selection --------------------------------------------
    def _pick(self, exclude: tuple = ()) -> _Endpoint | None:
        """The least-loaded healthy endpoint (round-robin tiebreak),
        or a half-open probe slot, or ``None`` when nothing will take
        traffic right now."""
        with self._lock:
            self._rr += 1
            rr = self._rr
            n = len(self._endpoints)
            closed = [(ep, i) for i, ep in enumerate(self._endpoints)
                      if ep not in exclude and not ep.draining
                      and ep.breaker.state == BREAKER_CLOSED]
            if closed:
                ep, _ = min(closed, key=lambda pair: (
                    pair[0].in_flight, (pair[1] - rr) % n))
                return ep
            # no closed breaker: try to claim a half-open probe slot
            for i in range(n):
                ep = self._endpoints[(rr + i) % n]
                if ep in exclude or ep.draining:
                    continue
                if ep.breaker.allow():
                    return ep
            # relax the exclusion before giving up: a shard that just
            # failed on the only live endpoint should still retry there
            for i in range(n):
                ep = self._endpoints[(rr + i) % n]
                if not ep.draining and ep.breaker.allow():
                    return ep
            return None

    # -- one attempt ---------------------------------------------------
    def _timed_run(self, ep: _Endpoint, spec: ShardSpec,
                   attempt: int) -> ShardResult:
        """One HTTP shard execution with full accounting: latency on
        success, breaker bookkeeping on infrastructure failure, the
        ``draining`` flag on a tagged 503."""
        with self._lock:
            ep.in_flight += 1
            ep.dispatched += 1
        t0 = time.perf_counter()
        try:
            result = ep.session.run_shard(spec, attempt=attempt)
        except DrainingError:
            with self._lock:
                ep.draining = True
            raise
        except Exception as exc:
            if is_infrastructure_failure(exc):
                ep.breaker.record_failure()
                with self._lock:
                    ep.failures += 1
            raise
        else:
            ep.breaker.record_success()
            with self._lock:
                self._latencies.append(time.perf_counter() - t0)
            return result
        finally:
            with self._lock:
                ep.in_flight -= 1

    def _hedge_threshold(self) -> float | None:
        """Seconds after which a running shard counts as a straggler,
        or ``None`` while hedging is off / not yet armed."""
        if not self.policy.hedge:
            return None
        with self._lock:
            lat = sorted(self._latencies)
        if len(lat) < self.policy.hedge_min_samples:
            return None
        rank = self.policy.hedge_percentile / 100.0 * len(lat)
        index = min(len(lat) - 1, max(0, int(rank + 0.5) - 1))
        return max(lat[index], self.policy.hedge_floor)

    def _call_with_hedge(self, ep: _Endpoint, spec: ShardSpec,
                         attempt: int) -> ShardResult:
        """Execute on *ep*; past the straggler threshold, duplicate
        onto another endpoint and take the first result that lands.
        The loser keeps running server-side but its result is dropped
        here - only one result per span ever reaches the merge."""
        primary = self._calls.submit(self._timed_run, ep, spec, attempt)
        threshold = self._hedge_threshold()
        if threshold is None:
            return primary.result()
        try:
            return primary.result(timeout=threshold)
        except FuturesTimeoutError:
            pass
        alt = self._pick(exclude=(ep,))
        if alt is None or alt is ep:
            return primary.result()
        with self._lock:
            self._hedges += 1
        secondary = self._calls.submit(self._timed_run, alt, spec,
                                       attempt)
        pending = {primary, secondary}
        last_exc: BaseException | None = None
        while pending:
            done, pending = futures_wait(pending,
                                         return_when=FIRST_COMPLETED)
            for fut in done:
                try:
                    result = fut.result()
                except Exception as exc:
                    last_exc = exc
                else:
                    if fut is secondary:
                        with self._lock:
                            self._hedge_wins += 1
                    return result
        raise last_exc

    # -- the scatter path ----------------------------------------------
    def _run_one(self, spec: ShardSpec) -> ShardResult:
        """One shard under the policy: dispatch, reroute on endpoint
        failure with backoff, degrade (or raise) once every endpoint is
        exhausted."""
        policy = self.policy
        attempts = 0
        last_exc: BaseException | None = None
        last_ep: _Endpoint | None = None
        tried: list[str] = []
        while attempts < policy.max_attempts:
            exclude = (last_ep,) if last_ep is not None else ()
            ep = self._pick(exclude=exclude)
            if ep is None:
                attempts += 1
                if last_exc is None:
                    last_exc = TransportError(
                        f"no healthy endpoint for shard "
                        f"[{spec.start}, {spec.stop}) (all breakers "
                        f"open or draining)")
                self._sleep(policy.delay(attempts))
                continue
            if ep.url not in tried:
                tried.append(ep.url)
            try:
                return self._call_with_hedge(ep, spec, attempts)
            except DrainingError as exc:
                # deliberate refusal: reroute immediately, no backoff
                last_exc, last_ep = exc, ep
                attempts += 1
            except Exception as exc:
                if not is_infrastructure_failure(exc):
                    raise annotate_shard_failure(exc, spec, ep.url)
                last_exc, last_ep = exc, ep
                attempts += 1
                self._sleep(policy.delay(attempts))
        if policy.degrade:
            return degraded_shard_result(
                spec, self._exhausted(spec, last_exc, tried), attempts,
                site="transport")
        raise self._exhausted(spec, last_exc, tried)

    def _exhausted(self, spec: ShardSpec, last_exc, tried) -> TransportError:
        where = ", ".join(tried) if tried else "no endpoint reachable"
        return TransportError(
            f"shard [{spec.start}, {spec.stop}) exhausted "
            f"{self.policy.max_attempts} attempts across the pool "
            f"({where}); last error: {last_exc}",
            endpoint=tried[-1] if tried else None)

    @staticmethod
    def _sleep(seconds: float) -> None:
        if seconds > 0.0:
            time.sleep(seconds)

    def scatter(self, specs: list[ShardSpec]) -> list[ShardResult]:
        """Execute *specs* across the pool; results return in spec
        order, ready for :func:`~repro.service.shards.
        merge_shard_results`.  A terminal (non-infrastructure) shard
        failure cancels the not-yet-started remainder and propagates,
        naming the shard and endpoint."""
        futures = [self._coord.submit(self._run_one, spec)
                   for spec in specs]
        try:
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise

    def run_shard(self, spec: ShardSpec) -> ShardResult:
        """One shard through the pool's full supervision (the
        session-shaped convenience)."""
        return self._run_one(spec)

    # -- health probing ------------------------------------------------
    def probe(self) -> dict:
        """One health sweep over every endpoint; returns
        :meth:`stats`.  A healthy response closes the breaker and
        refreshes ``draining`` from the payload; a failed probe counts
        like a failed request."""
        for ep in self._endpoints:
            try:
                health = ep.session.health()
            except Exception:
                ep.breaker.record_failure()
                with self._lock:
                    ep.failures += 1
            else:
                with self._lock:
                    ep.draining = bool(health.get("draining", False))
                ep.breaker.record_success()
        return self.stats()

    def _probe_loop(self, interval: float) -> None:
        while not self._probe_stop.wait(interval):
            try:
                self.probe()
            except Exception:  # pragma: no cover - probes never raise
                pass

    # -- introspection / lifecycle -------------------------------------
    @property
    def endpoints(self) -> list[str]:
        return [ep.url for ep in self._endpoints]

    def stats(self) -> dict:
        with self._lock:
            hedges, wins = self._hedges, self._hedge_wins
            samples = len(self._latencies)
        return {"endpoints": [ep.stats() for ep in self._endpoints],
                "hedges": hedges, "hedge_wins": wins,
                "latency_samples": samples}

    def close(self) -> None:
        self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
            self._probe_thread = None
        self._coord.shutdown(wait=False, cancel_futures=True)
        self._calls.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
