"""The Monte-Carlo shard protocol (infrastructure layer).

PR 2 made chunked Monte-Carlo deterministic: all parameter deltas come
from one seeded generator, chunks are sliced spans of that draw, and the
merge in span order is bit-identical whether chunks ran serially or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.  This module promotes
that implicit contract into an explicit, versioned, serializable
protocol:

* :class:`ShardSpec` - a *generative* description of one chunk: the
  serialized circuit, the RNG seed, the total sample count and the
  ``[start, stop)`` span this shard owns.  A worker redraws the full
  ``n_total`` sample set from the seed and slices its span, which is
  exactly what the in-process path does - so a shard executed on
  another host produces bit-identical samples.
* :class:`ShardResult` - the measured samples of one span, with the
  workload key that guards merges.
* :func:`merge_shard_results` - the span-ordered, contiguity-checked
  merge.

Both records round-trip through plain dicts / JSON
(:meth:`ShardSpec.to_dict` / :meth:`ShardSpec.from_dict`, same for
results), and :func:`~repro.core.montecarlo.monte_carlo_transient`
itself routes through :func:`run_shard`, so the protocol *is* the
in-process path rather than a parallel reimplementation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import NamedTuple

import numpy as np

from ..circuit.netlist import content_digest
from ..errors import AnalysisError, FailureRecord
from .serialize import (circuit_from_dict, circuit_record,
                        decode_measures, encode_measures,
                        from_jsonable, measure_tokens,
                        variation_payload, variation_spec)

#: Protocol version; bumped whenever the spec/result layout or the
#: sampling contract changes.  ``from_dict`` refuses other versions.
#: v2: :class:`ShardResult` grew the ``failures`` record list
#: (supervised degradation - see :func:`degraded_shard_result`).
#: v3: :class:`ShardSpec` grew the declarative ``variations`` payload
#: (a tagged :class:`~repro.variation.VariationSpec`, lowered onto the
#: circuit's declaration order when no explicit covariance is given).
SHARD_PROTOCOL_VERSION = 3


@dataclass(frozen=True)
class ShardSpec:
    """One Monte-Carlo shard: workload description plus owned span.

    ``kind`` is ``"mc_transient"`` or ``"mc_dc"``.  ``circuit`` is a
    :func:`~repro.service.serialize.circuit_to_dict` record;
    ``measures`` (transient) / ``outputs`` (dc) and ``options`` carry
    the rest of the workload.  Measures may be live objects on
    in-process specs; only fully serialized specs can cross a host
    boundary (``to_dict`` raises otherwise).
    """

    kind: str
    circuit: dict
    n_total: int
    start: int
    stop: int
    seed: int = 0
    sigma_scale: float = 1.0
    #: Full mismatch covariance as nested lists (JSON), or ``None``.
    param_covariance: list | None = None
    #: Declarative :class:`~repro.variation.VariationSpec` as a tagged
    #: JSON payload; lowered in :meth:`deltas` when no explicit
    #: ``param_covariance`` is given.
    variations: dict | None = None
    measures: list = field(default_factory=list)
    outputs: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)
    version: int = SHARD_PROTOCOL_VERSION

    def __post_init__(self):
        if not (0 <= self.start < self.stop <= self.n_total):
            raise ValueError(
                f"invalid shard span [{self.start}, {self.stop}) of "
                f"{self.n_total}")

    # -- identity ------------------------------------------------------
    def workload_key(self) -> str:
        """Content hash of everything except the owned span.

        Shards of one run share this key; the merge refuses results
        whose keys differ (mixing seeds, circuits or options).
        """
        return content_digest(
            "shard-workload-v1", self.version, self.kind, self.circuit,
            self.n_total, self.seed, self.sigma_scale,
            self.param_covariance, self.variations,
            measure_tokens(self.measures),
            self.outputs, self.options)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        from .serialize import to_jsonable
        d = asdict(self)
        d["measures"] = to_jsonable(self.measures)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        version = data.get("version")
        if version != SHARD_PROTOCOL_VERSION:
            raise AnalysisError(
                f"shard protocol version {version!r} is not supported "
                f"(this build speaks {SHARD_PROTOCOL_VERSION})")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ShardSpec":
        return cls.from_dict(json.loads(text))

    # -- sampling ------------------------------------------------------
    def deltas(self, compiled) -> dict:
        """This shard's parameter deltas: the full ``n_total`` joint
        draw from ``seed``, sliced to ``[start, stop)``.

        Redrawing the whole set and slicing is what makes shards
        location-independent: the values depend only on (seed, n_total,
        circuit declarations), never on which process runs the shard.
        """
        from ..core.montecarlo import sample_mismatch
        rng = np.random.default_rng(self.seed)
        cov = (np.asarray(self.param_covariance, dtype=float)
               if self.param_covariance is not None else None)
        if cov is None and self.variations is not None:
            cov = variation_spec(self.variations).covariance(compiled)
        full = sample_mismatch(compiled, self.n_total, rng,
                               self.sigma_scale, param_covariance=cov)
        return {k: v[self.start:self.stop] for k, v in full.items()}

    @property
    def n_lanes(self) -> int:
        return self.stop - self.start


@dataclass
class ShardResult:
    """Measured samples of one shard span.

    ``failures`` lists the :class:`~repro.errors.FailureRecord` of a
    degraded (NaN-frozen) span - empty on clean results; ``n_failed``
    counts the failed lanes either way, composing the per-lane
    freeze semantics of the MC engines with whole-shard degradation.
    """

    kind: str
    start: int
    stop: int
    samples: dict            # metric name -> np.ndarray of length n_lanes
    n_failed: int = 0
    workload_key: str = ""
    failures: list = field(default_factory=list)
    version: int = SHARD_PROTOCOL_VERSION

    def to_dict(self) -> dict:
        from .serialize import to_jsonable
        d = asdict(self)
        d["samples"] = {name: [float(v) for v in vals]
                        for name, vals in self.samples.items()}
        d["failures"] = [to_jsonable(f) for f in self.failures]
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "ShardResult":
        version = data.get("version")
        if version != SHARD_PROTOCOL_VERSION:
            raise AnalysisError(
                f"shard protocol version {version!r} is not supported "
                f"(this build speaks {SHARD_PROTOCOL_VERSION})")
        d = dict(data)
        d["samples"] = {name: np.asarray(vals, dtype=float)
                        for name, vals in data["samples"].items()}
        d["failures"] = [from_jsonable(f)
                         for f in data.get("failures", [])]
        return cls(**d)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ShardResult":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------
def _spans(n: int, chunk_size: int) -> list[tuple[int, int]]:
    return [(start, min(start + chunk_size, n))
            for start in range(0, n, chunk_size)]


def mc_transient_shards(circuit, measures: list, n: int, t_stop: float,
                        dt: float, chunk_size: int = 250,
                        window: tuple | None = None, seed: int = 0,
                        sigma_scale: float = 1.0,
                        param_covariance=None, method: str = "trap",
                        extra_record: list | None = None,
                        backend: str | None = None,
                        adaptive: bool = False, rtol: float = 1e-3,
                        atol: float = 1e-6, dt_min: float | None = None,
                        dt_max: float | None = None,
                        variations=None) -> list["ShardSpec"]:
    """Plan the shard set of one transient Monte-Carlo run.

    The same planner backs
    :func:`~repro.core.montecarlo.monte_carlo_transient`, so executing
    these specs (in any process placement) and merging reproduces that
    function's samples bit-for-bit at equal *chunk_size*.
    """
    cov = (np.asarray(param_covariance, dtype=float).tolist()
           if param_covariance is not None else None)
    options = {
        "t_stop": float(t_stop), "dt": float(dt),
        "window": list(window) if window is not None else None,
        "method": method, "extra_record": list(extra_record or []),
        "backend": backend, "adaptive": adaptive,
        "rtol": rtol, "atol": atol, "dt_min": dt_min, "dt_max": dt_max,
    }
    record = circuit_record(circuit)
    encoded = encode_measures(measures)
    var = variation_payload(variations)
    return [ShardSpec(kind="mc_transient", circuit=record, n_total=n,
                      start=start, stop=stop, seed=seed,
                      sigma_scale=sigma_scale, param_covariance=cov,
                      variations=var, measures=encoded, options=options)
            for start, stop in _spans(n, chunk_size)]


def mc_dc_shards(circuit, outputs: dict, n: int, chunk_size: int,
                 seed: int = 0, sigma_scale: float = 1.0,
                 param_covariance=None, backend: str | None = None,
                 variations=None) -> list["ShardSpec"]:
    """Plan the shard set of one DC Monte-Carlo run (dcmatch baseline)."""
    cov = (np.asarray(param_covariance, dtype=float).tolist()
           if param_covariance is not None else None)
    outs = {name: (list(spec) if isinstance(spec, tuple) else spec)
            for name, spec in outputs.items()}
    return [ShardSpec(kind="mc_dc", circuit=circuit_record(circuit),
                      n_total=n, start=start, stop=stop, seed=seed,
                      sigma_scale=sigma_scale, param_covariance=cov,
                      variations=variation_payload(variations),
                      outputs=outs, options={"backend": backend})
            for start, stop in _spans(n, chunk_size)]


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------
def _transient_options(spec: ShardSpec, measures: list):
    """The exact :class:`TransientOptions` the pre-shard
    ``monte_carlo_transient`` built - one construction site for both
    the in-process and the cross-host path."""
    from ..analysis.transient import TransientOptions
    o = spec.options
    record = sorted({node for m in measures for node in m.required_nodes()}
                    | set(o.get("extra_record") or []))
    window = o.get("window")
    adaptive = bool(o.get("adaptive", False))
    return TransientOptions(
        method=o.get("method", "trap"), record=record, isolate_lanes=True,
        adaptive=adaptive, rtol=o.get("rtol", 1e-3),
        atol=o.get("atol", 1e-6), dt_min=o.get("dt_min"),
        dt_max=o.get("dt_max"),
        t_out=(list(window) if adaptive and window is not None else None))


def run_shard(spec: ShardSpec, compiled=None) -> ShardResult:
    """Execute one shard and return its :class:`ShardResult`.

    *compiled* short-circuits the circuit rebuild for in-process
    callers (the pool workers of ``monte_carlo_transient`` receive the
    pickled compile); a cross-host worker passes ``None`` and compiles
    from the spec's serialized circuit - content hashing guarantees
    both describe the same system.
    """
    if compiled is None:
        from ..analysis.mna import compile_circuit
        compiled = compile_circuit(circuit_from_dict(spec.circuit),
                                   backend=spec.options.get("backend"))
    deltas = spec.deltas(compiled)
    window = spec.options.get("window")
    if spec.kind == "mc_transient":
        from ..core.montecarlo import _transient_chunk
        measures = decode_measures(spec.measures)
        topts = _transient_options(spec, measures)
        vals, failures = _transient_chunk(
            compiled, measures, topts, spec.options["t_stop"],
            spec.options["dt"],
            tuple(window) if window is not None else None,
            deltas, spec.n_lanes)
        return ShardResult(kind=spec.kind, start=spec.start,
                           stop=spec.stop, samples=vals,
                           n_failed=failures,
                           workload_key=spec.workload_key())
    if spec.kind == "mc_dc":
        from ..core.montecarlo import _dc_chunk
        outputs = {name: (tuple(s) if isinstance(s, list) else s)
                   for name, s in spec.outputs.items()}
        vals = _dc_chunk(compiled, outputs, deltas)
        return ShardResult(kind=spec.kind, start=spec.start,
                           stop=spec.stop,
                           samples={k: np.atleast_1d(v)
                                    for k, v in vals.items()},
                           workload_key=spec.workload_key())
    raise AnalysisError(f"unknown shard kind '{spec.kind}'")


def metric_names(spec: ShardSpec) -> list[str]:
    """The metric names a shard of *spec* reports - what a degraded
    result must still carry so the merge stays shaped."""
    if spec.kind == "mc_transient":
        return [m.name for m in decode_measures(spec.measures)]
    if spec.kind == "mc_dc":
        return sorted(spec.outputs)
    raise AnalysisError(f"unknown shard kind '{spec.kind}'")


def degraded_shard_result(spec: ShardSpec, error: BaseException,
                          attempts: int,
                          site: str = "shard") -> ShardResult:
    """The deterministic degraded form of a shard that exhausted its
    retries: every lane of the owned span NaN-frozen, the whole span
    counted in ``n_failed``, and a structured
    :class:`~repro.errors.FailureRecord` attached.

    This extends the per-lane freeze semantics the MC engines have had
    since PR 1 (a diverging lane becomes NaN, not an aborted run) to
    whole-shard failures: the merge stays bit-identical on every
    unaffected span, and statistics are computed over the surviving
    lanes.  *site* distinguishes execution failures (``"shard"``, the
    default) from a shard no endpoint would even accept
    (``"transport"`` - see :class:`~repro.service.resilience.
    WorkerPool`).
    """
    record = FailureRecord.from_exception(
        error, site=site, attempts=attempts, start=spec.start,
        stop=spec.stop)
    samples = {name: np.full(spec.n_lanes, np.nan)
               for name in metric_names(spec)}
    return ShardResult(kind=spec.kind, start=spec.start, stop=spec.stop,
                       samples=samples, n_failed=spec.n_lanes,
                       workload_key=spec.workload_key(),
                       failures=[record])


class MergedShards(NamedTuple):
    """Span-merged shard results: concatenated samples, total failed
    lanes, and the failure records of degraded shards."""

    samples: dict
    n_failed: int
    failures: list


def merge_shard_results(results: list[ShardResult]) -> MergedShards:
    """Merge shard results in span order.

    Returns :class:`MergedShards` ``(samples, n_failed, failures)``
    where *samples* maps metric name to the concatenated array.
    Refuses shards from different workloads (mismatched workload keys)
    and any non-contiguous span coverage - naming the duplicate,
    overlapping, or missing span precisely, because a distributed merge
    that silently drops or doubles a span corrupts statistics without
    any downstream symptom.
    """
    if not results:
        raise AnalysisError("no shard results to merge")
    ordered = sorted(results, key=lambda r: (r.start, r.stop))
    key = ordered[0].workload_key
    for prev, cur in zip(ordered, ordered[1:]):
        if cur.workload_key != key:
            raise AnalysisError(
                f"refusing to merge shards from different workloads: "
                f"span [{cur.start}, {cur.stop}) has workload key "
                f"{cur.workload_key[:12]}..., expected {key[:12]}...")
        if cur.start == prev.start and cur.stop == prev.stop:
            raise AnalysisError(
                f"duplicate shard span [{cur.start}, {cur.stop}) in "
                f"merge (same span delivered twice - a re-dispatched "
                f"shard was not deduplicated)")
        if cur.start < prev.stop:
            raise AnalysisError(
                f"overlapping shard spans: [{prev.start}, {prev.stop}) "
                f"overlaps [{cur.start}, {cur.stop}) on "
                f"[{cur.start}, {min(prev.stop, cur.stop)})")
        if cur.start > prev.stop:
            raise AnalysisError(
                f"gap in shard coverage: span [{prev.stop}, "
                f"{cur.start}) is missing between [{prev.start}, "
                f"{prev.stop}) and [{cur.start}, {cur.stop})")
    samples = {name: np.concatenate([r.samples[name] for r in ordered])
               for name in ordered[0].samples}
    failures = [f for r in ordered for f in r.failures]
    return MergedShards(samples, sum(r.n_failed for r in ordered),
                        failures)
