"""Client of the analysis daemon (stdlib :mod:`urllib` only).

:class:`RemoteSession` mirrors the in-process
:class:`~repro.service.session.AnalysisSession` surface - ``run(request)
-> AnalysisResult``, the named analysis conveniences, ``stats()`` - so
code written against a local session points at a URL instead and runs
unchanged; in particular it slots straight into an inline
:class:`~repro.service.jobs.JobQueue` as its ``session``.  Structured
wire errors (:func:`~repro.service.net.error_payload` records) are
reconstructed into the *same* exception classes the in-process call
would have raised, solver context and all, so error handling is also
transport-independent.

Cross-host Monte-Carlo rides on the shard protocol:
:func:`scatter_shards` fans planned :class:`~repro.service.shards.
ShardSpec` payloads across N worker daemons and
:func:`scatter_monte_carlo_transient` wraps the full plan -> scatter ->
span-ordered merge pipeline, producing samples bit-identical to the
in-process :func:`~repro.core.montecarlo.monte_carlo_transient` run at
equal ``chunk_size`` (the workers redraw the same seeded joint
sample set and slice their spans - see :mod:`repro.service.shards`).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .. import errors as _errors
from ..errors import (AnalysisError, JobTimeoutError, ReproError,
                      SolverError, TransportError)
from ..stats import describe
from .faults import maybe_inject
from .requests import (REQUEST_FORMAT_VERSION, AnalysisRequest,
                       AnalysisResult)
from .serialize import from_jsonable
from .shards import (SHARD_PROTOCOL_VERSION, ShardResult, ShardSpec,
                     mc_transient_shards, merge_shard_results)


def _rebuild_error(record) -> Exception:
    """The wire :class:`~repro.errors.FailureRecord` back as the
    exception the server-side engine raised (same class, same solver
    context), falling back to :class:`ReproError` for unknown names."""
    cls = getattr(_errors, record.error, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        return ReproError(f"{record.error}: {record.message}")
    if issubclass(cls, SolverError):
        return cls(record.message, iterations=record.iterations,
                   residual=record.residual,
                   theta_fingerprint=record.theta_fingerprint)
    return cls(record.message)


def _raise_wire_error(payload: dict, status: int) -> None:
    record = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(record, dict) and record.get("__type__") == "FailureRecord":
        exc = _rebuild_error(from_jsonable(record))
    else:
        exc = ReproError(f"analysis daemon returned HTTP {status}: "
                         f"{payload!r}")
    # the HTTP status and the drain retry hint ride along so dispatch
    # policy (WorkerPool breakers, drain rerouting) can read them off
    # the reconstructed exception
    exc.http_status = status
    retry_after = (payload.get("retry_after")
                   if isinstance(payload, dict) else None)
    if retry_after is not None and getattr(exc, "retry_after",
                                           None) is None:
        exc.retry_after = float(retry_after)
    raise exc


class RemoteSession:
    """An analysis daemon as a session-shaped object.

    Parameters
    ----------
    base_url:
        The daemon's root URL (``http://host:port``).
    token:
        Tenant token, for daemons started with
        :class:`~repro.service.net.TenantConfig` entries.
    timeout:
        Per-call socket timeout [s].  Analysis runs synchronously
        inside ``POST /run``, so size this over the expected solve
        time (or use :meth:`submit` and poll).
    """

    def __init__(self, base_url: str, token: str | None = None,
                 timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout
        self._negotiated = False

    # -- transport -----------------------------------------------------
    def _call(self, method: str, path: str, payload=None,
              attempt: int = 0) -> dict:
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        req = urllib.request.Request(self.base_url + path, data=data,
                                     method=method)
        req.add_header("Content-Type", "application/json")
        if self.token:
            req.add_header("Authorization", f"Bearer {self.token}")
        try:
            # the transport fault site sits before the socket is
            # touched; the key names the endpoint so a plan can drop
            # one daemon of a pool and leave the others alone
            maybe_inject("transport",
                         key=f"{self.base_url} {method} {path}",
                         attempt=attempt)
            with urllib.request.urlopen(req,
                                        timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as err:
            body = err.read().decode("utf-8", errors="replace")
            try:
                wire = json.loads(body)
            except json.JSONDecodeError:
                wire = {"raw": body}
            _raise_wire_error(wire, err.code)
        except (OSError, http.client.HTTPException) as err:
            # URLError, ConnectionError, socket.timeout, a connection
            # torn down mid-response: no HTTP reply ever arrived.
            # (HTTPError subclasses URLError, so it must be caught
            # above, not here.)
            raise TransportError(
                f"{method} {self.base_url}{path} got no HTTP response "
                f"({type(err).__name__}: {err})",
                endpoint=self.base_url, method=method) from err

    def _negotiate(self) -> None:
        """Refuse to talk across wire-format versions (once, lazily)."""
        if self._negotiated:
            return
        theirs = self.health().get("versions", {})
        ours = {"request_format": REQUEST_FORMAT_VERSION,
                "shard_protocol": SHARD_PROTOCOL_VERSION}
        if theirs != ours:
            raise AnalysisError(
                f"wire version mismatch: daemon at {self.base_url} "
                f"speaks {theirs}, this client speaks {ours}")
        self._negotiated = True

    # -- daemon surface ------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/health")

    def stats(self) -> dict:
        """The daemon session's per-store counters - same shape as
        :meth:`AnalysisSession.stats`."""
        return self.server_stats()["session"]

    def server_stats(self) -> dict:
        """Full daemon statistics: session stores, tenant quotas,
        job-queue depth."""
        return self._call("GET", "/stats")

    def run(self, request: AnalysisRequest) -> AnalysisResult:
        """Execute *request* on the daemon, synchronously."""
        self._negotiate()
        return AnalysisResult.from_dict(
            self._call("POST", "/run", request.to_dict()))

    def submit(self, request: AnalysisRequest) -> "RemoteJob":
        """Queue *request* asynchronously; poll the returned job."""
        self._negotiate()
        data = self._call("POST", "/jobs", request.to_dict())
        return RemoteJob(self, data["key"])

    def run_shard(self, spec: ShardSpec,
                  attempt: int = 0) -> ShardResult:
        """Execute one Monte-Carlo shard on the daemon.  *attempt* is
        the dispatcher's re-dispatch counter, threaded into the
        transport fault site so ``fail_attempts`` rules heal across
        pool retries."""
        self._negotiate()
        return ShardResult.from_dict(
            self._call("POST", "/shard", spec.to_dict(),
                       attempt=attempt))

    def drain(self) -> dict:
        """Put the daemon into graceful drain (``POST /admin/drain``):
        in-flight and queued jobs finish and stay pollable, new work is
        refused with a tagged 503."""
        return self._call("POST", "/admin/drain")

    # -- session-shaped conveniences -----------------------------------
    def transient_mismatch(self, circuit, measures,
                           **kwargs) -> AnalysisResult:
        """The paper's sensitivity analysis, served remotely (summary
        only - the live detail object never crosses the wire)."""
        return self.run(AnalysisRequest.transient_mismatch(
            circuit, measures, **kwargs))

    def dc_mismatch(self, circuit, outputs: dict,
                    **kwargs) -> AnalysisResult:
        return self.run(AnalysisRequest.dc_mismatch(circuit, outputs,
                                                    **kwargs))

    def monte_carlo_transient(self, circuit, measures, n: int,
                              t_stop: float, dt: float,
                              **kwargs) -> AnalysisResult:
        return self.run(AnalysisRequest.monte_carlo_transient(
            circuit, measures, n, t_stop, dt, **kwargs))

    def monte_carlo_dc(self, circuit, outputs: dict, n: int,
                       **kwargs) -> AnalysisResult:
        return self.run(AnalysisRequest.monte_carlo_dc(circuit, outputs,
                                                       n, **kwargs))


class RemoteJob:
    """Handle on one asynchronously submitted request (mirrors
    :class:`~repro.service.jobs.Job`)."""

    def __init__(self, session: RemoteSession, key: str):
        self.session = session
        self.key = key

    def poll(self, attempt: int = 0) -> dict:
        """The raw job record: ``status`` plus result/error fields."""
        return self.session._call("GET", f"/jobs/{self.key}",
                                  attempt=attempt)

    def done(self) -> bool:
        return self.poll()["status"] in ("done", "failed")

    def result(self, timeout: float | None = None,
               poll_interval: float = 0.05,
               transport_retries: int = 5) -> AnalysisResult:
        """Block (polling) until the job finishes; raise its
        reconstructed error if it failed.

        Polls tolerate transient network failures: the job keeps
        running server-side whether or not a status request got
        through, so up to *transport_retries* consecutive
        :class:`~repro.errors.TransportError` polls are retried with
        backoff before the error propagates.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        misses = 0
        while True:
            try:
                data = self.poll(attempt=misses)
            except TransportError:
                misses += 1
                if misses > transport_retries:
                    raise
                if deadline is not None \
                        and time.monotonic() >= deadline:
                    raise
                time.sleep(poll_interval * min(2.0 ** (misses - 1),
                                               8.0))
                continue
            misses = 0
            if data["status"] == "done":
                return AnalysisResult.from_dict(data["result"])
            if data["status"] == "failed":
                raise _rebuild_error(from_jsonable(data["error"]))
            if deadline is not None and time.monotonic() >= deadline:
                raise JobTimeoutError(
                    f"job {self.key} still '{data['status']}' after "
                    f"{timeout} s")
            time.sleep(poll_interval)


# ---------------------------------------------------------------------------
# cross-host Monte-Carlo fan-out
# ---------------------------------------------------------------------------
def _as_sessions(workers) -> list[RemoteSession]:
    out = [w if isinstance(w, RemoteSession) else RemoteSession(w)
           for w in workers]
    if not out:
        raise ValueError("need at least one worker daemon")
    return out


def annotate_shard_failure(exc: BaseException, spec: ShardSpec,
                           endpoint: str) -> BaseException:
    """Tag a terminal shard failure with *which* span died on *which*
    endpoint, preserving the exception class (a scatter of 40 shards
    over 3 daemons is undebuggable without this)."""
    note = f"[shard [{spec.start}, {spec.stop}) on {endpoint}]"
    if note not in str(exc):
        if getattr(exc, "message", None) is not None:
            exc.message = f"{exc.message} {note}"
        if exc.args:
            exc.args = (f"{exc.args[0]} {note}",) + exc.args[1:]
        else:
            exc.args = (note,)
    exc.shard_span = (spec.start, spec.stop)
    exc.endpoint = endpoint
    return exc


def _run_static(session: RemoteSession,
                spec: ShardSpec) -> ShardResult:
    try:
        return session.run_shard(spec)
    except Exception as exc:
        raise annotate_shard_failure(exc, spec, session.base_url)


def scatter_shards(workers, specs: list[ShardSpec],
                   policy=None) -> list[ShardResult]:
    """Execute *specs* across *workers*, concurrently; results return
    in spec order, ready for
    :func:`~repro.service.shards.merge_shard_results`.

    *workers* may be URLs / :class:`RemoteSession` objects (static
    round-robin over the set) or a
    :class:`~repro.service.resilience.WorkerPool` (dynamic dispatch
    with failover, breakers and drain avoidance).  Passing *policy* (a
    :class:`~repro.service.resilience.ScatterPolicy`) with plain
    workers wraps them in a temporary pool for this call.

    On a terminal shard failure the outstanding not-yet-started shards
    are cancelled and the error propagates annotated with the failing
    span and endpoint.
    """
    from .resilience import WorkerPool
    if isinstance(workers, WorkerPool):
        return workers.scatter(specs)
    if policy is not None:
        with WorkerPool(workers, policy=policy) as pool:
            return pool.scatter(specs)
    sessions = _as_sessions(workers)
    with ThreadPoolExecutor(max_workers=len(sessions)) as pool:
        futures = [pool.submit(_run_static,
                               sessions[i % len(sessions)], spec)
                   for i, spec in enumerate(specs)]
        try:
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise


@dataclass
class ScatterResult:
    """A scattered Monte-Carlo run, merged: the same sample/statistics
    surface as :class:`~repro.core.montecarlo.MonteCarloResult` (the
    samples are bit-identical to the in-process run; the live deltas
    stay on the workers)."""

    n: int
    samples: dict
    stats: dict
    n_failed: int = 0
    failures: list = field(default_factory=list)
    runtime_seconds: float = 0.0

    def sigma(self, metric: str) -> float:
        return self.stats[metric].std

    def mean(self, metric: str) -> float:
        return self.stats[metric].mean

    def summary(self) -> dict:
        """The :class:`~repro.service.requests.AnalysisResult` summary
        shape of this run (what ``POST /run`` of the whole workload
        would report)."""
        return {"metrics": {name: {"mean": float(st.mean),
                                   "sigma": float(st.std),
                                   "std_ci_low": float(st.std_ci_low),
                                   "std_ci_high": float(st.std_ci_high)}
                            for name, st in self.stats.items()},
                "n": self.n, "n_failed": self.n_failed}


def scatter_monte_carlo_transient(workers, circuit, measures, n: int,
                                  t_stop: float, dt: float,
                                  chunk_size: int = 250, policy=None,
                                  **kwargs) -> ScatterResult:
    """One coordinator, N worker daemons: plan the shard set
    (:func:`~repro.service.shards.mc_transient_shards`), scatter it,
    merge span-ordered.

    Accepts the planner's keywords (``window``, ``seed``,
    ``sigma_scale``, ``param_covariance``, ``variations``, ``method``,
    ``backend``, ...) plus *workers*/*policy* as in
    :func:`scatter_shards`.  Statistics are computed over the finite
    merged samples exactly as :func:`~repro.core.montecarlo.
    monte_carlo_transient` computes them, so at equal *chunk_size* the
    whole result - samples and statistics - matches the in-process run
    bit for bit.  A run whose *every* lane was lost to transport
    failures raises one :class:`~repro.errors.TransportError`
    summarizing the loss (statistics over zero samples mean nothing);
    partial transport loss degrades like any other lane failure.
    """
    t_begin = time.perf_counter()
    specs = mc_transient_shards(circuit, measures, n, t_stop, dt,
                                chunk_size=chunk_size, **kwargs)
    merged = merge_shard_results(
        scatter_shards(workers, specs, policy=policy))
    if merged.n_failed >= n and merged.failures and all(
            f.site == "transport" for f in merged.failures):
        raise TransportError(
            f"all {n} lanes lost to transport failures across "
            f"{len(specs)} shards; first: "
            f"{merged.failures[0].message}")
    stats = {}
    for name, vals in merged.samples.items():
        good = vals[np.isfinite(vals)]
        if good.size < 2:
            raise _errors.MeasurementError(
                f"Monte-Carlo metric '{name}' failed on almost all "
                "lanes")
        stats[name] = describe(good)
    return ScatterResult(n=n, samples=merged.samples, stats=stats,
                         n_failed=merged.n_failed,
                         failures=list(merged.failures),
                         runtime_seconds=time.perf_counter() - t_begin)
