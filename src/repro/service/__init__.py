"""Application layer: job-oriented analysis requests over shared caches.

This package is the top of the three-layer architecture (see the
top-level ``README.md``):

* **domain** (:mod:`repro.circuit`, :mod:`repro.analysis`) - circuit
  description and the numerical engines, identified by content hashes
  (:meth:`~repro.circuit.netlist.Circuit.fingerprint`,
  ``CompiledCircuit.cache_key``);
* **application** (this package) - :class:`AnalysisRequest` /
  :class:`AnalysisResult` describe work as JSON-serializable values,
  :class:`AnalysisSession` executes them through bounded LRU caches
  keyed on the content hashes, and :class:`JobQueue` fans independent
  requests across worker processes;
* **infrastructure** (:mod:`repro.service.shards`) - the versioned,
  serializable Monte-Carlo shard protocol whose merge is bit-identical
  to the in-process run.

Supervision rides on top: :class:`RetryPolicy` puts queue submissions
under deadlines, retry with exponential backoff, pool-crash recovery
and deterministic degradation (NaN-frozen spans with structured
:class:`~repro.errors.FailureRecord` reporting), and
:mod:`repro.service.faults` injects reproducible faults at the
execution sites to prove all of it.

The dependency direction is one-way: this package imports the layers
below it, never the reverse (``repro.circuit`` / ``repro.analysis``
must not import ``repro.service`` - CI enforces it).
"""

from ..errors import DrainingError, FailureRecord, TransportError
from .client import (RemoteJob, RemoteSession, ScatterResult,
                     scatter_monte_carlo_transient, scatter_shards)
from .engines import (AnalysisEngine, engine_for, register_engine,
                      registered_kinds, unregister_engine)
from .faults import FaultPlan, FaultRule
from .jobs import Job, JobQueue, RetryPolicy, run_supervised_shard
from .net import AnalysisServer, TenantConfig, serve
from .resilience import CircuitBreaker, ScatterPolicy, WorkerPool
from .requests import (REQUEST_FORMAT_VERSION, AnalysisRequest,
                       AnalysisResult)
from .serialize import (circuit_from_dict, circuit_to_dict, from_jsonable,
                        to_jsonable)
from .session import AnalysisSession, default_session
from .shards import (SHARD_PROTOCOL_VERSION, MergedShards, ShardResult,
                     ShardSpec, degraded_shard_result, mc_dc_shards,
                     mc_transient_shards, merge_shard_results, run_shard)

__all__ = [
    "AnalysisRequest", "AnalysisResult", "REQUEST_FORMAT_VERSION",
    "AnalysisSession", "default_session",
    "AnalysisEngine", "register_engine", "unregister_engine",
    "engine_for", "registered_kinds",
    "Job", "JobQueue", "RetryPolicy", "run_supervised_shard",
    "FaultPlan", "FaultRule", "FailureRecord",
    "ShardSpec", "ShardResult", "SHARD_PROTOCOL_VERSION",
    "MergedShards", "degraded_shard_result",
    "mc_transient_shards", "mc_dc_shards",
    "run_shard", "merge_shard_results",
    "circuit_to_dict", "circuit_from_dict",
    "to_jsonable", "from_jsonable",
    "AnalysisServer", "TenantConfig", "serve",
    "RemoteSession", "RemoteJob", "ScatterResult",
    "scatter_shards", "scatter_monte_carlo_transient",
    "WorkerPool", "ScatterPolicy", "CircuitBreaker",
    "TransportError", "DrainingError",
]
